#include "src/http/service_mesh.h"

#include <algorithm>

namespace dhttp {

dbase::Micros LatencyModel::Sample(size_t bytes_moved, dbase::Rng& rng) const {
  const double transfer = per_kb_us * (static_cast<double>(bytes_moved) / 1024.0);
  const double nominal = static_cast<double>(base_us) + transfer;
  if (jitter_sigma <= 0.0) {
    return static_cast<dbase::Micros>(nominal);
  }
  const double jitter = rng.LogNormal(0.0, jitter_sigma);
  return static_cast<dbase::Micros>(std::max(1.0, nominal * jitter));
}

void ServiceMesh::Register(const std::string& host, std::shared_ptr<Service> service,
                           LatencyModel latency) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[host] = Endpoint{std::move(service), latency, /*peer=*/""};
}

void ServiceMesh::RegisterRemote(const std::string& host, const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  // A local service under the same host wins: remote registration must not
  // shadow data this node already has.
  auto it = endpoints_.find(host);
  if (it != endpoints_.end() && it->second.service != nullptr) {
    return;
  }
  Endpoint endpoint;
  endpoint.peer = peer;
  endpoints_[host] = std::move(endpoint);
}

void ServiceMesh::SetRemoteTransport(RemoteTransport transport) {
  std::lock_guard<std::mutex> lock(mu_);
  remote_transport_ = std::move(transport);
}

bool ServiceMesh::HasHost(const std::string& host) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.count(host) > 0;
}

MeshCallResult ServiceMesh::CallRemote(const std::string& peer,
                                       const SanitizedRequest& request) {
  RemoteTransport transport;
  {
    std::lock_guard<std::mutex> lock(mu_);
    transport = remote_transport_;
  }
  MeshCallResult out;
  if (!transport) {
    out.response = HttpResponse::Make(502, "Bad Gateway",
                                      "remote host on '" + peer + "' but no transport");
    out.latency_us = 50;
    return out;
  }
  remote_calls_.fetch_add(1, std::memory_order_relaxed);
  dbase::Result<MeshCallResult> carried = transport(peer, request);
  if (!carried.ok()) {
    out.response = HttpResponse::Make(
        502, "Bad Gateway", "mesh transport to '" + peer + "': " + carried.status().ToString());
    out.latency_us = 50;
    return out;
  }
  return std::move(carried).value();
}

MeshCallResult ServiceMesh::Call(const SanitizedRequest& request) {
  total_calls_.fetch_add(1, std::memory_order_relaxed);

  Endpoint endpoint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(request.uri.host);
    if (it == endpoints_.end()) {
      MeshCallResult out;
      out.response = HttpResponse::Make(502, "Bad Gateway",
                                        "no route to host: " + request.uri.host);
      out.latency_us = 50;  // Fast local failure.
      return out;
    }
    endpoint = it->second;
  }

  // Remote host: the owning peer's mesh serves it, one hop over the node
  // wire. The latency model is the serving node's — the wire itself is real.
  if (endpoint.service == nullptr) {
    return CallRemote(endpoint.peer, request);
  }

  // Invoke the service outside the lock; services may be slow or reentrant.
  MeshCallResult out;
  out.response = endpoint.service->Handle(request.request, request.uri);
  {
    // One latency sample for the whole round trip: base_us covers the RTT +
    // service overhead, the bandwidth term covers bytes moved both ways.
    std::lock_guard<std::mutex> lock(mu_);
    out.latency_us = endpoint.latency.Sample(
        request.request.body.size() + out.response.body.size(), rng_);
  }
  return out;
}

}  // namespace dhttp
