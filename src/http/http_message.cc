#include "src/http/http_message.h"

#include "src/base/string_util.h"

namespace dhttp {

std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kGet:
      return "GET";
    case Method::kPut:
      return "PUT";
    case Method::kPost:
      return "POST";
    case Method::kDelete:
      return "DELETE";
  }
  return "GET";
}

std::optional<Method> MethodFromName(std::string_view name) {
  if (name == "GET") {
    return Method::kGet;
  }
  if (name == "PUT") {
    return Method::kPut;
  }
  if (name == "POST") {
    return Method::kPost;
  }
  if (name == "DELETE") {
    return Method::kDelete;
  }
  return std::nullopt;
}

void HeaderList::Add(std::string name, std::string value) {
  headers_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> HeaderList::Get(std::string_view name) const {
  for (const auto& [key, value] : headers_) {
    if (dbase::EqualsIgnoreCase(key, name)) {
      return std::string_view(value);
    }
  }
  return std::nullopt;
}

void HeaderList::Set(std::string name, std::string value) {
  auto it = headers_.begin();
  while (it != headers_.end()) {
    if (dbase::EqualsIgnoreCase(it->first, name)) {
      it = headers_.erase(it);
    } else {
      ++it;
    }
  }
  headers_.emplace_back(std::move(name), std::move(value));
}

namespace {
void AppendHeaders(std::string* out, const HeaderList& headers, size_t body_size,
                   bool has_content_length) {
  for (const auto& [key, value] : headers.entries()) {
    out->append(key);
    out->append(": ");
    out->append(value);
    out->append("\r\n");
  }
  if (!has_content_length) {
    out->append("Content-Length: ");
    out->append(std::to_string(body_size));
    out->append("\r\n");
  }
  out->append("\r\n");
}
}  // namespace

std::string HttpRequest::Serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out.append(MethodName(method));
  out.push_back(' ');
  out.append(target);
  out.push_back(' ');
  out.append(version);
  out.append("\r\n");
  AppendHeaders(&out, headers, body.size(), headers.Has("Content-Length"));
  out.append(body);
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out.append(version);
  out.push_back(' ');
  out.append(std::to_string(status_code));
  out.push_back(' ');
  out.append(reason);
  out.append("\r\n");
  AppendHeaders(&out, headers, body.size(), headers.Has("Content-Length"));
  out.append(body);
  return out;
}

HttpResponse HttpResponse::Make(int code, std::string_view reason, std::string body) {
  HttpResponse resp;
  resp.status_code = code;
  resp.reason = std::string(reason);
  resp.body = std::move(body);
  return resp;
}

}  // namespace dhttp
