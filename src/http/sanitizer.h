// Input sanitization for the HTTP communication function (§6.3). Untrusted
// compute-function output becomes a request only after these checks pass:
// the method is in the fixed allow-list, the protocol version is known, and
// the URI host is a syntactically valid domain name or IP.
#ifndef SRC_HTTP_SANITIZER_H_
#define SRC_HTTP_SANITIZER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/http/http_message.h"
#include "src/http/uri.h"

namespace dhttp {

// A fully validated request ready to be carried out by a communication
// engine. Only constructed through SanitizeRequest.
struct SanitizedRequest {
  HttpRequest request;
  Uri uri;
};

// Parses + validates raw bytes produced by an untrusted compute function.
// Rejection reasons become HTTP-level errors forwarded downstream (§4.4),
// never crashes in the trusted engine.
dbase::Result<SanitizedRequest> SanitizeRequest(std::string_view raw);

}  // namespace dhttp

#endif  // SRC_HTTP_SANITIZER_H_
