// Parsers for HTTP/1.1 requests and responses as they appear in Dandelion
// data items. Strict by design: communication engines treat all input as
// untrusted (§6.3) and reject anything that does not match the grammar.
#ifndef SRC_HTTP_HTTP_PARSER_H_
#define SRC_HTTP_HTTP_PARSER_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/base/status.h"
#include "src/http/http_message.h"

namespace dhttp {

// Parses a full request (start line, headers, body). The body length is
// taken from Content-Length; extra trailing bytes are an error, missing
// bytes are an error. Chunked transfer encoding is not supported (the
// composition data model always knows item sizes up front).
dbase::Result<HttpRequest> ParseRequest(std::string_view wire);

dbase::Result<HttpResponse> ParseResponse(std::string_view wire);

// Result of an incremental head scan over a partially-received message.
struct MessageHead {
  size_t head_bytes = 0;         // Offset of the first body byte (past CRLFCRLF).
  uint64_t content_length = 0;   // 0 when the header is absent.
};

// Incremental entry point for streaming servers: inspects the buffered
// prefix of an HTTP/1.x message as bytes arrive, without requiring the full
// message. Returns
//   - nullopt while the header block's terminating CRLFCRLF has not arrived
//     yet (read more and call again),
//   - a MessageHead once the head is complete,
//   - kResourceExhausted when the head exceeds max_head_bytes before
//     terminating (a slowloris / oversized-header guard),
//   - kInvalidArgument for an unparseable Content-Length or duplicate
//     Content-Length headers with conflicting values (RFC 9112 §6.3;
//     repeats with the identical value are tolerated).
// Works for requests and responses alike: it only locates the head and the
// framing length — full validation stays with Parse{Request,Response}.
dbase::Result<std::optional<MessageHead>> ScanMessageHead(std::string_view buffer,
                                                          size_t max_head_bytes);

}  // namespace dhttp

#endif  // SRC_HTTP_HTTP_PARSER_H_
