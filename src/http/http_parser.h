// Parsers for HTTP/1.1 requests and responses as they appear in Dandelion
// data items. Strict by design: communication engines treat all input as
// untrusted (§6.3) and reject anything that does not match the grammar.
#ifndef SRC_HTTP_HTTP_PARSER_H_
#define SRC_HTTP_HTTP_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/http/http_message.h"

namespace dhttp {

// Parses a full request (start line, headers, body). The body length is
// taken from Content-Length; extra trailing bytes are an error, missing
// bytes are an error. Chunked transfer encoding is not supported (the
// composition data model always knows item sizes up front).
dbase::Result<HttpRequest> ParseRequest(std::string_view wire);

dbase::Result<HttpResponse> ParseResponse(std::string_view wire);

}  // namespace dhttp

#endif  // SRC_HTTP_HTTP_PARSER_H_
