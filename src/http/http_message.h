// HTTP/1.1 message model. Dandelion's only communication function speaks
// HTTP (§3, §6.3): compute functions emit serialized requests as output
// items; the platform's communication engines parse, sanitize, and carry
// them out, handing the serialized response to downstream functions.
#ifndef SRC_HTTP_HTTP_MESSAGE_H_
#define SRC_HTTP_HTTP_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dhttp {

enum class Method { kGet, kPut, kPost, kDelete };

std::string_view MethodName(Method m);
std::optional<Method> MethodFromName(std::string_view name);

// Ordered header list; HTTP allows repeats and order can matter.
class HeaderList {
 public:
  void Add(std::string name, std::string value);
  // First value with the given name (case-insensitive); nullopt if absent.
  std::optional<std::string_view> Get(std::string_view name) const;
  bool Has(std::string_view name) const { return Get(name).has_value(); }
  // Replaces all occurrences with a single header.
  void Set(std::string name, std::string value);
  size_t size() const { return headers_.size(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const { return headers_; }

 private:
  std::vector<std::pair<std::string, std::string>> headers_;
};

struct HttpRequest {
  Method method = Method::kGet;
  // Full target as written by the user function, e.g.
  // "http://storage.internal/bucket/key" — communication engines resolve the
  // host against the service mesh.
  std::string target;
  std::string version = "HTTP/1.1";
  HeaderList headers;
  std::string body;

  // Serialized wire form (request line, headers incl. Content-Length, body).
  std::string Serialize() const;
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderList headers;
  std::string body;

  bool IsSuccess() const { return status_code >= 200 && status_code < 300; }
  std::string Serialize() const;

  static HttpResponse Make(int code, std::string_view reason, std::string body);
  static HttpResponse Ok(std::string body) { return Make(200, "OK", std::move(body)); }
  static HttpResponse NotFound(std::string body = "not found") {
    return Make(404, "Not Found", std::move(body));
  }
  static HttpResponse BadRequest(std::string body = "bad request") {
    return Make(400, "Bad Request", std::move(body));
  }
  static HttpResponse Unauthorized(std::string body = "unauthorized") {
    return Make(401, "Unauthorized", std::move(body));
  }
  static HttpResponse ServerError(std::string body = "internal error") {
    return Make(500, "Internal Server Error", std::move(body));
  }
};

}  // namespace dhttp

#endif  // SRC_HTTP_HTTP_MESSAGE_H_
