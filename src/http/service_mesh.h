// In-process stand-in for the remote cloud services Dandelion applications
// talk to (storage buckets, auth, AI inference, databases — §3). Each
// registered service handles sanitized requests and reports a modelled
// network+service latency so both the real runtime (which sleeps for it)
// and the simulator (which advances virtual time by it) exercise the same
// code path.
#ifndef SRC_HTTP_SERVICE_MESH_H_
#define SRC_HTTP_SERVICE_MESH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/http/http_message.h"
#include "src/http/sanitizer.h"

namespace dhttp {

// Latency model for one service endpoint: base RTT + per-byte transfer cost
// + lognormal jitter. All values are microseconds (per-byte in nanos).
struct LatencyModel {
  dbase::Micros base_us = 200;       // Connection + request overhead.
  double per_kb_us = 1.0;            // Bandwidth term, per KiB moved.
  double jitter_sigma = 0.1;         // Lognormal sigma on the total.

  dbase::Micros Sample(size_t bytes_moved, dbase::Rng& rng) const;
};

// A simulated remote service. Handle() must be thread-safe: communication
// engines call it concurrently from their cooperative runtimes.
class Service {
 public:
  virtual ~Service() = default;
  virtual HttpResponse Handle(const HttpRequest& request, const Uri& uri) = 0;
};

// Result of carrying a request to a service: the response plus the latency
// the network+service would have added.
struct MeshCallResult {
  HttpResponse response;
  dbase::Micros latency_us = 0;
};

class ServiceMesh {
 public:
  // Carries a serialized request to a named peer node and returns the
  // serialized response plus the latency the serving node reported — the
  // seam the cluster plugs its dnet NodeClient into (one socket path for
  // invokes and mesh calls alike). Must be thread-safe.
  using RemoteTransport = std::function<dbase::Result<MeshCallResult>(
      const std::string& peer, const SanitizedRequest& request)>;

  ServiceMesh() : rng_(0xD00DFEEDULL) {}

  // Registers a service under a host name ("storage.internal"). Replaces any
  // existing registration.
  void Register(const std::string& host, std::shared_ptr<Service> service,
                LatencyModel latency = LatencyModel{});

  // Registers a host that lives on another node: calls to it ride the
  // remote transport to `peer`, where that node's local mesh serves them.
  // A local Register for the same host wins (data gravity: never pay the
  // wire for a service this node has).
  void RegisterRemote(const std::string& host, const std::string& peer);

  // Installs the transport remote hosts are carried over. Without one,
  // remote hosts fail like unknown hosts (502).
  void SetRemoteTransport(RemoteTransport transport);

  bool HasHost(const std::string& host) const;

  // Carries out a sanitized request: routes on the URI host, invokes the
  // service (locally, or on the owning peer via the remote transport), and
  // samples the latency model. Unknown hosts yield 502.
  MeshCallResult Call(const SanitizedRequest& request);

  uint64_t total_calls() const { return total_calls_.load(std::memory_order_relaxed); }
  uint64_t remote_calls() const { return remote_calls_.load(std::memory_order_relaxed); }

 private:
  struct Endpoint {
    std::shared_ptr<Service> service;
    LatencyModel latency;
    // Non-empty = remote host: carried to this peer instead of served here.
    std::string peer;
  };

  MeshCallResult CallRemote(const std::string& peer, const SanitizedRequest& request);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Endpoint> endpoints_;
  RemoteTransport remote_transport_;  // Guarded by mu_.
  dbase::Rng rng_;                    // Guarded by mu_.
  std::atomic<uint64_t> total_calls_{0};
  std::atomic<uint64_t> remote_calls_{0};
};

}  // namespace dhttp

#endif  // SRC_HTTP_SERVICE_MESH_H_
