// In-process stand-in for the remote cloud services Dandelion applications
// talk to (storage buckets, auth, AI inference, databases — §3). Each
// registered service handles sanitized requests and reports a modelled
// network+service latency so both the real runtime (which sleeps for it)
// and the simulator (which advances virtual time by it) exercise the same
// code path.
#ifndef SRC_HTTP_SERVICE_MESH_H_
#define SRC_HTTP_SERVICE_MESH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/base/clock.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/http/http_message.h"
#include "src/http/sanitizer.h"

namespace dhttp {

// Latency model for one service endpoint: base RTT + per-byte transfer cost
// + lognormal jitter. All values are microseconds (per-byte in nanos).
struct LatencyModel {
  dbase::Micros base_us = 200;       // Connection + request overhead.
  double per_kb_us = 1.0;            // Bandwidth term, per KiB moved.
  double jitter_sigma = 0.1;         // Lognormal sigma on the total.

  dbase::Micros Sample(size_t bytes_moved, dbase::Rng& rng) const;
};

// A simulated remote service. Handle() must be thread-safe: communication
// engines call it concurrently from their cooperative runtimes.
class Service {
 public:
  virtual ~Service() = default;
  virtual HttpResponse Handle(const HttpRequest& request, const Uri& uri) = 0;
};

// Result of carrying a request to a service: the response plus the latency
// the network+service would have added.
struct MeshCallResult {
  HttpResponse response;
  dbase::Micros latency_us = 0;
};

class ServiceMesh {
 public:
  ServiceMesh() : rng_(0xD00DFEEDULL) {}

  // Registers a service under a host name ("storage.internal"). Replaces any
  // existing registration.
  void Register(const std::string& host, std::shared_ptr<Service> service,
                LatencyModel latency = LatencyModel{});

  bool HasHost(const std::string& host) const;

  // Carries out a sanitized request: routes on the URI host, invokes the
  // service, and samples the latency model. Unknown hosts yield 502.
  MeshCallResult Call(const SanitizedRequest& request);

  uint64_t total_calls() const { return total_calls_.load(std::memory_order_relaxed); }

 private:
  struct Endpoint {
    std::shared_ptr<Service> service;
    LatencyModel latency;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Endpoint> endpoints_;
  dbase::Rng rng_;  // Guarded by mu_.
  std::atomic<uint64_t> total_calls_{0};
};

}  // namespace dhttp

#endif  // SRC_HTTP_SERVICE_MESH_H_
