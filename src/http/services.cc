#include "src/http/services.h"

#include <algorithm>

#include "src/base/rng.h"
#include "src/base/string_util.h"

namespace dhttp {

// ---------------------------------------------------------------- ObjectStore

HttpResponse ObjectStoreService::Handle(const HttpRequest& request, const Uri& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (request.method) {
    case Method::kGet: {
      auto it = objects_.find(uri.path);
      if (it == objects_.end()) {
        return HttpResponse::NotFound("no such object: " + uri.path);
      }
      return HttpResponse::Ok(it->second);
    }
    case Method::kPut:
    case Method::kPost:
      objects_[uri.path] = request.body;
      return HttpResponse::Make(201, "Created", "");
    case Method::kDelete: {
      const size_t erased = objects_.erase(uri.path);
      if (erased == 0) {
        return HttpResponse::NotFound("no such object: " + uri.path);
      }
      return HttpResponse::Make(204, "No Content", "");
    }
  }
  return HttpResponse::BadRequest("unsupported method");
}

void ObjectStoreService::PutObject(const std::string& path, std::string data) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_[path] = std::move(data);
}

bool ObjectStoreService::HasObject(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.count(path) > 0;
}

size_t ObjectStoreService::ObjectSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(path);
  return it == objects_.end() ? 0 : it->second.size();
}

size_t ObjectStoreService::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

// ----------------------------------------------------------------------- Auth

HttpResponse AuthService::Handle(const HttpRequest& request, const Uri& uri) {
  if (request.method != Method::kPost || uri.path != "/authorize") {
    return HttpResponse::BadRequest("auth service expects POST /authorize");
  }
  if (std::string(dbase::TrimWhitespace(request.body)) != expected_token_) {
    return HttpResponse::Unauthorized("invalid token");
  }
  std::string body;
  for (const auto& url : shard_urls_) {
    body += url;
    body += '\n';
  }
  return HttpResponse::Ok(std::move(body));
}

// ------------------------------------------------------------------ LogShard

std::vector<std::string> LogShardService::GenerateLines(const std::string& shard_name, int count,
                                                        uint64_t seed) {
  static const char* kLevels[] = {"INFO", "WARN", "ERROR", "DEBUG"};
  static const char* kEvents[] = {"request served", "cache miss",    "retry scheduled",
                                  "connection reset", "payment ok",  "user login",
                                  "gc pause",         "disk flush"};
  dbase::Rng rng(seed);
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    lines.push_back(dbase::StrFormat(
        "%s ts=%08d level=%s event=\"%s\" latency_us=%llu", shard_name.c_str(), i,
        kLevels[rng.NextBounded(4)], kEvents[rng.NextBounded(8)],
        static_cast<unsigned long long>(rng.NextBounded(50000))));
  }
  return lines;
}

HttpResponse LogShardService::Handle(const HttpRequest& request, const Uri&) {
  if (request.method != Method::kGet) {
    return HttpResponse::BadRequest("log shard expects GET");
  }
  std::string body;
  for (const auto& line : lines_) {
    body += line;
    body += '\n';
  }
  return HttpResponse::Ok(std::move(body));
}

// ------------------------------------------------------------------------ LLM

LlmService::LlmService(std::string fallback_completion)
    : fallback_(std::move(fallback_completion)) {}

void LlmService::AddCannedCompletion(std::string prompt_substring, std::string completion) {
  canned_.emplace_back(std::move(prompt_substring), std::move(completion));
}

HttpResponse LlmService::Handle(const HttpRequest& request, const Uri&) {
  if (request.method != Method::kPost) {
    return HttpResponse::BadRequest("LLM service expects POST");
  }
  for (const auto& [pattern, completion] : canned_) {
    if (request.body.find(pattern) != std::string::npos) {
      return HttpResponse::Ok(completion);
    }
  }
  return HttpResponse::Ok(fallback_);
}

// ------------------------------------------------------------------- Tiny DB

void KeyValueDbService::CreateTable(const std::string& name, std::vector<std::string> columns) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[name] = Table{std::move(columns), {}};
}

void KeyValueDbService::InsertRow(const std::string& table, std::vector<std::string> values) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it != tables_.end() && values.size() == it->second.columns.size()) {
    it->second.rows.push_back(std::move(values));
  }
}

namespace {
// Case-insensitive keyword scan helpers for the micro-SQL grammar.
size_t FindKeyword(const std::string& upper, const std::string& keyword) {
  return upper.find(keyword);
}
}  // namespace

dbase::Result<std::string> KeyValueDbService::ExecuteQuery(const std::string& query) const {
  using dbase::InvalidArgument;

  const std::string upper = dbase::ToUpperAscii(query);
  const size_t select_pos = FindKeyword(upper, "SELECT ");
  const size_t from_pos = FindKeyword(upper, " FROM ");
  if (select_pos != 0 || from_pos == std::string::npos) {
    return InvalidArgument("query must be SELECT ... FROM ...");
  }

  // Column list.
  std::vector<std::string> wanted;
  for (auto col : dbase::SplitString(
           std::string_view(query).substr(7, from_pos - 7), ',')) {
    wanted.emplace_back(dbase::TrimWhitespace(col));
  }

  // Table name runs until WHERE / LIMIT / end.
  size_t table_end = upper.size();
  const size_t where_pos = FindKeyword(upper, " WHERE ");
  const size_t limit_pos = FindKeyword(upper, " LIMIT ");
  if (where_pos != std::string::npos) {
    table_end = std::min(table_end, where_pos);
  }
  if (limit_pos != std::string::npos) {
    table_end = std::min(table_end, limit_pos);
  }
  std::string table_name(
      dbase::TrimWhitespace(std::string_view(query).substr(from_pos + 6, table_end - from_pos - 6)));
  // Strip a trailing semicolon.
  if (!table_name.empty() && table_name.back() == ';') {
    table_name.pop_back();
  }

  // Optional WHERE col = 'value'.
  std::string where_col;
  std::string where_val;
  if (where_pos != std::string::npos) {
    size_t clause_end = limit_pos != std::string::npos ? limit_pos : query.size();
    std::string clause(
        dbase::TrimWhitespace(std::string_view(query).substr(where_pos + 7, clause_end - where_pos - 7)));
    if (!clause.empty() && clause.back() == ';') {
      clause.pop_back();
    }
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("WHERE clause must be col = 'value'");
    }
    where_col = std::string(dbase::TrimWhitespace(std::string_view(clause).substr(0, eq)));
    std::string value(dbase::TrimWhitespace(std::string_view(clause).substr(eq + 1)));
    if (value.size() >= 2 && value.front() == '\'' && value.back() == '\'') {
      value = value.substr(1, value.size() - 2);
    }
    where_val = value;
  }

  // Optional LIMIT n.
  int64_t limit = -1;
  if (limit_pos != std::string::npos) {
    std::string limit_str(dbase::TrimWhitespace(std::string_view(query).substr(limit_pos + 7)));
    if (!limit_str.empty() && limit_str.back() == ';') {
      limit_str.pop_back();
    }
    if (!dbase::ParseInt64(dbase::TrimWhitespace(limit_str), &limit) || limit < 0) {
      return InvalidArgument("invalid LIMIT");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return dbase::NotFound("no such table: " + table_name);
  }
  const Table& table = it->second;

  auto col_index = [&](const std::string& name) -> int {
    if (name == "*") {
      return -2;
    }
    for (size_t i = 0; i < table.columns.size(); ++i) {
      if (dbase::EqualsIgnoreCase(table.columns[i], name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  std::vector<int> indices;
  for (const auto& w : wanted) {
    const int idx = col_index(w);
    if (idx == -1) {
      return InvalidArgument("no such column: " + w);
    }
    if (idx == -2) {
      for (size_t i = 0; i < table.columns.size(); ++i) {
        indices.push_back(static_cast<int>(i));
      }
    } else {
      indices.push_back(idx);
    }
  }

  int where_idx = -1;
  if (!where_col.empty()) {
    where_idx = col_index(where_col);
    if (where_idx < 0) {
      return InvalidArgument("no such column in WHERE: " + where_col);
    }
  }

  std::string out;
  int64_t emitted = 0;
  for (const auto& row : table.rows) {
    if (where_idx >= 0 && row[static_cast<size_t>(where_idx)] != where_val) {
      continue;
    }
    if (limit >= 0 && emitted >= limit) {
      break;
    }
    for (size_t i = 0; i < indices.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += row[static_cast<size_t>(indices[i])];
    }
    out += '\n';
    ++emitted;
  }
  return out;
}

HttpResponse KeyValueDbService::Handle(const HttpRequest& request, const Uri& uri) {
  if (request.method != Method::kPost || uri.path != "/query") {
    return HttpResponse::BadRequest("db expects POST /query");
  }
  auto result = ExecuteQuery(request.body);
  if (!result.ok()) {
    return HttpResponse::BadRequest(result.status().ToString());
  }
  return HttpResponse::Ok(std::move(result).value());
}

// ----------------------------------------------------------------------- Echo

HttpResponse EchoService::Handle(const HttpRequest& request, const Uri&) {
  return HttpResponse::Ok(request.body);
}

}  // namespace dhttp
