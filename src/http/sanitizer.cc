#include "src/http/sanitizer.h"

#include "src/http/http_parser.h"

namespace dhttp {

dbase::Result<SanitizedRequest> SanitizeRequest(std::string_view raw) {
  // Size guard before any parsing: a malicious function could emit an
  // arbitrarily large item; the engine bounds what it will even look at.
  constexpr size_t kMaxRequestBytes = 64 * 1024 * 1024;
  if (raw.size() > kMaxRequestBytes) {
    return dbase::InvalidArgument("request exceeds maximum size");
  }

  ASSIGN_OR_RETURN(HttpRequest request, ParseRequest(raw));

  // The target must be an absolute URI so the engine can identify the host
  // to connect to; relative targets could be used to confuse routing.
  ASSIGN_OR_RETURN(Uri uri, ParseUri(request.target));

  // Reject embedded NUL and control characters in the path and query —
  // they have no legitimate use and are classic header-smuggling vectors.
  for (char c : request.target) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return dbase::InvalidArgument("control character in request target");
    }
  }
  for (const auto& [name, value] : request.headers.entries()) {
    for (char c : value) {
      if (c == '\r' || c == '\n' || c == '\0') {
        return dbase::InvalidArgument("control character in header value");
      }
    }
    (void)name;  // Field names were validated by the parser.
  }

  SanitizedRequest out;
  out.request = std::move(request);
  out.uri = std::move(uri);
  return out;
}

}  // namespace dhttp
