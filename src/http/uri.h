// URI splitting for the HTTP communication function. Only the subset needed
// to identify the remote host and route within it (§6.3): scheme, host,
// optional port, path, optional query.
#ifndef SRC_HTTP_URI_H_
#define SRC_HTTP_URI_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace dhttp {

struct Uri {
  std::string scheme;  // "http" or "https".
  std::string host;    // Domain name or IPv4 literal.
  uint16_t port = 80;
  std::string path;   // Always begins with '/'.
  std::string query;  // Without the leading '?'; may be empty.
};

// Parses an absolute URI ("http://host[:port]/path[?query]").
dbase::Result<Uri> ParseUri(std::string_view input);

// True if the host is a syntactically valid domain name or IPv4 address —
// the validation the paper's communication engine performs on the first
// part of the URI.
bool IsValidHost(std::string_view host);

}  // namespace dhttp

#endif  // SRC_HTTP_URI_H_
