#include "src/http/http_parser.h"

#include "src/base/string_util.h"

namespace dhttp {
namespace {

using dbase::InvalidArgument;
using dbase::Result;

struct HeadSplit {
  std::string_view start_line;
  std::string_view header_block;  // May be empty.
  std::string_view body;
};

Result<HeadSplit> SplitMessage(std::string_view wire) {
  const size_t line_end = wire.find("\r\n");
  if (line_end == std::string_view::npos) {
    return InvalidArgument("missing CRLF after start line");
  }
  HeadSplit out;
  out.start_line = wire.substr(0, line_end);
  const size_t head_end = wire.find("\r\n\r\n", line_end);
  if (head_end == std::string_view::npos) {
    return InvalidArgument("missing blank line terminating header block");
  }
  // head_end == line_end when the blank line directly follows the start
  // line (empty header block).
  if (head_end > line_end) {
    out.header_block = wire.substr(line_end + 2, head_end - line_end - 2);
  }
  out.body = wire.substr(head_end + 4);
  return out;
}

bool IsValidHeaderName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    const bool token_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!token_char) {
      return false;
    }
  }
  return true;
}

dbase::Status ParseHeaders(std::string_view block, HeaderList* headers) {
  if (block.empty()) {
    return dbase::OkStatus();
  }
  for (std::string_view line : dbase::SplitString(block, "\r\n")) {
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgument("header line missing ':'");
    }
    std::string_view name = line.substr(0, colon);
    if (!IsValidHeaderName(name)) {
      return InvalidArgument("invalid header field name");
    }
    std::string_view value = dbase::TrimWhitespace(line.substr(colon + 1));
    headers->Add(std::string(name), std::string(value));
  }
  return dbase::OkStatus();
}

// Folds one Content-Length header value into the accumulated framing
// length — the single home of the RFC 9112 §6.3 policy shared by the full
// parser and the incremental scanner: a value that doesn't parse (garbage,
// or past 2^64) fails closed (treating it as 0 would sail past body caps
// downstream — and per RFC 9110 §8.6 that's a 400, not a 413), duplicate
// headers with conflicting values are rejected, identical repeats are
// tolerated.
dbase::Status AccumulateContentLength(std::string_view value, bool* seen, uint64_t* length) {
  uint64_t parsed = 0;
  if (!dbase::ParseUint64(dbase::TrimWhitespace(value), &parsed)) {
    return InvalidArgument("unparseable Content-Length");
  }
  if (*seen && parsed != *length) {
    return InvalidArgument("conflicting duplicate Content-Length headers");
  }
  *seen = true;
  *length = parsed;
  return dbase::OkStatus();
}

// Returns the expected body length, or error. A missing Content-Length is
// interpreted as zero-length body — and because of that default, a
// Transfer-Encoding header MUST be rejected (RFC 9112 §6.1): framing a
// chunked message as zero-body would leave its body bytes in the buffer to
// be parsed as the next pipelined request (request smuggling/desync).
Result<uint64_t> ExpectedBodyLength(const HeaderList& headers) {
  if (headers.Has("Transfer-Encoding")) {
    return InvalidArgument("Transfer-Encoding is not supported");
  }
  uint64_t length = 0;
  bool seen = false;
  for (const auto& [name, value] : headers.entries()) {
    if (!dbase::EqualsIgnoreCase(name, "Content-Length")) {
      continue;
    }
    RETURN_IF_ERROR(AccumulateContentLength(value, &seen, &length));
  }
  return length;
}

dbase::Status CheckBody(std::string_view body, const HeaderList& headers) {
  ASSIGN_OR_RETURN(uint64_t expected, ExpectedBodyLength(headers));
  if (body.size() != expected) {
    return InvalidArgument(dbase::StrFormat("body length %zu does not match Content-Length %llu",
                                            body.size(),
                                            static_cast<unsigned long long>(expected)));
  }
  return dbase::OkStatus();
}

}  // namespace

Result<std::optional<MessageHead>> ScanMessageHead(std::string_view buffer,
                                                   size_t max_head_bytes) {
  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // No terminator within the first max_head_bytes means the complete head
    // (terminator included) can only end past the cap — fail now instead of
    // buffering an unbounded header block.
    if (buffer.size() >= max_head_bytes) {
      return dbase::ResourceExhausted("header block too large");
    }
    return std::optional<MessageHead>{};
  }
  if (head_end + 4 > max_head_bytes) {
    return dbase::ResourceExhausted("header block too large");
  }

  MessageHead head;
  head.head_bytes = head_end + 4;
  bool seen_length = false;
  for (std::string_view line : dbase::SplitString(buffer.substr(0, head_end), "\r\n")) {
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;  // Start line, or a malformed header left to ParseRequest.
    }
    const std::string_view name = dbase::TrimWhitespace(line.substr(0, colon));
    // Unimplemented framing must fail here, not default to zero-body: a
    // chunked message scanned as zero-body would desync the pipelined
    // stream (its body becomes the "next request" — request smuggling).
    if (dbase::EqualsIgnoreCase(name, "Transfer-Encoding")) {
      return InvalidArgument("Transfer-Encoding is not supported");
    }
    if (!dbase::EqualsIgnoreCase(name, "Content-Length")) {
      continue;
    }
    RETURN_IF_ERROR(AccumulateContentLength(line.substr(colon + 1), &seen_length,
                                            &head.content_length));
  }
  return std::optional<MessageHead>(head);
}

Result<HttpRequest> ParseRequest(std::string_view wire) {
  ASSIGN_OR_RETURN(HeadSplit parts, SplitMessage(wire));

  // Request line: METHOD SP TARGET SP VERSION. Exactly two spaces — the
  // paper's sanitizer relies only on this first protocol line (§6.3).
  auto tokens = dbase::SplitString(parts.start_line, ' ');
  if (tokens.size() != 3) {
    return InvalidArgument("request line must be 'METHOD target HTTP/x.y'");
  }
  auto method = MethodFromName(tokens[0]);
  if (!method.has_value()) {
    return InvalidArgument("unsupported HTTP method: " + std::string(tokens[0]));
  }
  if (tokens[1].empty()) {
    return InvalidArgument("empty request target");
  }
  if (tokens[2] != "HTTP/1.1" && tokens[2] != "HTTP/1.0") {
    return InvalidArgument("unsupported HTTP version: " + std::string(tokens[2]));
  }

  HttpRequest req;
  req.method = *method;
  req.target = std::string(tokens[1]);
  req.version = std::string(tokens[2]);
  RETURN_IF_ERROR(ParseHeaders(parts.header_block, &req.headers));
  RETURN_IF_ERROR(CheckBody(parts.body, req.headers));
  req.body = std::string(parts.body);
  return req;
}

Result<HttpResponse> ParseResponse(std::string_view wire) {
  ASSIGN_OR_RETURN(HeadSplit parts, SplitMessage(wire));

  // Status line: VERSION SP CODE SP REASON (reason may contain spaces).
  const size_t first_sp = parts.start_line.find(' ');
  if (first_sp == std::string_view::npos) {
    return InvalidArgument("status line missing spaces");
  }
  const size_t second_sp = parts.start_line.find(' ', first_sp + 1);
  if (second_sp == std::string_view::npos) {
    return InvalidArgument("status line missing reason phrase separator");
  }
  std::string_view version = parts.start_line.substr(0, first_sp);
  std::string_view code_str = parts.start_line.substr(first_sp + 1, second_sp - first_sp - 1);
  std::string_view reason = parts.start_line.substr(second_sp + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return InvalidArgument("unsupported HTTP version in status line");
  }
  uint64_t code = 0;
  if (!dbase::ParseUint64(code_str, &code) || code < 100 || code > 599) {
    return InvalidArgument("invalid status code");
  }

  HttpResponse resp;
  resp.version = std::string(version);
  resp.status_code = static_cast<int>(code);
  resp.reason = std::string(reason);
  RETURN_IF_ERROR(ParseHeaders(parts.header_block, &resp.headers));
  RETURN_IF_ERROR(CheckBody(parts.body, resp.headers));
  resp.body = std::string(parts.body);
  return resp;
}

}  // namespace dhttp
