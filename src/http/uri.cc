#include "src/http/uri.h"

#include <cctype>

#include "src/base/string_util.h"

namespace dhttp {
namespace {

bool IsValidIpv4(std::string_view host) {
  auto parts = dbase::SplitString(host, '.');
  if (parts.size() != 4) {
    return false;
  }
  for (auto part : parts) {
    uint64_t value = 0;
    if (part.empty() || part.size() > 3 || !dbase::ParseUint64(part, &value) || value > 255) {
      return false;
    }
  }
  return true;
}

bool IsValidDomainLabel(std::string_view label) {
  if (label.empty() || label.size() > 63) {
    return false;
  }
  if (label.front() == '-' || label.back() == '-') {
    return false;
  }
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

bool IsValidDomainName(std::string_view host) {
  if (host.empty() || host.size() > 253) {
    return false;
  }
  for (auto label : dbase::SplitString(host, '.')) {
    if (!IsValidDomainLabel(label)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool IsValidHost(std::string_view host) {
  // All-numeric hosts must be well-formed IPv4 literals; "999.1.2.3.4" is
  // neither an address nor a plausible domain, only a confusion vector.
  bool numeric = !host.empty();
  for (char c : host) {
    if ((c < '0' || c > '9') && c != '.') {
      numeric = false;
      break;
    }
  }
  if (numeric) {
    return IsValidIpv4(host);
  }
  return IsValidDomainName(host);
}

dbase::Result<Uri> ParseUri(std::string_view input) {
  using dbase::InvalidArgument;

  Uri uri;
  const size_t scheme_end = input.find("://");
  if (scheme_end == std::string_view::npos) {
    return InvalidArgument("URI missing scheme");
  }
  uri.scheme = dbase::ToLowerAscii(input.substr(0, scheme_end));
  if (uri.scheme != "http" && uri.scheme != "https") {
    return InvalidArgument("unsupported URI scheme: " + uri.scheme);
  }
  uri.port = uri.scheme == "https" ? 443 : 80;

  std::string_view rest = input.substr(scheme_end + 3);
  if (rest.empty()) {
    return InvalidArgument("URI missing host");
  }

  // Authority ends at the first '/' or '?'.
  size_t authority_end = rest.find_first_of("/?");
  std::string_view authority =
      authority_end == std::string_view::npos ? rest : rest.substr(0, authority_end);
  std::string_view path_and_query =
      authority_end == std::string_view::npos ? std::string_view() : rest.substr(authority_end);

  const size_t colon = authority.rfind(':');
  std::string_view host = authority;
  if (colon != std::string_view::npos) {
    host = authority.substr(0, colon);
    uint64_t port = 0;
    if (!dbase::ParseUint64(authority.substr(colon + 1), &port) || port == 0 || port > 65535) {
      return InvalidArgument("invalid port in URI");
    }
    uri.port = static_cast<uint16_t>(port);
  }
  if (!IsValidHost(host)) {
    return InvalidArgument("invalid host in URI: " + std::string(host));
  }
  uri.host = dbase::ToLowerAscii(host);

  if (path_and_query.empty() || path_and_query.front() == '?') {
    uri.path = "/";
    if (!path_and_query.empty()) {
      uri.query = std::string(path_and_query.substr(1));
    }
    return uri;
  }
  const size_t question = path_and_query.find('?');
  if (question == std::string_view::npos) {
    uri.path = std::string(path_and_query);
  } else {
    uri.path = std::string(path_and_query.substr(0, question));
    uri.query = std::string(path_and_query.substr(question + 1));
  }
  return uri;
}

}  // namespace dhttp
