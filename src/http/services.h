// Simulated cloud services used by the paper's applications:
//  - ObjectStoreService: S3-like bucket (log processing inputs, SSB data,
//    image pipeline inputs) — §7.4, §7.6, §7.7.
//  - AuthService: token → list of authorized log-shard endpoints (Fig. 3).
//  - LogShardService: serves log chunks for the log-processing app (Fig. 3).
//  - LlmService: inference endpoint with canned completions + configurable
//    latency (Text2SQL, §7.7; the paper used Gemma-3-4b on an H100).
//  - KeyValueDbService: tiny SQL-over-HTTP database (Text2SQL's SQLite).
//  - EchoService: testing aid.
#ifndef SRC_HTTP_SERVICES_H_
#define SRC_HTTP_SERVICES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/http/service_mesh.h"

namespace dhttp {

// S3-like object store: GET /bucket/key, PUT /bucket/key, DELETE /bucket/key.
// GET on a missing key returns 404 (exercises the paper's fault-handling
// path, §4.4).
class ObjectStoreService : public Service {
 public:
  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;

  // Direct (non-HTTP) access for test setup and data generators.
  void PutObject(const std::string& path, std::string data);
  bool HasObject(const std::string& path) const;
  size_t ObjectSize(const std::string& path) const;
  size_t object_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
};

// Auth service for the log-processing app: POST /authorize with a token
// body returns a newline-separated list of authorized shard URLs, or 401.
class AuthService : public Service {
 public:
  AuthService(std::string expected_token, std::vector<std::string> shard_urls)
      : expected_token_(std::move(expected_token)), shard_urls_(std::move(shard_urls)) {}

  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;

 private:
  std::string expected_token_;
  std::vector<std::string> shard_urls_;
};

// Log shard: GET /logs returns this shard's chunk of log lines.
class LogShardService : public Service {
 public:
  explicit LogShardService(std::vector<std::string> lines) : lines_(std::move(lines)) {}

  // Generates `count` deterministic log lines tagged with the shard name.
  static std::vector<std::string> GenerateLines(const std::string& shard_name, int count,
                                                uint64_t seed);

  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;

 private:
  std::vector<std::string> lines_;
};

// LLM endpoint: POST /v1/completions with a prompt body. Responds with a
// completion chosen by substring-matching registered prompt patterns
// (deterministic stand-in for the paper's Gemma-3-4b-it on H100 NVL).
class LlmService : public Service {
 public:
  // If no pattern matches, responds with fallback_completion.
  explicit LlmService(std::string fallback_completion = "SELECT 1;");

  void AddCannedCompletion(std::string prompt_substring, std::string completion);

  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;

 private:
  std::string fallback_;
  std::vector<std::pair<std::string, std::string>> canned_;
};

// Minimal SQL-over-HTTP database: POST /query with a query of the grammar
//   SELECT <col>[, <col>...] FROM <table> [WHERE <col> = '<value>'] [LIMIT n]
// Rows are returned as CSV. This is the Text2SQL workflow's SQLite stand-in;
// the full analytical engine lives in src/sql.
class KeyValueDbService : public Service {
 public:
  // A table is a header row (column names) plus string rows.
  void CreateTable(const std::string& name, std::vector<std::string> columns);
  void InsertRow(const std::string& table, std::vector<std::string> values);

  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;

  // Executes the query directly (also used by unit tests).
  dbase::Result<std::string> ExecuteQuery(const std::string& query) const;

 private:
  struct Table {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
};

// Responds 200 with the request body (round-trip tests, fetch benchmarks).
class EchoService : public Service {
 public:
  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override;
};

// Adapts a lambda to a Service.
class LambdaService : public Service {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&, const Uri&)>;
  explicit LambdaService(Handler handler) : handler_(std::move(handler)) {}
  HttpResponse Handle(const HttpRequest& request, const Uri& uri) override {
    return handler_(request, uri);
  }

 private:
  Handler handler_;
};

}  // namespace dhttp

#endif  // SRC_HTTP_SERVICES_H_
