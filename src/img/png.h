// Minimal PNG encoder (and a structural decoder for tests). The encoder
// emits fully spec-compliant PNGs using zlib "stored" (uncompressed) deflate
// blocks with correct CRC-32 and Adler-32 checksums; the decoder handles
// exactly the subset the encoder produces, so round-trips validate the whole
// container format.
#ifndef SRC_IMG_PNG_H_
#define SRC_IMG_PNG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/img/qoi.h"

namespace dimg {

// CRC-32 (IEEE, reflected, as used by PNG chunks).
uint32_t Crc32(std::string_view data);
uint32_t Crc32(uint32_t seed, std::string_view data);

// Adler-32 (zlib trailer).
uint32_t Adler32(std::string_view data);

// Encodes 8-bit RGB (color type 2) or RGBA (color type 6), filter 0 rows.
dbase::Result<std::string> PngEncode(const Image& image);

// Decodes PNGs produced by PngEncode (stored deflate, filter 0) and fully
// verifies signature, chunk CRCs, zlib framing, and Adler-32.
dbase::Result<Image> PngDecodeStored(std::string_view data);

// Convenience for the image-compression application: QOI bytes in, PNG
// bytes out (§7.6's 18 kB QOI → PNG task).
dbase::Result<std::string> TranscodeQoiToPng(std::string_view qoi_bytes);

}  // namespace dimg

#endif  // SRC_IMG_PNG_H_
