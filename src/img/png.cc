#include "src/img/png.h"

#include <array>
#include <cstring>

namespace dimg {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

void PutU32Be(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v >> 24));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

uint32_t GetU32Be(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

// Appends a PNG chunk: length, type, data, CRC(type+data).
void AppendChunk(std::string* out, const char type[4], std::string_view data) {
  PutU32Be(out, static_cast<uint32_t>(data.size()));
  const size_t crc_start = out->size();
  out->append(type, 4);
  out->append(data);
  const uint32_t crc =
      Crc32(std::string_view(out->data() + crc_start, out->size() - crc_start));
  PutU32Be(out, crc);
}

constexpr char kPngSignature[8] = {'\x89', 'P', 'N', 'G', '\r', '\n', '\x1a', '\n'};

// zlib stream with deflate "stored" blocks around `raw`.
std::string ZlibStore(std::string_view raw) {
  std::string out;
  out.push_back('\x78');  // CMF: deflate, 32K window.
  out.push_back('\x01');  // FLG: check bits, no dict, fastest.
  size_t offset = 0;
  do {
    const size_t block = std::min<size_t>(raw.size() - offset, 65535);
    const bool final = offset + block == raw.size();
    out.push_back(final ? '\x01' : '\x00');  // BFINAL + BTYPE=00 (stored).
    const uint16_t len = static_cast<uint16_t>(block);
    const uint16_t nlen = static_cast<uint16_t>(~len);
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(nlen & 0xff));
    out.push_back(static_cast<char>(nlen >> 8));
    out.append(raw.substr(offset, block));
    offset += block;
  } while (offset < raw.size());
  PutU32Be(&out, Adler32(raw));
  return out;
}

}  // namespace

uint32_t Crc32(uint32_t seed, std::string_view data) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = CrcTable()[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return Crc32(0, data); }

uint32_t Adler32(std::string_view data) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = 1;
  uint32_t b = 0;
  for (unsigned char byte : data) {
    a = (a + byte) % kMod;
    b = (b + a) % kMod;
  }
  return (b << 16) | a;
}

dbase::Result<std::string> PngEncode(const Image& image) {
  if (image.channels != 3 && image.channels != 4) {
    return dbase::InvalidArgument("PNG encoder supports RGB and RGBA only");
  }
  if (!image.SizeConsistent()) {
    return dbase::InvalidArgument("image pixel buffer size mismatch");
  }
  std::string out;
  out.append(kPngSignature, sizeof(kPngSignature));

  // IHDR.
  std::string ihdr;
  PutU32Be(&ihdr, image.width);
  PutU32Be(&ihdr, image.height);
  ihdr.push_back('\x08');                                   // Bit depth.
  ihdr.push_back(image.channels == 4 ? '\x06' : '\x02');    // Color type.
  ihdr.push_back('\x00');                                   // Compression.
  ihdr.push_back('\x00');                                   // Filter method.
  ihdr.push_back('\x00');                                   // No interlace.
  AppendChunk(&out, "IHDR", ihdr);

  // Filtered scanlines: filter byte 0 (None) + raw row.
  const size_t row_bytes = static_cast<size_t>(image.width) * image.channels;
  std::string raw;
  raw.reserve((row_bytes + 1) * image.height);
  for (uint32_t y = 0; y < image.height; ++y) {
    raw.push_back('\x00');
    raw.append(reinterpret_cast<const char*>(image.pixels.data()) + y * row_bytes, row_bytes);
  }
  AppendChunk(&out, "IDAT", ZlibStore(raw));
  AppendChunk(&out, "IEND", "");
  return out;
}

dbase::Result<Image> PngDecodeStored(std::string_view data) {
  using dbase::InvalidArgument;
  if (data.size() < 8 || std::memcmp(data.data(), kPngSignature, 8) != 0) {
    return InvalidArgument("bad PNG signature");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t pos = 8;

  Image image;
  std::string idat;
  bool saw_ihdr = false;
  bool saw_iend = false;

  while (pos + 12 <= data.size() && !saw_iend) {
    const uint32_t length = GetU32Be(p + pos);
    if (pos + 12 + length > data.size()) {
      return InvalidArgument("truncated PNG chunk");
    }
    const std::string_view type = data.substr(pos + 4, 4);
    const std::string_view payload = data.substr(pos + 8, length);
    const uint32_t expected_crc = GetU32Be(p + pos + 8 + length);
    const uint32_t actual_crc = Crc32(data.substr(pos + 4, 4 + length));
    if (expected_crc != actual_crc) {
      return InvalidArgument("PNG chunk CRC mismatch in " + std::string(type));
    }
    if (type == "IHDR") {
      if (length != 13) {
        return InvalidArgument("IHDR length must be 13");
      }
      image.width = GetU32Be(p + pos + 8);
      image.height = GetU32Be(p + pos + 12);
      const uint8_t bit_depth = payload[8];
      const uint8_t color_type = payload[9];
      if (bit_depth != 8 || (color_type != 2 && color_type != 6)) {
        return InvalidArgument("decoder supports 8-bit RGB/RGBA only");
      }
      image.channels = color_type == 6 ? 4 : 3;
      saw_ihdr = true;
    } else if (type == "IDAT") {
      idat.append(payload);
    } else if (type == "IEND") {
      saw_iend = true;
    }
    pos += 12 + length;
  }
  if (!saw_ihdr || !saw_iend) {
    return InvalidArgument("PNG missing IHDR or IEND");
  }

  // Un-zlib (stored blocks only).
  if (idat.size() < 6) {
    return InvalidArgument("IDAT too short for zlib stream");
  }
  if ((static_cast<uint8_t>(idat[0]) & 0x0F) != 8) {
    return InvalidArgument("zlib CM must be deflate");
  }
  std::string raw;
  size_t zpos = 2;
  while (true) {
    if (zpos + 5 > idat.size() - 4) {
      return InvalidArgument("truncated deflate block header");
    }
    const uint8_t header = static_cast<uint8_t>(idat[zpos]);
    if ((header & 0x06) != 0) {
      return InvalidArgument("decoder supports stored deflate blocks only");
    }
    const uint16_t len = static_cast<uint16_t>(static_cast<uint8_t>(idat[zpos + 1]) |
                                               (static_cast<uint8_t>(idat[zpos + 2]) << 8));
    const uint16_t nlen = static_cast<uint16_t>(static_cast<uint8_t>(idat[zpos + 3]) |
                                                (static_cast<uint8_t>(idat[zpos + 4]) << 8));
    if (static_cast<uint16_t>(~len) != nlen) {
      return InvalidArgument("stored block LEN/NLEN mismatch");
    }
    if (zpos + 5 + len > idat.size() - 4) {
      return InvalidArgument("truncated stored block payload");
    }
    raw.append(idat, zpos + 5, len);
    zpos += 5 + len;
    if ((header & 0x01) != 0) {
      break;  // BFINAL.
    }
  }
  const uint32_t adler = GetU32Be(reinterpret_cast<const uint8_t*>(idat.data()) + zpos);
  if (adler != Adler32(raw)) {
    return InvalidArgument("zlib Adler-32 mismatch");
  }

  // De-filter (only filter 0 rows are produced by our encoder).
  const size_t row_bytes = static_cast<size_t>(image.width) * image.channels;
  if (raw.size() != (row_bytes + 1) * image.height) {
    return InvalidArgument("decompressed size does not match dimensions");
  }
  image.pixels.resize(row_bytes * image.height);
  for (uint32_t y = 0; y < image.height; ++y) {
    if (raw[y * (row_bytes + 1)] != 0) {
      return InvalidArgument("decoder supports filter 0 rows only");
    }
    std::memcpy(image.pixels.data() + y * row_bytes, raw.data() + y * (row_bytes + 1) + 1,
                row_bytes);
  }
  return image;
}

dbase::Result<std::string> TranscodeQoiToPng(std::string_view qoi_bytes) {
  ASSIGN_OR_RETURN(Image image, QoiDecode(qoi_bytes));
  return PngEncode(image);
}

}  // namespace dimg
