#include "src/img/qoi.h"

#include <cstring>

#include "src/base/rng.h"

namespace dimg {
namespace {

constexpr uint8_t kOpIndex = 0x00;  // 00xxxxxx
constexpr uint8_t kOpDiff = 0x40;   // 01xxxxxx
constexpr uint8_t kOpLuma = 0x80;   // 10xxxxxx
constexpr uint8_t kOpRun = 0xC0;    // 11xxxxxx
constexpr uint8_t kOpRgb = 0xFE;
constexpr uint8_t kOpRgba = 0xFF;
constexpr uint8_t kMask2 = 0xC0;

struct Px {
  uint8_t r = 0, g = 0, b = 0, a = 255;
  bool operator==(const Px& other) const {
    return r == other.r && g == other.g && b == other.b && a == other.a;
  }
};

int HashPx(const Px& p) { return (p.r * 3 + p.g * 5 + p.b * 7 + p.a * 11) % 64; }

void PutU32Be(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v >> 24));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

uint32_t GetU32Be(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

Image MakeTestImage(uint32_t width, uint32_t height, uint8_t channels, uint64_t seed) {
  Image image;
  image.width = width;
  image.height = height;
  image.channels = channels;
  image.pixels.resize(static_cast<size_t>(width) * height * channels);
  dbase::Rng rng(seed);
  // Gradient base + blocky structure + sparse noise: QOI's DIFF/RUN ops all
  // get exercised and the compression ratio resembles a natural image.
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      const size_t at = (static_cast<size_t>(y) * width + x) * channels;
      const uint8_t base_r = static_cast<uint8_t>((x * 255) / (width == 0 ? 1 : width));
      const uint8_t base_g = static_cast<uint8_t>((y * 255) / (height == 0 ? 1 : height));
      const uint8_t block = static_cast<uint8_t>(((x / 8 + y / 8) % 2) * 24);
      const bool noisy = rng.Bernoulli(0.02);
      image.pixels[at + 0] = static_cast<uint8_t>(base_r + block + (noisy ? rng.NextBounded(32) : 0));
      if (channels >= 2) {
        image.pixels[at + 1] = static_cast<uint8_t>(base_g + block);
      }
      if (channels >= 3) {
        image.pixels[at + 2] = static_cast<uint8_t>(128 + block);
      }
      if (channels == 4) {
        image.pixels[at + 3] = 255;
      }
    }
  }
  return image;
}

std::string QoiEncode(const Image& image) {
  std::string out;
  out.reserve(14 + image.PixelCount() / 2 + 8);
  out.append("qoif");
  PutU32Be(&out, image.width);
  PutU32Be(&out, image.height);
  out.push_back(static_cast<char>(image.channels));
  out.push_back(0);  // Colorspace: sRGB with linear alpha.

  Px index[64] = {};
  Px prev;
  int run = 0;
  const size_t px_count = image.PixelCount();
  for (size_t i = 0; i < px_count; ++i) {
    Px px;
    const uint8_t* at = image.pixels.data() + i * image.channels;
    px.r = at[0];
    px.g = image.channels >= 2 ? at[1] : at[0];
    px.b = image.channels >= 3 ? at[2] : at[0];
    px.a = image.channels == 4 ? at[3] : prev.a;

    if (px == prev) {
      ++run;
      if (run == 62 || i == px_count - 1) {
        out.push_back(static_cast<char>(kOpRun | (run - 1)));
        run = 0;
      }
      continue;
    }
    if (run > 0) {
      out.push_back(static_cast<char>(kOpRun | (run - 1)));
      run = 0;
    }

    const int hash = HashPx(px);
    if (index[hash] == px) {
      out.push_back(static_cast<char>(kOpIndex | hash));
    } else {
      index[hash] = px;
      if (px.a == prev.a) {
        const int8_t dr = static_cast<int8_t>(px.r - prev.r);
        const int8_t dg = static_cast<int8_t>(px.g - prev.g);
        const int8_t db = static_cast<int8_t>(px.b - prev.b);
        const int8_t dr_dg = static_cast<int8_t>(dr - dg);
        const int8_t db_dg = static_cast<int8_t>(db - dg);
        if (dr >= -2 && dr <= 1 && dg >= -2 && dg <= 1 && db >= -2 && db <= 1) {
          out.push_back(
              static_cast<char>(kOpDiff | ((dr + 2) << 4) | ((dg + 2) << 2) | (db + 2)));
        } else if (dg >= -32 && dg <= 31 && dr_dg >= -8 && dr_dg <= 7 && db_dg >= -8 &&
                   db_dg <= 7) {
          out.push_back(static_cast<char>(kOpLuma | (dg + 32)));
          out.push_back(static_cast<char>(((dr_dg + 8) << 4) | (db_dg + 8)));
        } else {
          out.push_back(static_cast<char>(kOpRgb));
          out.push_back(static_cast<char>(px.r));
          out.push_back(static_cast<char>(px.g));
          out.push_back(static_cast<char>(px.b));
        }
      } else {
        out.push_back(static_cast<char>(kOpRgba));
        out.push_back(static_cast<char>(px.r));
        out.push_back(static_cast<char>(px.g));
        out.push_back(static_cast<char>(px.b));
        out.push_back(static_cast<char>(px.a));
      }
    }
    prev = px;
  }

  // End marker: seven 0x00 bytes then 0x01.
  out.append(7, '\0');
  out.push_back('\x01');
  return out;
}

dbase::Result<Image> QoiDecode(std::string_view data) {
  using dbase::InvalidArgument;
  if (data.size() < 14 + 8) {
    return InvalidArgument("QOI data too short");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  if (std::memcmp(p, "qoif", 4) != 0) {
    return InvalidArgument("bad QOI magic");
  }
  Image image;
  image.width = GetU32Be(p + 4);
  image.height = GetU32Be(p + 8);
  image.channels = p[12];
  if (image.channels != 3 && image.channels != 4) {
    return InvalidArgument("QOI channels must be 3 or 4");
  }
  if (image.width == 0 || image.height == 0 ||
      image.PixelCount() > 512ull * 1024 * 1024) {
    return InvalidArgument("implausible QOI dimensions");
  }
  image.pixels.resize(image.PixelCount() * image.channels);

  Px index[64] = {};
  Px px;
  size_t pos = 14;
  const size_t chunk_end = data.size() - 8;
  size_t px_at = 0;
  const size_t px_count = image.PixelCount();

  while (px_at < px_count) {
    int run = 0;
    if (pos < chunk_end) {
      const uint8_t b0 = p[pos++];
      if (b0 == kOpRgb) {
        if (pos + 3 > chunk_end) {
          return InvalidArgument("truncated RGB op");
        }
        px.r = p[pos++];
        px.g = p[pos++];
        px.b = p[pos++];
      } else if (b0 == kOpRgba) {
        if (pos + 4 > chunk_end) {
          return InvalidArgument("truncated RGBA op");
        }
        px.r = p[pos++];
        px.g = p[pos++];
        px.b = p[pos++];
        px.a = p[pos++];
      } else if ((b0 & kMask2) == kOpIndex) {
        px = index[b0 & 0x3F];
      } else if ((b0 & kMask2) == kOpDiff) {
        px.r = static_cast<uint8_t>(px.r + ((b0 >> 4) & 0x03) - 2);
        px.g = static_cast<uint8_t>(px.g + ((b0 >> 2) & 0x03) - 2);
        px.b = static_cast<uint8_t>(px.b + (b0 & 0x03) - 2);
      } else if ((b0 & kMask2) == kOpLuma) {
        if (pos + 1 > chunk_end) {
          return InvalidArgument("truncated LUMA op");
        }
        const uint8_t b1 = p[pos++];
        const int dg = (b0 & 0x3F) - 32;
        px.r = static_cast<uint8_t>(px.r + dg - 8 + ((b1 >> 4) & 0x0F));
        px.g = static_cast<uint8_t>(px.g + dg);
        px.b = static_cast<uint8_t>(px.b + dg - 8 + (b1 & 0x0F));
      } else {  // kOpRun
        run = (b0 & 0x3F);
      }
      index[HashPx(px)] = px;
    } else {
      return InvalidArgument("QOI stream ended before all pixels were decoded");
    }

    for (int r = 0; r <= run && px_at < px_count; ++r, ++px_at) {
      uint8_t* at = image.pixels.data() + px_at * image.channels;
      at[0] = px.r;
      if (image.channels >= 2) {
        at[1] = px.g;
      }
      if (image.channels >= 3) {
        at[2] = px.b;
      }
      if (image.channels == 4) {
        at[3] = px.a;
      }
    }
  }

  // Validate the end marker.
  if (std::memcmp(data.data() + data.size() - 8, "\0\0\0\0\0\0\0\x01", 8) != 0) {
    return InvalidArgument("missing QOI end marker");
  }
  return image;
}

}  // namespace dimg
