// QOI ("Quite OK Image") codec — the paper's image-compression application
// transforms an 18 kB QOI image to PNG (§7.6). Implements the complete QOI
// spec (qoiformat.org): RGB/RGBA, INDEX/DIFF/LUMA/RUN ops, 64-entry hash
// index, 8-byte end marker.
#ifndef SRC_IMG_QOI_H_
#define SRC_IMG_QOI_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace dimg {

struct Image {
  uint32_t width = 0;
  uint32_t height = 0;
  uint8_t channels = 4;  // 3 = RGB, 4 = RGBA.
  std::vector<uint8_t> pixels;  // Row-major, `channels` bytes per pixel.

  size_t PixelCount() const { return static_cast<size_t>(width) * height; }
  bool SizeConsistent() const { return pixels.size() == PixelCount() * channels; }

  bool operator==(const Image& other) const = default;
};

// Deterministic procedural test image (soft gradients + structured noise —
// compresses like a natural image, not like random bytes).
Image MakeTestImage(uint32_t width, uint32_t height, uint8_t channels, uint64_t seed);

std::string QoiEncode(const Image& image);
dbase::Result<Image> QoiDecode(std::string_view data);

}  // namespace dimg

#endif  // SRC_IMG_QOI_H_
