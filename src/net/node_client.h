// NodeClient: the router/frontend side of the dnet wire. One EventLoop
// thread multiplexes a pooled connection per peer; callers on any thread
// issue invokes (async or blocking), gossip probes, cancels, and mesh
// calls. A connection is (re)established lazily on first use and failures
// fail fast: every request pending on a dead connection completes with
// kUnavailable ("peer lost") so the layer above (Cluster) can map it to
// the retry-eligible FailureKind and re-route.
#ifndef SRC_NET_NODE_CLIENT_H_
#define SRC_NET_NODE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/base/event_loop.h"
#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/net/frame_socket.h"
#include "src/net/wire.h"

namespace dnet {

class NodeClient {
 public:
  struct Config {
    std::string node_name = "router";
    FrameLimits limits;
    dbase::Micros connect_timeout_us = 2 * dbase::kMicrosPerSecond;
  };

  // Per-peer transport counters for statz (a snapshot, not live refs).
  struct PeerSnapshot {
    std::string name;
    uint16_t port = 0;
    bool connected = false;
    uint64_t inflight = 0;
    uint64_t invokes_sent = 0;
    uint64_t sheds_received = 0;
    uint64_t peer_lost_failures = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    // Monotonic time of the last gossip reply; 0 = never.
    dbase::Micros last_gossip_us = 0;
  };

  using OutcomeCallback = std::function<void(dbase::Result<WireOutcome>)>;

  explicit NodeClient(Config config);
  ~NodeClient();

  dbase::Status Start();
  void Stop();

  // Peer table (thread-safe). Adding an existing name updates its port
  // and drops any stale connection.
  void AddPeer(const std::string& name, uint16_t port);
  void RemovePeer(const std::string& name);
  std::vector<PeerSnapshot> SnapshotPeers() const;

  // Sends one invoke; the callback fires exactly once from the loop
  // thread (or inline on immediate connect failure): the decoded outcome,
  // kUnavailable "peer lost ..." when the connection dies first, or
  // kDeadlineExceeded when timeout_us elapses (a kCancel chases the
  // invoke). timeout_us <= 0 means no client-side timer. Thread-safe.
  void InvokeAsync(const std::string& peer, WireInvoke invoke, dbase::Micros timeout_us,
                   OutcomeCallback callback);
  // Blocking wrapper over InvokeAsync.
  dbase::Result<WireOutcome> Invoke(const std::string& peer, WireInvoke invoke,
                                    dbase::Micros timeout_us);

  // Requests a status snapshot from the peer (blocking, bounded).
  dbase::Result<WireNodeStatus> Gossip(const std::string& peer, dbase::Micros timeout_us);

  // Fire-and-forget cancel for an invocation sent earlier.
  void Cancel(const std::string& peer, uint64_t request_id);

  // Carries a serialized mesh request to the peer (blocking, bounded).
  dbase::Result<WireMeshReply> MeshCall(const std::string& peer, std::string request,
                                        dbase::Micros timeout_us);

  NodeClient(const NodeClient&) = delete;
  NodeClient& operator=(const NodeClient&) = delete;

 private:
  struct Pending {
    FrameType expect;  // kOutcome, kGossip, or kMeshReply.
    std::string peer;
    OutcomeCallback on_outcome;                                    // expect == kOutcome.
    std::function<void(dbase::Result<dbase::BufferSlice>)> on_raw; // gossip / mesh.
    dbase::EventLoop::TimerId timer = 0;                           // 0 = none.
  };

  struct Peer {
    uint16_t port = 0;
    std::shared_ptr<FrameSocket> socket;  // Null until connected.
    uint64_t inflight = 0;
    uint64_t invokes_sent = 0;
    uint64_t sheds_received = 0;
    uint64_t peer_lost_failures = 0;
    // Byte counters accumulated from connections that already closed.
    uint64_t bytes_sent_closed = 0;
    uint64_t bytes_received_closed = 0;
    dbase::Micros last_gossip_us = 0;
  };

  // Loop-thread-only. Connects if needed; null on failure.
  FrameSocket* EnsureConnected(const std::string& peer);
  // Loop-thread-only central send: connects, registers the pending entry,
  // arms the timeout, ships the frame.
  void SendRequest(const std::string& peer, FrameType type, uint16_t flags,
                   std::vector<dbase::BufferSlice> body, dbase::Micros timeout_us,
                   Pending pending);
  void OnFrame(const std::string& peer, const FrameHeader& header, dbase::BufferSlice body);
  void OnPeerClosed(const std::string& peer, const dbase::Status& reason);
  void FailPending(uint64_t request_id, const dbase::Status& status);
  // Blocking request helper for gossip/mesh.
  dbase::Result<dbase::BufferSlice> RawRequest(const std::string& peer, FrameType type,
                                               std::string body, FrameType expect,
                                               dbase::Micros timeout_us);

  Config config_;
  std::unique_ptr<dbase::EventLoop> loop_;
  std::unique_ptr<dbase::JoiningThread> loop_thread_;
  std::atomic<bool> running_{false};

  // Loop-thread-only (peer table mutations are posted to the loop).
  std::map<std::string, Peer> peers_;
  std::map<uint64_t, Pending> pending_;
  uint64_t next_request_id_ = 1;

  // Mirror of the peer table for thread-safe snapshots.
  mutable std::mutex snapshot_mu_;
  std::map<std::string, PeerSnapshot> snapshot_;
  void PublishSnapshot(const std::string& peer);  // Loop-thread-only.
};

}  // namespace dnet

#endif  // SRC_NET_NODE_CLIENT_H_
