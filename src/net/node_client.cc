#include "src/net/node_client.h"

#include <utility>

namespace dnet {
namespace {

constexpr dbase::Micros kDefaultRequestTimeout = 5 * dbase::kMicrosPerSecond;

}  // namespace

NodeClient::NodeClient(Config config) : config_(std::move(config)) {}

NodeClient::~NodeClient() { Stop(); }

dbase::Status NodeClient::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return dbase::FailedPrecondition("NodeClient already started");
  }
  ASSIGN_OR_RETURN(loop_, dbase::EventLoop::Create());
  running_.store(true, std::memory_order_relaxed);
  loop_thread_ = std::make_unique<dbase::JoiningThread>("dnet-client", [this] { loop_->Run(); });
  return dbase::OkStatus();
}

void NodeClient::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  dbase::Latch drained(1);
  loop_->Post([this, &drained] {
    // Closing each socket fails its pending requests through
    // OnPeerClosed, so blocked callers wake with "peer lost".
    for (auto& [name, peer] : peers_) {
      if (peer.socket != nullptr && !peer.socket->closed()) {
        peer.socket->SendFrame(FrameType::kLeave, 0, 0, std::string());
        peer.socket->Close(dbase::Unavailable("client stopping"));
      }
    }
    drained.CountDown();
  });
  drained.Wait();
  loop_->Stop();
  loop_thread_.reset();
  peers_.clear();
  pending_.clear();
  loop_.reset();
}

void NodeClient::AddPeer(const std::string& name, uint16_t port) {
  loop_->Post([this, name, port] {
    Peer& peer = peers_[name];
    if (peer.socket != nullptr && peer.port != port) {
      peer.socket->Close(dbase::Unavailable("peer re-addressed"));
    }
    peer.port = port;
    PublishSnapshot(name);
  });
}

void NodeClient::RemovePeer(const std::string& name) {
  loop_->Post([this, name] {
    auto it = peers_.find(name);
    if (it == peers_.end()) {
      return;
    }
    if (it->second.socket != nullptr && !it->second.socket->closed()) {
      it->second.socket->SendFrame(FrameType::kLeave, 0, 0, std::string());
      it->second.socket->Close(dbase::Unavailable("peer removed"));
    }
    peers_.erase(name);
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.erase(name);
  });
}

std::vector<NodeClient::PeerSnapshot> NodeClient::SnapshotPeers() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  std::vector<PeerSnapshot> out;
  out.reserve(snapshot_.size());
  for (const auto& [name, snap] : snapshot_) {
    out.push_back(snap);
  }
  return out;
}

void NodeClient::PublishSnapshot(const std::string& name) {
  auto it = peers_.find(name);
  if (it == peers_.end()) {
    return;
  }
  const Peer& peer = it->second;
  PeerSnapshot snap;
  snap.name = name;
  snap.port = peer.port;
  snap.connected = peer.socket != nullptr && !peer.socket->closed();
  snap.inflight = peer.inflight;
  snap.invokes_sent = peer.invokes_sent;
  snap.sheds_received = peer.sheds_received;
  snap.peer_lost_failures = peer.peer_lost_failures;
  snap.bytes_sent = peer.bytes_sent_closed;
  snap.bytes_received = peer.bytes_received_closed;
  if (snap.connected) {
    snap.bytes_sent += peer.socket->bytes_sent();
    snap.bytes_received += peer.socket->bytes_received();
  }
  snap.last_gossip_us = peer.last_gossip_us;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_[name] = std::move(snap);
}

FrameSocket* NodeClient::EnsureConnected(const std::string& name) {
  auto it = peers_.find(name);
  if (it == peers_.end()) {
    return nullptr;
  }
  Peer& peer = it->second;
  if (peer.socket != nullptr && !peer.socket->closed()) {
    return peer.socket.get();
  }
  peer.socket.reset();
  auto fd = ConnectLoopback(peer.port, config_.connect_timeout_us);
  if (!fd.ok()) {
    return nullptr;
  }
  auto socket = FrameSocket::Adopt(
      loop_.get(), *fd, config_.limits,
      [this, name](const FrameHeader& header, dbase::BufferSlice body) {
        OnFrame(name, header, std::move(body));
      },
      [this, name](const dbase::Status& reason) { OnPeerClosed(name, reason); });
  if (!socket.ok()) {
    return nullptr;
  }
  peer.socket = std::move(socket).value();
  // Hello; the ack needs no pending entry (request id 0 is never issued).
  peer.socket->SendFrame(FrameType::kJoin, 0, 0, EncodeJoin(WireJoin{config_.node_name}));
  PublishSnapshot(name);
  return peer.socket.get();
}

void NodeClient::SendRequest(const std::string& name, FrameType type, uint16_t flags,
                             std::vector<dbase::BufferSlice> body, dbase::Micros timeout_us,
                             Pending pending) {
  FrameSocket* socket = EnsureConnected(name);
  auto peer_it = peers_.find(name);
  if (socket == nullptr || peer_it == peers_.end()) {
    if (peer_it != peers_.end()) {
      peer_it->second.peer_lost_failures++;
      PublishSnapshot(name);
    }
    const dbase::Status lost =
        dbase::Unavailable("peer lost: connect to '" + name + "' failed");
    if (pending.on_outcome) {
      pending.on_outcome(lost);
    }
    if (pending.on_raw) {
      pending.on_raw(lost);
    }
    return;
  }
  const uint64_t request_id = next_request_id_++;
  if (timeout_us > 0) {
    const bool chase_cancel = type == FrameType::kInvoke;
    pending.timer = loop_->AddTimer(timeout_us, [this, request_id, name, chase_cancel] {
      auto it = pending_.find(request_id);
      if (it == pending_.end()) {
        return;
      }
      it->second.timer = 0;  // The timer already fired; nothing to cancel.
      if (chase_cancel) {
        auto peer = peers_.find(name);
        if (peer != peers_.end() && peer->second.socket != nullptr &&
            !peer->second.socket->closed()) {
          peer->second.socket->SendFrame(FrameType::kCancel, 0, request_id, std::string());
        }
      }
      FailPending(request_id, dbase::DeadlineExceeded("remote call timed out"));
    });
  }
  Peer& peer = peer_it->second;
  peer.inflight++;
  if (type == FrameType::kInvoke) {
    peer.invokes_sent++;
  }
  pending_.emplace(request_id, std::move(pending));
  socket->SendFrame(type, flags, request_id, std::move(body));
  PublishSnapshot(name);
}

void NodeClient::FailPending(uint64_t request_id, const dbase::Status& status) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timer != 0) {
    loop_->CancelTimer(pending.timer);
  }
  auto peer = peers_.find(pending.peer);
  if (peer != peers_.end() && peer->second.inflight > 0) {
    peer->second.inflight--;
    PublishSnapshot(pending.peer);
  }
  if (pending.on_outcome) {
    pending.on_outcome(status);
  }
  if (pending.on_raw) {
    pending.on_raw(status);
  }
}

void NodeClient::OnPeerClosed(const std::string& name, const dbase::Status& reason) {
  auto it = peers_.find(name);
  if (it != peers_.end() && it->second.socket != nullptr) {
    it->second.bytes_sent_closed += it->second.socket->bytes_sent();
    it->second.bytes_received_closed += it->second.socket->bytes_received();
    it->second.socket.reset();
  }
  // Everything pending on this peer dies as "peer lost" — the Cluster
  // maps this to the retry-eligible kPeerLost failure kind.
  std::vector<uint64_t> doomed;
  for (const auto& [request_id, pending] : pending_) {
    if (pending.peer == name) {
      doomed.push_back(request_id);
    }
  }
  if (it != peers_.end()) {
    it->second.peer_lost_failures += doomed.size();
  }
  const dbase::Status lost =
      dbase::Unavailable("peer lost: '" + name + "' " +
                         (reason.ok() ? std::string("closed the connection") : reason.ToString()));
  for (uint64_t request_id : doomed) {
    FailPending(request_id, lost);
  }
  PublishSnapshot(name);
}

void NodeClient::OnFrame(const std::string& name, const FrameHeader& header,
                         dbase::BufferSlice body) {
  if (header.type == FrameType::kJoinAck || header.type == FrameType::kLeave) {
    return;  // Informational.
  }
  auto it = pending_.find(header.request_id);
  if (it == pending_.end()) {
    return;  // Late reply after a timeout; the entry is gone.
  }
  if (header.type != it->second.expect) {
    auto peer = peers_.find(name);
    if (peer != peers_.end() && peer->second.socket != nullptr) {
      peer->second.socket->Close(
          dbase::InvalidArgument("reply frame type does not match request"));
    }
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timer != 0) {
    loop_->CancelTimer(pending.timer);
  }
  auto peer = peers_.find(name);
  if (peer != peers_.end()) {
    if (peer->second.inflight > 0) {
      peer->second.inflight--;
    }
    if (header.type == FrameType::kGossip) {
      peer->second.last_gossip_us = dbase::MonotonicClock::Get()->NowMicros();
    }
  }
  if (pending.on_outcome) {
    auto outcome = DecodeOutcome(body);
    if (outcome.ok()) {
      outcome->shed = (header.flags & kFlagShed) != 0;
      if (outcome->shed && peer != peers_.end()) {
        peer->second.sheds_received++;
      }
    } else {
      // A peer sending garbage is as gone as a dead one.
      if (peer != peers_.end() && peer->second.socket != nullptr) {
        peer->second.socket->Close(outcome.status());
      }
    }
    if (peer != peers_.end()) {
      PublishSnapshot(name);
    }
    pending.on_outcome(std::move(outcome));
    return;
  }
  if (peer != peers_.end()) {
    PublishSnapshot(name);
  }
  if (pending.on_raw) {
    pending.on_raw(std::move(body));
  }
}

void NodeClient::InvokeAsync(const std::string& peer, WireInvoke invoke,
                             dbase::Micros timeout_us, OutcomeCallback callback) {
  if (!running_.load(std::memory_order_relaxed)) {
    callback(dbase::FailedPrecondition("NodeClient not started"));
    return;
  }
  // Encode on the caller's thread: scatter marshalling promotes payloads
  // into shared buffers here, keeping the loop thread on socket work.
  auto chunks = EncodeInvoke(invoke);
  auto shared_cb = std::make_shared<OutcomeCallback>(std::move(callback));
  loop_->Post([this, peer, chunks = std::move(chunks), timeout_us, shared_cb]() mutable {
    Pending pending;
    pending.expect = FrameType::kOutcome;
    pending.peer = peer;
    pending.on_outcome = [shared_cb](dbase::Result<WireOutcome> outcome) {
      (*shared_cb)(std::move(outcome));
    };
    SendRequest(peer, FrameType::kInvoke, 0, std::move(chunks), timeout_us,
                std::move(pending));
  });
}

dbase::Result<WireOutcome> NodeClient::Invoke(const std::string& peer, WireInvoke invoke,
                                              dbase::Micros timeout_us) {
  struct Shared {
    dbase::Latch latch{1};
    dbase::Result<WireOutcome> result{dbase::Unavailable("unset")};
  };
  auto shared = std::make_shared<Shared>();
  InvokeAsync(peer, std::move(invoke), timeout_us > 0 ? timeout_us : kDefaultRequestTimeout,
              [shared](dbase::Result<WireOutcome> outcome) {
                shared->result = std::move(outcome);
                shared->latch.CountDown();
              });
  shared->latch.Wait();
  return std::move(shared->result);
}

dbase::Result<dbase::BufferSlice> NodeClient::RawRequest(const std::string& peer,
                                                         FrameType type, std::string body,
                                                         FrameType expect,
                                                         dbase::Micros timeout_us) {
  if (!running_.load(std::memory_order_relaxed)) {
    return dbase::FailedPrecondition("NodeClient not started");
  }
  struct Shared {
    dbase::Latch latch{1};
    dbase::Result<dbase::BufferSlice> result{dbase::Unavailable("unset")};
  };
  auto shared = std::make_shared<Shared>();
  loop_->Post([this, peer, type, expect, body = std::move(body), timeout_us, shared]() mutable {
    Pending pending;
    pending.expect = expect;
    pending.peer = peer;
    pending.on_raw = [shared](dbase::Result<dbase::BufferSlice> result) {
      shared->result = std::move(result);
      shared->latch.CountDown();
    };
    std::vector<dbase::BufferSlice> chunks;
    if (!body.empty()) {
      chunks.push_back(dbase::BufferSlice(dbase::Buffer::FromString(std::move(body))));
    }
    SendRequest(peer, type, 0, std::move(chunks),
                timeout_us > 0 ? timeout_us : kDefaultRequestTimeout, std::move(pending));
  });
  shared->latch.Wait();
  return std::move(shared->result);
}

dbase::Result<WireNodeStatus> NodeClient::Gossip(const std::string& peer,
                                                 dbase::Micros timeout_us) {
  ASSIGN_OR_RETURN(dbase::BufferSlice body,
                   RawRequest(peer, FrameType::kGossipReq, std::string(), FrameType::kGossip,
                              timeout_us));
  return DecodeNodeStatus(body);
}

void NodeClient::Cancel(const std::string& peer, uint64_t request_id) {
  loop_->Post([this, peer, request_id] {
    auto it = peers_.find(peer);
    if (it != peers_.end() && it->second.socket != nullptr && !it->second.socket->closed()) {
      it->second.socket->SendFrame(FrameType::kCancel, 0, request_id, std::string());
    }
  });
}

dbase::Result<WireMeshReply> NodeClient::MeshCall(const std::string& peer, std::string request,
                                                  dbase::Micros timeout_us) {
  ASSIGN_OR_RETURN(dbase::BufferSlice body,
                   RawRequest(peer, FrameType::kMeshCall, std::move(request),
                              FrameType::kMeshReply, timeout_us));
  return DecodeMeshReply(body);
}

}  // namespace dnet
