#include "src/net/frame_socket.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/base/clock.h"

namespace dnet {
namespace {

// Per-wake read budget, mirroring the HTTP frontend's: a fast loopback
// sender must not monopolize the loop thread — level-triggered epoll
// re-fires for the remainder.
constexpr size_t kReadBudget = 256 * 1024;
constexpr int kMaxIov = 64;

}  // namespace

dbase::Result<std::shared_ptr<FrameSocket>> FrameSocket::Adopt(dbase::EventLoop* loop, int fd,
                                                               FrameLimits limits,
                                                               FrameHandler on_frame,
                                                               CloseHandler on_close) {
  int nodelay = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  std::shared_ptr<FrameSocket> sock(
      new FrameSocket(loop, fd, limits, std::move(on_frame), std::move(on_close)));
  std::weak_ptr<FrameSocket> weak = sock;
  const dbase::Status added = loop->Add(fd, EPOLLIN, [weak](uint32_t events) {
    // Pin across dispatch: Close() inside OnEvent may drop the owner's
    // last reference while frames below it are still being handled.
    if (auto self = weak.lock()) {
      self->OnEvent(events);
    }
  });
  if (!added.ok()) {
    close(fd);
    sock->fd_ = -1;
    sock->on_close_ = nullptr;
    return added;
  }
  sock->armed_events_ = EPOLLIN;
  return sock;
}

FrameSocket::FrameSocket(dbase::EventLoop* loop, int fd, FrameLimits limits, FrameHandler on_frame,
                         CloseHandler on_close)
    : loop_(loop),
      fd_(fd),
      limits_(limits),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {
  header_.reserve(kFrameHeaderBytes);
}

FrameSocket::~FrameSocket() {
  if (fd_ >= 0) {
    // Owner dropped us without Close() (loop teardown): release the fd
    // without firing callbacks into a half-destroyed owner.
    loop_->Remove(fd_);
    close(fd_);
    fd_ = -1;
  }
}

void FrameSocket::SendFrame(FrameType type, uint16_t flags, uint64_t request_id,
                            std::vector<dbase::BufferSlice> body) {
  if (fd_ < 0) {
    return;
  }
  uint64_t body_len = 0;
  for (const auto& chunk : body) {
    body_len += chunk.size();
  }
  if (body_len > limits_.max_body_bytes) {
    Close(dbase::InvalidArgument("outbound frame body exceeds limit"));
    return;
  }
  FrameHeader header;
  header.type = type;
  header.flags = flags;
  header.body_len = static_cast<uint32_t>(body_len);
  header.request_id = request_id;
  send_queue_.push_back(
      dbase::BufferSlice(dbase::Buffer::FromString(EncodeFrameHeader(header))));
  for (auto& chunk : body) {
    if (!chunk.empty()) {
      send_queue_.push_back(std::move(chunk));
    }
  }
  FlushWrites();
}

void FrameSocket::SendFrame(FrameType type, uint16_t flags, uint64_t request_id,
                            std::string body) {
  std::vector<dbase::BufferSlice> chunks;
  if (!body.empty()) {
    chunks.push_back(dbase::BufferSlice(dbase::Buffer::FromString(std::move(body))));
  }
  SendFrame(type, flags, request_id, std::move(chunks));
}

void FrameSocket::Close(const dbase::Status& reason) {
  if (fd_ < 0) {
    return;
  }
  loop_->Remove(fd_);
  close(fd_);
  fd_ = -1;
  send_queue_.clear();
  send_offset_ = 0;
  if (on_close_) {
    // Move out first: the handler may drop the last owning reference.
    CloseHandler handler = std::move(on_close_);
    on_close_ = nullptr;
    handler(reason);
  }
}

void FrameSocket::OnEvent(uint32_t events) {
  auto self = shared_from_this();  // Survive a Close() from our own handlers.
  if (fd_ < 0) {
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    // Drain whatever the peer managed to send before the hangup, then
    // close — EPOLLHUP and readable bytes arrive together on loopback.
    OnReadable();
    if (fd_ >= 0) {
      Close(dbase::Unavailable("peer hung up"));
    }
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushWrites();
  }
  if (fd_ >= 0 && (events & EPOLLIN) != 0) {
    OnReadable();
  }
}

void FrameSocket::OnReadable() {
  size_t budget = kReadBudget;
  while (fd_ >= 0 && budget > 0) {
    if (!reading_body_) {
      // Accumulate the fixed header.
      char scratch[kFrameHeaderBytes];
      const size_t want = kFrameHeaderBytes - header_.size();
      const ssize_t n = read(fd_, scratch, want);
      if (n == 0) {
        // A hangup mid-header is the peer vanishing, not malformed bytes:
        // kAborted, so the server does not book it as a protocol error.
        Close(header_.empty() ? dbase::OkStatus()
                              : dbase::Aborted("eof inside frame header"));
        return;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        Close(dbase::Unavailable("read() failed"));
        return;
      }
      bytes_received_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      budget -= static_cast<size_t>(n) < budget ? static_cast<size_t>(n) : budget;
      header_.append(scratch, static_cast<size_t>(n));
      if (header_.size() >= 4) {
        // Check the magic as soon as it is readable: an HTTP client (or
        // plain garbage) is cut off immediately instead of being granted
        // a wait for 24 header bytes that may never arrive.
        const auto u8 = [this](size_t i) { return static_cast<uint8_t>(header_[i]); };
        const uint32_t magic = static_cast<uint32_t>(u8(0)) | (static_cast<uint32_t>(u8(1)) << 8) |
                               (static_cast<uint32_t>(u8(2)) << 16) |
                               (static_cast<uint32_t>(u8(3)) << 24);
        if (magic != kWireMagic) {
          Close(dbase::InvalidArgument("bad frame magic"));
          return;
        }
      }
      if (header_.size() < kFrameHeaderBytes) {
        continue;
      }
      auto decoded = DecodeFrameHeader(header_, limits_);
      if (!decoded.ok()) {
        Close(decoded.status());
        return;
      }
      pending_ = std::move(decoded).value();
      header_.clear();
      if (pending_.body_len == 0) {
        on_frame_(pending_, dbase::BufferSlice());
        continue;
      }
      reading_body_ = true;
      body_.clear();
      // Pre-size once: the limit check already bounded body_len, so a
      // hostile length cannot force an unbounded allocation.
      body_.reserve(pending_.body_len);
      continue;
    }
    // Stream the body directly into its final storage; when complete the
    // string is adopted (moved, not copied) into a refcounted Buffer.
    const size_t want = pending_.body_len - body_.size();
    const size_t old_size = body_.size();
    body_.resize(old_size + want);
    const ssize_t n = read(fd_, body_.data() + old_size, want);
    if (n == 0) {
      Close(dbase::Aborted("eof inside frame body"));
      return;
    }
    if (n < 0) {
      body_.resize(old_size);
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      Close(dbase::Unavailable("read() failed"));
      return;
    }
    body_.resize(old_size + static_cast<size_t>(n));
    bytes_received_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    budget -= static_cast<size_t>(n) < budget ? static_cast<size_t>(n) : budget;
    if (body_.size() < pending_.body_len) {
      continue;
    }
    reading_body_ = false;
    dbase::BufferSlice body(dbase::Buffer::FromString(std::move(body_)));
    body_ = std::string();
    on_frame_(pending_, std::move(body));
  }
}

void FrameSocket::FlushWrites() {
  while (fd_ >= 0 && !send_queue_.empty()) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    size_t skip = send_offset_;
    for (const auto& chunk : send_queue_) {
      if (iov_count == kMaxIov) {
        break;
      }
      iov[iov_count].iov_base = const_cast<char*>(chunk.data() + skip);
      iov[iov_count].iov_len = chunk.size() - skip;
      ++iov_count;
      skip = 0;
    }
    const ssize_t n = writev(fd_, iov, iov_count);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      Close(dbase::Unavailable("writev() failed"));
      return;
    }
    bytes_sent_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    size_t remaining = static_cast<size_t>(n);
    while (remaining > 0 && !send_queue_.empty()) {
      const size_t front_left = send_queue_.front().size() - send_offset_;
      if (remaining >= front_left) {
        remaining -= front_left;
        send_queue_.pop_front();
        send_offset_ = 0;
      } else {
        send_offset_ += remaining;
        remaining = 0;
      }
    }
  }
  UpdateInterest();
}

void FrameSocket::UpdateInterest() {
  if (fd_ < 0) {
    return;
  }
  const uint32_t want =
      EPOLLIN | (send_queue_.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  if (want == armed_events_) {
    return;
  }
  if (!loop_->Modify(fd_, want).ok()) {
    Close(dbase::Unavailable("epoll_ctl(MOD) failed"));
    return;
  }
  armed_events_ = want;
}

// --------------------------------------------------------- socket helpers

dbase::Result<int> ListenLoopback(uint16_t port, int backlog) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return dbase::Unavailable("socket() failed");
  }
  int reuse = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return dbase::Unavailable("bind() failed (sandboxed environment?)");
  }
  if (listen(fd, backlog) != 0) {
    close(fd);
    return dbase::Unavailable("listen() failed");
  }
  return fd;
}

dbase::Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return dbase::Unavailable("getsockname() failed");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

dbase::Result<int> ConnectLoopback(uint16_t port, dbase::Micros timeout_us) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return dbase::Unavailable("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (true) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno != EINPROGRESS) {
      close(fd);
      return dbase::Unavailable("connect() failed");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        timeout_us <= 0 ? -1 : static_cast<int>(timeout_us / dbase::kMicrosPerMilli);
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      close(fd);
      return dbase::DeadlineExceeded("connect timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      close(fd);
      return dbase::Unavailable("connect() failed: " + std::string(strerror(err)));
    }
    break;
  }
  int nodelay = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

}  // namespace dnet
