#include "src/net/node_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "src/base/clock.h"

namespace dnet {

NodeServer::NodeServer(Config config) : config_(std::move(config)) {}

NodeServer::~NodeServer() { Stop(); }

dbase::Status NodeServer::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return dbase::FailedPrecondition("NodeServer already started");
  }
  ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(config_.port, 128));
  auto port = BoundPort(listen_fd_);
  if (!port.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  auto loop = dbase::EventLoop::Create();
  if (!loop.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return loop.status();
  }
  loop_ = std::move(loop).value();
  const dbase::Status added =
      loop_->Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
  if (!added.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    loop_.reset();
    return added;
  }
  running_.store(true, std::memory_order_relaxed);
  loop_thread_ = std::make_unique<dbase::JoiningThread>("dnet-server", [this] { loop_->Run(); });
  return dbase::OkStatus();
}

void NodeServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  // Tear peers down on the loop thread so cancel handlers fire in the
  // same context they always do, then stop the loop.
  dbase::Latch drained(1);
  loop_->Post([this, &drained] {
    std::vector<int> fds;
    fds.reserve(peers_.size());
    for (const auto& [fd, peer] : peers_) {
      fds.push_back(fd);
    }
    for (int fd : fds) {
      auto it = peers_.find(fd);
      if (it != peers_.end() && it->second.socket != nullptr) {
        it->second.socket->Close(dbase::Unavailable("server stopping"));
      }
    }
    drained.CountDown();
  });
  drained.Wait();
  loop_->Stop();
  loop_thread_.reset();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  peers_.clear();
  // loop_ intentionally stays alive (stopped): invoke completions that were
  // in flight when the server stopped still re-enter through loop_->Post,
  // where they park harmlessly in the queue of the dead loop. Start()
  // replaces it; the destructor frees it.
}

void NodeServer::OnAcceptable() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or transient failure; level-triggered epoll retries.
    }
    auto socket = FrameSocket::Adopt(
        loop_.get(), fd, config_.limits,
        [this, fd](const FrameHeader& header, dbase::BufferSlice body) {
          OnFrame(fd, header, std::move(body));
        },
        [this, fd](const dbase::Status& reason) { OnPeerClosed(fd, reason); });
    if (!socket.ok()) {
      continue;  // Adopt closed the fd.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    peers_[fd].socket = std::move(socket).value();
  }
}

void NodeServer::Drop(int fd, dbase::Status reason) {
  auto it = peers_.find(fd);
  if (it != peers_.end() && it->second.socket != nullptr) {
    // Close routes the reason through OnPeerClosed, which does the
    // protocol-error bookkeeping — counting here as well would double.
    it->second.socket->Close(reason);
  }
}

void NodeServer::OnPeerClosed(int fd, const dbase::Status& reason) {
  // Every malformed-bytes close lands here — whether the socket layer
  // rejected the header or a handler Drop()ed a bad body — so this is the
  // one place protocol errors are counted. A peer that merely vanished
  // (EOF, reset, shutdown) closes with a different code and is not one.
  if (reason.code() == dbase::StatusCode::kInvalidArgument) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  auto it = peers_.find(fd);
  if (it == peers_.end()) {
    return;
  }
  bytes_sent_closed_.fetch_add(it->second.socket->bytes_sent(), std::memory_order_relaxed);
  bytes_received_closed_.fetch_add(it->second.socket->bytes_received(),
                                   std::memory_order_relaxed);
  // Cancel work owed to the dead connection: its router is gone, nobody
  // will consume the results.
  if (on_cancel_) {
    for (const auto& [request_id, invocation_id] : it->second.inflight) {
      on_cancel_(invocation_id);
    }
  }
  peers_.erase(it);
}

void NodeServer::OnFrame(int fd, const FrameHeader& header, dbase::BufferSlice body) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  switch (header.type) {
    case FrameType::kJoin: {
      auto join = DecodeJoin(body);
      if (!join.ok()) {
        Drop(fd, join.status());
        return;
      }
      auto it = peers_.find(fd);
      if (it == peers_.end()) {
        return;
      }
      it->second.name = std::move(join->node_name);
      it->second.socket->SendFrame(FrameType::kJoinAck, 0, header.request_id,
                                   EncodeJoin(WireJoin{config_.node_name}));
      return;
    }
    case FrameType::kLeave: {
      auto it = peers_.find(fd);
      if (it != peers_.end() && it->second.socket != nullptr) {
        it->second.socket->Close(dbase::OkStatus());
      }
      return;
    }
    case FrameType::kInvoke:
      HandleInvoke(fd, header, body);
      return;
    case FrameType::kCancel: {
      if (!body.empty()) {
        Drop(fd, dbase::InvalidArgument("cancel frame carries a body"));
        return;
      }
      auto it = peers_.find(fd);
      if (it == peers_.end()) {
        return;
      }
      auto inflight = it->second.inflight.find(header.request_id);
      if (inflight != it->second.inflight.end() && on_cancel_) {
        on_cancel_(inflight->second);
      }
      return;
    }
    case FrameType::kGossipReq: {
      if (!body.empty()) {
        Drop(fd, dbase::InvalidArgument("gossip request carries a body"));
        return;
      }
      auto it = peers_.find(fd);
      if (it == peers_.end() || status_provider_ == nullptr) {
        return;
      }
      it->second.socket->SendFrame(FrameType::kGossip, 0, header.request_id,
                                   EncodeNodeStatus(status_provider_()));
      return;
    }
    case FrameType::kMeshCall:
      HandleMesh(fd, header, body);
      return;
    case FrameType::kJoinAck:
    case FrameType::kOutcome:
    case FrameType::kGossip:
    case FrameType::kMeshReply:
      // Reply types are client-bound; a server receiving one is talking
      // to something confused or hostile.
      Drop(fd, dbase::InvalidArgument("reply frame sent to server"));
      return;
  }
  Drop(fd, dbase::InvalidArgument("unknown frame type"));
}

void NodeServer::HandleInvoke(int fd, const FrameHeader& header,
                              const dbase::BufferSlice& body) {
  auto invoke = DecodeInvoke(body);
  if (!invoke.ok()) {
    Drop(fd, invoke.status());
    return;
  }
  auto it = peers_.find(fd);
  if (it == peers_.end()) {
    return;
  }
  if (on_invoke_ == nullptr) {
    WireOutcome refused;
    refused.code = dbase::StatusCode::kUnavailable;
    refused.message = "node not serving";
    it->second.socket->SendFrame(FrameType::kOutcome, 0, header.request_id,
                                 EncodeOutcome(refused));
    return;
  }
  it->second.inflight.emplace(header.request_id, invoke->invocation_id);
  // The completion may fire from any thread, possibly after this
  // connection (or the whole server) is gone — it re-enters through Post
  // and re-checks the peer map.
  const uint64_t request_id = header.request_id;
  auto done = [this, fd, request_id](WireOutcome outcome) {
    loop_->Post([this, fd, request_id, outcome = std::move(outcome)]() mutable {
      auto peer = peers_.find(fd);
      if (peer == peers_.end() || peer->second.socket == nullptr ||
          peer->second.socket->closed()) {
        return;  // Connection died; cancel-on-disconnect already ran.
      }
      peer->second.inflight.erase(request_id);
      const uint16_t flags = outcome.shed ? kFlagShed : 0;
      peer->second.socket->SendFrame(FrameType::kOutcome, flags, request_id,
                                     EncodeOutcome(outcome));
    });
  };
  on_invoke_(std::move(invoke).value(), std::move(done));
}

void NodeServer::HandleMesh(int fd, const FrameHeader& header, const dbase::BufferSlice& body) {
  auto it = peers_.find(fd);
  if (it == peers_.end()) {
    return;
  }
  if (on_mesh_ == nullptr) {
    Drop(fd, dbase::InvalidArgument("mesh call to a node without a mesh"));
    return;
  }
  const uint64_t request_id = header.request_id;
  auto done = [this, fd, request_id](WireMeshReply reply) {
    loop_->Post([this, fd, request_id, reply = std::move(reply)]() {
      auto peer = peers_.find(fd);
      if (peer == peers_.end() || peer->second.socket == nullptr) {
        return;
      }
      peer->second.socket->SendFrame(FrameType::kMeshReply, 0, request_id,
                                     EncodeMeshReply(reply));
    });
  };
  on_mesh_(std::string(body.view()), std::move(done));
}

}  // namespace dnet
