// The dnet node wire (ROADMAP "Distributed data plane"): the compact
// length-prefixed RPC framing frontend and engine nodes speak over TCP.
// Every frame is a fixed 24-byte header followed by `body_len` body bytes:
//
//   offset  size  field
//   0       4     magic 0x444E4554 ("DNET", little-endian on the wire)
//   4       1     protocol version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     flags (FrameFlags bits)
//   8       4     body length in bytes (bounded by FrameLimits)
//   12      4     reserved (must be zero)
//   16      8     request id — correlates a request frame with its reply
//
// Integers are little-endian. The framing is deliberately *not* HTTP:
// node-to-node calls are homogeneous, high-rate, and carry marshalled
// DataSetLists whose large payloads must flow through writev as slices of
// their existing buffers (send) and be aliased straight out of the receive
// buffer (UnmarshalSets over a BufferSlice) — a text protocol with
// header parsing, chunked encodings, and per-message allocation on this
// path would buy nothing but copies (DESIGN.md records the rationale).
//
// Body parsing is checked, never clamping: a truncated, oversized, or
// corrupt frame surfaces as kInvalidArgument and the connection is dropped
// — hostile bytes must not become short reads (same contract as
// BufferSlice::Make).
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/buffer.h"
#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/func/data.h"
#include "src/policy/elasticity.h"

namespace dnet {

inline constexpr uint32_t kWireMagic = 0x444E4554u;  // "DNET"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class FrameType : uint8_t {
  kJoin = 1,       // client → server: hello (node name); expects kJoinAck.
  kJoinAck = 2,    // server → client: accepted (server's node name).
  kLeave = 3,      // either side: graceful drain notice; no reply.
  kInvoke = 4,     // client → server: composition invocation.
  kOutcome = 5,    // server → client: invocation result.
  kCancel = 6,     // client → server: cancel the invocation with this id.
  kGossipReq = 7,  // client → server: request a status snapshot.
  kGossip = 8,     // server → client: ElasticitySignals + residency.
  kMeshCall = 9,   // client → server: carry a service-mesh request.
  kMeshReply = 10, // server → client: mesh response + measured latency.
};

// Frame flag bits.
inline constexpr uint16_t kFlagShed = 1u << 0;  // kOutcome: admission shed —
                                                // the peer refused the work
                                                // at its caps; re-routable.

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kJoin;
  uint16_t flags = 0;
  uint32_t body_len = 0;
  uint64_t request_id = 0;
};

// Per-connection frame bounds. The body cap mirrors the HTTP frontend's
// 64 MiB request-body cap plus marshalling slack; a hostile length field
// beyond it kills the connection before any buffering happens.
struct FrameLimits {
  uint32_t max_body_bytes = 72u * 1024 * 1024;
};

// Encodes `header` into exactly kFrameHeaderBytes.
std::string EncodeFrameHeader(const FrameHeader& header);

// Decodes a header from `bytes` (must hold >= kFrameHeaderBytes). Checks
// magic, version, known type, reserved-zero, and the body-length bound.
dbase::Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                             const FrameLimits& limits);

// ------------------------------------------------------------------ invoke

// One remote composition invocation as it travels the wire. The deadline is
// *relative* (microseconds remaining at send time): absolute monotonic
// timestamps do not transfer between processes.
struct WireInvoke {
  std::string composition;
  dfunc::DataSetList args;
  dbase::Micros remaining_deadline_us = 0;  // 0 = none.
  uint8_t priority = 0;                     // PriorityClass underlying value.
  uint64_t invocation_id = 0;               // Cluster-wide invocation id.
};

// Scatter-encodes the invoke body: one owned prefix chunk (name, priority,
// deadline, id) followed by the marshalled argument sets as
// MarshalSetsScatter chunks — large payloads ride as slices of their
// existing backing buffers all the way into writev, zero copies. `invoke`
// is mutable because scatter marshalling promotes owned payloads into
// shared buffers (a move, not a copy).
std::vector<dbase::BufferSlice> EncodeInvoke(WireInvoke& invoke);

// Parses an invoke body. Argument payloads alias `body` (zero-copy): the
// receive buffer stays pinned until the last item referencing it dies.
dbase::Result<WireInvoke> DecodeInvoke(const dbase::BufferSlice& body);

// ----------------------------------------------------------------- outcome

// A remote invocation's terminal result. `failure_kind` carries the PR 8
// taxonomy across the wire so the router can distinguish a remote jail kill
// (deterministic, never retried) from environmental failures.
struct WireOutcome {
  dbase::StatusCode code = dbase::StatusCode::kOk;
  std::string message;            // Status message when code != kOk.
  uint8_t failure_kind = 0;       // dpolicy::FailureKind underlying value.
  uint32_t retries_attempted = 0; // Retries the serving node absorbed.
  dfunc::DataSetList sets;        // Results when code == kOk.
  // Admission shed marker. Not part of the body: it travels as kFlagShed
  // in the frame header — the framing layer sets/reads it so routers can
  // distinguish "peer refused at its caps, re-routable" from other
  // kUnavailable without parsing the body.
  bool shed = false;
};

std::vector<dbase::BufferSlice> EncodeOutcome(WireOutcome& outcome);
dbase::Result<WireOutcome> DecodeOutcome(const dbase::BufferSlice& body);

// ------------------------------------------------------------------ gossip

// One node's gossiped status: its elasticity signals, the compositions
// whose data/sandboxes are warm there (locality routing input), and its
// admission headroom. Everything the router's membership and placement
// policies consume.
struct WireNodeStatus {
  std::string node_name;
  dpolicy::ElasticitySignals signals;
  std::vector<std::string> resident_compositions;
  // Invocations currently in flight on the node (all classes).
  uint64_t inflight = 0;
  // Node-local admission cap (0 = uncapped); lets the router shed before
  // the wire round trip when a peer is known-full.
  uint64_t admission_cap = 0;
};

std::string EncodeNodeStatus(const WireNodeStatus& status);
dbase::Result<WireNodeStatus> DecodeNodeStatus(const dbase::BufferSlice& body);

// ------------------------------------------------------------- join / mesh

struct WireJoin {
  std::string node_name;
};

std::string EncodeJoin(const WireJoin& join);
dbase::Result<WireJoin> DecodeJoin(const dbase::BufferSlice& body);

// Mesh transport: the request body is the serialized (sanitized) HTTP
// request; the reply carries the serialized response plus the latency the
// serving node measured/modelled.
struct WireMeshReply {
  dbase::Micros latency_us = 0;
  std::string response;  // Serialized HttpResponse.
};

std::string EncodeMeshReply(const WireMeshReply& reply);
dbase::Result<WireMeshReply> DecodeMeshReply(const dbase::BufferSlice& body);

}  // namespace dnet

#endif  // SRC_NET_WIRE_H_
