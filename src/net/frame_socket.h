// FrameSocket: one connected TCP peer speaking the dnet frame protocol,
// registered on a dbase::EventLoop. The read side is a header-then-body
// state machine that adopts each body straight into a refcounted
// dbase::Buffer, so frame handlers (and the aliasing UnmarshalSets under
// them) view the receive bytes without copying. The write side is a
// scatter queue flushed with writev — MarshalSetsScatter chunks go from
// their original backing buffers to the kernel with no intermediate
// assembly.
//
// Threading: all methods are loop-thread-only unless noted. Cross-thread
// senders (NodeClient callers) go through EventLoop::Post. Lifetime is
// shared_ptr-managed: callbacks pin the socket for the duration of a
// dispatch, so an on_close handler may drop the owner's last reference
// mid-callback safely.
#ifndef SRC_NET_FRAME_SOCKET_H_
#define SRC_NET_FRAME_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/buffer.h"
#include "src/base/event_loop.h"
#include "src/base/status.h"
#include "src/net/wire.h"

namespace dnet {

class FrameSocket : public std::enable_shared_from_this<FrameSocket> {
 public:
  // Called on the loop thread for every complete, well-formed frame. The
  // body slice aliases the receive buffer; holding it (or payloads
  // unmarshalled from it) keeps the buffer alive.
  using FrameHandler = std::function<void(const FrameHeader&, dbase::BufferSlice body)>;
  // Called exactly once when the connection dies: clean peer EOF (kOk),
  // socket error (kUnavailable), or a protocol violation
  // (kInvalidArgument). The fd is already closed when this runs.
  using CloseHandler = std::function<void(const dbase::Status& reason)>;

  // Adopts a connected non-blocking `fd` and registers it on `loop`.
  // Loop-thread-only. On registration failure the fd is closed and the
  // error returned.
  static dbase::Result<std::shared_ptr<FrameSocket>> Adopt(dbase::EventLoop* loop, int fd,
                                                           FrameLimits limits,
                                                           FrameHandler on_frame,
                                                           CloseHandler on_close);
  ~FrameSocket();

  // Queues one frame: the header (body_len is computed from the chunks)
  // followed by the body chunks, then flushes as much as the socket
  // accepts. Loop-thread-only. Frames queued after close are dropped.
  void SendFrame(FrameType type, uint16_t flags, uint64_t request_id,
                 std::vector<dbase::BufferSlice> body);
  // Convenience for small owned bodies (join, gossip, cancel).
  void SendFrame(FrameType type, uint16_t flags, uint64_t request_id, std::string body);

  // Tears the connection down (idempotent): deregisters, closes the fd,
  // and fires on_close with `reason`. Loop-thread-only.
  void Close(const dbase::Status& reason);

  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }

  // Payload byte counters (header + body, both directions). Thread-safe
  // reads — statz samples these off-loop.
  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  uint64_t bytes_received() const { return bytes_received_.load(std::memory_order_relaxed); }

  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

 private:
  FrameSocket(dbase::EventLoop* loop, int fd, FrameLimits limits, FrameHandler on_frame,
              CloseHandler on_close);

  void OnEvent(uint32_t events);
  // Reads until EAGAIN (or the per-wake budget), advancing the
  // header/body state machine and dispatching complete frames.
  void OnReadable();
  // writev's the send queue until EAGAIN or empty; adjusts EPOLLOUT.
  void FlushWrites();
  void UpdateInterest();

  dbase::EventLoop* const loop_;
  int fd_;
  const FrameLimits limits_;
  const FrameHandler on_frame_;
  CloseHandler on_close_;  // Cleared after firing (fire exactly once).

  // Read state machine: fill header_, decode, then fill body_ (sized to
  // body_len up front — the limit check already ran) and dispatch.
  std::string header_;         // Partial header bytes (< kFrameHeaderBytes).
  bool reading_body_ = false;
  FrameHeader pending_;        // Decoded header while its body streams in.
  std::string body_;           // Partial body; adopted into a Buffer when full.

  // Write queue: chunk sequence with a cursor into the front chunk.
  std::deque<dbase::BufferSlice> send_queue_;
  size_t send_offset_ = 0;  // Bytes of send_queue_.front() already written.
  uint32_t armed_events_ = 0;

  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

// --------------------------------------------------------- socket helpers

// Creates a loopback TCP listener (SOCK_NONBLOCK | SOCK_CLOEXEC) on `port`
// (0 picks an ephemeral port). Returns the listening fd.
dbase::Result<int> ListenLoopback(uint16_t port, int backlog);

// The port a bound socket actually landed on.
dbase::Result<uint16_t> BoundPort(int fd);

// Blocking loopback connect with a deadline, returning a connected
// non-blocking fd (TCP_NODELAY set). Safe off-loop; hand the fd to
// FrameSocket::Adopt on the loop thread afterwards.
dbase::Result<int> ConnectLoopback(uint16_t port, dbase::Micros timeout_us);

}  // namespace dnet

#endif  // SRC_NET_FRAME_SOCKET_H_
