#include "src/net/wire.h"

#include <cstring>
#include <utility>

namespace dnet {
namespace {

// Little-endian primitive writers/readers. The reader side is a cursor over
// a BufferSlice that fails (instead of clamping) on truncation — the same
// contract as BufferSlice::Make, so hostile length fields surface as
// kInvalidArgument, never as short reads.
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(const dbase::BufferSlice& slice) : slice_(slice) {}

  size_t remaining() const { return slice_.size() - offset_; }
  size_t offset() const { return offset_; }

  dbase::Status ReadU8(uint8_t* out) { return ReadLe(out, 1); }
  dbase::Status ReadU16(uint16_t* out) { return ReadLe(out, 2); }
  dbase::Status ReadU32(uint32_t* out) { return ReadLe(out, 4); }
  dbase::Status ReadU64(uint64_t* out) { return ReadLe(out, 8); }

  dbase::Status ReadString(std::string* out, size_t max_len) {
    uint32_t len = 0;
    RETURN_IF_ERROR(ReadU32(&len));
    if (len > max_len) {
      return dbase::InvalidArgument("wire string length exceeds bound");
    }
    if (remaining() < len) {
      return dbase::InvalidArgument("truncated wire string");
    }
    out->assign(slice_.view().substr(offset_, len));
    offset_ += len;
    return dbase::OkStatus();
  }

  // The rest of the body as a checked subslice (zero-copy handoff to the
  // sets unmarshaller).
  dbase::Result<dbase::BufferSlice> Rest() const {
    return slice_.Subslice(offset_, remaining());
  }

 private:
  template <typename T>
  dbase::Status ReadLe(T* out, size_t bytes) {
    if (remaining() < bytes) {
      return dbase::InvalidArgument("truncated wire integer");
    }
    uint64_t v = 0;
    const char* data = slice_.data() + offset_;
    for (size_t i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
    }
    offset_ += bytes;
    *out = static_cast<T>(v);
    return dbase::OkStatus();
  }

  const dbase::BufferSlice& slice_;
  size_t offset_ = 0;
};

// Identifier-ish strings on the wire (composition names, node names) are
// bounded well below the frame cap so a corrupt length cannot force a large
// allocation before the mismatch is noticed.
constexpr size_t kMaxNameBytes = 4096;
// Status messages can carry a ToString of a nested failure; bound generous.
constexpr size_t kMaxMessageBytes = 64 * 1024;
constexpr size_t kMaxResidentEntries = 1024;

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kJoin) &&
         type <= static_cast<uint8_t>(FrameType::kMeshReply);
}

bool KnownStatusCode(uint32_t code) {
  return code <= static_cast<uint32_t>(dbase::StatusCode::kCancelled);
}

}  // namespace

std::string EncodeFrameHeader(const FrameHeader& header) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  PutU32(&out, kWireMagic);
  out.push_back(static_cast<char>(header.version));
  out.push_back(static_cast<char>(header.type));
  PutU16(&out, header.flags);
  PutU32(&out, header.body_len);
  PutU32(&out, 0);  // Reserved.
  PutU64(&out, header.request_id);
  return out;
}

dbase::Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                             const FrameLimits& limits) {
  if (bytes.size() < kFrameHeaderBytes) {
    return dbase::InvalidArgument("short frame header");
  }
  const auto u8 = [&](size_t i) { return static_cast<unsigned char>(bytes[i]); };
  const uint32_t magic = static_cast<uint32_t>(u8(0)) | (static_cast<uint32_t>(u8(1)) << 8) |
                         (static_cast<uint32_t>(u8(2)) << 16) |
                         (static_cast<uint32_t>(u8(3)) << 24);
  if (magic != kWireMagic) {
    return dbase::InvalidArgument("bad frame magic");
  }
  FrameHeader header;
  header.version = u8(4);
  if (header.version != kWireVersion) {
    return dbase::InvalidArgument("unsupported wire version");
  }
  if (!KnownFrameType(u8(5))) {
    return dbase::InvalidArgument("unknown frame type");
  }
  header.type = static_cast<FrameType>(u8(5));
  header.flags = static_cast<uint16_t>(u8(6)) | (static_cast<uint16_t>(u8(7)) << 8);
  header.body_len = static_cast<uint32_t>(u8(8)) | (static_cast<uint32_t>(u8(9)) << 8) |
                    (static_cast<uint32_t>(u8(10)) << 16) |
                    (static_cast<uint32_t>(u8(11)) << 24);
  const uint32_t reserved = static_cast<uint32_t>(u8(12)) | (static_cast<uint32_t>(u8(13)) << 8) |
                            (static_cast<uint32_t>(u8(14)) << 16) |
                            (static_cast<uint32_t>(u8(15)) << 24);
  if (reserved != 0) {
    return dbase::InvalidArgument("nonzero reserved frame bytes");
  }
  if (header.body_len > limits.max_body_bytes) {
    return dbase::InvalidArgument("frame body exceeds limit");
  }
  uint64_t id = 0;
  for (size_t i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(u8(16 + i)) << (8 * i);
  }
  header.request_id = id;
  return header;
}

// ------------------------------------------------------------------ invoke

std::vector<dbase::BufferSlice> EncodeInvoke(WireInvoke& invoke) {
  std::string prefix;
  prefix.reserve(32 + invoke.composition.size());
  PutString(&prefix, invoke.composition);
  prefix.push_back(static_cast<char>(invoke.priority));
  PutU64(&prefix, static_cast<uint64_t>(invoke.remaining_deadline_us));
  PutU64(&prefix, invoke.invocation_id);
  std::vector<dbase::BufferSlice> chunks;
  chunks.push_back(dbase::BufferSlice(dbase::Buffer::FromString(std::move(prefix))));
  for (auto& chunk : dfunc::MarshalSetsScatter(invoke.args)) {
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

dbase::Result<WireInvoke> DecodeInvoke(const dbase::BufferSlice& body) {
  Cursor cursor(body);
  WireInvoke invoke;
  RETURN_IF_ERROR(cursor.ReadString(&invoke.composition, kMaxNameBytes));
  RETURN_IF_ERROR(cursor.ReadU8(&invoke.priority));
  uint64_t deadline = 0;
  RETURN_IF_ERROR(cursor.ReadU64(&deadline));
  invoke.remaining_deadline_us = static_cast<dbase::Micros>(deadline);
  RETURN_IF_ERROR(cursor.ReadU64(&invoke.invocation_id));
  ASSIGN_OR_RETURN(dbase::BufferSlice rest, cursor.Rest());
  // Aliasing unmarshal: argument payloads sub-slice the receive buffer.
  ASSIGN_OR_RETURN(invoke.args, dfunc::UnmarshalSets(rest));
  return invoke;
}

// ----------------------------------------------------------------- outcome

std::vector<dbase::BufferSlice> EncodeOutcome(WireOutcome& outcome) {
  std::string prefix;
  prefix.reserve(24 + outcome.message.size());
  PutU32(&prefix, static_cast<uint32_t>(outcome.code));
  prefix.push_back(static_cast<char>(outcome.failure_kind));
  PutU32(&prefix, outcome.retries_attempted);
  PutString(&prefix, outcome.message);
  std::vector<dbase::BufferSlice> chunks;
  chunks.push_back(dbase::BufferSlice(dbase::Buffer::FromString(std::move(prefix))));
  if (outcome.code == dbase::StatusCode::kOk) {
    for (auto& chunk : dfunc::MarshalSetsScatter(outcome.sets)) {
      chunks.push_back(std::move(chunk));
    }
  }
  return chunks;
}

dbase::Result<WireOutcome> DecodeOutcome(const dbase::BufferSlice& body) {
  Cursor cursor(body);
  WireOutcome outcome;
  uint32_t code = 0;
  RETURN_IF_ERROR(cursor.ReadU32(&code));
  if (!KnownStatusCode(code)) {
    return dbase::InvalidArgument("unknown status code in outcome frame");
  }
  outcome.code = static_cast<dbase::StatusCode>(code);
  RETURN_IF_ERROR(cursor.ReadU8(&outcome.failure_kind));
  RETURN_IF_ERROR(cursor.ReadU32(&outcome.retries_attempted));
  RETURN_IF_ERROR(cursor.ReadString(&outcome.message, kMaxMessageBytes));
  if (outcome.code == dbase::StatusCode::kOk) {
    ASSIGN_OR_RETURN(dbase::BufferSlice rest, cursor.Rest());
    ASSIGN_OR_RETURN(outcome.sets, dfunc::UnmarshalSets(rest));
  } else if (cursor.remaining() != 0) {
    return dbase::InvalidArgument("trailing bytes after error outcome");
  }
  return outcome;
}

// ------------------------------------------------------------------ gossip

std::string EncodeNodeStatus(const WireNodeStatus& status) {
  std::string out;
  PutString(&out, status.node_name);
  PutU64(&out, status.inflight);
  PutU64(&out, status.admission_cap);
  const dpolicy::ElasticitySignals& s = status.signals;
  // Signals travel as a counted field list so decoders tolerate future
  // additions (unknown trailing fields are an error today — one version —
  // but the count makes the layout self-describing).
  PutU32(&out, 16);
  PutU64(&out, static_cast<uint64_t>(s.now_us));
  PutU64(&out, static_cast<uint64_t>(s.compute_workers));
  PutU64(&out, static_cast<uint64_t>(s.comm_workers));
  PutU64(&out, s.compute_backlog);
  PutU64(&out, s.comm_backlog);
  PutU64(&out, s.interactive_compute_backlog);
  PutU64(&out, s.interactive_comm_backlog);
  PutU64(&out, s.inflight_interactive);
  PutU64(&out, s.inflight_batch);
  PutU64(&out, s.admission_shed);
  PutU64(&out, s.deadline_exceeded);
  PutU64(&out, s.warm_pool_shelved);
  PutU64(&out, s.warm_pool_misses);
  PutU64(&out, s.sandbox_failures);
  PutU64(&out, s.breaker_fast_fails);
  PutU64(&out, static_cast<uint64_t>(s.breakers_open));
  PutU32(&out, static_cast<uint32_t>(status.resident_compositions.size()));
  for (const std::string& name : status.resident_compositions) {
    PutString(&out, name);
  }
  return out;
}

dbase::Result<WireNodeStatus> DecodeNodeStatus(const dbase::BufferSlice& body) {
  Cursor cursor(body);
  WireNodeStatus status;
  RETURN_IF_ERROR(cursor.ReadString(&status.node_name, kMaxNameBytes));
  RETURN_IF_ERROR(cursor.ReadU64(&status.inflight));
  RETURN_IF_ERROR(cursor.ReadU64(&status.admission_cap));
  uint32_t field_count = 0;
  RETURN_IF_ERROR(cursor.ReadU32(&field_count));
  if (field_count != 16) {
    return dbase::InvalidArgument("unexpected gossip field count");
  }
  uint64_t fields[16] = {};
  for (uint64_t& field : fields) {
    RETURN_IF_ERROR(cursor.ReadU64(&field));
  }
  dpolicy::ElasticitySignals& s = status.signals;
  s.now_us = static_cast<dbase::Micros>(fields[0]);
  s.compute_workers = static_cast<int>(fields[1]);
  s.comm_workers = static_cast<int>(fields[2]);
  s.compute_backlog = fields[3];
  s.comm_backlog = fields[4];
  s.interactive_compute_backlog = fields[5];
  s.interactive_comm_backlog = fields[6];
  s.inflight_interactive = fields[7];
  s.inflight_batch = fields[8];
  s.admission_shed = fields[9];
  s.deadline_exceeded = fields[10];
  s.warm_pool_shelved = fields[11];
  s.warm_pool_misses = fields[12];
  s.sandbox_failures = fields[13];
  s.breaker_fast_fails = fields[14];
  s.breakers_open = static_cast<int>(fields[15]);
  uint32_t resident = 0;
  RETURN_IF_ERROR(cursor.ReadU32(&resident));
  if (resident > kMaxResidentEntries) {
    return dbase::InvalidArgument("gossip residency list exceeds bound");
  }
  status.resident_compositions.reserve(resident);
  for (uint32_t i = 0; i < resident; ++i) {
    std::string name;
    RETURN_IF_ERROR(cursor.ReadString(&name, kMaxNameBytes));
    status.resident_compositions.push_back(std::move(name));
  }
  if (cursor.remaining() != 0) {
    return dbase::InvalidArgument("trailing bytes after gossip body");
  }
  return status;
}

// ------------------------------------------------------------- join / mesh

std::string EncodeJoin(const WireJoin& join) {
  std::string out;
  PutString(&out, join.node_name);
  return out;
}

dbase::Result<WireJoin> DecodeJoin(const dbase::BufferSlice& body) {
  Cursor cursor(body);
  WireJoin join;
  RETURN_IF_ERROR(cursor.ReadString(&join.node_name, kMaxNameBytes));
  if (cursor.remaining() != 0) {
    return dbase::InvalidArgument("trailing bytes after join body");
  }
  return join;
}

std::string EncodeMeshReply(const WireMeshReply& reply) {
  std::string out;
  PutU64(&out, static_cast<uint64_t>(reply.latency_us));
  PutString(&out, reply.response);
  return out;
}

dbase::Result<WireMeshReply> DecodeMeshReply(const dbase::BufferSlice& body) {
  Cursor cursor(body);
  WireMeshReply reply;
  uint64_t latency = 0;
  RETURN_IF_ERROR(cursor.ReadU64(&latency));
  reply.latency_us = static_cast<dbase::Micros>(latency);
  RETURN_IF_ERROR(cursor.ReadString(&reply.response, kMaxMessageBytes));
  if (cursor.remaining() != 0) {
    return dbase::InvalidArgument("trailing bytes after mesh reply");
  }
  return reply;
}

}  // namespace dnet
