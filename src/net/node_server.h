// NodeServer: the dnet wire endpoint embedded in every engine process. It
// owns one EventLoop thread, accepts peer connections, speaks the frame
// protocol, and hands decoded requests to type-erased handlers — the
// runtime layer above (NodeAgent) plugs in Platform::Submit without dnet
// depending on runtime headers.
//
// Transport duties the server keeps for itself:
//  - join bookkeeping (peer names for diagnostics),
//  - request/reply correlation (outcome frames carry the invoke's id),
//  - cancel-on-disconnect: invocations owed to a dead connection are
//    cancelled through the cancel handler, so a crashed router cannot
//    leak in-flight work,
//  - protocol hygiene: any malformed frame kills its connection
//    (kInvalidArgument) — hostile bytes never reach a handler.
#ifndef SRC_NET_NODE_SERVER_H_
#define SRC_NET_NODE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/base/event_loop.h"
#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/net/frame_socket.h"
#include "src/net/wire.h"

namespace dnet {

class NodeServer {
 public:
  struct Config {
    // 0 picks an ephemeral port; read the result from port() after Start.
    uint16_t port = 0;
    std::string node_name = "node";
    FrameLimits limits;
  };

  // Completes one invocation: thread-safe, callable at most once. The
  // outcome's `shed` field becomes the kFlagShed frame flag.
  using OutcomeFn = std::function<void(WireOutcome outcome)>;
  // Receives a decoded invoke plus its completion. Runs on the loop
  // thread — dispatch real work elsewhere and call `done` when finished.
  using InvokeHandler = std::function<void(WireInvoke invoke, OutcomeFn done)>;
  // Cancel request for an invocation previously handed to InvokeHandler
  // (explicit kCancel frame, or the owing connection died).
  using CancelHandler = std::function<void(uint64_t invocation_id)>;
  // Snapshot for kGossipReq. Runs on the loop thread; must be cheap.
  using StatusProvider = std::function<WireNodeStatus()>;
  // Serves a mesh call (body = serialized sanitized request). Runs on the
  // loop thread — offload if serving may block.
  using MeshReplyFn = std::function<void(WireMeshReply reply)>;
  using MeshHandler = std::function<void(std::string request, MeshReplyFn done)>;

  explicit NodeServer(Config config);
  ~NodeServer();

  // All handlers must be set before Start().
  void set_invoke_handler(InvokeHandler handler) { on_invoke_ = std::move(handler); }
  void set_cancel_handler(CancelHandler handler) { on_cancel_ = std::move(handler); }
  void set_status_provider(StatusProvider provider) { status_provider_ = std::move(provider); }
  void set_mesh_handler(MeshHandler handler) { on_mesh_ = std::move(handler); }

  // Binds, starts the loop thread, begins accepting.
  dbase::Status Start();
  // Stops accepting, drops connections, joins the loop thread. In-flight
  // invocations are cancelled through the cancel handler.
  void Stop();

  uint16_t port() const { return port_; }
  const std::string& node_name() const { return config_.node_name; }

  // Counters for statz/tests (thread-safe).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }
  uint64_t frames_received() const { return frames_received_.load(std::memory_order_relaxed); }
  uint64_t bytes_sent() const { return bytes_sent_closed_.load(std::memory_order_relaxed); }
  uint64_t bytes_received() const {
    return bytes_received_closed_.load(std::memory_order_relaxed);
  }

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

 private:
  struct Peer {
    std::shared_ptr<FrameSocket> socket;
    std::string name;  // From kJoin; empty until then.
    // Invocations owed to this connection: request_id → invocation id
    // (cancel currency). Entries leave when the outcome is sent.
    std::map<uint64_t, uint64_t> inflight;
  };

  void OnAcceptable();
  void OnFrame(int fd, const FrameHeader& header, dbase::BufferSlice body);
  void OnPeerClosed(int fd, const dbase::Status& reason);
  // Protocol violation: count it, kill the connection.
  void Drop(int fd, dbase::Status reason);

  void HandleInvoke(int fd, const FrameHeader& header, const dbase::BufferSlice& body);
  void HandleMesh(int fd, const FrameHeader& header, const dbase::BufferSlice& body);

  Config config_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::unique_ptr<dbase::EventLoop> loop_;
  std::unique_ptr<dbase::JoiningThread> loop_thread_;
  std::atomic<bool> running_{false};

  InvokeHandler on_invoke_;
  CancelHandler on_cancel_;
  StatusProvider status_provider_;
  MeshHandler on_mesh_;

  // Loop-thread-only.
  std::map<int, Peer> peers_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> frames_received_{0};
  // Byte counters of closed connections; live sockets' counters are added
  // when they close (statz reads the sum plus live sockets on the loop).
  std::atomic<uint64_t> bytes_sent_closed_{0};
  std::atomic<uint64_t> bytes_received_closed_{0};
};

}  // namespace dnet

#endif  // SRC_NET_NODE_SERVER_H_
