#include "src/apps/log_app.h"

#include "src/base/string_util.h"
#include "src/http/http_parser.h"
#include "src/http/services.h"

namespace dapps {

const char kRenderLogsDsl[] = R"(
composition RenderLogs(AccessToken) => HTMLOutput {
  Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
  HTTP(Request = each AuthRequest) => (AuthResponse = Response);
  FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
  HTTP(Request = each LogRequests) => (LogResponses = Response);
  Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
}
)";

namespace {
constexpr const char* kAuthUrl = "http://auth.internal/authorize";
}

dbase::Status LogAccessFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string token, ctx.SingleInput("AccessToken"));
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = kAuthUrl;
  request.body = token;
  ctx.EmitOutput("HTTPRequest", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status LogFanOutFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw_response, ctx.SingleInput("HTTPResponse"));
  ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(raw_response));
  if (!response.IsSuccess()) {
    // Forward the failure: emit no shard requests; Render then reports the
    // empty result (conditional-execution semantics, §4.4).
    return dbase::OkStatus();
  }
  for (auto line : dbase::SplitString(response.body, '\n')) {
    const std::string url(dbase::TrimWhitespace(line));
    if (url.empty()) {
      continue;
    }
    dhttp::HttpRequest request;
    request.method = dhttp::Method::kGet;
    request.target = url;
    ctx.EmitOutput("HTTPRequests", request.Serialize());
  }
  return dbase::OkStatus();
}

dbase::Status LogRenderFunction(dfunc::FunctionCtx& ctx) {
  const dfunc::DataSet* responses = ctx.input_set("HTTPResponses");
  if (responses == nullptr) {
    return dbase::NotFound("Render expects input set 'HTTPResponses'");
  }
  std::string html = "<html><body>\n";
  int shard_index = 0;
  for (const auto& item : responses->items) {
    auto response = dhttp::ParseResponse(item.data);
    html += dbase::StrFormat("<section id=\"shard-%d\">\n", shard_index++);
    if (response.ok() && response->IsSuccess()) {
      for (auto line : dbase::SplitString(response->body, '\n')) {
        if (!line.empty()) {
          html += "<pre>" + std::string(line) + "</pre>\n";
        }
      }
    } else {
      html += dbase::StrFormat("<p class=\"error\">shard fetch failed: %d</p>\n",
                               response.ok() ? response->status_code : 400);
    }
    html += "</section>\n";
  }
  html += "</body></html>\n";
  ctx.EmitOutput("HTMLOutput", std::move(html));
  return dbase::OkStatus();
}

dbase::Status InstallLogApp(dandelion::Platform& platform, const LogAppConfig& config) {
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "Access", .body = LogAccessFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "FanOut", .body = LogFanOutFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "Render", .body = LogRenderFunction}));
  RETURN_IF_ERROR(platform.RegisterCompositionDsl(kRenderLogsDsl));

  // Shard services + auth service on the mesh.
  std::vector<std::string> shard_urls;
  for (int s = 0; s < config.num_shards; ++s) {
    const std::string host = dbase::StrFormat("logs-%d.internal", s);
    shard_urls.push_back("http://" + host + "/logs");
    auto lines = dhttp::LogShardService::GenerateLines(dbase::StrFormat("shard%d", s),
                                                       config.lines_per_shard,
                                                       0x10C5EED + static_cast<uint64_t>(s));
    dhttp::LatencyModel latency;
    latency.base_us = config.shard_latency_us;
    platform.mesh().Register(host, std::make_shared<dhttp::LogShardService>(std::move(lines)),
                             latency);
  }
  dhttp::LatencyModel auth_latency;
  auth_latency.base_us = config.auth_latency_us;
  platform.mesh().Register(
      config.auth_host, std::make_shared<dhttp::AuthService>(config.auth_token, shard_urls),
      auth_latency);
  return dbase::OkStatus();
}

dbase::Result<std::string> RunLogApp(dandelion::Platform& platform, const LogAppConfig& config) {
  dfunc::DataSetList args;
  args.push_back(dfunc::DataSet{"AccessToken", {dfunc::DataItem{"", config.auth_token}}});
  ASSIGN_OR_RETURN(dfunc::DataSetList results, platform.Invoke("RenderLogs", std::move(args)));
  const dfunc::DataSet* html = dfunc::FindSet(results, "HTMLOutput");
  if (html == nullptr || html->items.empty()) {
    return dbase::Internal("RenderLogs produced no HTMLOutput");
  }
  return html->items.front().data.ToString();
}

}  // namespace dapps
