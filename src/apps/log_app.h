// The distributed log-processing application of Figure 3 / Listing 1-2:
//   Access  — turns an access token into an auth-service request,
//   HTTP    — platform communication function (auth round-trip),
//   FanOut  — parses the authorized shard list into one GET per shard,
//   HTTP    — parallel shard fetches ('each' distribution),
//   Render  — templates every shard's log lines into one HTML document.
// This app is I/O-intensive: two network round-trips, little compute.
#ifndef SRC_APPS_LOG_APP_H_
#define SRC_APPS_LOG_APP_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/platform.h"

namespace dapps {

// The DSL source of the composition (Listing 2 verbatim, modulo our DSL's
// canonical formatting).
extern const char kRenderLogsDsl[];

// Compute-function bodies.
dbase::Status LogAccessFunction(dfunc::FunctionCtx& ctx);
dbase::Status LogFanOutFunction(dfunc::FunctionCtx& ctx);
dbase::Status LogRenderFunction(dfunc::FunctionCtx& ctx);

struct LogAppConfig {
  std::string auth_host = "auth.internal";
  std::string auth_token = "token-tenant-42";
  int num_shards = 4;
  int lines_per_shard = 64;
  // Mesh latency models.
  dbase::Micros auth_latency_us = 1500;
  dbase::Micros shard_latency_us = 4000;
};

// Registers the Access/FanOut/Render functions, the RenderLogs composition,
// and wires up the auth + shard services on the platform's mesh.
dbase::Status InstallLogApp(dandelion::Platform& platform, const LogAppConfig& config);

// Invokes the composition end-to-end; returns the rendered HTML.
dbase::Result<std::string> RunLogApp(dandelion::Platform& platform, const LogAppConfig& config);

}  // namespace dapps

#endif  // SRC_APPS_LOG_APP_H_
