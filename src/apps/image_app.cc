#include "src/apps/image_app.h"

#include "src/base/string_util.h"
#include "src/http/http_parser.h"
#include "src/http/services.h"
#include "src/img/png.h"
#include "src/img/qoi.h"

namespace dapps {

const char kImagePipelineDsl[] = R"(
composition CompressImage(ImageKey) => StoreStatus {
  MakeFetchRequest(ImageKey = all ImageKey) => (FetchRequest = HTTPRequest);
  HTTP(Request = each FetchRequest) => (FetchResponse = Response);
  Compress(QoiData = all FetchResponse) => (StoreRequest = HTTPRequest);
  HTTP(Request = each StoreRequest) => (StoreResponse = Response);
  CheckStored(StoreResponse = all StoreResponse) => (StoreStatus = Status);
}
)";

namespace {
constexpr const char* kStoreBase = "http://storage.internal";
}

dbase::Status MakeFetchRequestFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string key, ctx.SingleInput("ImageKey"));
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kGet;
  request.target = std::string(kStoreBase) + "/images/" + key + ".qoi";
  ctx.EmitOutput("HTTPRequest", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status CompressImageFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw, ctx.SingleInput("QoiData"));
  ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(raw));
  if (!response.IsSuccess()) {
    return dbase::NotFound("image fetch failed with status " +
                           std::to_string(response.status_code));
  }
  ASSIGN_OR_RETURN(std::string png, dimg::TranscodeQoiToPng(response.body));
  dhttp::HttpRequest put;
  put.method = dhttp::Method::kPut;
  put.target = std::string(kStoreBase) + "/compressed/output.png";
  put.body = std::move(png);
  ctx.EmitOutput("HTTPRequest", put.Serialize());
  return dbase::OkStatus();
}

dbase::Status CheckStoredFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw, ctx.SingleInput("StoreResponse"));
  ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(raw));
  ctx.EmitOutput("Status", response.IsSuccess()
                               ? std::string("stored")
                               : "store failed: " + std::to_string(response.status_code));
  return dbase::OkStatus();
}

dbase::Status InstallImageApp(dandelion::Platform& platform, const ImageAppConfig& config) {
  RETURN_IF_ERROR(
      platform.RegisterFunction({.name = "MakeFetchRequest", .body = MakeFetchRequestFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction(
      {.name = "Compress", .body = CompressImageFunction, .context_bytes = 32ull << 20}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "CheckStored", .body = CheckStoredFunction}));
  RETURN_IF_ERROR(platform.RegisterCompositionDsl(kImagePipelineDsl));

  auto store = std::make_shared<dhttp::ObjectStoreService>();
  for (int i = 0; i < config.num_images; ++i) {
    const dimg::Image image = dimg::MakeTestImage(config.image_width, config.image_height, 4,
                                                  0x1247E5 + static_cast<uint64_t>(i));
    store->PutObject(dbase::StrFormat("/images/img%d.qoi", i), dimg::QoiEncode(image));
  }
  dhttp::LatencyModel latency;
  latency.base_us = config.store_latency_us;
  latency.per_kb_us = 2.0;
  platform.mesh().Register(config.store_host, store, latency);
  return dbase::OkStatus();
}

dbase::Result<std::string> RunImageApp(dandelion::Platform& platform, int index) {
  dfunc::DataSetList args;
  args.push_back(dfunc::DataSet{
      "ImageKey", {dfunc::DataItem{"", dbase::StrFormat("img%d", index)}}});
  ASSIGN_OR_RETURN(dfunc::DataSetList results, platform.Invoke("CompressImage", std::move(args)));
  const dfunc::DataSet* status = dfunc::FindSet(results, "StoreStatus");
  if (status == nullptr || status->items.empty()) {
    return dbase::Internal("CompressImage produced no StoreStatus");
  }
  return status->items.front().data.ToString();
}

}  // namespace dapps
