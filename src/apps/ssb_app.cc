#include "src/apps/ssb_app.h"

#include "src/base/string_util.h"
#include "src/http/http_parser.h"
#include "src/sql/ssb_queries.h"

namespace dapps {

const char kSsbQueryDsl[] = R"(
composition SsbQuery(QuerySpec, PartitionKeys) => QueryResult {
  MakeSsbFetches(Keys = all PartitionKeys) => (PartRequests = HTTPRequests);
  HTTP(Request = each PartRequests) => (PartData = Response);
  MakeDimFetch(Spec = all QuerySpec) => (DimRequest = HTTPRequest);
  HTTP(Request = each DimRequest) => (DimData = Response);
  RunPartition(Partition = each PartData, Dims = all DimData, Spec = all QuerySpec)
      => (Partial = Partial);
  MergePartials(Partials = all Partial, Spec = all QuerySpec) => (QueryResult = Result);
}
)";

namespace {
constexpr const char* kStoreBase = "http://s3.internal";

void AppendBlob(std::string* out, std::string_view blob) {
  const uint32_t size = static_cast<uint32_t>(blob.size());
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((size >> (8 * b)) & 0xff));
  }
  out->append(blob);
}

dbase::Result<std::string_view> ReadBlob(std::string_view data, size_t* pos) {
  if (data.size() - *pos < 4) {
    return dbase::InvalidArgument("truncated dims bundle");
  }
  uint32_t size = 0;
  for (int b = 3; b >= 0; --b) {
    size = (size << 8) | static_cast<uint8_t>(data[*pos + static_cast<size_t>(b)]);
  }
  *pos += 4;
  if (data.size() - *pos < size) {
    return dbase::InvalidArgument("truncated dims bundle payload");
  }
  std::string_view blob = data.substr(*pos, size);
  *pos += size;
  return blob;
}

dbase::Result<int> ParseQueryId(std::string_view spec) {
  int64_t id = 0;
  if (!dbase::ParseInt64(dbase::TrimWhitespace(spec), &id)) {
    return dbase::InvalidArgument("query spec must be an SSB query id (11/21/31/41)");
  }
  return static_cast<int>(id);
}
}  // namespace

std::string SerializeDims(const dsql::SsbData& data) {
  std::string out;
  AppendBlob(&out, dsql::SerializeTable(data.date));
  AppendBlob(&out, dsql::SerializeTable(data.customer));
  AppendBlob(&out, dsql::SerializeTable(data.supplier));
  AppendBlob(&out, dsql::SerializeTable(data.part));
  return out;
}

dbase::Result<dsql::SsbData> DeserializeDims(std::string_view bytes) {
  dsql::SsbData data;
  size_t pos = 0;
  ASSIGN_OR_RETURN(std::string_view date_bytes, ReadBlob(bytes, &pos));
  ASSIGN_OR_RETURN(data.date, dsql::DeserializeTable(date_bytes));
  ASSIGN_OR_RETURN(std::string_view customer_bytes, ReadBlob(bytes, &pos));
  ASSIGN_OR_RETURN(data.customer, dsql::DeserializeTable(customer_bytes));
  ASSIGN_OR_RETURN(std::string_view supplier_bytes, ReadBlob(bytes, &pos));
  ASSIGN_OR_RETURN(data.supplier, dsql::DeserializeTable(supplier_bytes));
  ASSIGN_OR_RETURN(std::string_view part_bytes, ReadBlob(bytes, &pos));
  ASSIGN_OR_RETURN(data.part, dsql::DeserializeTable(part_bytes));
  return data;
}

dbase::Status MakeSsbFetchesFunction(dfunc::FunctionCtx& ctx) {
  const dfunc::DataSet* keys = ctx.input_set("Keys");
  if (keys == nullptr) {
    return dbase::NotFound("MakeSsbFetches expects input set 'Keys'");
  }
  for (const auto& item : keys->items) {
    dhttp::HttpRequest request;
    request.method = dhttp::Method::kGet;
    request.target = std::string(kStoreBase) + "/ssb/" + item.data.ToString();
    ctx.EmitOutput("HTTPRequests", request.Serialize());
  }
  return dbase::OkStatus();
}

dbase::Status MakeDimFetchFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string spec, ctx.SingleInput("Spec"));
  RETURN_IF_ERROR(ParseQueryId(spec).status());  // Validate early.
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kGet;
  request.target = std::string(kStoreBase) + "/ssb/dims";
  ctx.EmitOutput("HTTPRequest", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status RunPartitionFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string part_raw, ctx.SingleInput("Partition"));
  ASSIGN_OR_RETURN(std::string dims_raw, ctx.SingleInput("Dims"));
  ASSIGN_OR_RETURN(std::string spec, ctx.SingleInput("Spec"));
  ASSIGN_OR_RETURN(int query_id, ParseQueryId(spec));

  ASSIGN_OR_RETURN(dhttp::HttpResponse part_resp, dhttp::ParseResponse(part_raw));
  ASSIGN_OR_RETURN(dhttp::HttpResponse dims_resp, dhttp::ParseResponse(dims_raw));
  if (!part_resp.IsSuccess() || !dims_resp.IsSuccess()) {
    return dbase::Unavailable("S3 fetch failed during query execution");
  }
  ASSIGN_OR_RETURN(dsql::Table partition, dsql::DeserializeTable(part_resp.body));
  ASSIGN_OR_RETURN(dsql::SsbData dims, DeserializeDims(dims_resp.body));
  ASSIGN_OR_RETURN(dsql::Table partial,
                   dsql::RunQueryOnPartition(query_id, partition, dims));
  ctx.EmitOutput("Partial", dsql::SerializeTable(partial));
  return dbase::OkStatus();
}

dbase::Status MergePartialsFunction(dfunc::FunctionCtx& ctx) {
  const dfunc::DataSet* partials = ctx.input_set("Partials");
  if (partials == nullptr || partials->items.empty()) {
    return dbase::FailedPrecondition("no partials to merge");
  }
  ASSIGN_OR_RETURN(std::string spec, ctx.SingleInput("Spec"));
  ASSIGN_OR_RETURN(int query_id, ParseQueryId(spec));
  std::vector<dsql::Table> tables;
  tables.reserve(partials->items.size());
  for (const auto& item : partials->items) {
    ASSIGN_OR_RETURN(dsql::Table table, dsql::DeserializeTable(item.data));
    tables.push_back(std::move(table));
  }
  ASSIGN_OR_RETURN(dsql::Table merged, dsql::MergeQueryPartials(query_id, tables));
  ctx.EmitOutput("Result", merged.ToCsv());
  return dbase::OkStatus();
}

dbase::Result<SsbAppHandle> InstallSsbApp(dandelion::Platform& platform,
                                          const SsbAppConfig& config) {
  RETURN_IF_ERROR(platform.RegisterFunction(
      {.name = "MakeSsbFetches", .body = MakeSsbFetchesFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "MakeDimFetch", .body = MakeDimFetchFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "RunPartition",
                                             .body = RunPartitionFunction,
                                             .context_bytes = 256ull << 20,
                                             .timeout_us = 60 * dbase::kMicrosPerSecond}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "MergePartials",
                                             .body = MergePartialsFunction,
                                             .context_bytes = 64ull << 20,
                                             .timeout_us = 60 * dbase::kMicrosPerSecond}));
  RETURN_IF_ERROR(platform.RegisterCompositionDsl(kSsbQueryDsl));

  SsbAppHandle handle;
  handle.partitions = config.partitions;
  handle.store = std::make_shared<dhttp::ObjectStoreService>();

  const dsql::SsbData data = dsql::GenerateSsb(config.data);
  const std::string dims = SerializeDims(data);
  handle.store->PutObject("/ssb/dims", dims);
  handle.stored_bytes += dims.size();
  for (const auto& partition : dsql::PartitionLineorder(data.lineorder, config.partitions)) {
    const std::string bytes = dsql::SerializeTable(partition);
    handle.stored_bytes += bytes.size();
    handle.store->PutObject("/ssb/" + partition.name(), bytes);
  }

  dhttp::LatencyModel s3_latency;
  s3_latency.base_us = config.s3_base_latency_us;
  s3_latency.per_kb_us = config.s3_us_per_kb;
  s3_latency.jitter_sigma = 0.08;
  platform.mesh().Register(config.store_host, handle.store, s3_latency);
  return handle;
}

dbase::Result<std::string> RunSsbQuery(dandelion::Platform& platform,
                                       const SsbAppHandle& handle, int query_id) {
  dfunc::DataSetList args;
  args.push_back(dfunc::DataSet{"QuerySpec", {dfunc::DataItem{"", std::to_string(query_id)}}});
  dfunc::DataSet keys;
  keys.name = "PartitionKeys";
  for (int p = 0; p < handle.partitions; ++p) {
    keys.items.push_back(dfunc::DataItem{"", dbase::StrFormat("lineorder_p%d", p)});
  }
  args.push_back(std::move(keys));
  ASSIGN_OR_RETURN(dfunc::DataSetList results, platform.Invoke("SsbQuery", std::move(args)));
  const dfunc::DataSet* result = dfunc::FindSet(results, "QueryResult");
  if (result == nullptr || result->items.empty()) {
    return dbase::Internal("SsbQuery produced no QueryResult");
  }
  return result->items.front().data.ToString();
}

}  // namespace dapps
