// Elastic SSB query processing on Dandelion (§7.7 / Figure 9): lineorder
// partitions and the dimension tables live in the (simulated) S3 object
// store; a composition fans out one compute function per partition, runs
// the per-partition plan, and merges partials — "Dandelion quickly boots
// sandboxes and spreads query execution across all CPU cores".
#ifndef SRC_APPS_SSB_APP_H_
#define SRC_APPS_SSB_APP_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/http/services.h"
#include "src/runtime/platform.h"
#include "src/sql/ssb.h"

namespace dapps {

extern const char kSsbQueryDsl[];

// Dimension-table bundle serialization (date, customer, supplier, part).
std::string SerializeDims(const dsql::SsbData& data);
dbase::Result<dsql::SsbData> DeserializeDims(std::string_view bytes);

dbase::Status MakeSsbFetchesFunction(dfunc::FunctionCtx& ctx);
dbase::Status MakeDimFetchFunction(dfunc::FunctionCtx& ctx);
dbase::Status RunPartitionFunction(dfunc::FunctionCtx& ctx);
dbase::Status MergePartialsFunction(dfunc::FunctionCtx& ctx);

struct SsbAppConfig {
  std::string store_host = "s3.internal";
  dsql::SsbConfig data;
  int partitions = 8;
  // S3-like latency model: base RTT + bandwidth term.
  dbase::Micros s3_base_latency_us = 15 * dbase::kMicrosPerMilli;
  double s3_us_per_kb = 8.0;  // ≈ 125 MB/s effective per stream.
};

struct SsbAppHandle {
  std::shared_ptr<dhttp::ObjectStoreService> store;
  uint64_t stored_bytes = 0;
  int partitions = 0;
};

// Generates data, uploads partitions + dims to the store, registers
// functions and the composition.
dbase::Result<SsbAppHandle> InstallSsbApp(dandelion::Platform& platform,
                                          const SsbAppConfig& config);

// Runs one SSB query (11/21/31/41) through the composition; returns CSV.
dbase::Result<std::string> RunSsbQuery(dandelion::Platform& platform,
                                       const SsbAppHandle& handle, int query_id);

}  // namespace dapps

#endif  // SRC_APPS_SSB_APP_H_
