#include "src/apps/text2sql_app.h"

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/http/http_parser.h"
#include "src/http/services.h"

namespace dapps {

const char kText2SqlDsl[] = R"(
composition Text2Sql(Question) => Answer {
  ParsePrompt(Question = all Question) => (LlmRequest = HTTPRequest);
  HTTP(Request = each LlmRequest) => (LlmResponse = Response);
  ExtractSql(Completion = all LlmResponse) => (DbRequest = HTTPRequest);
  HTTP(Request = each DbRequest) => (DbResponse = Response);
  FormatResult(Rows = all DbResponse, Question = all Question) => (Answer = Answer);
}
)";

namespace {
constexpr const char* kLlmUrl = "http://llm.internal/v1/completions";
constexpr const char* kDbUrl = "http://db.internal/query";
constexpr const char* kSchemaHint =
    "Schema: cities(name, country, population). Answer with one SQL statement "
    "inside ```sql ...``` fences.";
}  // namespace

dbase::Status ParsePromptFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string question, ctx.SingleInput("Question"));
  // Normalize whitespace; reject empty questions.
  std::string normalized(dbase::TrimWhitespace(question));
  if (normalized.empty()) {
    return dbase::InvalidArgument("empty question");
  }
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = kLlmUrl;
  request.body = std::string(kSchemaHint) + "\nQuestion: " + normalized;
  ctx.EmitOutput("HTTPRequest", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status ExtractSqlFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw, ctx.SingleInput("Completion"));
  ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(raw));
  if (!response.IsSuccess()) {
    return dbase::Unavailable("LLM call failed with status " +
                              std::to_string(response.status_code));
  }
  // Pull the statement out of ```sql fences; fall back to the raw body.
  std::string sql = response.body;
  const size_t fence = sql.find("```sql");
  if (fence != std::string::npos) {
    const size_t start = fence + 6;
    const size_t end = sql.find("```", start);
    sql = sql.substr(start, end == std::string::npos ? std::string::npos : end - start);
  }
  sql = std::string(dbase::TrimWhitespace(sql));
  if (sql.empty()) {
    return dbase::InvalidArgument("LLM completion contained no SQL");
  }
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = kDbUrl;
  request.body = sql;
  ctx.EmitOutput("HTTPRequest", request.Serialize());
  return dbase::OkStatus();
}

dbase::Status FormatResultFunction(dfunc::FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw, ctx.SingleInput("Rows"));
  ASSIGN_OR_RETURN(std::string question, ctx.SingleInput("Question"));
  ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(raw));
  std::string answer = "Q: " + std::string(dbase::TrimWhitespace(question)) + "\n";
  if (!response.IsSuccess()) {
    answer += "The database query failed (" + std::to_string(response.status_code) + ").\n";
  } else if (dbase::TrimWhitespace(response.body).empty()) {
    answer += "No rows matched.\n";
  } else {
    answer += "Rows:\n";
    for (auto line : dbase::SplitString(response.body, '\n')) {
      if (!line.empty()) {
        answer += "  - " + std::string(line) + "\n";
      }
    }
  }
  ctx.EmitOutput("Answer", std::move(answer));
  return dbase::OkStatus();
}

dbase::Status InstallText2SqlApp(dandelion::Platform& platform, const Text2SqlConfig& config) {
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "ParsePrompt", .body = ParsePromptFunction}));
  RETURN_IF_ERROR(platform.RegisterFunction({.name = "ExtractSql", .body = ExtractSqlFunction}));
  RETURN_IF_ERROR(
      platform.RegisterFunction({.name = "FormatResult", .body = FormatResultFunction}));
  RETURN_IF_ERROR(platform.RegisterCompositionDsl(kText2SqlDsl));

  // LLM endpoint with a canned completion for the demo question family.
  auto llm = std::make_shared<dhttp::LlmService>("```sql\nSELECT 1;\n```");
  llm->AddCannedCompletion(
      "most populous",
      "Sure! ```sql\nSELECT name FROM cities WHERE country = 'Japan' LIMIT 3\n``` "
      "This lists Japanese cities.");
  llm->AddCannedCompletion(
      "population of",
      "```sql\nSELECT name, population FROM cities WHERE name = 'Tokyo'\n```");
  dhttp::LatencyModel llm_latency;
  llm_latency.base_us = config.llm_latency_us;
  llm_latency.jitter_sigma = 0.05;
  platform.mesh().Register(config.llm_host, llm, llm_latency);

  // SQLite stand-in with a small cities table.
  auto db = std::make_shared<dhttp::KeyValueDbService>();
  db->CreateTable("cities", {"name", "country", "population"});
  db->InsertRow("cities", {"Tokyo", "Japan", "37400068"});
  db->InsertRow("cities", {"Osaka", "Japan", "19281000"});
  db->InsertRow("cities", {"Nagoya", "Japan", "9507000"});
  db->InsertRow("cities", {"Zurich", "Switzerland", "1395000"});
  db->InsertRow("cities", {"Seoul", "South Korea", "9963000"});
  dhttp::LatencyModel db_latency;
  db_latency.base_us = config.db_latency_us;
  db_latency.jitter_sigma = 0.05;
  platform.mesh().Register(config.db_host, db, db_latency);
  return dbase::OkStatus();
}

dbase::Result<std::string> RunText2Sql(dandelion::Platform& platform,
                                       const std::string& question) {
  dfunc::DataSetList args;
  args.push_back(dfunc::DataSet{"Question", {dfunc::DataItem{"", question}}});
  ASSIGN_OR_RETURN(dfunc::DataSetList results, platform.Invoke("Text2Sql", std::move(args)));
  const dfunc::DataSet* answer = dfunc::FindSet(results, "Answer");
  if (answer == nullptr || answer->items.empty()) {
    return dbase::Internal("Text2Sql produced no Answer");
  }
  return answer->items.front().data.ToString();
}

}  // namespace dapps
