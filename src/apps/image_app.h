// Image-compression application (§7.6): fetch a QOI image from the object
// store, transcode it to PNG, store the result. The compute-intensive
// counterpart to the log-processing app in the Figure 8 multiplexing
// experiment (the paper uses an 18 kB QOI input).
#ifndef SRC_APPS_IMAGE_APP_H_
#define SRC_APPS_IMAGE_APP_H_

#include <string>

#include "src/base/status.h"
#include "src/runtime/platform.h"

namespace dapps {

extern const char kImagePipelineDsl[];

// Compute functions: MakeFetchRequest (key → GET), CompressImage (QOI
// response → PNG + PUT request), CheckStored (PUT response → status text).
dbase::Status MakeFetchRequestFunction(dfunc::FunctionCtx& ctx);
dbase::Status CompressImageFunction(dfunc::FunctionCtx& ctx);
dbase::Status CheckStoredFunction(dfunc::FunctionCtx& ctx);

struct ImageAppConfig {
  std::string store_host = "storage.internal";
  uint32_t image_width = 96;
  uint32_t image_height = 64;  // ~18 kB QOI, like the paper's input.
  int num_images = 4;
  dbase::Micros store_latency_us = 800;
};

dbase::Status InstallImageApp(dandelion::Platform& platform, const ImageAppConfig& config);

// Runs the pipeline on image `index`; returns the stored-PNG confirmation.
dbase::Result<std::string> RunImageApp(dandelion::Platform& platform, int index);

}  // namespace dapps

#endif  // SRC_APPS_IMAGE_APP_H_
