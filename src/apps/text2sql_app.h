// Text2SQL agentic workflow (§7.7), ported from the TAG-benchmark style:
//   1. ParsePrompt   (compute) — normalize the user question, build the LLM
//                                 prompt with the table schema,
//   2. HTTP           (comm)   — POST to the LLM inference endpoint,
//   3. ExtractSql     (compute) — pull the SQL statement out of the LLM
//                                 completion,
//   4. HTTP           (comm)   — POST the query to the SQL database,
//   5. FormatResult   (compute) — render the rows as a user-facing answer.
// The paper's H100-served Gemma-3-4b is replaced by a canned-completion
// LLM service with the measured 1238 ms latency injected via the mesh.
#ifndef SRC_APPS_TEXT2SQL_APP_H_
#define SRC_APPS_TEXT2SQL_APP_H_

#include <string>

#include "src/base/status.h"
#include "src/runtime/platform.h"

namespace dapps {

extern const char kText2SqlDsl[];

dbase::Status ParsePromptFunction(dfunc::FunctionCtx& ctx);
dbase::Status ExtractSqlFunction(dfunc::FunctionCtx& ctx);
dbase::Status FormatResultFunction(dfunc::FunctionCtx& ctx);

struct Text2SqlConfig {
  std::string llm_host = "llm.internal";
  std::string db_host = "db.internal";
  // Stage latencies measured by the paper (§7.7): LLM 1238 ms, DB 136 ms.
  dbase::Micros llm_latency_us = 1238 * dbase::kMicrosPerMilli;
  dbase::Micros db_latency_us = 136 * dbase::kMicrosPerMilli;
  // Extra compute spin to match the paper's interpreter-bound stages
  // (parse 221 ms, extract 207 ms, format 213 ms run a Python interpreter;
  // our native functions are faster, so the difference is injected).
  bool emulate_python_overhead = false;
};

// Registers functions + composition and wires the LLM/DB services (with a
// demo 'cities' table and a canned completion for questions about it).
dbase::Status InstallText2SqlApp(dandelion::Platform& platform, const Text2SqlConfig& config);

// Runs the workflow for a natural-language question; returns the formatted
// answer.
dbase::Result<std::string> RunText2Sql(dandelion::Platform& platform,
                                       const std::string& question);

}  // namespace dapps

#endif  // SRC_APPS_TEXT2SQL_APP_H_
