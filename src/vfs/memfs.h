// In-memory virtual filesystem — the userspace filesystem that dlibc exposes
// to compute functions (§4.1): "input sets and output sets as folders, with
// items as files within these folders", letting functions do file I/O with
// zero system calls.
#ifndef SRC_VFS_MEMFS_H_
#define SRC_VFS_MEMFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace dvfs {

// Single-threaded by design: each function execution owns its private
// filesystem instance inside its memory context; there is nothing to share.
class MemFs {
 public:
  MemFs();

  // Creates a directory; parents must exist unless recursive. Creating an
  // existing directory is an error (callers track their own layout).
  dbase::Status Mkdir(std::string_view path, bool recursive = false);

  // Creates or truncates a file. Parent directory must exist.
  dbase::Status WriteFile(std::string_view path, std::string data);
  dbase::Status AppendFile(std::string_view path, std::string_view data);

  dbase::Result<std::string> ReadFile(std::string_view path) const;
  dbase::Result<uint64_t> FileSize(std::string_view path) const;

  bool Exists(std::string_view path) const;
  bool IsDirectory(std::string_view path) const;
  bool IsFile(std::string_view path) const;

  // Names (not paths) of entries, sorted; error if not a directory.
  dbase::Result<std::vector<std::string>> ListDir(std::string_view path) const;

  // Removes a file or empty directory.
  dbase::Status Remove(std::string_view path);
  // Removes a directory tree (or single file).
  dbase::Status RemoveAll(std::string_view path);

  dbase::Status Rename(std::string_view from, std::string_view to);

  // Total bytes held in files; the runtime charges this against the
  // function's memory context budget.
  uint64_t TotalBytes() const { return total_bytes_; }
  uint64_t FileCount() const;

 private:
  struct Node {
    bool is_dir = false;
    std::string data;                                   // Files only.
    std::map<std::string, std::unique_ptr<Node>> children;  // Dirs only.
  };

  // Walks to the node for a normalized path; nullptr if missing.
  Node* Find(std::string_view normalized);
  const Node* Find(std::string_view normalized) const;
  // Walks to the parent dir node; error Status captures the failure mode.
  dbase::Result<Node*> FindParentDir(std::string_view normalized);

  static uint64_t SubtreeBytes(const Node& node);
  static uint64_t SubtreeFileCount(const Node& node);

  std::unique_ptr<Node> root_;
  uint64_t total_bytes_ = 0;
};

}  // namespace dvfs

#endif  // SRC_VFS_MEMFS_H_
