#include "src/vfs/dlibc.h"

#include <cstring>

namespace dvfs {

DFile::DFile(MemFs* fs, std::string path, bool writable)
    : fs_(fs), path_(std::move(path)), writable_(writable) {}

DFile::~DFile() {
  if (dirty_) {
    (void)Flush();
  }
}

size_t DFile::Read(void* buffer, size_t size, size_t count) {
  if (size == 0 || count == 0) {
    return 0;
  }
  const size_t available = buffer_.size() > position_ ? buffer_.size() - position_ : 0;
  const size_t elements = std::min(count, available / size);
  const size_t bytes = elements * size;
  std::memcpy(buffer, buffer_.data() + position_, bytes);
  position_ += bytes;
  return elements;
}

size_t DFile::Write(const void* buffer, size_t size, size_t count) {
  if (!writable_ || size == 0 || count == 0) {
    return 0;
  }
  const size_t bytes = size * count;
  if (position_ + bytes > buffer_.size()) {
    buffer_.resize(position_ + bytes);
  }
  std::memcpy(buffer_.data() + position_, buffer, bytes);
  position_ += bytes;
  dirty_ = true;
  return count;
}

int DFile::GetChar() {
  if (position_ >= buffer_.size()) {
    return -1;
  }
  return static_cast<unsigned char>(buffer_[position_++]);
}

int DFile::PutChar(int c) {
  const char byte = static_cast<char>(c);
  if (Write(&byte, 1, 1) != 1) {
    return -1;
  }
  return static_cast<unsigned char>(byte);
}

char* DFile::Gets(char* buffer, int n) {
  if (n <= 1 || position_ >= buffer_.size()) {
    return nullptr;
  }
  int written = 0;
  while (written < n - 1 && position_ < buffer_.size()) {
    const char c = buffer_[position_++];
    buffer[written++] = c;
    if (c == '\n') {
      break;
    }
  }
  buffer[written] = '\0';
  return buffer;
}

int DFile::Puts(const char* s) {
  const size_t len = std::strlen(s);
  return Write(s, 1, len) == len ? static_cast<int>(len) : -1;
}

int DFile::Seek(long offset, DSeekWhence whence) {
  long base = 0;
  switch (whence) {
    case DSeekWhence::kSet:
      base = 0;
      break;
    case DSeekWhence::kCur:
      base = static_cast<long>(position_);
      break;
    case DSeekWhence::kEnd:
      base = static_cast<long>(buffer_.size());
      break;
  }
  const long target = base + offset;
  if (target < 0) {
    return -1;
  }
  // Seeking past the end is allowed on writable streams (fills with NUL on
  // the next write), like POSIX.
  if (!writable_ && static_cast<size_t>(target) > buffer_.size()) {
    return -1;
  }
  position_ = static_cast<size_t>(target);
  return 0;
}

dbase::Status DFile::Flush() {
  if (!writable_) {
    return dbase::OkStatus();
  }
  dirty_ = false;
  return fs_->WriteFile(path_, buffer_);
}

std::unique_ptr<DFile> DOpen(MemFs& fs, const std::string& path, const char* mode) {
  const std::string mode_str(mode == nullptr ? "" : mode);
  const bool read_only = mode_str == "r";
  const bool truncate = mode_str == "w" || mode_str == "w+";
  const bool append = mode_str == "a" || mode_str == "a+";
  const bool update = mode_str == "r+";
  if (!read_only && !truncate && !append && !update) {
    return nullptr;
  }

  std::unique_ptr<DFile> file(new DFile(&fs, path, /*writable=*/!read_only));
  if (read_only || update) {
    auto data = fs.ReadFile(path);
    if (!data.ok()) {
      return nullptr;  // "r"/"r+" require the file to exist.
    }
    file->buffer_ = std::move(data).value();
  } else if (append) {
    auto data = fs.ReadFile(path);
    if (data.ok()) {
      file->buffer_ = std::move(data).value();
    }
    file->position_ = file->buffer_.size();
    file->dirty_ = true;  // Ensure creation even without writes.
  } else {  // truncate
    file->dirty_ = true;
  }
  if (!read_only) {
    // Creating under a missing parent must fail now, not at flush time.
    if (!fs.Exists(path)) {
      if (dbase::Status created = fs.WriteFile(path, ""); !created.ok()) {
        return nullptr;
      }
    }
  }
  return file;
}

dbase::Status DWriteFile(MemFs& fs, const std::string& path, const std::string& data) {
  auto file = DOpen(fs, path, "w");
  if (file == nullptr) {
    return dbase::InvalidArgument("DOpen failed for " + path);
  }
  if (file->Write(data.data(), 1, data.size()) != data.size()) {
    return dbase::Internal("short write to " + path);
  }
  return file->Flush();
}

dbase::Result<std::string> DReadFile(MemFs& fs, const std::string& path) {
  auto file = DOpen(fs, path, "r");
  if (file == nullptr) {
    return dbase::NotFound("DOpen failed for " + path);
  }
  std::string out;
  out.resize(file->Size());
  file->Read(out.data(), 1, out.size());
  return out;
}

}  // namespace dvfs
