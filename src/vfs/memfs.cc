#include "src/vfs/memfs.h"

#include <utility>

#include "src/vfs/path.h"

namespace dvfs {

MemFs::MemFs() : root_(std::make_unique<Node>()) { root_->is_dir = true; }

MemFs::Node* MemFs::Find(std::string_view normalized) {
  Node* node = root_.get();
  for (auto part : SplitPath(normalized)) {
    if (!node->is_dir) {
      return nullptr;
    }
    auto it = node->children.find(std::string(part));
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

const MemFs::Node* MemFs::Find(std::string_view normalized) const {
  return const_cast<MemFs*>(this)->Find(normalized);
}

dbase::Result<MemFs::Node*> MemFs::FindParentDir(std::string_view normalized) {
  ASSIGN_OR_RETURN(std::string parent, ParentPath(normalized));
  Node* node = Find(parent);
  if (node == nullptr) {
    return dbase::NotFound("parent directory does not exist: " + parent);
  }
  if (!node->is_dir) {
    return dbase::FailedPrecondition("parent is not a directory: " + parent);
  }
  return node;
}

dbase::Status MemFs::Mkdir(std::string_view path, bool recursive) {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  if (normalized == "/") {
    return dbase::AlreadyExists("root always exists");
  }
  if (recursive) {
    Node* node = root_.get();
    for (auto part : SplitPath(normalized)) {
      auto it = node->children.find(std::string(part));
      if (it == node->children.end()) {
        auto child = std::make_unique<Node>();
        child->is_dir = true;
        Node* raw = child.get();
        node->children.emplace(std::string(part), std::move(child));
        node = raw;
      } else {
        if (!it->second->is_dir) {
          return dbase::FailedPrecondition("path component is a file: " + std::string(part));
        }
        node = it->second.get();
      }
    }
    return dbase::OkStatus();
  }
  ASSIGN_OR_RETURN(Node * parent, FindParentDir(normalized));
  ASSIGN_OR_RETURN(std::string name, BaseName(normalized));
  if (parent->children.count(name) > 0) {
    return dbase::AlreadyExists("entry already exists: " + normalized);
  }
  auto child = std::make_unique<Node>();
  child->is_dir = true;
  parent->children.emplace(std::move(name), std::move(child));
  return dbase::OkStatus();
}

dbase::Status MemFs::WriteFile(std::string_view path, std::string data) {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  ASSIGN_OR_RETURN(Node * parent, FindParentDir(normalized));
  ASSIGN_OR_RETURN(std::string name, BaseName(normalized));
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    if (it->second->is_dir) {
      return dbase::FailedPrecondition("cannot overwrite directory with file: " + normalized);
    }
    total_bytes_ -= it->second->data.size();
    total_bytes_ += data.size();
    it->second->data = std::move(data);
    return dbase::OkStatus();
  }
  auto node = std::make_unique<Node>();
  node->is_dir = false;
  total_bytes_ += data.size();
  node->data = std::move(data);
  parent->children.emplace(std::move(name), std::move(node));
  return dbase::OkStatus();
}

dbase::Status MemFs::AppendFile(std::string_view path, std::string_view data) {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  Node* node = Find(normalized);
  if (node == nullptr) {
    return WriteFile(path, std::string(data));
  }
  if (node->is_dir) {
    return dbase::FailedPrecondition("cannot append to directory: " + normalized);
  }
  node->data.append(data);
  total_bytes_ += data.size();
  return dbase::OkStatus();
}

dbase::Result<std::string> MemFs::ReadFile(std::string_view path) const {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  const Node* node = Find(normalized);
  if (node == nullptr) {
    return dbase::NotFound("no such file: " + normalized);
  }
  if (node->is_dir) {
    return dbase::FailedPrecondition("is a directory: " + normalized);
  }
  return node->data;
}

dbase::Result<uint64_t> MemFs::FileSize(std::string_view path) const {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  const Node* node = Find(normalized);
  if (node == nullptr) {
    return dbase::NotFound("no such file: " + normalized);
  }
  if (node->is_dir) {
    return dbase::FailedPrecondition("is a directory: " + normalized);
  }
  return static_cast<uint64_t>(node->data.size());
}

bool MemFs::Exists(std::string_view path) const {
  auto normalized = NormalizePath(path);
  return normalized.ok() && Find(normalized.value()) != nullptr;
}

bool MemFs::IsDirectory(std::string_view path) const {
  auto normalized = NormalizePath(path);
  if (!normalized.ok()) {
    return false;
  }
  const Node* node = Find(normalized.value());
  return node != nullptr && node->is_dir;
}

bool MemFs::IsFile(std::string_view path) const {
  auto normalized = NormalizePath(path);
  if (!normalized.ok()) {
    return false;
  }
  const Node* node = Find(normalized.value());
  return node != nullptr && !node->is_dir;
}

dbase::Result<std::vector<std::string>> MemFs::ListDir(std::string_view path) const {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  const Node* node = Find(normalized);
  if (node == nullptr) {
    return dbase::NotFound("no such directory: " + normalized);
  }
  if (!node->is_dir) {
    return dbase::FailedPrecondition("not a directory: " + normalized);
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);  // std::map iterates sorted.
  }
  return names;
}

uint64_t MemFs::SubtreeBytes(const Node& node) {
  if (!node.is_dir) {
    return node.data.size();
  }
  uint64_t total = 0;
  for (const auto& [name, child] : node.children) {
    total += SubtreeBytes(*child);
  }
  return total;
}

uint64_t MemFs::SubtreeFileCount(const Node& node) {
  if (!node.is_dir) {
    return 1;
  }
  uint64_t total = 0;
  for (const auto& [name, child] : node.children) {
    total += SubtreeFileCount(*child);
  }
  return total;
}

dbase::Status MemFs::Remove(std::string_view path) {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  if (normalized == "/") {
    return dbase::InvalidArgument("cannot remove root");
  }
  ASSIGN_OR_RETURN(Node * parent, FindParentDir(normalized));
  ASSIGN_OR_RETURN(std::string name, BaseName(normalized));
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    return dbase::NotFound("no such entry: " + normalized);
  }
  if (it->second->is_dir && !it->second->children.empty()) {
    return dbase::FailedPrecondition("directory not empty: " + normalized);
  }
  total_bytes_ -= SubtreeBytes(*it->second);
  parent->children.erase(it);
  return dbase::OkStatus();
}

dbase::Status MemFs::RemoveAll(std::string_view path) {
  ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  if (normalized == "/") {
    return dbase::InvalidArgument("cannot remove root");
  }
  ASSIGN_OR_RETURN(Node * parent, FindParentDir(normalized));
  ASSIGN_OR_RETURN(std::string name, BaseName(normalized));
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    return dbase::NotFound("no such entry: " + normalized);
  }
  total_bytes_ -= SubtreeBytes(*it->second);
  parent->children.erase(it);
  return dbase::OkStatus();
}

dbase::Status MemFs::Rename(std::string_view from, std::string_view to) {
  ASSIGN_OR_RETURN(std::string from_norm, NormalizePath(from));
  ASSIGN_OR_RETURN(std::string to_norm, NormalizePath(to));
  if (from_norm == "/" || to_norm == "/") {
    return dbase::InvalidArgument("cannot rename to or from root");
  }
  ASSIGN_OR_RETURN(Node * from_parent, FindParentDir(from_norm));
  ASSIGN_OR_RETURN(std::string from_name, BaseName(from_norm));
  auto it = from_parent->children.find(from_name);
  if (it == from_parent->children.end()) {
    return dbase::NotFound("no such entry: " + from_norm);
  }
  ASSIGN_OR_RETURN(Node * to_parent, FindParentDir(to_norm));
  ASSIGN_OR_RETURN(std::string to_name, BaseName(to_norm));
  if (to_parent->children.count(to_name) > 0) {
    return dbase::AlreadyExists("destination already exists: " + to_norm);
  }
  // Moving a directory into its own subtree would detach it; prevent by
  // prefix check on the normalized paths.
  if (to_norm.size() > from_norm.size() && to_norm.compare(0, from_norm.size(), from_norm) == 0 &&
      to_norm[from_norm.size()] == '/') {
    return dbase::InvalidArgument("cannot move a directory into itself");
  }
  std::unique_ptr<Node> node = std::move(it->second);
  from_parent->children.erase(it);
  to_parent->children.emplace(std::move(to_name), std::move(node));
  return dbase::OkStatus();
}

uint64_t MemFs::FileCount() const { return SubtreeFileCount(*root_); }

}  // namespace dvfs
