#include "src/vfs/path.h"

namespace dvfs {

dbase::Result<std::string> NormalizePath(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    return dbase::InvalidArgument("path must be absolute: " + std::string(path));
  }
  std::string out;
  out.reserve(path.size());
  out.push_back('/');
  for (size_t i = 1; i < path.size(); ++i) {
    const char c = path[i];
    if (c == '\0') {
      return dbase::InvalidArgument("path contains NUL byte");
    }
    if (c == '/' && out.back() == '/') {
      continue;  // Collapse runs of '/'.
    }
    out.push_back(c);
  }
  if (out.size() > 1 && out.back() == '/') {
    out.pop_back();
  }
  // Reject '.' and '..' components: the sandboxed filesystem view is flat by
  // construction and traversal would only ever be an escape attempt.
  for (auto part : SplitPath(out)) {
    if (part == "." || part == "..") {
      return dbase::InvalidArgument("path may not contain '.' or '..' components");
    }
  }
  return out;
}

std::vector<std::string_view> SplitPath(std::string_view normalized) {
  std::vector<std::string_view> parts;
  size_t start = 1;  // Skip leading '/'.
  while (start < normalized.size()) {
    size_t end = normalized.find('/', start);
    if (end == std::string_view::npos) {
      end = normalized.size();
    }
    if (end > start) {
      parts.push_back(normalized.substr(start, end - start));
    }
    start = end + 1;
  }
  return parts;
}

dbase::Result<std::string> ParentPath(std::string_view normalized) {
  if (normalized == "/") {
    return dbase::InvalidArgument("root has no parent");
  }
  const size_t slash = normalized.rfind('/');
  if (slash == 0) {
    return std::string("/");
  }
  return std::string(normalized.substr(0, slash));
}

dbase::Result<std::string> BaseName(std::string_view normalized) {
  if (normalized == "/") {
    return dbase::InvalidArgument("root has no base name");
  }
  const size_t slash = normalized.rfind('/');
  return std::string(normalized.substr(slash + 1));
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') {
    out.push_back('/');
  }
  out.append(name);
  return out;
}

}  // namespace dvfs
