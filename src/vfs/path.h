// Path algebra for the in-memory virtual filesystem. Paths are absolute,
// '/'-separated, with no '.'/'..' support — compute functions see a fixed
// layout ("/in/<set>/<item>", "/out/<set>/<item>") and never need relative
// navigation.
#ifndef SRC_VFS_PATH_H_
#define SRC_VFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace dvfs {

// Normalizes an absolute path: collapses duplicate '/', strips the trailing
// one. Returns an error for relative paths, empty paths, or components
// containing NUL. "/" normalizes to "/".
dbase::Result<std::string> NormalizePath(std::string_view path);

// Splits a normalized path into components; "/" yields an empty vector.
std::vector<std::string_view> SplitPath(std::string_view normalized);

// Parent of a normalized path ("/a/b" → "/a", "/a" → "/"). "/" has no
// parent and returns an error.
dbase::Result<std::string> ParentPath(std::string_view normalized);

// Final component ("/a/b" → "b"). Error for "/".
dbase::Result<std::string> BaseName(std::string_view normalized);

// Joins with exactly one '/' between the parts.
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace dvfs

#endif  // SRC_VFS_PATH_H_
