// dlibc: the C-style file interface compute functions link against (§4.1).
// "These libraries provide a high-level interface with a userspace
// in-memory virtual filesystem ... a compute function [can] read inputs and
// write outputs as standard file operations without invoking system calls."
//
// The API mirrors <stdio.h> closely enough that porting POSIX code is
// mechanical (fopen→DOpen, fread→DRead, ...), but every operation resolves
// inside the function's MemFs — zero syscalls by construction.
#ifndef SRC_VFS_DLIBC_H_
#define SRC_VFS_DLIBC_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/vfs/memfs.h"

namespace dvfs {

// Stream positions for DSeek.
enum class DSeekWhence { kSet, kCur, kEnd };

// An open file stream over a MemFs. Obtained from DOpen; must be closed
// with DClose (or let the unique_ptr run out of scope — writes flush on
// destruction too).
class DFile {
 public:
  ~DFile();

  DFile(const DFile&) = delete;
  DFile& operator=(const DFile&) = delete;

  // Returns elements read (like fread).
  size_t Read(void* buffer, size_t size, size_t count);
  // Returns elements written (like fwrite).
  size_t Write(const void* buffer, size_t size, size_t count);
  // Reads one byte; -1 at EOF (like fgetc).
  int GetChar();
  // Writes one byte; returns it, or -1 on read-only streams.
  int PutChar(int c);
  // Reads a line up to n-1 bytes (like fgets); nullptr at EOF.
  char* Gets(char* buffer, int n);
  // Writes a NUL-terminated string; returns non-negative on success.
  int Puts(const char* s);

  int Seek(long offset, DSeekWhence whence);
  long Tell() const { return static_cast<long>(position_); }
  bool AtEof() const { return position_ >= buffer_.size(); }
  size_t Size() const { return buffer_.size(); }

  // Writes the buffer back to the filesystem (no-op for read-only).
  dbase::Status Flush();

 private:
  friend std::unique_ptr<DFile> DOpen(MemFs& fs, const std::string& path, const char* mode);
  DFile(MemFs* fs, std::string path, bool writable);

  MemFs* fs_;
  std::string path_;
  std::string buffer_;
  size_t position_ = 0;
  bool writable_ = false;
  bool dirty_ = false;
};

// Opens a stream. Modes: "r" (must exist), "w" (create/truncate),
// "a" (create/append), "r+" (read/write, must exist). Returns nullptr on
// failure, like fopen.
std::unique_ptr<DFile> DOpen(MemFs& fs, const std::string& path, const char* mode);

// Convenience one-shot helpers.
dbase::Status DWriteFile(MemFs& fs, const std::string& path, const std::string& data);
dbase::Result<std::string> DReadFile(MemFs& fs, const std::string& path);

}  // namespace dvfs

#endif  // SRC_VFS_DLIBC_H_
