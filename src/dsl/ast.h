// AST for the composition DSL. A source file contains one or more
// composition definitions; each definition is an ordered list of node
// statements wiring named dataflow values between function input/output
// sets with a distribution keyword (§4.1):
//
//   composition RenderLogs(AccessToken) => HTMLOutput {
//     Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
//     HTTP(Request = each AuthRequest)      => (AuthResponse = Response);
//     ...
//   }
#ifndef SRC_DSL_AST_H_
#define SRC_DSL_AST_H_

#include <string>
#include <vector>

namespace ddsl {

// How items of the source value are distributed over instances of the
// consuming function (§4.1): 'all' → one instance gets every item, 'each' →
// one instance per item, 'key' → one instance per distinct item key.
enum class Distribution { kAll, kEach, kKey };

std::string_view DistributionName(Distribution d);

struct SourceLoc {
  int line = 0;
  int column = 0;
};

struct InputBindingAst {
  std::string set_name;  // The function's declared input set.
  Distribution dist = Distribution::kAll;
  bool optional = false;  // §4.4: function may run with this set empty.
  std::string source;     // Composition value feeding this set.
  SourceLoc loc;
};

struct OutputBindingAst {
  std::string alias;     // Composition value this output defines.
  std::string set_name;  // The function's declared output set.
  SourceLoc loc;
};

struct NodeStmtAst {
  std::string callee;  // Compute function, communication function, or a
                       // nested composition name.
  std::vector<InputBindingAst> inputs;
  std::vector<OutputBindingAst> outputs;
  SourceLoc loc;
};

struct CompositionAst {
  std::string name;
  std::vector<std::string> params;   // Composition inputs.
  std::vector<std::string> results;  // Composition outputs.
  std::vector<NodeStmtAst> nodes;
  SourceLoc loc;
};

// Pretty-prints the AST back to canonical DSL text (round-trip testable).
std::string FormatComposition(const CompositionAst& ast);

}  // namespace ddsl

#endif  // SRC_DSL_AST_H_
