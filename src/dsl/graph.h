// Validated composition graphs — the form the dispatcher executes. Lowering
// from the AST checks the dataflow rules: every consumed value has exactly
// one producer (a composition parameter or an earlier node's output alias),
// aliases are unique, declared results are produced, and the graph is
// acyclic (guaranteed by define-before-use, and re-checked structurally for
// graphs assembled programmatically).
#ifndef SRC_DSL_GRAPH_H_
#define SRC_DSL_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/dsl/ast.h"

namespace ddsl {

// Index of the producer of a named value.
struct ValueProducer {
  // kParam: the value is the composition parameter params[index].
  // kNode: the value is output binding `binding` of nodes[index].
  enum class Kind { kParam, kNode } kind = Kind::kParam;
  size_t index = 0;
  size_t binding = 0;
};

struct GraphInput {
  std::string set_name;
  Distribution dist = Distribution::kAll;
  bool optional = false;
  std::string source_value;
};

struct GraphOutput {
  std::string value;     // Composition-level value this output defines.
  std::string set_name;  // Function output set.
};

struct GraphNode {
  std::string callee;
  std::vector<GraphInput> inputs;
  std::vector<GraphOutput> outputs;
};

class CompositionGraph {
 public:
  // Lowers and validates an AST.
  static dbase::Result<CompositionGraph> FromAst(const CompositionAst& ast);

  // Validates a programmatically assembled graph (same rules as FromAst,
  // plus an explicit cycle check since node order is not trusted).
  static dbase::Result<CompositionGraph> Create(std::string name,
                                                std::vector<std::string> params,
                                                std::vector<std::string> results,
                                                std::vector<GraphNode> nodes);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& params() const { return params_; }
  const std::vector<std::string>& results() const { return results_; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }

  // Producer of a named value; error if the value is unknown.
  dbase::Result<ValueProducer> ProducerOf(const std::string& value) const;

  // Node indices in a valid execution order (producers before consumers).
  const std::vector<size_t>& topo_order() const { return topo_order_; }

  // Consumer count per value name — the dispatcher uses this to know when
  // an intermediate value's memory can be reclaimed (§5: "deallocates a
  // completed function's memory context when all data-dependent functions
  // have consumed its output"). Values that are composition results count
  // one extra consumer (the client).
  int ConsumerCount(const std::string& value) const;

  std::string DebugString() const;

 private:
  dbase::Status Validate();

  std::string name_;
  std::vector<std::string> params_;
  std::vector<std::string> results_;
  std::vector<GraphNode> nodes_;
  std::map<std::string, ValueProducer> producers_;
  std::map<std::string, int> consumer_counts_;
  std::vector<size_t> topo_order_;
};

}  // namespace ddsl

#endif  // SRC_DSL_GRAPH_H_
