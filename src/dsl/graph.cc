#include "src/dsl/graph.h"

#include <queue>
#include <set>

#include "src/base/string_util.h"

namespace ddsl {

dbase::Result<CompositionGraph> CompositionGraph::FromAst(const CompositionAst& ast) {
  std::vector<GraphNode> nodes;
  nodes.reserve(ast.nodes.size());
  for (const auto& stmt : ast.nodes) {
    GraphNode node;
    node.callee = stmt.callee;
    for (const auto& in : stmt.inputs) {
      node.inputs.push_back(GraphInput{in.set_name, in.dist, in.optional, in.source});
    }
    for (const auto& out : stmt.outputs) {
      node.outputs.push_back(GraphOutput{out.alias, out.set_name});
    }
    nodes.push_back(std::move(node));
  }
  return Create(ast.name, ast.params, ast.results, std::move(nodes));
}

dbase::Result<CompositionGraph> CompositionGraph::Create(std::string name,
                                                         std::vector<std::string> params,
                                                         std::vector<std::string> results,
                                                         std::vector<GraphNode> nodes) {
  CompositionGraph graph;
  graph.name_ = std::move(name);
  graph.params_ = std::move(params);
  graph.results_ = std::move(results);
  graph.nodes_ = std::move(nodes);
  RETURN_IF_ERROR(graph.Validate());
  return graph;
}

dbase::Status CompositionGraph::Validate() {
  using dbase::InvalidArgument;

  if (name_.empty()) {
    return InvalidArgument("composition name may not be empty");
  }
  if (nodes_.empty()) {
    return InvalidArgument("composition must contain at least one node");
  }
  if (results_.empty()) {
    return InvalidArgument("composition must declare at least one result");
  }

  producers_.clear();
  consumer_counts_.clear();
  topo_order_.clear();

  // Parameters define values.
  for (size_t i = 0; i < params_.size(); ++i) {
    ValueProducer producer{ValueProducer::Kind::kParam, i, 0};
    auto [it, inserted] = producers_.emplace(params_[i], producer);
    if (!inserted) {
      return InvalidArgument("duplicate composition parameter: " + params_[i]);
    }
  }

  // Node outputs define values.
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const GraphNode& node = nodes_[n];
    if (node.callee.empty()) {
      return InvalidArgument("node callee may not be empty");
    }
    if (node.inputs.empty()) {
      return InvalidArgument(dbase::StrFormat("node %zu (%s): functions take at least one input",
                                              n, node.callee.c_str()));
    }
    std::set<std::string> set_names;
    int fanout_bindings = 0;
    for (const auto& in : node.inputs) {
      if (!set_names.insert(in.set_name).second) {
        return InvalidArgument(dbase::StrFormat("node %zu (%s): duplicate input set '%s'", n,
                                                node.callee.c_str(), in.set_name.c_str()));
      }
      if (in.dist != Distribution::kAll) {
        ++fanout_bindings;
      }
    }
    // The instance count of a node is driven by at most one 'each'/'key'
    // binding; the semantics of several fan-out bindings on one node are
    // undefined in the paper and rejected here.
    if (fanout_bindings > 1) {
      return InvalidArgument(
          dbase::StrFormat("node %zu (%s): at most one input may use 'each' or 'key'", n,
                           node.callee.c_str()));
    }
    std::set<std::string> out_sets;
    for (size_t b = 0; b < node.outputs.size(); ++b) {
      const auto& out = node.outputs[b];
      if (!out_sets.insert(out.set_name).second) {
        return InvalidArgument(dbase::StrFormat("node %zu (%s): duplicate output set '%s'", n,
                                                node.callee.c_str(), out.set_name.c_str()));
      }
      ValueProducer producer{ValueProducer::Kind::kNode, n, b};
      auto [it, inserted] = producers_.emplace(out.value, producer);
      if (!inserted) {
        return InvalidArgument(
            dbase::StrFormat("value '%s' defined more than once", out.value.c_str()));
      }
    }
  }

  // All consumed values must exist; count consumers.
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const auto& in : nodes_[n].inputs) {
      auto it = producers_.find(in.source_value);
      if (it == producers_.end()) {
        return InvalidArgument(dbase::StrFormat("node %zu (%s): input '%s' reads undefined value '%s'",
                                                n, nodes_[n].callee.c_str(), in.set_name.c_str(),
                                                in.source_value.c_str()));
      }
      ++consumer_counts_[in.source_value];
    }
  }

  // All declared results must be produced; the client is a consumer.
  std::set<std::string> result_names;
  for (const auto& result : results_) {
    if (!result_names.insert(result).second) {
      return InvalidArgument("duplicate composition result: " + result);
    }
    if (producers_.count(result) == 0) {
      return InvalidArgument("composition result '" + result + "' is never produced");
    }
    ++consumer_counts_[result];
  }

  // Structural cycle check (Kahn). Edges: producer node → consumer node.
  std::vector<int> in_degree(nodes_.size(), 0);
  std::vector<std::vector<size_t>> adjacency(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    for (const auto& in : nodes_[n].inputs) {
      const ValueProducer& producer = producers_.at(in.source_value);
      if (producer.kind == ValueProducer::Kind::kNode) {
        if (producer.index == n) {
          return InvalidArgument(
              dbase::StrFormat("node %zu (%s) consumes its own output", n, nodes_[n].callee.c_str()));
        }
        adjacency[producer.index].push_back(n);
        ++in_degree[n];
      }
    }
  }
  std::queue<size_t> ready;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (in_degree[n] == 0) {
      ready.push(n);
    }
  }
  while (!ready.empty()) {
    const size_t n = ready.front();
    ready.pop();
    topo_order_.push_back(n);
    for (size_t next : adjacency[n]) {
      if (--in_degree[next] == 0) {
        ready.push(next);
      }
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    return InvalidArgument("composition graph contains a cycle");
  }
  return dbase::OkStatus();
}

dbase::Result<ValueProducer> CompositionGraph::ProducerOf(const std::string& value) const {
  auto it = producers_.find(value);
  if (it == producers_.end()) {
    return dbase::NotFound("unknown composition value: " + value);
  }
  return it->second;
}

int CompositionGraph::ConsumerCount(const std::string& value) const {
  auto it = consumer_counts_.find(value);
  return it == consumer_counts_.end() ? 0 : it->second;
}

std::string CompositionGraph::DebugString() const {
  std::string out = "composition " + name_ + " nodes=[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += nodes_[i].callee;
  }
  out += "]";
  return out;
}

}  // namespace ddsl
