#include "src/dsl/lexer.h"

#include <cctype>

#include "src/base/string_util.h"

namespace ddsl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKwComposition:
      return "'composition'";
    case TokenKind::kKwAll:
      return "'all'";
    case TokenKind::kKwEach:
      return "'each'";
    case TokenKind::kKwKey:
      return "'key'";
    case TokenKind::kKwOptional:
      return "'optional'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kArrow:
      return "'=>'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {
bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

TokenKind KeywordOrIdentifier(std::string_view text) {
  if (text == "composition") {
    return TokenKind::kKwComposition;
  }
  if (text == "all") {
    return TokenKind::kKwAll;
  }
  if (text == "each") {
    return TokenKind::kKwEach;
  }
  if (text == "key") {
    return TokenKind::kKwKey;
  }
  if (text == "optional") {
    return TokenKind::kKwOptional;
  }
  return TokenKind::kIdentifier;
}
}  // namespace

dbase::Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += count;
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    // Comments: '//' and '#' to end of line.
    if (c == '#' || (c == '/' && i + 1 < source.size() && source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') {
        advance(1);
      }
      continue;
    }

    Token token;
    token.line = line;
    token.column = column;

    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < source.size() && IsIdentChar(source[end])) {
        ++end;
      }
      token.text = std::string(source.substr(i, end - i));
      token.kind = KeywordOrIdentifier(token.text);
      advance(end - i);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '=' && i + 1 < source.size() && source[i + 1] == '>') {
      token.kind = TokenKind::kArrow;
      advance(2);
      tokens.push_back(std::move(token));
      continue;
    }

    switch (c) {
      case '(':
        token.kind = TokenKind::kLParen;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        break;
      case '{':
        token.kind = TokenKind::kLBrace;
        break;
      case '}':
        token.kind = TokenKind::kRBrace;
        break;
      case ',':
        token.kind = TokenKind::kComma;
        break;
      case ';':
        token.kind = TokenKind::kSemicolon;
        break;
      case '=':
        token.kind = TokenKind::kEquals;
        break;
      default:
        return dbase::InvalidArgument(
            dbase::StrFormat("unexpected character '%c' at %d:%d", c, line, column));
    }
    advance(1);
    tokens.push_back(std::move(token));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace ddsl
