// Recursive-descent parser for the composition DSL.
#ifndef SRC_DSL_PARSER_H_
#define SRC_DSL_PARSER_H_

#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/dsl/ast.h"

namespace ddsl {

// Parses a source file containing one or more composition definitions.
// Errors carry line:column positions.
dbase::Result<std::vector<CompositionAst>> ParseCompositions(std::string_view source);

// Convenience: parses a source expected to contain exactly one composition.
dbase::Result<CompositionAst> ParseSingleComposition(std::string_view source);

}  // namespace ddsl

#endif  // SRC_DSL_PARSER_H_
