#include "src/dsl/parser.h"

#include "src/base/string_util.h"
#include "src/dsl/lexer.h"

namespace ddsl {

std::string_view DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kAll:
      return "all";
    case Distribution::kEach:
      return "each";
    case Distribution::kKey:
      return "key";
  }
  return "all";
}

std::string FormatComposition(const CompositionAst& ast) {
  std::string out = "composition " + ast.name + "(";
  for (size_t i = 0; i < ast.params.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += ast.params[i];
  }
  out += ") => ";
  for (size_t i = 0; i < ast.results.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += ast.results[i];
  }
  out += " {\n";
  for (const auto& node : ast.nodes) {
    out += "  " + node.callee + "(";
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const auto& in = node.inputs[i];
      if (i > 0) {
        out += ", ";
      }
      out += in.set_name;
      out += " = ";
      out += DistributionName(in.dist);
      if (in.optional) {
        out += " optional";
      }
      out += " ";
      out += in.source;
    }
    out += ") => (";
    for (size_t i = 0; i < node.outputs.size(); ++i) {
      const auto& o = node.outputs[i];
      if (i > 0) {
        out += ", ";
      }
      out += o.alias + " = " + o.set_name;
    }
    out += ");\n";
  }
  out += "}\n";
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  dbase::Result<std::vector<CompositionAst>> ParseFile() {
    std::vector<CompositionAst> out;
    while (Peek().kind != TokenKind::kEof) {
      ASSIGN_OR_RETURN(CompositionAst comp, ParseComposition());
      out.push_back(std::move(comp));
    }
    if (out.empty()) {
      return Error("source contains no composition definition");
    }
    return out;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  dbase::Status Error(const std::string& message) const {
    const Token& t = Peek();
    return dbase::InvalidArgument(
        dbase::StrFormat("%d:%d: %s", t.line, t.column, message.c_str()));
  }

  dbase::Result<Token> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(dbase::StrFormat("expected %s, found %s",
                                    std::string(TokenKindName(kind)).c_str(),
                                    std::string(TokenKindName(Peek().kind)).c_str()));
    }
    return Advance();
  }

  dbase::Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(dbase::StrFormat("expected %s, found %s", what,
                                    std::string(TokenKindName(Peek().kind)).c_str()));
    }
    return Advance().text;
  }

  // name_list := identifier (',' identifier)*
  dbase::Result<std::vector<std::string>> ParseNameList(const char* what) {
    std::vector<std::string> names;
    ASSIGN_OR_RETURN(std::string first, ExpectIdentifier(what));
    names.push_back(std::move(first));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      ASSIGN_OR_RETURN(std::string next, ExpectIdentifier(what));
      names.push_back(std::move(next));
    }
    return names;
  }

  dbase::Result<CompositionAst> ParseComposition() {
    CompositionAst comp;
    comp.loc = {Peek().line, Peek().column};
    RETURN_IF_ERROR(Expect(TokenKind::kKwComposition).status());
    ASSIGN_OR_RETURN(comp.name, ExpectIdentifier("composition name"));
    RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    if (Peek().kind != TokenKind::kRParen) {
      ASSIGN_OR_RETURN(comp.params, ParseNameList("parameter name"));
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    RETURN_IF_ERROR(Expect(TokenKind::kArrow).status());
    ASSIGN_OR_RETURN(comp.results, ParseNameList("result name"));
    RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      if (Peek().kind == TokenKind::kEof) {
        return Error("unterminated composition body (missing '}')");
      }
      ASSIGN_OR_RETURN(NodeStmtAst node, ParseNodeStmt());
      comp.nodes.push_back(std::move(node));
    }
    Advance();  // '}'
    if (comp.nodes.empty()) {
      return dbase::InvalidArgument(
          dbase::StrFormat("%d:%d: composition '%s' has no nodes", comp.loc.line,
                           comp.loc.column, comp.name.c_str()));
    }
    return comp;
  }

  // node_stmt := callee '(' input_binding (',' input_binding)* ')'
  //              '=>' '(' output_binding (',' output_binding)* ')' ';'
  dbase::Result<NodeStmtAst> ParseNodeStmt() {
    NodeStmtAst node;
    node.loc = {Peek().line, Peek().column};
    ASSIGN_OR_RETURN(node.callee, ExpectIdentifier("function or composition name"));
    RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        ASSIGN_OR_RETURN(InputBindingAst binding, ParseInputBinding());
        node.inputs.push_back(std::move(binding));
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Advance();
      }
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    RETURN_IF_ERROR(Expect(TokenKind::kArrow).status());
    RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        ASSIGN_OR_RETURN(OutputBindingAst binding, ParseOutputBinding());
        node.outputs.push_back(std::move(binding));
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Advance();
      }
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    return node;
  }

  // input_binding := set_name '=' ('all'|'each'|'key') ['optional'] source
  dbase::Result<InputBindingAst> ParseInputBinding() {
    InputBindingAst binding;
    binding.loc = {Peek().line, Peek().column};
    ASSIGN_OR_RETURN(binding.set_name, ExpectIdentifier("input set name"));
    RETURN_IF_ERROR(Expect(TokenKind::kEquals).status());
    switch (Peek().kind) {
      case TokenKind::kKwAll:
        binding.dist = Distribution::kAll;
        break;
      case TokenKind::kKwEach:
        binding.dist = Distribution::kEach;
        break;
      case TokenKind::kKwKey:
        binding.dist = Distribution::kKey;
        break;
      default:
        return Error("expected distribution keyword 'all', 'each', or 'key'");
    }
    Advance();
    if (Peek().kind == TokenKind::kKwOptional) {
      binding.optional = true;
      Advance();
    }
    ASSIGN_OR_RETURN(binding.source, ExpectIdentifier("source value name"));
    return binding;
  }

  // output_binding := alias '=' set_name
  dbase::Result<OutputBindingAst> ParseOutputBinding() {
    OutputBindingAst binding;
    binding.loc = {Peek().line, Peek().column};
    ASSIGN_OR_RETURN(binding.alias, ExpectIdentifier("output alias"));
    RETURN_IF_ERROR(Expect(TokenKind::kEquals).status());
    ASSIGN_OR_RETURN(binding.set_name, ExpectIdentifier("output set name"));
    return binding;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

dbase::Result<std::vector<CompositionAst>> ParseCompositions(std::string_view source) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseFile();
}

dbase::Result<CompositionAst> ParseSingleComposition(std::string_view source) {
  ASSIGN_OR_RETURN(auto compositions, ParseCompositions(source));
  if (compositions.size() != 1) {
    return dbase::InvalidArgument(
        dbase::StrFormat("expected exactly one composition, found %zu", compositions.size()));
  }
  return std::move(compositions.front());
}

}  // namespace ddsl
