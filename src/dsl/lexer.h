// Lexer for the Dandelion composition DSL (§4.1, Listing 2).
#ifndef SRC_DSL_LEXER_H_
#define SRC_DSL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace ddsl {

enum class TokenKind {
  kIdentifier,
  kKwComposition,
  kKwAll,
  kKwEach,
  kKwKey,
  kKwOptional,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kEquals,
  kArrow,  // "=>"
  kEof,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // Identifier spelling; empty for punctuation.
  int line = 1;
  int column = 1;
};

// Tokenizes the whole input. Comments run from "//" or "#" to end of line.
// Identifiers are [A-Za-z_][A-Za-z0-9_]*.
dbase::Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace ddsl

#endif  // SRC_DSL_LEXER_H_
