#include "src/trace/sampler.h"

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"

namespace dtrace {

Trace SampleTrace(const Trace& source, const SamplerConfig& config) {
  if (static_cast<int>(source.functions.size()) <= config.target_functions) {
    return source;
  }
  dbase::Rng rng(config.seed);

  // Order functions by total invocations.
  std::vector<size_t> order(source.functions.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return source.functions[a].TotalInvocations() < source.functions[b].TotalInvocations();
  });

  // Stratify into rate quantiles; sample from each stratum proportionally
  // so the sampled rate distribution matches the source distribution.
  Trace out;
  out.duration_minutes = source.duration_minutes;
  const int strata = std::max(1, config.strata);
  const size_t per_stratum_src = (order.size() + strata - 1) / static_cast<size_t>(strata);
  const int per_stratum_target =
      (config.target_functions + strata - 1) / strata;

  int next_id = 0;
  for (int s = 0; s < strata && next_id < config.target_functions; ++s) {
    const size_t begin = static_cast<size_t>(s) * per_stratum_src;
    if (begin >= order.size()) {
      break;
    }
    const size_t end = std::min(order.size(), begin + per_stratum_src);
    // Sample without replacement within the stratum.
    std::vector<size_t> stratum(order.begin() + static_cast<long>(begin),
                                order.begin() + static_cast<long>(end));
    for (int k = 0; k < per_stratum_target && !stratum.empty() &&
                    next_id < config.target_functions;
         ++k) {
      const size_t pick = rng.NextBounded(stratum.size());
      TraceFunction fn = source.functions[stratum[pick]];
      fn.function_id = next_id++;
      out.functions.push_back(std::move(fn));
      stratum.erase(stratum.begin() + static_cast<long>(pick));
    }
  }
  return out;
}

double RateDistributionDistance(const Trace& a, const Trace& b) {
  auto cdf_points = [](const Trace& trace) {
    std::vector<double> rates;
    rates.reserve(trace.functions.size());
    for (const auto& fn : trace.functions) {
      rates.push_back(static_cast<double>(fn.TotalInvocations()));
    }
    std::sort(rates.begin(), rates.end());
    return rates;
  };
  const std::vector<double> ra = cdf_points(a);
  const std::vector<double> rb = cdf_points(b);
  if (ra.empty() || rb.empty()) {
    return 1.0;
  }
  // Two-sample KS statistic over the union of sample points.
  double max_gap = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < ra.size() && ib < rb.size()) {
    const double x = std::min(ra[ia], rb[ib]);
    while (ia < ra.size() && ra[ia] <= x) {
      ++ia;
    }
    while (ib < rb.size() && rb[ib] <= x) {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / static_cast<double>(ra.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(rb.size());
    max_gap = std::max(max_gap, std::fabs(fa - fb));
  }
  return max_gap;
}

}  // namespace dtrace
