#include "src/trace/azure_trace.h"

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"

namespace dtrace {

uint64_t TraceFunction::TotalInvocations() const {
  uint64_t total = 0;
  for (uint32_t count : invocations_per_minute) {
    total += count;
  }
  return total;
}

uint64_t Trace::TotalInvocations() const {
  uint64_t total = 0;
  for (const auto& fn : functions) {
    total += fn.TotalInvocations();
  }
  return total;
}

std::vector<Arrival> Trace::ToArrivals(uint64_t seed) const {
  dbase::Rng rng(seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(TotalInvocations());
  for (const auto& fn : functions) {
    dbase::Rng fn_rng = rng.Fork();
    for (size_t minute = 0; minute < fn.invocations_per_minute.size(); ++minute) {
      const dbase::Micros minute_start =
          static_cast<dbase::Micros>(minute) * 60 * dbase::kMicrosPerSecond;
      for (uint32_t i = 0; i < fn.invocations_per_minute[minute]; ++i) {
        Arrival arrival;
        arrival.time_us = minute_start + static_cast<dbase::Micros>(
                                             fn_rng.NextDouble() * 60.0 * 1e6);
        arrival.function_id = fn.function_id;
        const double factor = fn_rng.LogNormal(0.0, fn.duration_sigma);
        arrival.duration_us = std::max<dbase::Micros>(
            1000, static_cast<dbase::Micros>(static_cast<double>(fn.mean_duration_us) * factor));
        arrivals.push_back(arrival);
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.time_us < b.time_us; });
  return arrivals;
}

Trace SynthesizeAzureTrace(const AzureTraceConfig& config) {
  dbase::Rng rng(config.seed);
  Trace trace;
  trace.duration_minutes = config.duration_minutes;
  trace.functions.reserve(static_cast<size_t>(config.num_functions));

  for (int f = 0; f < config.num_functions; ++f) {
    TraceFunction fn;
    fn.function_id = f;

    // Popularity: bounded Pareto over mean invocations per minute — a few
    // hot functions, a long tail of nearly-idle ones.
    const double rate = rng.BoundedPareto(config.popularity_alpha, config.min_rate_per_minute,
                                          config.max_rate_per_minute);

    // Durations: most functions run well under a second, some run seconds
    // (lognormal across functions, per Shahrad et al. Fig. 7).
    const double mean_ms = std::min(10000.0, rng.LogNormal(std::log(180.0), 1.1));
    fn.mean_duration_us = static_cast<dbase::Micros>(mean_ms * 1000.0);
    fn.duration_sigma = rng.Uniform(0.2, 0.7);

    // Memory: 64-512 MB app footprints.
    fn.memory_bytes = (64ull << 20) + rng.NextBounded(448ull << 20);

    // Arrival process: per-minute Poisson counts modulated by an on/off
    // burst pattern (spiky load, §3 "target applications").
    fn.invocations_per_minute.resize(static_cast<size_t>(config.duration_minutes));
    bool on = rng.Bernoulli(config.on_fraction);
    for (int m = 0; m < config.duration_minutes; ++m) {
      // Flip the burst state with some stickiness.
      if (rng.Bernoulli(0.25)) {
        on = rng.Bernoulli(config.on_fraction);
      }
      const double effective_rate = on ? rate : rate * 0.02;
      // Poisson sample via inversion for small rates, normal approx for big.
      uint32_t count = 0;
      if (effective_rate < 30.0) {
        double l = std::exp(-effective_rate);
        double p = 1.0;
        do {
          ++count;
          p *= rng.NextDouble();
        } while (p > l);
        --count;
      } else {
        count = static_cast<uint32_t>(std::max(
            0.0, rng.Normal(effective_rate, std::sqrt(effective_rate))));
      }
      fn.invocations_per_minute[static_cast<size_t>(m)] = count;
    }
    trace.functions.push_back(std::move(fn));
  }
  return trace;
}

}  // namespace dtrace
