// Synthetic stand-in for the Azure Functions production trace (Shahrad et
// al., ATC'20) used in §7.8 / Figures 1 and 10. The real trace is not
// shipped here; the synthesizer reproduces the characteristics those
// experiments depend on:
//   - heavy-tailed function popularity (a few functions dominate traffic,
//     most are invoked rarely — the source of cold starts),
//   - short executions (tens of ms median, lognormal tail),
//   - per-function spiky arrival processes (on/off bursts),
//   - per-function memory footprints in the 100s-of-MB range.
#ifndef SRC_TRACE_AZURE_TRACE_H_
#define SRC_TRACE_AZURE_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/base/clock.h"

namespace dtrace {

struct TraceFunction {
  int function_id = 0;
  // Mean execution duration and lognormal sigma for per-invocation draws.
  dbase::Micros mean_duration_us = 100 * dbase::kMicrosPerMilli;
  double duration_sigma = 0.5;
  // Function (app) memory footprint when resident in a sandbox.
  uint64_t memory_bytes = 128ull << 20;
  // Invocations in each minute of the trace window.
  std::vector<uint32_t> invocations_per_minute;

  uint64_t TotalInvocations() const;
};

struct Arrival {
  dbase::Micros time_us = 0;
  int function_id = 0;
  dbase::Micros duration_us = 0;  // Sampled execution time.
};

struct Trace {
  std::vector<TraceFunction> functions;
  int duration_minutes = 0;

  uint64_t TotalInvocations() const;

  // Flattens per-minute counts into a time-sorted arrival list. Within each
  // minute, arrival offsets are uniform (Poisson-like given the counts);
  // durations are lognormal around each function's mean.
  std::vector<Arrival> ToArrivals(uint64_t seed) const;
};

struct AzureTraceConfig {
  int num_functions = 100;
  int duration_minutes = 20;         // The paper's Fig. 1/10 window.
  double popularity_alpha = 0.8;      // Pareto shape of per-function rates;
                                      // <1 gives the hot tail enough mass
                                      // to dominate invocations (Shahrad et
                                      // al. Fig. 3: top functions dominate,
                                      // most functions are nearly idle).
  double min_rate_per_minute = 0.02;  // Rare functions: ~1 call / 50 min.
  double max_rate_per_minute = 240.0;
  // Burstiness: probability a minute is "on"; off minutes get ~0 traffic.
  double on_fraction = 0.4;
  uint64_t seed = 0xA27BA5E;
};

Trace SynthesizeAzureTrace(const AzureTraceConfig& config);

}  // namespace dtrace

#endif  // SRC_TRACE_AZURE_TRACE_H_
