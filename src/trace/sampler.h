// InVitro-style trace sampler (Ustiugov et al., WORDS'23): selects a
// representative subset of functions from a larger trace, preserving the
// invocation-rate distribution by stratified sampling over rate quantiles.
// The paper samples 100 functions from the Azure trace with it (§7.8).
#ifndef SRC_TRACE_SAMPLER_H_
#define SRC_TRACE_SAMPLER_H_

#include <cstdint>

#include "src/trace/azure_trace.h"

namespace dtrace {

struct SamplerConfig {
  int target_functions = 100;
  int strata = 10;  // Rate quantile buckets sampled proportionally.
  uint64_t seed = 0x1417120;
};

// Returns a trace containing `target_functions` functions drawn from
// `source` (function ids are re-numbered densely). If the source has fewer
// functions, returns it unchanged.
Trace SampleTrace(const Trace& source, const SamplerConfig& config);

// Kolmogorov-Smirnov-style distance between the per-function total
// invocation distributions of two traces (diagnostic; the sampler keeps
// this small, which tests assert).
double RateDistributionDistance(const Trace& a, const Trace& b);

}  // namespace dtrace

#endif  // SRC_TRACE_SAMPLER_H_
