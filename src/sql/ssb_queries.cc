#include "src/sql/ssb_queries.h"

#include "src/sql/expr.h"
#include "src/sql/operators.h"

namespace dsql {
namespace {

// Shared plan bodies parameterized on the lineorder input so the whole-table
// and partitioned runs are literally the same code.

dbase::Result<Table> Q11Plan(const Table& lineorder, const SsbData& data) {
  // Filter fact side first (cheap predicates), then join the date dim.
  ASSIGN_OR_RETURN(Table filtered,
                   Filter(lineorder, And(Between(Col("lo_discount"), 1, 3),
                                         Lt(Col("lo_quantity"), Lit(25)))));
  ASSIGN_OR_RETURN(Table dates_1993, Filter(data.date, Eq(Col("d_year"), Lit(1993))));
  ASSIGN_OR_RETURN(Table joined, HashJoin(filtered, "lo_orderdate", dates_1993, "d_datekey"));
  ASSIGN_OR_RETURN(Table with_rev,
                   WithComputedColumn(joined, "rev",
                                      Mul(Col("lo_extendedprice"), Col("lo_discount"))));
  return GroupAggregate(with_rev, {}, {{AggOp::kSum, "rev", "revenue"}});
}

dbase::Result<Table> Q21Plan(const Table& lineorder, const SsbData& data) {
  ASSIGN_OR_RETURN(Table parts, Filter(data.part, Eq(Col("p_category"), Lit("MFGR#12"))));
  ASSIGN_OR_RETURN(Table supps, Filter(data.supplier, Eq(Col("s_region"), Lit("AMERICA"))));
  ASSIGN_OR_RETURN(Table j1, HashJoin(lineorder, "lo_partkey", parts, "p_partkey"));
  ASSIGN_OR_RETURN(Table j2, HashJoin(j1, "lo_suppkey", supps, "s_suppkey"));
  ASSIGN_OR_RETURN(Table j3, HashJoin(j2, "lo_orderdate", data.date, "d_datekey"));
  ASSIGN_OR_RETURN(Table agg, GroupAggregate(j3, {"d_year", "p_brand1"},
                                             {{AggOp::kSum, "lo_revenue", "revenue"}}));
  return SortBy(agg, {{"d_year", false}, {"p_brand1", false}});
}

dbase::Result<Table> Q31Plan(const Table& lineorder, const SsbData& data) {
  ASSIGN_OR_RETURN(Table custs, Filter(data.customer, Eq(Col("c_region"), Lit("ASIA"))));
  ASSIGN_OR_RETURN(Table supps, Filter(data.supplier, Eq(Col("s_region"), Lit("ASIA"))));
  ASSIGN_OR_RETURN(Table dates, Filter(data.date, Between(Col("d_year"), 1992, 1997)));
  ASSIGN_OR_RETURN(Table j1, HashJoin(lineorder, "lo_custkey", custs, "c_custkey"));
  ASSIGN_OR_RETURN(Table j2, HashJoin(j1, "lo_suppkey", supps, "s_suppkey"));
  ASSIGN_OR_RETURN(Table j3, HashJoin(j2, "lo_orderdate", dates, "d_datekey"));
  ASSIGN_OR_RETURN(Table agg, GroupAggregate(j3, {"c_nation", "s_nation", "d_year"},
                                             {{AggOp::kSum, "lo_revenue", "revenue"}}));
  return SortBy(agg, {{"d_year", false}, {"revenue", true}});
}

dbase::Result<Table> Q41Plan(const Table& lineorder, const SsbData& data) {
  ASSIGN_OR_RETURN(Table custs, Filter(data.customer, Eq(Col("c_region"), Lit("AMERICA"))));
  ASSIGN_OR_RETURN(Table supps, Filter(data.supplier, Eq(Col("s_region"), Lit("AMERICA"))));
  ASSIGN_OR_RETURN(Table parts,
                   Filter(data.part, In(Col("p_mfgr"),
                                        {Value::Str("MFGR#1"), Value::Str("MFGR#2")})));
  ASSIGN_OR_RETURN(Table j1, HashJoin(lineorder, "lo_custkey", custs, "c_custkey"));
  ASSIGN_OR_RETURN(Table j2, HashJoin(j1, "lo_suppkey", supps, "s_suppkey"));
  ASSIGN_OR_RETURN(Table j3, HashJoin(j2, "lo_partkey", parts, "p_partkey"));
  ASSIGN_OR_RETURN(Table j4, HashJoin(j3, "lo_orderdate", data.date, "d_datekey"));
  ASSIGN_OR_RETURN(Table with_profit,
                   WithComputedColumn(j4, "profit_term",
                                      Sub(Col("lo_revenue"), Col("lo_supplycost"))));
  ASSIGN_OR_RETURN(Table agg, GroupAggregate(with_profit, {"d_year", "c_nation"},
                                             {{AggOp::kSum, "profit_term", "profit"}}));
  return SortBy(agg, {{"d_year", false}, {"c_nation", false}});
}

}  // namespace

dbase::Result<Table> RunQ11(const SsbData& data) { return Q11Plan(data.lineorder, data); }
dbase::Result<Table> RunQ21(const SsbData& data) { return Q21Plan(data.lineorder, data); }
dbase::Result<Table> RunQ31(const SsbData& data) { return Q31Plan(data.lineorder, data); }
dbase::Result<Table> RunQ41(const SsbData& data) { return Q41Plan(data.lineorder, data); }

dbase::Result<Table> RunQueryOnPartition(int query_id, const Table& lineorder_partition,
                                         const SsbData& dims) {
  switch (query_id) {
    case 11:
      return Q11Plan(lineorder_partition, dims);
    case 21:
      return Q21Plan(lineorder_partition, dims);
    case 31:
      return Q31Plan(lineorder_partition, dims);
    case 41:
      return Q41Plan(lineorder_partition, dims);
    default:
      return dbase::InvalidArgument("unknown SSB query id: " + std::to_string(query_id));
  }
}

dbase::Result<Table> MergeQueryPartials(int query_id, const std::vector<Table>& partials) {
  ASSIGN_OR_RETURN(Table unioned, Concat(partials));
  switch (query_id) {
    case 11:
      return GroupAggregate(unioned, {}, {{AggOp::kSum, "revenue", "revenue"}});
    case 21: {
      ASSIGN_OR_RETURN(Table agg, GroupAggregate(unioned, {"d_year", "p_brand1"},
                                                 {{AggOp::kSum, "revenue", "revenue"}}));
      return SortBy(agg, {{"d_year", false}, {"p_brand1", false}});
    }
    case 31: {
      ASSIGN_OR_RETURN(Table agg, GroupAggregate(unioned, {"c_nation", "s_nation", "d_year"},
                                                 {{AggOp::kSum, "revenue", "revenue"}}));
      return SortBy(agg, {{"d_year", false}, {"revenue", true}});
    }
    case 41: {
      ASSIGN_OR_RETURN(Table agg, GroupAggregate(unioned, {"d_year", "c_nation"},
                                                 {{AggOp::kSum, "profit", "profit"}}));
      return SortBy(agg, {{"d_year", false}, {"c_nation", false}});
    }
    default:
      return dbase::InvalidArgument("unknown SSB query id: " + std::to_string(query_id));
  }
}

std::vector<int> SsbQueryIds() { return {11, 21, 31, 41}; }

std::string SsbQueryName(int query_id) {
  switch (query_id) {
    case 11:
      return "Query 1.1";
    case 21:
      return "Query 2.1";
    case 31:
      return "Query 3.1";
    case 41:
      return "Query 4.1";
    default:
      return "Query ?";
  }
}

}  // namespace dsql
