#include "src/sql/expr.h"

#include <algorithm>

#include "src/base/string_util.h"

namespace dsql {

bool Value::operator==(const Value& other) const {
  if (kind != other.kind) {
    return false;
  }
  return kind == Kind::kInt ? i == other.i : s == other.s;
}

bool Value::operator<(const Value& other) const {
  if (kind != other.kind) {
    return kind < other.kind;
  }
  return kind == Kind::kInt ? i < other.i : s < other.s;
}

namespace {
std::shared_ptr<Expr> NewExpr() {
  struct Accessible : Expr {};
  return std::make_shared<Accessible>();
}
Expr* Mutable(const std::shared_ptr<Expr>& e) { return e.get(); }
}  // namespace

ExprPtr Expr::Column(std::string name) {
  auto e = NewExpr();
  Mutable(e)->op_ = ExprOp::kColumn;
  Mutable(e)->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = NewExpr();
  Mutable(e)->op_ = ExprOp::kLiteral;
  Mutable(e)->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Unary(ExprOp op, ExprPtr operand) {
  auto e = NewExpr();
  Mutable(e)->op_ = op;
  Mutable(e)->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr();
  Mutable(e)->op_ = op;
  Mutable(e)->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::InSet(ExprPtr operand, std::vector<Value> candidates) {
  auto e = NewExpr();
  Mutable(e)->op_ = ExprOp::kInSet;
  Mutable(e)->children_ = {std::move(operand)};
  Mutable(e)->in_set_ = std::move(candidates);
  return e;
}

dbase::Result<ExprPtr> Expr::Bind(const Table& table) const {
  auto bound = NewExpr();
  Expr* b = Mutable(bound);
  b->op_ = op_;
  b->column_ = column_;
  b->literal_ = literal_;
  b->in_set_ = in_set_;
  for (const auto& child : children_) {
    ASSIGN_OR_RETURN(ExprPtr bound_child, child->Bind(table));
    b->children_.push_back(std::move(bound_child));
  }
  if (op_ == ExprOp::kColumn) {
    const auto& columns = table.columns();
    b->column_index_ = -1;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c].first == column_) {
        b->column_index_ = static_cast<int>(c);
        b->column_type_ = columns[c].second.type();
        break;
      }
    }
    if (b->column_index_ < 0) {
      return dbase::NotFound("expression references unknown column: " + column_);
    }
  }
  return ExprPtr(bound);
}

Value Expr::Eval(const Table& table, size_t row) const {
  switch (op_) {
    case ExprOp::kColumn: {
      // Qualified: plain `Column` resolves to the static factory member.
      const ::dsql::Column& column = table.columns()[static_cast<size_t>(column_index_)].second;
      if (column_type_ == ColumnType::kInt64) {
        return Value::Int(column.IntAt(row));
      }
      return Value::Str(column.StringAt(row));
    }
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kEq:
      return Value::Int(children_[0]->Eval(table, row) == children_[1]->Eval(table, row) ? 1 : 0);
    case ExprOp::kNe:
      return Value::Int(children_[0]->Eval(table, row) == children_[1]->Eval(table, row) ? 0 : 1);
    case ExprOp::kLt:
      return Value::Int(children_[0]->Eval(table, row) < children_[1]->Eval(table, row) ? 1 : 0);
    case ExprOp::kLe: {
      const Value a = children_[0]->Eval(table, row);
      const Value b = children_[1]->Eval(table, row);
      return Value::Int(a < b || a == b ? 1 : 0);
    }
    case ExprOp::kGt: {
      const Value a = children_[0]->Eval(table, row);
      const Value b = children_[1]->Eval(table, row);
      return Value::Int(!(a < b) && !(a == b) ? 1 : 0);
    }
    case ExprOp::kGe: {
      const Value a = children_[0]->Eval(table, row);
      const Value b = children_[1]->Eval(table, row);
      return Value::Int(!(a < b) ? 1 : 0);
    }
    case ExprOp::kAnd:
      return Value::Int(children_[0]->EvalBool(table, row) && children_[1]->EvalBool(table, row)
                            ? 1
                            : 0);
    case ExprOp::kOr:
      return Value::Int(children_[0]->EvalBool(table, row) || children_[1]->EvalBool(table, row)
                            ? 1
                            : 0);
    case ExprOp::kNot:
      return Value::Int(children_[0]->EvalBool(table, row) ? 0 : 1);
    case ExprOp::kAdd:
      return Value::Int(children_[0]->Eval(table, row).i + children_[1]->Eval(table, row).i);
    case ExprOp::kSub:
      return Value::Int(children_[0]->Eval(table, row).i - children_[1]->Eval(table, row).i);
    case ExprOp::kMul:
      return Value::Int(children_[0]->Eval(table, row).i * children_[1]->Eval(table, row).i);
    case ExprOp::kInSet: {
      const Value v = children_[0]->Eval(table, row);
      for (const auto& candidate : in_set_) {
        if (v == candidate) {
          return Value::Int(1);
        }
      }
      return Value::Int(0);
    }
  }
  return Value::Int(0);
}

bool Expr::EvalBool(const Table& table, size_t row) const {
  const Value v = Eval(table, row);
  return v.kind == Value::Kind::kInt ? v.i != 0 : !v.s.empty();
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kColumn:
      return column_;
    case ExprOp::kLiteral:
      return literal_.kind == Value::Kind::kInt ? std::to_string(literal_.i)
                                                : "'" + literal_.s + "'";
    case ExprOp::kEq:
      return "(" + children_[0]->ToString() + " = " + children_[1]->ToString() + ")";
    case ExprOp::kNe:
      return "(" + children_[0]->ToString() + " != " + children_[1]->ToString() + ")";
    case ExprOp::kLt:
      return "(" + children_[0]->ToString() + " < " + children_[1]->ToString() + ")";
    case ExprOp::kLe:
      return "(" + children_[0]->ToString() + " <= " + children_[1]->ToString() + ")";
    case ExprOp::kGt:
      return "(" + children_[0]->ToString() + " > " + children_[1]->ToString() + ")";
    case ExprOp::kGe:
      return "(" + children_[0]->ToString() + " >= " + children_[1]->ToString() + ")";
    case ExprOp::kAnd:
      return "(" + children_[0]->ToString() + " AND " + children_[1]->ToString() + ")";
    case ExprOp::kOr:
      return "(" + children_[0]->ToString() + " OR " + children_[1]->ToString() + ")";
    case ExprOp::kNot:
      return "(NOT " + children_[0]->ToString() + ")";
    case ExprOp::kAdd:
      return "(" + children_[0]->ToString() + " + " + children_[1]->ToString() + ")";
    case ExprOp::kSub:
      return "(" + children_[0]->ToString() + " - " + children_[1]->ToString() + ")";
    case ExprOp::kMul:
      return "(" + children_[0]->ToString() + " * " + children_[1]->ToString() + ")";
    case ExprOp::kInSet: {
      std::string out = "(" + children_[0]->ToString() + " IN [";
      for (size_t i = 0; i < in_set_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += in_set_[i].kind == Value::Kind::kInt ? std::to_string(in_set_[i].i)
                                                    : "'" + in_set_[i].s + "'";
      }
      return out + "])";
    }
  }
  return "?";
}

ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int(v)); }
ExprPtr Lit(const char* v) { return Expr::Literal(Value::Str(v)); }
ExprPtr Lit(std::string v) { return Expr::Literal(Value::Str(std::move(v))); }
ExprPtr Eq(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kEq, std::move(a), std::move(b)); }
ExprPtr Ne(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kNe, std::move(a), std::move(b)); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kLt, std::move(a), std::move(b)); }
ExprPtr Le(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kLe, std::move(a), std::move(b)); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kGt, std::move(a), std::move(b)); }
ExprPtr Ge(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kGe, std::move(a), std::move(b)); }
ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Binary(ExprOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) { return Expr::Binary(ExprOp::kOr, std::move(a), std::move(b)); }
ExprPtr Not(ExprPtr a) { return Expr::Unary(ExprOp::kNot, std::move(a)); }
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Binary(ExprOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::Binary(ExprOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Binary(ExprOp::kMul, std::move(a), std::move(b));
}
ExprPtr Between(ExprPtr operand, int64_t lo, int64_t hi) {
  ExprPtr shared = std::move(operand);  // Reused by both comparisons.
  return And(Ge(shared, Lit(lo)), Le(shared, Lit(hi)));
}
ExprPtr In(ExprPtr operand, std::vector<Value> candidates) {
  return Expr::InSet(std::move(operand), std::move(candidates));
}

}  // namespace dsql
