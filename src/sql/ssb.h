// Star Schema Benchmark data generator (O'Neil et al.), scaled down from
// the TPC-H-derived SF sizes. Deterministic for a given seed so tests can
// compare against reference executors. Schema follows the SSB paper:
// lineorder fact table + date, customer, supplier, part dimensions.
#ifndef SRC_SQL_SSB_H_
#define SRC_SQL_SSB_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/sql/column.h"

namespace dsql {

struct SsbConfig {
  // Row counts (SF=1 would be 6,000,000 lineorders; scale to taste).
  uint64_t lineorder_rows = 60000;
  uint32_t customer_rows = 600;
  uint32_t supplier_rows = 200;
  uint32_t part_rows = 400;
  uint64_t seed = 0x55B5EEDULL;
};

struct SsbData {
  Table lineorder;  // lo_orderkey, lo_custkey, lo_partkey, lo_suppkey,
                    // lo_orderdate, lo_quantity, lo_extendedprice,
                    // lo_discount, lo_revenue, lo_supplycost
  Table date;       // d_datekey, d_year, d_yearmonthnum, d_weeknuminyear
  Table customer;   // c_custkey, c_region, c_nation, c_city
  Table supplier;   // s_suppkey, s_region, s_nation, s_city
  Table part;       // p_partkey, p_mfgr, p_category, p_brand1

  uint64_t TotalBytes() const;
};

// Generates the full star schema. Foreign keys always resolve (referential
// integrity is tested).
SsbData GenerateSsb(const SsbConfig& config);

// Splits lineorder into `parts` row-range partitions (for the parallel
// Dandelion execution of Figure 9).
std::vector<Table> PartitionLineorder(const Table& lineorder, int parts);

}  // namespace dsql

#endif  // SRC_SQL_SSB_H_
