#include "src/sql/column.h"

#include "src/base/string_util.h"

namespace dsql {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

Column::Column(ColumnType type) : type_(type) {}

Column Column::Ints(std::vector<int64_t> values) {
  Column column(ColumnType::kInt64);
  column.ints_ = std::move(values);
  return column;
}

Column Column::Strings(std::vector<std::string> values) {
  Column column(ColumnType::kString);
  column.strings_ = std::move(values);
  return column;
}

size_t Column::size() const {
  return type_ == ColumnType::kInt64 ? ints_.size() : strings_.size();
}

void Column::AppendInt(int64_t value) { ints_.push_back(value); }
void Column::AppendString(std::string value) { strings_.push_back(std::move(value)); }

Column Column::Gather(const std::vector<uint32_t>& rows) const {
  Column out(type_);
  if (type_ == ColumnType::kInt64) {
    out.ints_.reserve(rows.size());
    for (uint32_t row : rows) {
      out.ints_.push_back(ints_[row]);
    }
  } else {
    out.strings_.reserve(rows.size());
    for (uint32_t row : rows) {
      out.strings_.push_back(strings_[row]);
    }
  }
  return out;
}

dbase::Status Table::AddColumn(std::string name, Column column) {
  if (HasColumn(name)) {
    return dbase::AlreadyExists("duplicate column: " + name);
  }
  if (!columns_.empty() && column.size() != NumRows()) {
    return dbase::InvalidArgument(
        dbase::StrFormat("column '%s' has %zu rows, table has %zu", name.c_str(), column.size(),
                         NumRows()));
  }
  columns_.emplace_back(std::move(name), std::move(column));
  return dbase::OkStatus();
}

dbase::Result<const Column*> Table::GetColumn(std::string_view name) const {
  for (const auto& [col_name, column] : columns_) {
    if (col_name == name) {
      return &column;
    }
  }
  return dbase::NotFound("no column named " + std::string(name) + " in table " + name_);
}

bool Table::HasColumn(std::string_view name) const {
  for (const auto& [col_name, column] : columns_) {
    if (col_name == name) {
      return true;
    }
  }
  return false;
}

dbase::Status Table::Validate() const {
  for (const auto& [name, column] : columns_) {
    if (column.size() != NumRows()) {
      return dbase::Internal("ragged table: column " + name);
    }
  }
  return dbase::OkStatus();
}

Table Table::Gather(const std::vector<uint32_t>& rows) const {
  Table out(name_);
  for (const auto& [name, column] : columns_) {
    (void)out.AddColumn(name, column.Gather(rows));
  }
  return out;
}

std::string Table::ToCsv(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += columns_[c].first;
  }
  out += '\n';
  const size_t rows = std::min(NumRows(), max_rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      const Column& column = columns_[c].second;
      if (column.type() == ColumnType::kInt64) {
        out += std::to_string(column.IntAt(r));
      } else {
        out += column.StringAt(r);
      }
    }
    out += '\n';
  }
  return out;
}

namespace {
void AppendU32(std::string* out, uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}
void AppendU64(std::string* out, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}
void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}
  dbase::Result<uint32_t> U32() {
    if (data_.size() - pos_ < 4) {
      return dbase::InvalidArgument("truncated table bytes (u32)");
    }
    uint32_t v = 0;
    for (int b = 3; b >= 0; --b) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(b)]);
    }
    pos_ += 4;
    return v;
  }
  dbase::Result<uint64_t> U64() {
    if (data_.size() - pos_ < 8) {
      return dbase::InvalidArgument("truncated table bytes (u64)");
    }
    uint64_t v = 0;
    for (int b = 7; b >= 0; --b) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(b)]);
    }
    pos_ += 8;
    return v;
  }
  dbase::Result<std::string_view> Str() {
    ASSIGN_OR_RETURN(uint32_t len, U32());
    if (data_.size() - pos_ < len) {
      return dbase::InvalidArgument("truncated table bytes (string)");
    }
    std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};
}  // namespace

std::string SerializeTable(const Table& table) {
  std::string out;
  AppendU32(&out, 0x53514C31);  // "SQL1"
  AppendStr(&out, table.name());
  AppendU32(&out, static_cast<uint32_t>(table.NumColumns()));
  AppendU64(&out, table.NumRows());
  for (const auto& [name, column] : table.columns()) {
    AppendStr(&out, name);
    AppendU32(&out, static_cast<uint32_t>(column.type()));
    if (column.type() == ColumnType::kInt64) {
      for (int64_t v : column.ints()) {
        AppendU64(&out, static_cast<uint64_t>(v));
      }
    } else {
      for (const auto& s : column.strings()) {
        AppendStr(&out, s);
      }
    }
  }
  return out;
}

dbase::Result<Table> DeserializeTable(std::string_view bytes) {
  Cursor cursor(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, cursor.U32());
  if (magic != 0x53514C31) {
    return dbase::InvalidArgument("bad table magic");
  }
  ASSIGN_OR_RETURN(std::string_view name, cursor.Str());
  Table table((std::string(name)));
  ASSIGN_OR_RETURN(uint32_t num_columns, cursor.U32());
  ASSIGN_OR_RETURN(uint64_t num_rows, cursor.U64());
  for (uint32_t c = 0; c < num_columns; ++c) {
    ASSIGN_OR_RETURN(std::string_view col_name, cursor.Str());
    ASSIGN_OR_RETURN(uint32_t type_raw, cursor.U32());
    if (type_raw > 1) {
      return dbase::InvalidArgument("bad column type tag");
    }
    const auto type = static_cast<ColumnType>(type_raw);
    Column column(type);
    if (type == ColumnType::kInt64) {
      for (uint64_t r = 0; r < num_rows; ++r) {
        ASSIGN_OR_RETURN(uint64_t v, cursor.U64());
        column.AppendInt(static_cast<int64_t>(v));
      }
    } else {
      for (uint64_t r = 0; r < num_rows; ++r) {
        ASSIGN_OR_RETURN(std::string_view s, cursor.Str());
        column.AppendString(std::string(s));
      }
    }
    RETURN_IF_ERROR(table.AddColumn(std::string(col_name), std::move(column)));
  }
  if (!cursor.AtEnd()) {
    return dbase::InvalidArgument("trailing bytes after table");
  }
  return table;
}

}  // namespace dsql
