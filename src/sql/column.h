// Columnar table model for the analytical query engine — the stand-in for
// the Apache Arrow Acero operators the paper ports to Dandelion for the
// Star Schema Benchmark evaluation (§7.7).
#ifndef SRC_SQL_COLUMN_H_
#define SRC_SQL_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/base/status.h"

namespace dsql {

enum class ColumnType { kInt64, kString };

std::string_view ColumnTypeName(ColumnType type);

// A typed column of values. SSB's numeric fields are integer cents/counts,
// so kInt64 + kString cover the whole benchmark schema.
class Column {
 public:
  explicit Column(ColumnType type = ColumnType::kInt64);
  static Column Ints(std::vector<int64_t> values);
  static Column Strings(std::vector<std::string> values);

  ColumnType type() const { return type_; }
  size_t size() const;

  void AppendInt(int64_t value);
  void AppendString(std::string value);

  int64_t IntAt(size_t row) const { return ints_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<std::string>& strings() const { return strings_; }

  // Copies the given rows into a new column (selection materialization).
  Column Gather(const std::vector<uint32_t>& rows) const;

  bool operator==(const Column& other) const = default;

 private:
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;
};

class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Columns must all have equal length; enforced on access via Validate().
  dbase::Status AddColumn(std::string name, Column column);

  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return columns_.empty() ? 0 : columns_.front().second.size(); }

  dbase::Result<const Column*> GetColumn(std::string_view name) const;
  bool HasColumn(std::string_view name) const;
  const std::vector<std::pair<std::string, Column>>& columns() const { return columns_; }

  // All columns same length?
  dbase::Status Validate() const;

  // Materializes the given rows into a new table.
  Table Gather(const std::vector<uint32_t>& rows) const;

  // CSV rendering (header + rows); for tests and human-readable output.
  std::string ToCsv(size_t max_rows = SIZE_MAX) const;

  bool operator==(const Table& other) const = default;

 private:
  std::string name_;
  std::vector<std::pair<std::string, Column>> columns_;
};

// Compact binary (de)serialization — used to store SSB partitions in the
// simulated object store and to pass tables between Dandelion functions.
std::string SerializeTable(const Table& table);
dbase::Result<Table> DeserializeTable(std::string_view bytes);

}  // namespace dsql

#endif  // SRC_SQL_COLUMN_H_
