// Scalar and predicate expressions over table rows — the filter/projection
// language of the query operators. Small tree of owned nodes with builder
// helpers:
//   auto pred = And(Between(Col("lo_discount"), 1, 3), Lt(Col("lo_quantity"), Lit(25)));
#ifndef SRC_SQL_EXPR_H_
#define SRC_SQL_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sql/column.h"

namespace dsql {

// Runtime value: int64 or string.
struct Value {
  enum class Kind { kInt, kString } kind = Kind::kInt;
  int64_t i = 0;
  std::string s;

  static Value Int(int64_t v) { return Value{Kind::kInt, v, ""}; }
  static Value Str(std::string v) { return Value{Kind::kString, 0, std::move(v)}; }

  bool operator==(const Value& other) const;
  // Int < Int or lexicographic; comparing across kinds is an error handled
  // at Expr::Bind time.
  bool operator<(const Value& other) const;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprOp {
  kColumn,
  kLiteral,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kAdd,
  kSub,
  kMul,
  kInSet,
};

class Expr {
 public:
  // --- Construction (use the free builder functions below) -----------------
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value value);
  static ExprPtr Unary(ExprOp op, ExprPtr operand);
  static ExprPtr Binary(ExprOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr InSet(ExprPtr operand, std::vector<Value> candidates);

  ExprOp op() const { return op_; }
  const std::string& column_name() const { return column_; }
  const Value& literal() const { return literal_; }

  // Type-checks against the table and resolves column indices. Must be
  // called before Eval*; returns a bound copy.
  dbase::Result<ExprPtr> Bind(const Table& table) const;

  // Scalar evaluation at one row (expression must be bound).
  Value Eval(const Table& table, size_t row) const;
  // Predicate evaluation: non-zero int is true.
  bool EvalBool(const Table& table, size_t row) const;

  // Human-readable rendering for error messages and tests.
  std::string ToString() const;

 protected:
  Expr() = default;

 private:

  ExprOp op_ = ExprOp::kLiteral;
  std::string column_;
  Value literal_;
  std::vector<ExprPtr> children_;
  std::vector<Value> in_set_;
  // Bound state.
  int column_index_ = -1;
  ColumnType column_type_ = ColumnType::kInt64;
};

// Builder helpers.
ExprPtr Col(std::string name);
ExprPtr Lit(int64_t v);
ExprPtr Lit(const char* v);
ExprPtr Lit(std::string v);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
// lo <= col <= hi (inclusive, as in SSB's BETWEEN).
ExprPtr Between(ExprPtr operand, int64_t lo, int64_t hi);
ExprPtr In(ExprPtr operand, std::vector<Value> candidates);

}  // namespace dsql

#endif  // SRC_SQL_EXPR_H_
