// Materializing relational operators: filter, project, hash join, group-by
// aggregation, sort, concat. These are the query-engine substrate for the
// SSB evaluation (§7.7) — each operator takes tables and produces a table,
// which maps 1:1 onto Dandelion compute functions exchanging serialized
// tables as data items.
#ifndef SRC_SQL_OPERATORS_H_
#define SRC_SQL_OPERATORS_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sql/column.h"
#include "src/sql/expr.h"

namespace dsql {

// Rows where the predicate holds.
dbase::Result<Table> Filter(const Table& input, const ExprPtr& predicate);

// Keeps the named columns, in the given order.
dbase::Result<Table> Project(const Table& input, const std::vector<std::string>& columns);

// Appends a computed column.
dbase::Result<Table> WithComputedColumn(const Table& input, const std::string& name,
                                        const ExprPtr& expr);

// Inner equi-join. Builds a hash table on `build` (usually the smaller
// dimension table), probes with `probe` (the fact table). Output columns:
// all probe columns, then build columns that do not clash by name.
dbase::Result<Table> HashJoin(const Table& probe, const std::string& probe_key,
                              const Table& build, const std::string& build_key);

enum class AggOp { kSum, kCount, kMin, kMax };

struct AggSpec {
  AggOp op = AggOp::kSum;
  std::string column;  // Ignored for kCount.
  std::string output_name;
};

// Hash group-by. Empty `group_by` performs a full-table aggregation
// producing exactly one row.
dbase::Result<Table> GroupAggregate(const Table& input, const std::vector<std::string>& group_by,
                                    const std::vector<AggSpec>& aggs);

struct SortKey {
  std::string column;
  bool descending = false;
};

dbase::Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys);

// Vertical union of same-schema tables (partition merging).
dbase::Result<Table> Concat(const std::vector<Table>& tables);

}  // namespace dsql

#endif  // SRC_SQL_OPERATORS_H_
