#include "src/sql/ssb.h"

#include "src/base/rng.h"
#include "src/base/string_util.h"

namespace dsql {
namespace {

constexpr int kFirstYear = 1992;
constexpr int kNumYears = 7;  // 1992..1998, as in SSB.

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
constexpr int kNumRegions = 5;
// Five nations per region, SSB style.
const char* kNations[kNumRegions][5] = {
    {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
    {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
    {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
    {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
    {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
};

// d_datekey encoded as yyyymmdd, 28-day months keep generation simple while
// preserving the selectivity structure the queries rely on.
constexpr int kDaysPerMonth = 28;
constexpr int kMonthsPerYear = 12;

struct GeoRow {
  std::string region;
  std::string nation;
  std::string city;
};

GeoRow MakeGeo(dbase::Rng& rng) {
  const int region = static_cast<int>(rng.NextBounded(kNumRegions));
  const int nation = static_cast<int>(rng.NextBounded(5));
  GeoRow geo;
  geo.region = kRegions[region];
  geo.nation = kNations[region][nation];
  geo.city = geo.nation.substr(0, 9) + std::to_string(rng.NextBounded(10));
  return geo;
}

}  // namespace

SsbData GenerateSsb(const SsbConfig& config) {
  dbase::Rng root(config.seed);
  SsbData data;

  // ---- date dimension ------------------------------------------------------
  {
    std::vector<int64_t> datekey;
    std::vector<int64_t> year;
    std::vector<int64_t> yearmonthnum;
    std::vector<int64_t> weeknum;
    for (int y = 0; y < kNumYears; ++y) {
      for (int m = 1; m <= kMonthsPerYear; ++m) {
        for (int d = 1; d <= kDaysPerMonth; ++d) {
          datekey.push_back((kFirstYear + y) * 10000 + m * 100 + d);
          year.push_back(kFirstYear + y);
          yearmonthnum.push_back((kFirstYear + y) * 100 + m);
          weeknum.push_back(((m - 1) * kDaysPerMonth + d - 1) / 7 + 1);
        }
      }
    }
    data.date.set_name("date");
    (void)data.date.AddColumn("d_datekey", Column::Ints(std::move(datekey)));
    (void)data.date.AddColumn("d_year", Column::Ints(std::move(year)));
    (void)data.date.AddColumn("d_yearmonthnum", Column::Ints(std::move(yearmonthnum)));
    (void)data.date.AddColumn("d_weeknuminyear", Column::Ints(std::move(weeknum)));
  }

  // ---- customer ------------------------------------------------------------
  {
    dbase::Rng rng = root.Fork();
    std::vector<int64_t> key;
    std::vector<std::string> region;
    std::vector<std::string> nation;
    std::vector<std::string> city;
    for (uint32_t i = 0; i < config.customer_rows; ++i) {
      key.push_back(i + 1);
      GeoRow geo = MakeGeo(rng);
      region.push_back(std::move(geo.region));
      nation.push_back(std::move(geo.nation));
      city.push_back(std::move(geo.city));
    }
    data.customer.set_name("customer");
    (void)data.customer.AddColumn("c_custkey", Column::Ints(std::move(key)));
    (void)data.customer.AddColumn("c_region", Column::Strings(std::move(region)));
    (void)data.customer.AddColumn("c_nation", Column::Strings(std::move(nation)));
    (void)data.customer.AddColumn("c_city", Column::Strings(std::move(city)));
  }

  // ---- supplier --------------------------------------------------------------
  {
    dbase::Rng rng = root.Fork();
    std::vector<int64_t> key;
    std::vector<std::string> region;
    std::vector<std::string> nation;
    std::vector<std::string> city;
    for (uint32_t i = 0; i < config.supplier_rows; ++i) {
      key.push_back(i + 1);
      GeoRow geo = MakeGeo(rng);
      region.push_back(std::move(geo.region));
      nation.push_back(std::move(geo.nation));
      city.push_back(std::move(geo.city));
    }
    data.supplier.set_name("supplier");
    (void)data.supplier.AddColumn("s_suppkey", Column::Ints(std::move(key)));
    (void)data.supplier.AddColumn("s_region", Column::Strings(std::move(region)));
    (void)data.supplier.AddColumn("s_nation", Column::Strings(std::move(nation)));
    (void)data.supplier.AddColumn("s_city", Column::Strings(std::move(city)));
  }

  // ---- part ------------------------------------------------------------------
  {
    dbase::Rng rng = root.Fork();
    std::vector<int64_t> key;
    std::vector<std::string> mfgr;
    std::vector<std::string> category;
    std::vector<std::string> brand;
    for (uint32_t i = 0; i < config.part_rows; ++i) {
      key.push_back(i + 1);
      // MFGR#1..5, categories MFGR#<m><1..5>, brands MFGR#<m><c><1..40>.
      const int m = static_cast<int>(rng.NextBounded(5)) + 1;
      const int c = static_cast<int>(rng.NextBounded(5)) + 1;
      const int b = static_cast<int>(rng.NextBounded(40)) + 1;
      mfgr.push_back(dbase::StrFormat("MFGR#%d", m));
      category.push_back(dbase::StrFormat("MFGR#%d%d", m, c));
      brand.push_back(dbase::StrFormat("MFGR#%d%d%02d", m, c, b));
    }
    data.part.set_name("part");
    (void)data.part.AddColumn("p_partkey", Column::Ints(std::move(key)));
    (void)data.part.AddColumn("p_mfgr", Column::Strings(std::move(mfgr)));
    (void)data.part.AddColumn("p_category", Column::Strings(std::move(category)));
    (void)data.part.AddColumn("p_brand1", Column::Strings(std::move(brand)));
  }

  // ---- lineorder fact table ----------------------------------------------------
  {
    dbase::Rng rng = root.Fork();
    std::vector<int64_t> orderkey;
    std::vector<int64_t> custkey;
    std::vector<int64_t> partkey;
    std::vector<int64_t> suppkey;
    std::vector<int64_t> orderdate;
    std::vector<int64_t> quantity;
    std::vector<int64_t> extendedprice;
    std::vector<int64_t> discount;
    std::vector<int64_t> revenue;
    std::vector<int64_t> supplycost;
    orderkey.reserve(config.lineorder_rows);
    for (uint64_t i = 0; i < config.lineorder_rows; ++i) {
      orderkey.push_back(static_cast<int64_t>(i / 4 + 1));  // ~4 lines/order.
      custkey.push_back(rng.UniformInt(1, config.customer_rows));
      partkey.push_back(rng.UniformInt(1, config.part_rows));
      suppkey.push_back(rng.UniformInt(1, config.supplier_rows));
      const int y = static_cast<int>(rng.NextBounded(kNumYears));
      const int m = static_cast<int>(rng.NextBounded(kMonthsPerYear)) + 1;
      const int d = static_cast<int>(rng.NextBounded(kDaysPerMonth)) + 1;
      orderdate.push_back((kFirstYear + y) * 10000 + m * 100 + d);
      const int64_t qty = rng.UniformInt(1, 50);
      quantity.push_back(qty);
      const int64_t price = rng.UniformInt(90000, 1100000);  // In cents.
      extendedprice.push_back(price);
      const int64_t disc = rng.UniformInt(0, 10);
      discount.push_back(disc);
      revenue.push_back(price * (100 - disc) / 100);
      supplycost.push_back(price * 6 / 10);
    }
    data.lineorder.set_name("lineorder");
    (void)data.lineorder.AddColumn("lo_orderkey", Column::Ints(std::move(orderkey)));
    (void)data.lineorder.AddColumn("lo_custkey", Column::Ints(std::move(custkey)));
    (void)data.lineorder.AddColumn("lo_partkey", Column::Ints(std::move(partkey)));
    (void)data.lineorder.AddColumn("lo_suppkey", Column::Ints(std::move(suppkey)));
    (void)data.lineorder.AddColumn("lo_orderdate", Column::Ints(std::move(orderdate)));
    (void)data.lineorder.AddColumn("lo_quantity", Column::Ints(std::move(quantity)));
    (void)data.lineorder.AddColumn("lo_extendedprice", Column::Ints(std::move(extendedprice)));
    (void)data.lineorder.AddColumn("lo_discount", Column::Ints(std::move(discount)));
    (void)data.lineorder.AddColumn("lo_revenue", Column::Ints(std::move(revenue)));
    (void)data.lineorder.AddColumn("lo_supplycost", Column::Ints(std::move(supplycost)));
  }

  return data;
}

uint64_t SsbData::TotalBytes() const {
  uint64_t total = 0;
  for (const Table* table : {&lineorder, &date, &customer, &supplier, &part}) {
    for (const auto& [name, column] : table->columns()) {
      if (column.type() == ColumnType::kInt64) {
        total += column.ints().size() * 8;
      } else {
        for (const auto& s : column.strings()) {
          total += s.size() + 4;
        }
      }
    }
  }
  return total;
}

std::vector<Table> PartitionLineorder(const Table& lineorder, int parts) {
  std::vector<Table> out;
  const size_t n = lineorder.NumRows();
  const size_t per = (n + static_cast<size_t>(parts) - 1) / static_cast<size_t>(parts);
  for (int p = 0; p < parts; ++p) {
    const size_t begin = static_cast<size_t>(p) * per;
    if (begin >= n) {
      break;
    }
    const size_t end = std::min(n, begin + per);
    std::vector<uint32_t> rows;
    rows.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) {
      rows.push_back(static_cast<uint32_t>(r));
    }
    Table partition = lineorder.Gather(rows);
    partition.set_name(dbase::StrFormat("lineorder_p%d", p));
    out.push_back(std::move(partition));
  }
  return out;
}

}  // namespace dsql
