// Star Schema Benchmark queries Q1.1, Q2.1, Q3.1, Q4.1 — the four queries
// of Figure 9 — composed from the materializing operators. Each query also
// has a partitioned form: run the per-partition plan over a lineorder slice
// (one Dandelion compute function per slice), then merge — that is exactly
// how the paper spreads query execution across cores.
#ifndef SRC_SQL_SSB_QUERIES_H_
#define SRC_SQL_SSB_QUERIES_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sql/ssb.h"

namespace dsql {

// --- Whole-table execution ---------------------------------------------

// Q1.1: SELECT SUM(lo_extendedprice * lo_discount) AS revenue
//       FROM lineorder, date
//       WHERE lo_orderdate = d_datekey AND d_year = 1993
//         AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;
dbase::Result<Table> RunQ11(const SsbData& data);

// Q2.1: SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
//       FROM lineorder, date, part, supplier
//       WHERE joins AND p_category = 'MFGR#12' AND s_region = 'AMERICA'
//       GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;
dbase::Result<Table> RunQ21(const SsbData& data);

// Q3.1: SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
//       FROM customer, lineorder, supplier, date
//       WHERE joins AND c_region = 'ASIA' AND s_region = 'ASIA'
//         AND d_year BETWEEN 1992 AND 1997
//       GROUP BY c_nation, s_nation, d_year
//       ORDER BY d_year ASC, revenue DESC;
dbase::Result<Table> RunQ31(const SsbData& data);

// Q4.1: SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
//       FROM date, customer, supplier, part, lineorder
//       WHERE joins AND c_region = 'AMERICA' AND s_region = 'AMERICA'
//         AND p_mfgr IN ('MFGR#1', 'MFGR#2')
//       GROUP BY d_year, c_nation ORDER BY d_year, c_nation;
dbase::Result<Table> RunQ41(const SsbData& data);

// --- Partitioned execution -----------------------------------------------

// Runs the query plan against one lineorder partition (dimensions are
// broadcast). The partial result still needs MergeQueryPartials.
dbase::Result<Table> RunQueryOnPartition(int query_id, const Table& lineorder_partition,
                                         const SsbData& dims);

// Merges per-partition partials: re-aggregates and re-sorts so the result
// equals the whole-table run.
dbase::Result<Table> MergeQueryPartials(int query_id, const std::vector<Table>& partials);

// Query ids used across the benchmark harness: 11, 21, 31, 41.
std::vector<int> SsbQueryIds();
std::string SsbQueryName(int query_id);

}  // namespace dsql

#endif  // SRC_SQL_SSB_QUERIES_H_
