#include "src/sql/operators.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "src/base/string_util.h"

namespace dsql {

dbase::Result<Table> Filter(const Table& input, const ExprPtr& predicate) {
  ASSIGN_OR_RETURN(ExprPtr bound, predicate->Bind(input));
  std::vector<uint32_t> rows;
  const size_t n = input.NumRows();
  for (size_t r = 0; r < n; ++r) {
    if (bound->EvalBool(input, r)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return input.Gather(rows);
}

dbase::Result<Table> Project(const Table& input, const std::vector<std::string>& columns) {
  Table out(input.name());
  for (const auto& name : columns) {
    ASSIGN_OR_RETURN(const Column* column, input.GetColumn(name));
    RETURN_IF_ERROR(out.AddColumn(name, *column));
  }
  return out;
}

dbase::Result<Table> WithComputedColumn(const Table& input, const std::string& name,
                                        const ExprPtr& expr) {
  ASSIGN_OR_RETURN(ExprPtr bound, expr->Bind(input));
  Table out = input;
  const size_t n = input.NumRows();
  // Determine result type from row 0 (empty tables default to int).
  if (n == 0) {
    RETURN_IF_ERROR(out.AddColumn(name, Column(ColumnType::kInt64)));
    return out;
  }
  const Value first = bound->Eval(input, 0);
  Column column(first.kind == Value::Kind::kInt ? ColumnType::kInt64 : ColumnType::kString);
  for (size_t r = 0; r < n; ++r) {
    const Value v = bound->Eval(input, r);
    if (v.kind == Value::Kind::kInt) {
      column.AppendInt(v.i);
    } else {
      column.AppendString(v.s);
    }
  }
  RETURN_IF_ERROR(out.AddColumn(name, std::move(column)));
  return out;
}

dbase::Result<Table> HashJoin(const Table& probe, const std::string& probe_key,
                              const Table& build, const std::string& build_key) {
  ASSIGN_OR_RETURN(const Column* probe_col, probe.GetColumn(probe_key));
  ASSIGN_OR_RETURN(const Column* build_col, build.GetColumn(build_key));
  if (probe_col->type() != ColumnType::kInt64 || build_col->type() != ColumnType::kInt64) {
    return dbase::InvalidArgument("hash join keys must be int64 columns");
  }

  // Build: key → row indices (keys may repeat).
  std::unordered_map<int64_t, std::vector<uint32_t>> hash_table;
  hash_table.reserve(build.NumRows());
  for (size_t r = 0; r < build.NumRows(); ++r) {
    hash_table[build_col->IntAt(r)].push_back(static_cast<uint32_t>(r));
  }

  std::vector<uint32_t> probe_rows;
  std::vector<uint32_t> build_rows;
  for (size_t r = 0; r < probe.NumRows(); ++r) {
    auto it = hash_table.find(probe_col->IntAt(r));
    if (it == hash_table.end()) {
      continue;
    }
    for (uint32_t b : it->second) {
      probe_rows.push_back(static_cast<uint32_t>(r));
      build_rows.push_back(b);
    }
  }

  Table out(probe.name() + "_join_" + build.name());
  for (const auto& [name, column] : probe.columns()) {
    RETURN_IF_ERROR(out.AddColumn(name, column.Gather(probe_rows)));
  }
  for (const auto& [name, column] : build.columns()) {
    if (out.HasColumn(name)) {
      continue;  // Probe side wins on name clashes (join keys overlap).
    }
    RETURN_IF_ERROR(out.AddColumn(name, column.Gather(build_rows)));
  }
  return out;
}

namespace {

// Composite group key: rendered values joined with '\x1f' (unit separator).
std::string GroupKey(const std::vector<const Column*>& group_cols, size_t row) {
  std::string key;
  for (const Column* column : group_cols) {
    if (column->type() == ColumnType::kInt64) {
      key += std::to_string(column->IntAt(row));
    } else {
      key += column->StringAt(row);
    }
    key += '\x1f';
  }
  return key;
}

struct AggState {
  int64_t sum = 0;
  int64_t count = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();
};

}  // namespace

dbase::Result<Table> GroupAggregate(const Table& input, const std::vector<std::string>& group_by,
                                    const std::vector<AggSpec>& aggs) {
  std::vector<const Column*> group_cols;
  group_cols.reserve(group_by.size());
  for (const auto& name : group_by) {
    ASSIGN_OR_RETURN(const Column* column, input.GetColumn(name));
    group_cols.push_back(column);
  }
  std::vector<const Column*> agg_cols;
  agg_cols.reserve(aggs.size());
  for (const auto& agg : aggs) {
    if (agg.op == AggOp::kCount) {
      agg_cols.push_back(nullptr);
      continue;
    }
    ASSIGN_OR_RETURN(const Column* column, input.GetColumn(agg.column));
    if (column->type() != ColumnType::kInt64) {
      return dbase::InvalidArgument("aggregation over non-int64 column: " + agg.column);
    }
    agg_cols.push_back(column);
  }

  // Group index: key → dense group id; remember one representative row.
  std::unordered_map<std::string, size_t> group_ids;
  std::vector<uint32_t> representative_rows;
  std::vector<std::vector<AggState>> states;

  const size_t n = input.NumRows();
  for (size_t r = 0; r < n; ++r) {
    const std::string key = GroupKey(group_cols, r);
    auto [it, inserted] = group_ids.emplace(key, group_ids.size());
    if (inserted) {
      representative_rows.push_back(static_cast<uint32_t>(r));
      states.emplace_back(aggs.size());
    }
    auto& group_states = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& state = group_states[a];
      ++state.count;
      if (agg_cols[a] != nullptr) {
        const int64_t v = agg_cols[a]->IntAt(r);
        state.sum += v;
        state.min = std::min(state.min, v);
        state.max = std::max(state.max, v);
      }
    }
  }

  // Full-table aggregation over empty input still yields one all-zero row —
  // SQL semantics for SUM over empty is NULL, but SSB queries never hit it;
  // we return 0 for simplicity.
  if (group_by.empty() && states.empty()) {
    representative_rows.push_back(0);
    states.emplace_back(aggs.size());
  }

  Table out(input.name() + "_agg");
  for (size_t g = 0; g < group_by.size(); ++g) {
    Column column(group_cols[g]->type());
    for (uint32_t row : representative_rows) {
      if (group_cols[g]->type() == ColumnType::kInt64) {
        column.AppendInt(group_cols[g]->IntAt(row));
      } else {
        column.AppendString(group_cols[g]->StringAt(row));
      }
    }
    RETURN_IF_ERROR(out.AddColumn(group_by[g], std::move(column)));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    Column column(ColumnType::kInt64);
    for (size_t g = 0; g < states.size(); ++g) {
      const AggState& state = states[g][a];
      switch (aggs[a].op) {
        case AggOp::kSum:
          column.AppendInt(state.sum);
          break;
        case AggOp::kCount:
          column.AppendInt(state.count);
          break;
        case AggOp::kMin:
          column.AppendInt(state.count > 0 ? state.min : 0);
          break;
        case AggOp::kMax:
          column.AppendInt(state.count > 0 ? state.max : 0);
          break;
      }
    }
    RETURN_IF_ERROR(out.AddColumn(aggs[a].output_name, std::move(column)));
  }
  return out;
}

dbase::Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys) {
  std::vector<const Column*> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& key : keys) {
    ASSIGN_OR_RETURN(const Column* column, input.GetColumn(key.column));
    key_cols.push_back(column);
  }
  std::vector<uint32_t> order(input.NumRows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column* column = key_cols[k];
      int cmp = 0;
      if (column->type() == ColumnType::kInt64) {
        const int64_t va = column->IntAt(a);
        const int64_t vb = column->IntAt(b);
        cmp = va < vb ? -1 : (va > vb ? 1 : 0);
      } else {
        cmp = column->StringAt(a).compare(column->StringAt(b));
      }
      if (cmp != 0) {
        return keys[k].descending ? cmp > 0 : cmp < 0;
      }
    }
    return false;
  });
  return input.Gather(order);
}

dbase::Result<Table> Concat(const std::vector<Table>& tables) {
  if (tables.empty()) {
    return dbase::InvalidArgument("Concat requires at least one table");
  }
  Table out = tables.front();
  for (size_t t = 1; t < tables.size(); ++t) {
    const Table& next = tables[t];
    if (next.NumColumns() != out.NumColumns()) {
      return dbase::InvalidArgument("Concat schema mismatch (column count)");
    }
    Table merged(out.name());
    for (size_t c = 0; c < out.NumColumns(); ++c) {
      const auto& [name, column] = out.columns()[c];
      const auto& [next_name, next_column] = next.columns()[c];
      if (name != next_name || column.type() != next_column.type()) {
        return dbase::InvalidArgument("Concat schema mismatch at column " + name);
      }
      Column combined(column.type());
      if (column.type() == ColumnType::kInt64) {
        std::vector<int64_t> values = column.ints();
        values.insert(values.end(), next_column.ints().begin(), next_column.ints().end());
        combined = Column::Ints(std::move(values));
      } else {
        std::vector<std::string> values = column.strings();
        values.insert(values.end(), next_column.strings().begin(), next_column.strings().end());
        combined = Column::Strings(std::move(values));
      }
      RETURN_IF_ERROR(merged.AddColumn(name, std::move(combined)));
    }
    out = std::move(merged);
  }
  return out;
}

}  // namespace dsql
