#include "src/benchutil/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <mutex>

#include "src/base/string_util.h"

namespace dbench {
namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += dbase::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The JSON report: one document per bench run, grouped into the sections
// PrintHeader opens. Guarded by a mutex so multi-threaded benches that
// print from workers stay well-formed.
struct ReportSection {
  std::string title;
  std::vector<std::string> notes;
  std::vector<std::string> table_json;  // Pre-rendered Table::ToJson().
};

struct Report {
  std::mutex mu;
  std::vector<ReportSection> sections;
  bool flush_registered = false;
};

Report& GetReport() {
  static Report* report = new Report();
  return *report;
}

const char* JsonPath() { return std::getenv("DANDELION_BENCH_JSON"); }

// Appends under the current (last) section, opening an untitled section for
// benches that never call PrintHeader.
ReportSection& CurrentSectionLocked(Report& report) {
  if (report.sections.empty()) {
    report.sections.push_back(ReportSection{});
  }
  return report.sections.back();
}

// Runs `mutate` on the locked report iff JSON output is enabled — callers
// do all rendering inside the callback so a run without the env var pays
// nothing — and registers the atexit flush on first use.
void RecordForJson(const std::function<void(Report&)>& mutate) {
  if (JsonPath() == nullptr) {
    return;
  }
  Report& report = GetReport();
  std::lock_guard<std::mutex> lock(report.mu);
  mutate(report);
  if (!report.flush_registered) {
    report.flush_registered = true;
    std::atexit(FlushJsonReport);
  }
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int decimals) {
  return dbase::StrFormat("%.*f", decimals, value);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') {
    rule.pop_back();
  }
  out += rule + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line = "CSV";
    for (const auto& cell : cells) {
      line += ',';
      line += cell;
    }
    line += '\n';
    return line;
  };
  std::string out = join(columns_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

std::string Table::ToJson() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string out = "[";
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += '"' + JsonEscape(cells[c]) + '"';
    }
    out += ']';
    return out;
  };
  std::string out = "{\"columns\":" + join(columns_) + ",\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) {
      out += ',';
    }
    out += join(rows_[r]);
  }
  out += "]}";
  return out;
}

void Table::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs(ToCsv().c_str(), stdout);
  std::fputs("\n", stdout);
  RecordForJson([this](Report& report) {
    CurrentSectionLocked(report).table_json.push_back(ToJson());
  });
}

void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
  RecordForJson([&title](Report& report) {
    report.sections.push_back(ReportSection{title, {}, {}});
  });
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
  RecordForJson([&note](Report& report) {
    CurrentSectionLocked(report).notes.push_back(note);
  });
}

void FlushJsonReport() {
  const char* path = JsonPath();
  if (path == nullptr) {
    return;
  }
  Report& report = GetReport();
  std::lock_guard<std::mutex> lock(report.mu);
  if (report.sections.empty()) {
    return;
  }
  std::string doc = "{\"schema\":\"dandelion-bench-v1\",\"unix_time_s\":" +
                    std::to_string(static_cast<long long>(std::time(nullptr))) +
                    ",\"sections\":[";
  for (size_t s = 0; s < report.sections.size(); ++s) {
    const ReportSection& section = report.sections[s];
    if (s > 0) {
      doc += ',';
    }
    doc += "{\"title\":\"" + JsonEscape(section.title) + "\",\"notes\":[";
    for (size_t n = 0; n < section.notes.size(); ++n) {
      if (n > 0) {
        doc += ',';
      }
      doc += '"' + JsonEscape(section.notes[n]) + '"';
    }
    doc += "],\"tables\":[";
    for (size_t t = 0; t < section.table_json.size(); ++t) {
      if (t > 0) {
        doc += ',';
      }
      doc += section.table_json[t];
    }
    doc += "]}";
  }
  doc += "]}\n";

  std::FILE* out = std::string(path) == "-" ? stdout : std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "DANDELION_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  std::fputs(doc.c_str(), out);
  if (out != stdout) {
    std::fclose(out);
  }
  report.sections.clear();  // Idempotent: a second flush writes nothing.
}

}  // namespace dbench
