#include "src/benchutil/table.h"

#include <algorithm>
#include <cstdio>

#include "src/base/string_util.h"

namespace dbench {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int decimals) {
  return dbase::StrFormat("%.*f", decimals, value);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') {
    rule.pop_back();
  }
  out += rule + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line = "CSV";
    for (const auto& cell : cells) {
      line += ',';
      line += cell;
    }
    line += '\n';
    return line;
  };
  std::string out = join(columns_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

void Table::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs(ToCsv().c_str(), stdout);
  std::fputs("\n", stdout);
}

void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
}

void PrintNote(const std::string& note) { std::printf("note: %s\n", note.c_str()); }

}  // namespace dbench
