// Standalone Dandelion engine-node daemon (ROADMAP "Distributed data
// plane"): one Platform wrapped in a NodeAgent serving the dnet wire on a
// loopback TCP port. A parent process (the cluster tests, the macro replay
// bench, or a CI lane) spawns N of these, reads the "LISTENING <port>"
// handshake line from stdout, and points a Cluster router at the ports.
// SIGTERM/SIGINT shut the node down cleanly.
//
// Flags (--key=value):
//   --name=<node name>       gossip/logging identity            [node]
//   --port=<port>            listen port, 0 = ephemeral         [0]
//   --workers=<n>            worker cores                       [4]
//   --control-plane=<0|1>    enable the elasticity control loop [0]
//   --interactive-cap=<n>    admission cap, 0 = uncapped        [256]
//   --batch-cap=<n>          admission cap, 0 = uncapped        [256]
//   --backend=thread|process isolation backend                  [thread]
//   --dsl=<text>             extra composition DSL (repeatable)
//
// Out of the box the node registers the builtin compute functions (echo,
// matmul, array_stats, fail, spin), a "work" body that burns the decimal
// microsecond count carried in its input payload (the macro bench's unit of
// offered load), and the Id / Work / Fail compositions the cluster tests
// and the replay bench invoke — so a freshly spawned node can serve traffic
// with no further provisioning round-trip.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <semaphore.h>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/func/builtins.h"
#include "src/runtime/node_agent.h"
#include "src/runtime/platform.h"

namespace {

sem_t g_shutdown;

void HandleSignal(int) { sem_post(&g_shutdown); }

// Burns CPU for the decimal microsecond count in the first "in" item
// (default 100us when absent/garbled), then echoes the inputs — the
// replay bench's knob for modelling per-invocation service time. Spins in
// slices so cancel/preemption stays responsive.
dbase::Status WorkFunction(dfunc::FunctionCtx& ctx) {
  dbase::Micros burn = 100;
  if (auto in = ctx.SingleInput("in"); in.ok()) {
    dbase::Micros parsed = 0;
    size_t digits = 0;
    for (char c : *in) {
      if (c < '0' || c > '9') break;
      parsed = parsed * 10 + (c - '0');
      if (++digits >= 9) break;
    }
    if (digits > 0) burn = parsed;
  }
  constexpr dbase::Micros kSliceUs = 500;
  while (burn > 0) {
    if (ctx.cancelled()) return dbase::Cancelled("work cancelled");
    const dbase::Micros slice = burn < kSliceUs ? burn : kSliceUs;
    dbase::SpinFor(slice);
    burn -= slice;
  }
  for (const auto& set : ctx.inputs()) {
    for (const auto& item : set.items) {
      ctx.EmitOutput("out", item.data, item.key);
    }
  }
  return dbase::OkStatus();
}

struct Flags {
  std::string name = "node";
  uint16_t port = 0;
  int workers = 4;
  bool control_plane = false;
  size_t interactive_cap = 256;
  size_t batch_cap = 256;
  std::string backend = "thread";
  std::vector<std::string> dsl;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "name") {
      flags->name = value;
    } else if (key == "port") {
      flags->port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (key == "workers") {
      flags->workers = std::atoi(value.c_str());
    } else if (key == "control-plane") {
      flags->control_plane = value == "1" || value == "true";
    } else if (key == "interactive-cap") {
      flags->interactive_cap = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "batch-cap") {
      flags->batch_cap = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "backend") {
      flags->backend = value;
    } else if (key == "dsl") {
      flags->dsl.push_back(value);
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

constexpr const char* kDefaultCompositions[] = {
    "composition Id(in) => out { echo(in = all in) => (out = out); }",
    "composition Work(in) => out { work(in = all in) => (out = out); }",
    "composition Fail(in) => out { fail(in = all in) => (out = out); }",
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  // A router tearing down mid-write must not kill the node.
  std::signal(SIGPIPE, SIG_IGN);

  dandelion::PlatformConfig config;
  config.num_workers = flags.workers;
  config.enable_control_plane = flags.control_plane;
  config.sleep_for_modeled_latency = false;
  if (flags.backend == "process") {
    config.backend = dandelion::IsolationBackend::kProcess;
  }
  dandelion::Platform platform(config);

  auto must = [](const dbase::Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  };
  must(platform.RegisterFunction({.name = "echo", .body = dfunc::EchoFunction}));
  must(platform.RegisterFunction({.name = "matmul", .body = dfunc::MatMulFunction}));
  must(platform.RegisterFunction({.name = "array_stats", .body = dfunc::ArrayStatsFunction}));
  must(platform.RegisterFunction({.name = "fail", .body = dfunc::FailingFunction}));
  must(platform.RegisterFunction({.name = "work", .body = WorkFunction}));
  for (const char* dsl : kDefaultCompositions) {
    must(platform.RegisterCompositionDsl(dsl));
  }
  for (const std::string& dsl : flags.dsl) {
    must(platform.RegisterCompositionDsl(dsl));
  }

  dandelion::NodeAgentConfig agent_config;
  agent_config.node_name = flags.name;
  agent_config.port = flags.port;
  agent_config.max_inflight_interactive = flags.interactive_cap;
  agent_config.max_inflight_batch = flags.batch_cap;
  dandelion::NodeAgent agent(&platform, agent_config);
  must(agent.Start());

  // The handshake line the spawning parent blocks on; fflush because the
  // pipe to the parent is block-buffered.
  std::printf("LISTENING %u\n", static_cast<unsigned>(agent.port()));
  std::fflush(stdout);

  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }

  agent.Stop();
  platform.Shutdown();
  return 0;
}
