#include "src/base/thread.h"

#include <pthread.h>
#include <sched.h>

#include <utility>

namespace dbase {

JoiningThread::JoiningThread(std::string name, std::function<void()> fn)
    : name_(std::move(name)), thread_(std::move(fn)) {
#ifdef __linux__
  // Thread names are capped at 15 chars + NUL on Linux.
  std::string short_name = name_.substr(0, 15);
  pthread_setname_np(thread_.native_handle(), short_name.c_str());
#endif
}

JoiningThread& JoiningThread::operator=(JoiningThread&& other) {
  if (this != &other) {
    Join();
    name_ = std::move(other.name_);
    thread_ = std::move(other.thread_);
  }
  return *this;
}

void JoiningThread::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--count_ <= 0) {
    cv_.notify_all();
  }
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ <= 0; });
}

bool Latch::WaitFor(Micros timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] { return count_ <= 0; });
}

WorkerPool::WorkerPool(int num_threads, std::string name) {
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(name + "-" + std::to_string(i), [this] {
      while (auto task = tasks_.Pop()) {
        (*task)();
      }
    });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) { return tasks_.Push(std::move(task)); }

void WorkerPool::Shutdown() {
  tasks_.Close();
  for (auto& t : threads_) {
    t.Join();
  }
}

bool PinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace dbase
