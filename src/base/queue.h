// Blocking multi-producer multi-consumer queue with close semantics and
// size sampling. Engines poll these queues (late binding of tasks, §5);
// the control plane samples queue depth growth to drive the PI controller.
#ifndef SRC_BASE_QUEUE_H_
#define SRC_BASE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/base/clock.h"

namespace dbase {

template <typename T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Returns false if the queue is closed (item is dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
      ++total_pushed_;
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    return item;
  }

  // Waits at most timeout; nullopt on timeout or closed-and-drained.
  std::optional<T> PopWithTimeout(Micros timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                 [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    return item;
  }

  // Non-blocking.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    return item;
  }

  // After Close(), pushes fail and pops drain the remaining items then
  // return nullopt. Wakes all waiters.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // Cumulative counters; the controller uses deltas of these between
  // sampling periods as queue growth rates (arrivals − departures).
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }
  uint64_t total_popped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_popped_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t total_pushed_ = 0;
  uint64_t total_popped_ = 0;
};

}  // namespace dbase

#endif  // SRC_BASE_QUEUE_H_
