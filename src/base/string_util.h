// String helpers shared by the HTTP layer, the DSL lexer, and the VFS.
#ifndef SRC_BASE_STRING_UTIL_H_
#define SRC_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dbase {

// Splits on a single character; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char sep);
// Splits on a separator string; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view input, std::string_view sep);

std::string_view TrimWhitespace(std::string_view s);

std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow (used by the HTTP sanitizer: never trust Content-Length).
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "1.23 ms" / "456 us" style human-readable durations (bench output).
std::string FormatMicros(double us);
// "12.3 MB" style sizes.
std::string FormatBytes(double bytes);

}  // namespace dbase

#endif  // SRC_BASE_STRING_UTIL_H_
