#include "src/base/clock.h"

#include <ctime>

namespace dbase {

Micros MonotonicClock::NowMicros() const {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Micros>(ts.tv_sec) * kMicrosPerSecond + ts.tv_nsec / 1000;
}

MonotonicClock* MonotonicClock::Get() {
  static MonotonicClock clock;
  return &clock;
}

void Stopwatch::Restart() { start_ = MonotonicClock::Get()->NowMicros(); }

Micros Stopwatch::ElapsedMicros() const {
  return MonotonicClock::Get()->NowMicros() - start_;
}

void SpinFor(Micros duration) {
  if (duration <= 0) {
    return;
  }
  const Micros deadline = MonotonicClock::Get()->NowMicros() + duration;
  while (MonotonicClock::Get()->NowMicros() < deadline) {
    // Busy-wait; callers use this only for short, compute-like delays.
  }
}

}  // namespace dbase
