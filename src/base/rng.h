// Deterministic random number generation. Every stochastic component
// (workload generators, service latency jitter, trace synthesis) takes an
// explicit Rng so experiments are reproducible from a seed.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace dbase {

// xoshiro256** with a splitmix64 seeder. Small, fast, good statistical
// quality; identical streams across platforms for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Exponential with the given mean (inter-arrival times of Poisson loads).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    return -mean * std::log(1.0 - u);
  }

  // Bounded Pareto — heavy-tailed function popularity / durations, as in the
  // Azure Functions trace characterization.
  double BoundedPareto(double alpha, double lo, double hi) {
    const double u = NextDouble();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  // Normal via Box-Muller (service latency jitter).
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 1e-18;
    }
    return mean + stddev * std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Lognormal: exp(Normal(mu, sigma)). Used for service / execution times.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Derives an independent child stream (per-function, per-service streams).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace dbase

#endif  // SRC_BASE_RNG_H_
