// Time utilities. All durations and timestamps in this code base are
// microseconds (int64_t), matching the granularity the paper reports
// (sandbox cold starts are 100s of microseconds).
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <cstdint>

namespace dbase {

using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

constexpr Micros MillisToMicros(double ms) { return static_cast<Micros>(ms * 1000.0); }
constexpr double MicrosToMillis(Micros us) { return static_cast<double>(us) / 1000.0; }
constexpr double MicrosToSeconds(Micros us) { return static_cast<double>(us) / 1e6; }

// Abstract clock so the runtime can run against real time and tests /
// the simulator can run against virtual time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
};

// Wall-clock-backed monotonic clock (CLOCK_MONOTONIC).
class MonotonicClock : public Clock {
 public:
  Micros NowMicros() const override;

  // Process-wide instance, suitable for most callers.
  static MonotonicClock* Get();
};

// Manually-advanced clock for unit tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}
  Micros NowMicros() const override { return now_; }
  void Advance(Micros delta) { now_ += delta; }
  void Set(Micros t) { now_ = t; }

 private:
  Micros now_;
};

// Measures elapsed real time; used by the benchmarks and the latency
// breakdown instrumentation in the runtime.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  Micros ElapsedMicros() const;
  double ElapsedMillis() const { return MicrosToMillis(ElapsedMicros()); }

 private:
  Micros start_;
};

// Busy-spins for the given duration; models a pure compute phase with
// microsecond fidelity (sleep-based waits are far too coarse).
void SpinFor(Micros duration);

}  // namespace dbase

#endif  // SRC_BASE_CLOCK_H_
