#include "src/base/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/log.h"

namespace dbase {
namespace {

constexpr int kMaxEventsPerWait = 64;

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Unavailable(std::string("epoll_create1 failed: ") + std::strerror(errno));
  }
  const int wakeup_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd < 0) {
    close(epoll_fd);
    return Unavailable(std::string("eventfd failed: ") + std::strerror(errno));
  }
  std::unique_ptr<EventLoop> loop(new EventLoop(epoll_fd, wakeup_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wakeup_fd, &ev) != 0) {
    return Unavailable(std::string("epoll_ctl(wakeup) failed: ") + std::strerror(errno));
  }
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wakeup_fd)
    : epoll_fd_(epoll_fd), wakeup_fd_(wakeup_fd) {}

EventLoop::~EventLoop() {
  close(wakeup_fd_);
  close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Internal(std::string("epoll_ctl(ADD) failed: ") + std::strerror(errno));
  }
  fd_callbacks_[fd] = std::make_shared<const FdCallback>(std::move(callback));
  return OkStatus();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Internal(std::string("epoll_ctl(MOD) failed: ") + std::strerror(errno));
  }
  return OkStatus();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fd_callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  bool need_wake;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    need_wake = posted_.empty();
    posted_.push_back(std::move(fn));
  }
  if (!need_wake) {
    return;  // A wakeup for the queued batch is already in flight.
  }
  const uint64_t one = 1;
  // The eventfd is valid for the EventLoop's whole lifetime; a full counter
  // (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stopped_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = write(wakeup_fd_, &one, sizeof(one));
}

EventLoop::TimerId EventLoop::AddTimer(Micros delay, std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  const Micros deadline = MonotonicClock::Get()->NowMicros() + (delay < 0 ? 0 : delay);
  timers_[id] = Timer{deadline, std::move(fn)};
  timer_heap_.push({deadline, id});
  return id;
}

void EventLoop::CancelTimer(TimerId id) { timers_.erase(id); }

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    fn();
  }
}

void EventLoop::RunDueTimers(Micros now) {
  while (!timer_heap_.empty() && timer_heap_.top().first <= now) {
    const TimerId id = timer_heap_.top().second;
    timer_heap_.pop();
    auto it = timers_.find(id);
    if (it == timers_.end()) {
      continue;  // Cancelled.
    }
    std::function<void()> fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
  }
}

int EventLoop::NextTimeoutMillis(Micros now) const {
  if (timer_heap_.empty()) {
    return -1;
  }
  const Micros remaining = timer_heap_.top().first - now;
  if (remaining <= 0) {
    return 0;
  }
  // Round up so a timer is never polled before it is due.
  return static_cast<int>((remaining + kMicrosPerMilli - 1) / kMicrosPerMilli);
}

void EventLoop::Run() {
  loop_thread_id_ = std::this_thread::get_id();
  epoll_event events[kMaxEventsPerWait];
  while (!stopped_.load(std::memory_order_acquire)) {
    const Micros now = MonotonicClock::Get()->NowMicros();
    const int n = epoll_wait(epoll_fd_, events, kMaxEventsPerWait, NextTimeoutMillis(now));
    if (n < 0 && errno != EINTR) {
      DLOG(Error) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        uint64_t drained;
        while (read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Re-lookup per event: an earlier callback in this batch may have
      // Remove()d this fd (e.g. closed a sibling connection).
      auto it = fd_callbacks_.find(fd);
      if (it == fd_callbacks_.end()) {
        continue;
      }
      // Pin the callback (pointer copy, not closure copy): it may Remove()
      // its own fd mid-call, and erasing the stored entry must not destroy
      // the closure under its own feet.
      const std::shared_ptr<const FdCallback> callback = it->second;
      (*callback)(events[i].events);
    }
    RunPosted();
    RunDueTimers(MonotonicClock::Get()->NowMicros());
  }
  // A Stop() racing the final wait may leave closures behind; run them so
  // shutdown work posted just before Stop() is not silently dropped.
  RunPosted();
  loop_thread_id_ = std::thread::id();
}

}  // namespace dbase
