// Epoll-based event loop: the reactor under the async HTTP frontend. One
// thread calls Run(); it multiplexes socket readiness, one-shot timers, and
// closures posted from other threads (woken through an eventfd). All fd and
// timer registration is expected to happen on the loop thread except Post()
// and Stop(), which are safe from anywhere — async work (engine completions)
// re-enters the loop by posting a closure rather than touching loop state.
#ifndef SRC_BASE_EVENT_LOOP_H_
#define SRC_BASE_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"

namespace dbase {

class EventLoop {
 public:
  // Receives the EPOLLIN/EPOLLOUT/EPOLLHUP/... bitmask that fired.
  using FdCallback = std::function<void(uint32_t events)>;
  using TimerId = uint64_t;

  // Creates the epoll instance and the wakeup eventfd; fails (Unavailable)
  // only when the kernel refuses the descriptors.
  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Dispatches events until Stop(). Runs posted closures and due timers
  // between epoll waits.
  void Run();
  // Thread-safe; wakes the loop and makes Run() return after the current
  // iteration finishes. Idempotent.
  void Stop();

  // Registers fd for the given EPOLL* interest set (level-triggered unless
  // EPOLLET is included). The callback stays attached until Remove().
  Status Add(int fd, uint32_t events, FdCallback callback);
  // Changes the interest set of an fd previously Add()ed.
  Status Modify(int fd, uint32_t events);
  // Deregisters fd. Pending events already harvested for this fd are
  // discarded (the dispatch loop re-checks registration per event). Does
  // not close the fd.
  void Remove(int fd);

  // Thread-safe: enqueues fn to run on the loop thread and wakes the loop.
  // Closures posted after Stop() are retained but never run.
  void Post(std::function<void()> fn);

  // One-shot timer: fn runs on the loop thread once, ~delay from now.
  // Returns an id usable with CancelTimer; ids are never reused.
  TimerId AddTimer(Micros delay, std::function<void()> fn);
  void CancelTimer(TimerId id);

  // True when called from inside Run() on the loop thread.
  bool IsLoopThread() const { return std::this_thread::get_id() == loop_thread_id_; }

 private:
  EventLoop(int epoll_fd, int wakeup_fd);

  void RunPosted();
  void RunDueTimers(Micros now);
  // Milliseconds until the next timer is due (for epoll_wait), or -1 to
  // block indefinitely.
  int NextTimeoutMillis(Micros now) const;

  const int epoll_fd_;
  const int wakeup_fd_;

  // Loop-thread-only state. Callbacks are held by shared_ptr so dispatch
  // can pin one across its own Remove() without deep-copying the closure
  // per event.
  std::map<int, std::shared_ptr<const FdCallback>> fd_callbacks_;
  struct Timer {
    Micros deadline;
    std::function<void()> fn;
  };
  std::map<TimerId, Timer> timers_;
  // Min-heap of (deadline, id); stale entries (cancelled / re-armed ids)
  // are skipped because the id is gone from timers_.
  using TimerKey = std::pair<Micros, TimerId>;
  std::priority_queue<TimerKey, std::vector<TimerKey>, std::greater<TimerKey>> timer_heap_;
  TimerId next_timer_id_ = 1;
  std::thread::id loop_thread_id_;

  // Cross-thread state.
  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dbase

#endif  // SRC_BASE_EVENT_LOOP_H_
