// Statistics utilities: running moments, percentile extraction, latency
// recording, and time-series sampling for committed-memory curves.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/clock.h"

namespace dbase {

// Welford online mean/variance. Used for the relative-variance numbers the
// paper reports in §7.6 (e.g. Firecracker log processing: 1495 %).
class OnlineStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  // Relative variance in percent: variance / mean^2 * 100 (the paper's
  // "relative variance" metric).
  double relative_variance_percent() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects individual samples and answers percentile queries. Sorting is
// deferred until the first query.
class LatencyRecorder {
 public:
  LatencyRecorder() { samples_.reserve(1024); }

  void Record(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }
  void RecordMicros(Micros us) { Record(static_cast<double>(us)); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // p in [0, 100]; nearest-rank percentile. Returns 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Mean() const;
  double Min() const;
  double Max() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

  // Merge another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// A (time, value) series, e.g. committed memory over the Azure trace.
struct TimePoint {
  Micros time_us = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  void Add(Micros t, double v) { points_.push_back({t, v}); }
  const std::vector<TimePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Time-weighted average of a step function defined by the points,
  // evaluated over [points.front().time, end_time].
  double TimeWeightedAverage(Micros end_time) const;
  double MaxValue() const;

  // Resample the step function at a fixed interval — what a plotting script
  // would consume to draw Figure 1 / Figure 10.
  std::vector<TimePoint> ResampleStep(Micros interval) const;

 private:
  std::vector<TimePoint> points_;
};

// Log-spaced histogram for cheap latency distribution summaries (used by
// engines to export queue-wait distributions without storing every sample).
class LogHistogram {
 public:
  // Buckets: [0,1), [1,2), [2,4), ... up to 2^62, values in arbitrary units.
  static constexpr int kNumBuckets = 64;

  void Add(uint64_t value);
  uint64_t count() const { return total_; }
  // Approximate percentile from bucket boundaries (upper bound of bucket).
  uint64_t ApproxPercentile(double p) const;
  std::string ToString() const;

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t total_ = 0;
};

}  // namespace dbase

#endif  // SRC_BASE_STATS_H_
