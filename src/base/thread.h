// Threading helpers: named joining threads, a countdown latch, and a small
// fixed worker pool used for offloading data movement (the dispatcher
// "offloads tasks that are not part of the control flow", §6.1).
#ifndef SRC_BASE_THREAD_H_
#define SRC_BASE_THREAD_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/queue.h"

namespace dbase {

// std::thread that joins on destruction and carries a debug name.
class JoiningThread {
 public:
  JoiningThread() = default;
  JoiningThread(std::string name, std::function<void()> fn);
  ~JoiningThread() { Join(); }

  JoiningThread(JoiningThread&&) = default;
  JoiningThread& operator=(JoiningThread&& other);

  JoiningThread(const JoiningThread&) = delete;
  JoiningThread& operator=(const JoiningThread&) = delete;

  void Join();
  bool joinable() const { return thread_.joinable(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::thread thread_;
};

// One-shot countdown latch (C++20 std::latch exists, but we also want
// CountUp for dynamic task groups).
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown();
  void Wait();
  // Waits at most timeout_us; returns true if the latch opened.
  bool WaitFor(Micros timeout_us);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

// Fixed-size worker pool over an MpmcQueue. Used for transfer offloading.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads, std::string name = "worker");
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);
  // Drains outstanding tasks and stops the workers.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  MpmcQueue<std::function<void()>> tasks_;
  std::vector<JoiningThread> threads_;
};

// Pins the calling thread to the given CPU if possible; best-effort (the
// paper pins communication engines to dedicated cores, §6.3).
bool PinCurrentThreadToCpu(int cpu);

}  // namespace dbase

#endif  // SRC_BASE_THREAD_H_
