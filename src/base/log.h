// Minimal leveled logger. Off by default at VERBOSE; benchmarks run with
// WARNING to keep output machine-parseable.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace dbase {

enum class LogLevel { kVerbose = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink; prefer the DLOG macro below.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace dbase

#define DLOG(level)                                                            \
  if (::dbase::LogLevel::k##level < ::dbase::GetLogLevel()) {                   \
  } else                                                                        \
    ::dbase::LogStream(::dbase::LogLevel::k##level, __FILE__, __LINE__)

#endif  // SRC_BASE_LOG_H_
