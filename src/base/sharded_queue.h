// Sharded task queue with work stealing. One shard per engine worker
// removes the single-mutex bottleneck of MpmcQueue under multi-core
// dispatch (§5 elasticity depends on dispatch staying cheap as cores
// scale): producers land on a shard in one lock crossing — a whole fan-out
// batch per crossing via PushBatch — consumers pop their own shard free of
// sibling contention and steal only when idle.
//
// Counter contract: pushes and pops are counted per shard under the same
// lock as the queue operation; total_pushed()/total_popped() aggregate
// across shards, so the PI controller's growth-rate deltas stay coherent
// no matter which shard a task lands on or which worker steals it. A steal
// counts as a pop. RehomeShard moves items between shards without touching
// either counter — re-homing is neither an arrival nor a departure.
//
// Priority: each shard carries two FIFO lanes. Items pushed urgent pop
// before any normal-lane item on the same shard (pops, steals, and
// re-homing all respect the lanes), so interactive work overtakes batch
// backlog without a separate queue or extra lock crossings.
#ifndef SRC_BASE_SHARDED_QUEUE_H_
#define SRC_BASE_SHARDED_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/clock.h"

namespace dbase {

template <typename T>
class ShardedTaskQueue {
 public:
  explicit ShardedTaskQueue(size_t num_shards) {
    const size_t count = num_shards == 0 ? 1 : num_shards;
    shards_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedTaskQueue(const ShardedTaskQueue&) = delete;
  ShardedTaskQueue& operator=(const ShardedTaskQueue&) = delete;

  size_t shard_count() const { return shards_.size(); }

  // Round-robin producer path. Returns false if the queue is closed.
  bool Push(T item, bool urgent = false) {
    return PushToShard(rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size(),
                       std::move(item), urgent);
  }

  // Targeted producer path (callers route to the shard of a worker whose
  // role matches the task). Returns false if the queue is closed.
  bool PushToShard(size_t shard, T item, bool urgent = false) {
    Shard& s = *shards_[ShardIndex(shard)];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (closed_.load(std::memory_order_relaxed)) {
        return false;
      }
      (urgent ? s.urgent : s.items).push_back(std::move(item));
      s.approx_size.store(s.items.size() + s.urgent.size(), std::memory_order_relaxed);
      ++s.pushed;
    }
    s.cv.notify_one();
    return true;
  }

  // Lands an entire batch on one shard in a single lock crossing — the
  // amortized path for each/key fan-outs. Every item still counts as one
  // push. Returns false (dropping the batch) if the queue is closed.
  bool PushBatch(std::vector<T> items, size_t shard, bool urgent = false) {
    if (items.empty()) {
      return !closed_.load(std::memory_order_relaxed);
    }
    Shard& s = *shards_[ShardIndex(shard)];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (closed_.load(std::memory_order_relaxed)) {
        return false;
      }
      s.pushed += items.size();
      std::deque<T>& lane = urgent ? s.urgent : s.items;
      for (auto& item : items) {
        lane.push_back(std::move(item));
      }
      s.approx_size.store(s.items.size() + s.urgent.size(), std::memory_order_relaxed);
    }
    s.cv.notify_all();
    // A batch is more work than one worker: bump the push epoch and wake
    // the siblings parked in PopWithTimeout so they steal instead of
    // sleeping out their timeout. The notify is lock-free, so a waiter
    // between its predicate check and its sleep can miss it — the bounded
    // wait (worst case: pre-batching latency) is the backstop.
    push_epoch_.fetch_add(1, std::memory_order_release);
    for (auto& shard_ptr : shards_) {
      if (shard_ptr.get() != &s) {
        shard_ptr->cv.notify_one();
      }
    }
    return true;
  }

  // Non-blocking pop from the caller's own shard (FIFO).
  std::optional<T> TryPopLocal(size_t shard) {
    Shard& s = *shards_[ShardIndex(shard)];
    std::lock_guard<std::mutex> lock(s.mu);
    return PopFrontLocked(s);
  }

  // Scans sibling shards (starting past the thief's own) and takes the
  // oldest item of the first non-empty one. Counts as a pop plus a steal.
  std::optional<T> TrySteal(size_t thief_shard) {
    const size_t n = shards_.size();
    const size_t thief = ShardIndex(thief_shard);
    for (size_t offset = 1; offset < n; ++offset) {
      Shard& victim = *shards_[(thief + offset) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      auto item = PopFrontLocked(victim);
      if (item.has_value()) {
        ++victim.stolen;
        return item;
      }
    }
    return std::nullopt;
  }

  // Local pop, then steal, then a bounded wait on the local shard — which a
  // sibling-shard batch push cuts short (epoch bump + wake) so idle workers
  // steal a fresh fan-out instead of sleeping out their timeout. May return
  // nullopt before the timeout elapses (callers loop); returns nullopt when
  // closed and the local shard is drained (siblings may still hold items —
  // callers drain those via TryPop).
  std::optional<T> PopWithTimeout(size_t shard, Micros timeout_us) {
    if (auto item = TryPopLocal(shard)) {
      return item;
    }
    if (auto item = TrySteal(shard)) {
      return item;
    }
    const uint64_t seen_epoch = push_epoch_.load(std::memory_order_acquire);
    Shard& s = *shards_[ShardIndex(shard)];
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
        return !s.items.empty() || !s.urgent.empty() ||
               closed_.load(std::memory_order_relaxed) ||
               push_epoch_.load(std::memory_order_relaxed) != seen_epoch;
      });
      if (auto item = PopFrontLocked(s)) {
        return item;
      }
    }
    // Woken by a batch landing on a sibling (or timed out): one more steal
    // attempt before handing control back to the caller's loop.
    return TrySteal(shard);
  }

  // Local pop falling back to a steal; never blocks.
  std::optional<T> TryPop(size_t shard) {
    if (auto item = TryPopLocal(shard)) {
      return item;
    }
    return TrySteal(shard);
  }

  // Moves everything queued on `from` onto the `to` shards (round-robin)
  // without touching the pushed/popped counters: used when a worker's role
  // shift leaves residue on a shard no same-role worker calls home. With no
  // eligible targets the items stay put — stealing is the safety net.
  // Returns the number of items moved.
  size_t RehomeShard(size_t from, const std::vector<size_t>& to) {
    const size_t source = ShardIndex(from);
    std::deque<T> residue;         // Normal lane.
    std::deque<T> urgent_residue;  // Urgent lane (keeps its lane on arrival).
    {
      Shard& s = *shards_[source];
      std::lock_guard<std::mutex> lock(s.mu);
      // Count the residue as in flight *before* it leaves the shard, so
      // Size() never reads a false empty mid-move (a shutdown drain racing
      // a role shift must keep seeing these tasks).
      rehoming_.fetch_add(s.items.size() + s.urgent.size(), std::memory_order_release);
      residue.swap(s.items);
      urgent_residue.swap(s.urgent);
      s.approx_size.store(0, std::memory_order_relaxed);
    }
    if (residue.empty() && urgent_residue.empty()) {
      return 0;
    }
    std::vector<size_t> targets;
    for (size_t t : to) {
      if (ShardIndex(t) != source) {
        targets.push_back(ShardIndex(t));
      }
    }
    if (targets.empty()) {
      // Put the residue back; no same-role shard exists to receive it.
      const size_t count = residue.size() + urgent_residue.size();
      Shard& s = *shards_[source];
      {
        std::lock_guard<std::mutex> lock(s.mu);
        for (auto& item : residue) {
          s.items.push_back(std::move(item));
        }
        for (auto& item : urgent_residue) {
          s.urgent.push_back(std::move(item));
        }
        s.approx_size.store(s.items.size() + s.urgent.size(), std::memory_order_relaxed);
      }
      rehoming_.fetch_sub(count, std::memory_order_release);
      return 0;
    }
    const size_t moved = residue.size() + urgent_residue.size();
    size_t next = 0;
    const auto distribute = [&](std::deque<T>* lane_residue, bool urgent) {
      while (!lane_residue->empty()) {
        Shard& s = *shards_[targets[next++ % targets.size()]];
        {
          std::lock_guard<std::mutex> lock(s.mu);
          (urgent ? s.urgent : s.items).push_back(std::move(lane_residue->front()));
          s.approx_size.store(s.items.size() + s.urgent.size(), std::memory_order_relaxed);
        }
        s.cv.notify_one();
        // Decrement only after the item is visible on its new shard: Size()
        // may transiently double-count, never undercount.
        rehoming_.fetch_sub(1, std::memory_order_release);
        lane_residue->pop_front();
      }
    };
    distribute(&urgent_residue, /*urgent=*/true);
    distribute(&residue, /*urgent=*/false);
    return moved;
  }

  // After Close(), pushes fail and pops drain remaining items then return
  // nullopt. Wakes all waiters on every shard.
  void Close() {
    closed_.store(true, std::memory_order_relaxed);
    // Take each shard lock once so no waiter can check the predicate
    // between the store and the notify, then wake everyone.
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
    }
    for (auto& shard : shards_) {
      shard->cv.notify_all();
    }
  }

  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  size_t ShardSize(size_t shard) const {
    const Shard& s = *shards_[ShardIndex(shard)];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.items.size() + s.urgent.size();
  }

  // Lock-free approximate depth (maintained under the shard lock, read
  // relaxed) — the submit path's load-balancing signal. May lag the exact
  // size by a racing operation; never use it for drain/emptiness proofs.
  size_t ApproxShardSize(size_t shard) const {
    return shards_[ShardIndex(shard)]->approx_size.load(std::memory_order_relaxed);
  }

  size_t Size() const {
    size_t total = rehoming_.load(std::memory_order_acquire);
    for (size_t i = 0; i < shards_.size(); ++i) {
      total += ShardSize(i);
    }
    return total;
  }

  // Urgent-lane backlog summed across shards — the control plane's
  // interactive-class queue-depth signal. Items mid-rehome are not
  // attributed (this is a load signal, not a drain proof).
  size_t UrgentSize() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->urgent.size();
    }
    return total;
  }

  // Aggregate counters; the controller uses deltas of these between
  // sampling periods as queue growth rates (arrivals − departures).
  uint64_t total_pushed() const {
    return SumOverShards([](const Shard& s) { return s.pushed; });
  }
  uint64_t total_popped() const {
    return SumOverShards([](const Shard& s) { return s.popped; });
  }
  uint64_t total_stolen() const {
    return SumOverShards([](const Shard& s) { return s.stolen; });
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<T> items;   // Normal lane.
    std::deque<T> urgent;  // Pops ahead of `items` (interactive class).
    // Guarded by mu — counted under the same lock as the queue operation.
    uint64_t pushed = 0;
    uint64_t popped = 0;
    uint64_t stolen = 0;
    // Mirror of items.size(), written under mu, read lock-free by
    // ApproxShardSize.
    std::atomic<size_t> approx_size{0};
  };

  // Pops the front item — urgent lane first — and maintains
  // popped/approx_size. Caller holds s.mu.
  std::optional<T> PopFrontLocked(Shard& s) {
    std::deque<T>* lane = !s.urgent.empty() ? &s.urgent : &s.items;
    if (lane->empty()) {
      return std::nullopt;
    }
    T item = std::move(lane->front());
    lane->pop_front();
    s.approx_size.store(s.items.size() + s.urgent.size(), std::memory_order_relaxed);
    ++s.popped;
    return item;
  }

  // Clamps a caller-supplied shard id without a division on the hot path
  // (callers pass valid ids; the modulo is the safety net).
  size_t ShardIndex(size_t shard) const {
    return shard < shards_.size() ? shard : shard % shards_.size();
  }

  template <typename Field>
  uint64_t SumOverShards(Field field) const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += field(*shard);
    }
    return total;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> rr_{0};
  // Bumped once per PushBatch; lets PopWithTimeout waiters notice work
  // arriving on sibling shards and steal instead of sleeping.
  std::atomic<uint64_t> push_epoch_{0};
  // Items mid-RehomeShard: out of their source shard but not yet on a
  // target. Included in Size() so drains never observe a false empty.
  std::atomic<size_t> rehoming_{0};
};

}  // namespace dbase

#endif  // SRC_BASE_SHARDED_QUEUE_H_
