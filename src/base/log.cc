#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace dbase {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_sink_mu;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kVerbose:
      return "V";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, message.c_str());
}

}  // namespace dbase
