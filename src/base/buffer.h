// Refcounted immutable payload buffers and bounds-checked slice views — the
// zero-copy substrate of the composition data plane. A Buffer owns (or
// pins) one base allocation; BufferSlices are offset-tracked subregions of
// it. Every consumer of a slice holds the buffer alive through the shared
// refcount, so a frontend request body survives exactly until the last
// composition node that references it completes, and a memory-context
// region is not recycled while any reader still views its bytes.
//
// Buffers are immutable after construction: a slice never observes a
// mutation, which is what makes handing one region to N fan-out instances
// safe without copies. Code that must mutate goes through the data plane's
// copy-on-write seam (dfunc::Payload::MutableString), never through here.
#ifndef SRC_BASE_BUFFER_H_
#define SRC_BASE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/base/status.h"

namespace dbase {

// One immutable base allocation. Two flavours behind one type:
//  - owning: adopts a std::string's storage (no byte copy on creation);
//  - pinning: views external memory (an mmap'd MemoryContext region, a
//    static blob) and keeps an arbitrary owner token alive so the memory
//    cannot be unmapped or recycled while the buffer exists.
class Buffer {
 public:
  // Adopts `bytes` (moves the string's storage; no copy).
  static std::shared_ptr<const Buffer> FromString(std::string bytes);

  // Copies `bytes` into a fresh owned allocation.
  static std::shared_ptr<const Buffer> Copy(std::string_view bytes);

  // Views `[data, data+size)` without owning it; `owner` is held alive for
  // the buffer's lifetime (pass the shared_ptr that controls the memory's
  // lifetime, e.g. a MemoryContext). A null owner is allowed only when the
  // caller guarantees the memory outlives every slice — scoped, in-sandbox
  // use; nothing long-lived may be built on it.
  static std::shared_ptr<const Buffer> Wrap(const void* data, size_t size,
                                            std::shared_ptr<const void> owner);

  const char* data() const { return data_; }
  size_t size() const { return size_; }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

 private:
  Buffer(std::string storage)
      : storage_(std::move(storage)), data_(storage_.data()), size_(storage_.size()) {}
  Buffer(const void* data, size_t size, std::shared_ptr<const void> owner)
      : owner_(std::move(owner)), data_(static_cast<const char*>(data)), size_(size) {}

  std::string storage_;                  // Owning flavour; empty when pinning.
  std::shared_ptr<const void> owner_;    // Pinning flavour; null when owning.
  const char* data_ = nullptr;
  size_t size_ = 0;
};

// A bounds-checked `[offset, offset+size)` view of a Buffer. Copying a
// slice bumps the refcount; no payload bytes move. The default-constructed
// slice is the canonical empty payload (no buffer, zero length).
class BufferSlice {
 public:
  BufferSlice() = default;

  // Whole-buffer view.
  explicit BufferSlice(std::shared_ptr<const Buffer> buffer)
      : buffer_(std::move(buffer)),
        offset_(0),
        size_(buffer_ != nullptr ? buffer_->size() : 0) {}

  // Checked subregion constructor: fails (instead of clamping silently)
  // when the range falls outside the buffer — a truncated or hostile
  // length field must surface as an error, not as a short read.
  static Result<BufferSlice> Make(std::shared_ptr<const Buffer> buffer, size_t offset,
                                  size_t size);

  // Checked re-slice relative to this view; same error contract as Make.
  Result<BufferSlice> Subslice(size_t offset, size_t size) const;

  std::string_view view() const {
    return buffer_ == nullptr ? std::string_view()
                              : std::string_view(buffer_->data() + offset_, size_);
  }
  const char* data() const { return buffer_ == nullptr ? nullptr : buffer_->data() + offset_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // The underlying buffer (null for the empty slice) — used for identity
  // checks ("does this slice alias that region?") and keep-alive audits.
  const std::shared_ptr<const Buffer>& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }

 private:
  BufferSlice(std::shared_ptr<const Buffer> buffer, size_t offset, size_t size)
      : buffer_(std::move(buffer)), offset_(offset), size_(size) {}

  std::shared_ptr<const Buffer> buffer_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

}  // namespace dbase

#endif  // SRC_BASE_BUFFER_H_
