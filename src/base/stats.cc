#include "src/base/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace dbase {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::relative_variance_percent() const {
  if (count_ == 0 || mean_ == 0.0) {
    return 0.0;
  }
  return variance() / (mean_ * mean_) * 100.0;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyRecorder::Min() const { return Percentile(0.0); }
double LatencyRecorder::Max() const { return Percentile(100.0); }

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

double TimeSeries::TimeWeightedAverage(Micros end_time) const {
  if (points_.empty()) {
    return 0.0;
  }
  double area = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const Micros t0 = points_[i].time_us;
    const Micros t1 = (i + 1 < points_.size()) ? points_[i + 1].time_us : end_time;
    if (t1 <= t0) {
      continue;
    }
    area += points_[i].value * static_cast<double>(t1 - t0);
  }
  const Micros span = end_time - points_.front().time_us;
  if (span <= 0) {
    return points_.back().value;
  }
  return area / static_cast<double>(span);
}

double TimeSeries::MaxValue() const {
  double best = 0.0;
  for (const auto& p : points_) {
    best = std::max(best, p.value);
  }
  return best;
}

std::vector<TimePoint> TimeSeries::ResampleStep(Micros interval) const {
  std::vector<TimePoint> out;
  if (points_.empty() || interval <= 0) {
    return out;
  }
  size_t idx = 0;
  double current = points_.front().value;
  for (Micros t = points_.front().time_us; t <= points_.back().time_us; t += interval) {
    while (idx < points_.size() && points_[idx].time_us <= t) {
      current = points_[idx].value;
      ++idx;
    }
    out.push_back({t, current});
  }
  return out;
}

namespace {
int BucketIndex(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return 64 - __builtin_clzll(value);
}
}  // namespace

void LogHistogram::Add(uint64_t value) {
  int idx = BucketIndex(value);
  if (idx >= kNumBuckets) {
    idx = kNumBuckets - 1;
  }
  ++buckets_[idx];
  ++total_;
}

uint64_t LogHistogram::ApproxPercentile(double p) const {
  if (total_ == 0) {
    return 0;
  }
  const uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(total_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 0 ? 0 : (1ULL << i) - 1;  // Upper bound of bucket i.
    }
  }
  return ~0ULL;
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  os << "hist(total=" << total_ << ")[";
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "<" << (i == 0 ? 1ULL : (1ULL << i)) << ":" << buckets_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace dbase
