// Status and Result<T>: lightweight, exception-free error propagation used
// throughout the code base (inspired by absl::Status / absl::StatusOr).
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dbase {

// Error categories. Mirrors the failure classes the runtime distinguishes:
// user errors (invalid DSL / malformed HTTP), platform errors (resource
// exhaustion), and remote-service failures forwarded through compositions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
  kInternal,
  kUnimplemented,
  kPermissionDenied,
  kAborted,
  kCancelled,
};

// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such function" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status Aborted(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }
inline Status Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}

// Result<T>: either a T or a non-OK Status. Accessing value() on an error is
// a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value_or: convenience for tests and defaults.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

// Propagate errors without exceptions:
//   ASSIGN_OR_RETURN(auto parsed, Parse(text));
#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::dbase::Status _st = (expr);          \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (0)

#define ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                           \
  if (!tmp.ok()) {                             \
    return tmp.status();                       \
  }                                            \
  decl = std::move(tmp).value()

#define ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define ASSIGN_OR_RETURN_UNIQUE(a, b) ASSIGN_OR_RETURN_CONCAT(a, b)
#define ASSIGN_OR_RETURN(decl, expr) \
  ASSIGN_OR_RETURN_IMPL(ASSIGN_OR_RETURN_UNIQUE(_result_tmp_, __LINE__), decl, expr)

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dbase

#endif  // SRC_BASE_STATUS_H_
