#include "src/base/buffer.h"

#include "src/base/string_util.h"

namespace dbase {

std::shared_ptr<const Buffer> Buffer::FromString(std::string bytes) {
  return std::shared_ptr<const Buffer>(new Buffer(std::move(bytes)));
}

std::shared_ptr<const Buffer> Buffer::Copy(std::string_view bytes) {
  return FromString(std::string(bytes));
}

std::shared_ptr<const Buffer> Buffer::Wrap(const void* data, size_t size,
                                           std::shared_ptr<const void> owner) {
  return std::shared_ptr<const Buffer>(new Buffer(data, size, std::move(owner)));
}

Result<BufferSlice> BufferSlice::Make(std::shared_ptr<const Buffer> buffer, size_t offset,
                                      size_t size) {
  const size_t limit = buffer != nullptr ? buffer->size() : 0;
  if (offset > limit || size > limit - offset) {
    return InvalidArgument(
        StrFormat("slice [%zu, +%zu) exceeds buffer of %zu bytes", offset, size, limit));
  }
  return BufferSlice(std::move(buffer), offset, size);
}

Result<BufferSlice> BufferSlice::Subslice(size_t offset, size_t size) const {
  if (offset > size_ || size > size_ - offset) {
    return InvalidArgument(
        StrFormat("subslice [%zu, +%zu) exceeds slice of %zu bytes", offset, size, size_));
  }
  return BufferSlice(buffer_, offset_ + offset, size);
}

}  // namespace dbase
