#include "src/base/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dbase {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitString(std::string_view input, std::string_view sep) {
  std::vector<std::string_view> out;
  if (sep.empty()) {
    out.push_back(input);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;  // Overflow.
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(s, &magnitude)) {
    return false;
  }
  if (negative) {
    if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) {
      return false;
    }
    // Negate in unsigned space: -INT64_MIN is not representable, so the
    // signed negation would be UB for the most-negative value.
    *out = static_cast<int64_t>(0 - magnitude);
  } else {
    if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
      return false;
    }
    *out = static_cast<int64_t>(magnitude);
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) {
    return false;
  }
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatMicros(double us) {
  if (us < 1000.0) {
    return StrFormat("%.0f us", us);
  }
  if (us < 1e6) {
    return StrFormat("%.2f ms", us / 1000.0);
  }
  return StrFormat("%.3f s", us / 1e6);
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, units[unit]);
}

}  // namespace dbase
