#include "src/policy/kpa.h"

#include <algorithm>
#include <cmath>

namespace dpolicy {

KpaAutoscaler::KpaAutoscaler(KpaConfig config) : config_(config) {}

void KpaAutoscaler::Reset() {
  samples_.clear();
  replicas_ = 0;
  panic_until_ = -1;
  panic_floor_ = 0;
  last_positive_us_ = 0;
  last_tick_ = 0;
}

double KpaAutoscaler::WindowAverage(dbase::Micros now, dbase::Micros window) const {
  double sum = 0.0;
  int count = 0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (now - it->first > window) {
      break;
    }
    sum += it->second;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

int KpaAutoscaler::Tick(dbase::Micros now, double concurrency) {
  last_tick_ = now;
  samples_.emplace_back(now, concurrency);
  while (!samples_.empty() && now - samples_.front().first > config_.stable_window_us) {
    samples_.pop_front();
  }
  if (concurrency > 0.0) {
    last_positive_us_ = now;
  }

  const double stable_avg = WindowAverage(now, config_.stable_window_us);
  const double panic_avg = WindowAverage(now, config_.panic_window_us);
  const int stable_desired =
      static_cast<int>(std::ceil(stable_avg / config_.target_concurrency));
  const int panic_desired = static_cast<int>(std::ceil(panic_avg / config_.target_concurrency));

  // Enter panic mode when the short window demands far more than we have.
  if (replicas_ > 0 && panic_desired > static_cast<int>(config_.panic_threshold * replicas_)) {
    panic_until_ = now + config_.stable_window_us;
    panic_floor_ = std::max(panic_floor_, replicas_);
  }

  int desired;
  if (now < panic_until_) {
    // Panicking: only scale up, never down.
    desired = std::max({stable_desired, panic_desired, panic_floor_});
    panic_floor_ = desired;
  } else {
    panic_floor_ = 0;
    desired = stable_desired;
  }

  // Scale-to-zero only after the grace period with no traffic: until the
  // grace expires, one replica stays up.
  if (desired == 0) {
    const bool grace_expired = now - last_positive_us_ > config_.scale_to_zero_grace_us;
    if (!grace_expired && replicas_ > 0) {
      desired = 1;
    }
  }

  desired = std::clamp(desired, 0, config_.max_replicas);
  replicas_ = desired;
  return replicas_;
}

}  // namespace dpolicy
