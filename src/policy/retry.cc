#include "src/policy/retry.h"

#include <algorithm>
#include <cmath>

namespace dpolicy {

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kCrash:
      return "crash";
    case FailureKind::kJailKill:
      return "jail_kill";
    case FailureKind::kDeadlineKill:
      return "deadline_kill";
    case FailureKind::kCancelKill:
      return "cancel_kill";
    case FailureKind::kNonzeroExit:
      return "nonzero_exit";
    case FailureKind::kPoolChildLost:
      return "pool_child_lost";
    case FailureKind::kResourceExhausted:
      return "resource_exhausted";
    case FailureKind::kPeerLost:
      return "peer_lost";
  }
  return "unknown";
}

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

AdmitDecision RetryPolicy::Admit(const std::string& function, dbase::Micros now_us) {
  if (!options_.enabled) return {true, "disabled"};
  auto it = breakers_.find(function);
  if (it == breakers_.end()) return {true, "closed"};
  Breaker& breaker = it->second;
  switch (breaker.state) {
    case BreakerState::kClosed:
      return {true, "closed"};
    case BreakerState::kHalfOpen:
      // A probe is already in flight (or just failed and re-opened). Letting
      // more than one probe through would turn recovery into a thundering
      // herd against a possibly-still-sick function.
      ++stats_.breaker_fast_fails;
      return {false, "breaker half-open, probe in flight"};
    case BreakerState::kOpen:
      if (now_us - breaker.opened_at_us >= options_.breaker_cooldown_us) {
        breaker.state = BreakerState::kHalfOpen;
        return {true, "half-open probe"};
      }
      ++stats_.breaker_fast_fails;
      return {false, "breaker open"};
  }
  return {true, "closed"};
}

RetryDecision RetryPolicy::OnFailure(const std::string& function, FailureKind kind,
                                     bool interactive, int attempts_so_far,
                                     dbase::Micros now_us) {
  if (!options_.enabled) return {false, 0, "disabled"};

  bool breaker_open = false;
  if (IsBreakerRelevant(kind)) {
    Breaker& breaker = breakers_[function];
    ++breaker.consecutive_failures;
    if (breaker.state == BreakerState::kHalfOpen) {
      // The cooldown probe failed: straight back to open, restart cooldown.
      breaker.state = BreakerState::kOpen;
      breaker.opened_at_us = now_us;
      ++stats_.breaker_trips;
    } else if (breaker.state == BreakerState::kClosed &&
               breaker.consecutive_failures >= options_.breaker_trip_after) {
      breaker.state = BreakerState::kOpen;
      breaker.opened_at_us = now_us;
      ++stats_.breaker_trips;
    }
    breaker_open = breaker.state != BreakerState::kClosed;
  }

  if (!IsRetrySafe(kind)) {
    ++stats_.retries_denied_kind;
    return {false, 0, "kind not retry-safe"};
  }
  if (breaker_open) {
    ++stats_.retries_denied_budget;
    return {false, 0, "breaker open"};
  }
  const int budget =
      interactive ? options_.max_retries_interactive : options_.max_retries_batch;
  if (attempts_so_far >= budget) {
    ++stats_.retries_denied_budget;
    return {false, 0, "budget exhausted"};
  }
  ++stats_.retries_granted;
  return {true, BackoffForAttempt(attempts_so_far), "granted"};
}

void RetryPolicy::OnSuccess(const std::string& function) {
  auto it = breakers_.find(function);
  if (it == breakers_.end()) return;
  Breaker& breaker = it->second;
  if (breaker.state != BreakerState::kClosed) ++stats_.breaker_recoveries;
  breaker.state = BreakerState::kClosed;
  breaker.consecutive_failures = 0;
}

std::vector<BreakerSnapshot> RetryPolicy::Breakers() const {
  std::vector<BreakerSnapshot> out;
  out.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) {
    out.push_back({name, breaker.state, breaker.consecutive_failures, breaker.opened_at_us});
  }
  return out;
}

RetryPolicyStats RetryPolicy::Stats() const {
  RetryPolicyStats stats = stats_;
  stats.breakers_open = 0;
  for (const auto& [name, breaker] : breakers_) {
    (void)name;
    if (breaker.state != BreakerState::kClosed) ++stats.breakers_open;
  }
  return stats;
}

dbase::Micros RetryPolicy::BackoffForAttempt(int attempts_so_far) const {
  double backoff = static_cast<double>(options_.backoff_base_us) *
                   std::pow(options_.backoff_multiplier, attempts_so_far);
  backoff = std::min(backoff, static_cast<double>(options_.backoff_cap_us));
  return static_cast<dbase::Micros>(backoff);
}

}  // namespace dpolicy
