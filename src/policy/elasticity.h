// The elasticity policy layer (§5): core re-assignment between compute and
// communication engines expressed as explicit, pure policy objects. Each
// control-plane tick the driver — the runtime's ControlPlane or the
// discrete-event simulator — gathers an ElasticitySignals snapshot and asks
// the plugged-in ElasticityPolicy for an ElasticityDecision. Policies hold
// only their own state, take time as an input, and touch no clocks or
// threads, so the live runtime, dsim, and fake-clock unit tests execute
// literally the same decision code.
//
// Shipped policies:
//   PaperPiPolicy         — the paper's §5 controller: single queue-growth
//                           error into a PI loop, one core per tick.
//   HysteresisPolicy      — multi-core shifts sized by the per-worker
//                           pressure imbalance, with a post-shift cooldown
//                           and interactive-backlog weighting so batch
//                           floods cannot starve role shifts that
//                           interactive work needs.
//   ConcurrencyTargetPolicy — Knative-KPA logic (src/policy/kpa.h) on comm
//                           concurrency: windowed average + panic window
//                           pick a target comm-core count.
#ifndef SRC_POLICY_ELASTICITY_H_
#define SRC_POLICY_ELASTICITY_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/policy/kpa.h"

namespace dpolicy {

// One multi-signal snapshot per control tick. Drivers fill what they can
// see; absent signals stay zero (policies must treat zero as "quiet", not
// "unknown"). compute_workers + comm_workers is the full core count.
struct ElasticitySignals {
  dbase::Micros now_us = 0;

  // Core split at snapshot time.
  int compute_workers = 0;
  int comm_workers = 0;

  // Queue growth over the last tick: arrivals minus departures, from the
  // engine queues' cumulative push/pop counters (steals count as pops, so
  // the deltas stay coherent across shards and role shifts).
  double compute_growth = 0.0;
  double comm_growth = 0.0;

  // Instantaneous queue backlogs (all classes) and the interactive-lane
  // share of each (urgent-lane depths summed across shards).
  uint64_t compute_backlog = 0;
  uint64_t comm_backlog = 0;
  uint64_t interactive_compute_backlog = 0;
  uint64_t interactive_comm_backlog = 0;

  // Communication requests currently in flight on comm engines (occupied
  // green threads), and the per-core green-thread budget.
  double comm_inflight = 0.0;
  int comm_parallelism = 1;

  // Dispatcher gauges: external invocations in flight, by class.
  uint64_t inflight_interactive = 0;
  uint64_t inflight_batch = 0;

  // Cumulative admission/deadline pressure (frontend 429s + dispatcher
  // deadline terminations).
  uint64_t admission_shed = 0;
  uint64_t deadline_exceeded = 0;

  // Memory-context recycler occupancy in [0, 1] (shelved regions / cap).
  double context_pool_occupancy = 0.0;

  // Warm sandbox-pool state (src/runtime/sandbox_pool.h): sandboxes ready
  // on the shelf, the share of the global cap they occupy, and cumulative
  // pool misses (cold creates) — the pressure signal pre-warming exists to
  // drive down.
  uint64_t warm_pool_shelved = 0;
  double warm_pool_occupancy = 0.0;
  uint64_t warm_pool_misses = 0;

  // Failure pressure (src/policy/retry.h): cumulative sandbox-level
  // failures, retries the RetryPolicy granted, launches a tripped breaker
  // fast-failed, and breakers currently open — a node drowning in crashes
  // should not look like a node that merely needs more compute cores.
  uint64_t sandbox_failures = 0;
  uint64_t retries_attempted = 0;
  uint64_t breaker_fast_fails = 0;
  int breakers_open = 0;

  // Cluster/router pressure (src/runtime/cluster.h): cumulative cross-node
  // re-routes (a peer shed or died and the work moved), peers currently
  // not routable (suspect or evicted), and wire bytes moved by the node
  // client. Zero on single-node deployments. These are router-local — they
  // do not travel in node gossip.
  uint64_t cluster_reroutes = 0;
  int cluster_peers_unavailable = 0;
  uint64_t net_bytes_sent = 0;
  uint64_t net_bytes_received = 0;

  int total_workers() const { return compute_workers + comm_workers; }
};

// What the policy wants done this tick. Drivers clamp the shift to what the
// worker set can actually move (at least one worker per role stays).
struct ElasticityDecision {
  // Cores to move comm→compute (positive) or compute→comm (negative).
  int shift_toward_compute = 0;
  // Policy-internal control signal, recorded for Fig. 8-style traces.
  double signal = 0.0;
  // ConcurrencyTargetPolicy: short-window burst detection is active.
  bool panic = false;
  // Static, human-readable cause ("cooldown", "deadband", ...).
  const char* reason = "";
};

class ElasticityPolicy {
 public:
  virtual ~ElasticityPolicy() = default;

  virtual const char* name() const = 0;
  virtual ElasticityDecision Decide(const ElasticitySignals& signals) = 0;
  virtual void Reset() {}
};

// ----------------------------------------------------------------- PaperPi

// Textbook discrete PI controller with anti-windup clamping (the §5
// controller's core; also driven standalone by unit tests).
class PiController {
 public:
  struct Gains {
    double kp = 0.5;
    double ki = 0.125;
    double integral_limit = 64.0;  // Anti-windup bound on the integral term.
  };

  PiController() : gains_() {}
  explicit PiController(Gains gains) : gains_(gains) {}

  // Feeds one error sample; returns the control signal.
  double Update(double error);
  void Reset();

  double integral() const { return integral_; }

 private:
  Gains gains_;
  double integral_ = 0.0;
};

// The paper's control plane (§5): error = compute queue growth − comm queue
// growth, PI signal, one core per tick past the threshold. Gains match the
// pre-policy-layer runtime controller exactly.
class PaperPiPolicy : public ElasticityPolicy {
 public:
  struct Options {
    PiController::Gains gains;
    double shift_threshold = 0.5;  // |signal| must exceed this to act.
  };

  PaperPiPolicy() : PaperPiPolicy(Options{}) {}
  explicit PaperPiPolicy(Options options) : options_(options), pi_(options.gains) {}

  const char* name() const override { return "paper-pi"; }
  ElasticityDecision Decide(const ElasticitySignals& signals) override;
  void Reset() override { pi_.Reset(); }

 private:
  Options options_;
  PiController pi_;
};

// -------------------------------------------------------------- Hysteresis

// Pressure-balance policy: compares per-worker pressure (queue growth plus
// weighted standing backlog) between the two roles and moves up to
// max_shift cores at once when the imbalance clears the dead band, then
// cools down. Interactive backlog is weighted above batch so a batch flood
// on one side cannot mask the shift interactive work on the other needs.
class HysteresisPolicy : public ElasticityPolicy {
 public:
  struct Options {
    // Imbalance (per-worker pressure difference) below this is noise.
    double deadband = 2.0;
    // Max cores moved by one decision.
    int max_shift = 4;
    // No further shifts for this long after a shift.
    dbase::Micros cooldown_us = 60 * dbase::kMicrosPerMilli;
    // One interactive-lane backlog item counts as this many batch items.
    double interactive_weight = 4.0;
    // Standing backlog's contribution relative to per-tick growth.
    double backlog_weight = 0.25;
  };

  HysteresisPolicy() : HysteresisPolicy(Options{}) {}
  explicit HysteresisPolicy(Options options) : options_(options) {}

  const char* name() const override { return "hysteresis"; }
  ElasticityDecision Decide(const ElasticitySignals& signals) override;
  void Reset() override { last_shift_us_ = kNever; }

 private:
  static constexpr dbase::Micros kNever = INT64_MIN / 2;

  Options options_;
  dbase::Micros last_shift_us_ = kNever;
};

// ------------------------------------------------------ ConcurrencyTarget

// Knative-KPA autoscaling applied to the comm-core allocation: the comm
// concurrency (in-flight green threads + queued comm work) normalized by
// the per-core target feeds the shared KpaAutoscaler; the desired replica
// count IS the desired comm-core count. dsim's Azure-trace pod models run
// the same KpaAutoscaler, which is what makes sim-vs-runtime parity
// assertions expressible.
class ConcurrencyTargetPolicy : public ElasticityPolicy {
 public:
  struct Options {
    KpaConfig kpa;  // kpa.target_concurrency is overridden to 1.0.
    // Target comm concurrency per comm core; <= 0 uses the snapshot's
    // comm_parallelism (one green-thread budget's worth per core).
    double per_core_target = 0.0;
    int min_comm_workers = 1;
  };

  ConcurrencyTargetPolicy() : ConcurrencyTargetPolicy(Options{}) {}
  explicit ConcurrencyTargetPolicy(Options options);

  const char* name() const override { return "concurrency-target"; }
  ElasticityDecision Decide(const ElasticitySignals& signals) override;
  void Reset() override { kpa_.Reset(); }

 private:
  Options options_;
  KpaAutoscaler kpa_;
};

// ----------------------------------------------------------------- Factory

enum class PolicyKind { kPaperPi, kHysteresis, kConcurrencyTarget };

std::string_view PolicyKindName(PolicyKind kind);
dbase::Result<PolicyKind> PolicyKindFromName(std::string_view name);

// Default-configured instance of the named policy.
std::unique_ptr<ElasticityPolicy> CreatePolicy(PolicyKind kind);

}  // namespace dpolicy

#endif  // SRC_POLICY_ELASTICITY_H_
