#include "src/policy/membership.h"

#include <algorithm>
#include <limits>
#include <set>

namespace dpolicy {

std::string_view MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kActive:
      return "active";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kLeft:
      return "left";
  }
  return "unknown";
}

MembershipDecision MembershipPolicy::Tick(dbase::Micros now_us,
                                          const std::vector<MemberSignals>& members) {
  MembershipDecision decision;
  ++stats_.ticks;

  // Forget peers that were administratively removed from the roster.
  std::set<std::string> roster;
  for (const MemberSignals& m : members) roster.insert(m.name);
  for (auto it = members_.begin(); it != members_.end();) {
    if (roster.count(it->first) == 0) {
      it = members_.erase(it);
    } else {
      ++it;
    }
  }

  int active = 0;
  double active_utilization = 0.0;
  const MemberSignals* drain_best = nullptr;
  double drain_best_utilization = std::numeric_limits<double>::max();

  for (const MemberSignals& m : members) {
    auto [it, inserted] = members_.emplace(m.name, Member{MemberState::kActive, now_us});
    Member& member = it->second;
    if (inserted) {
      decision.transitions.push_back(
          {m.name, MemberState::kActive, MemberState::kActive, "joined"});
    }
    // A never-heard peer ages from when we first saw it, so a just-added
    // node gets the suspect window to produce its first gossip.
    const dbase::Micros heard = m.last_heard_us > 0 ? m.last_heard_us : member.first_seen_us;
    const dbase::Micros age = now_us > heard ? now_us - heard : 0;

    MemberState next = member.state;
    const char* reason = nullptr;
    if (age >= options_.evict_after_us) {
      next = MemberState::kLeft;
      reason = "evicted";
    } else if (age >= options_.suspect_after_us) {
      next = MemberState::kSuspect;
      reason = "stale";
    } else {
      next = MemberState::kActive;
      reason = member.state == MemberState::kLeft ? "rejoined" : "recovered";
    }
    if (next != member.state) {
      switch (next) {
        case MemberState::kSuspect:
          ++stats_.suspects;
          break;
        case MemberState::kLeft:
          ++stats_.evictions;
          break;
        case MemberState::kActive:
          if (member.state == MemberState::kLeft) {
            ++stats_.rejoins;
          } else {
            ++stats_.recoveries;
          }
          break;
      }
      decision.transitions.push_back({m.name, member.state, next, reason});
      member.state = next;
    }
    if (member.state == MemberState::kActive) {
      ++active;
      active_utilization += m.utilization;
      if (m.utilization < drain_best_utilization) {
        drain_best_utilization = m.utilization;
        drain_best = &m;
      }
    }
  }

  // Fleet-utilization scale hints, rate-limited by the hold window.
  if (active > 0) {
    const double mean = active_utilization / active;
    const bool held =
        last_hint_us_ > 0 && now_us - last_hint_us_ < options_.scale_hold_us;
    if (mean >= options_.scale_out_above) {
      if (held) {
        decision.reason = "hold";
      } else {
        decision.desired_nodes_delta = 1;
        decision.reason = "saturated";
        last_hint_us_ = now_us;
        ++stats_.scale_out_hints;
      }
    } else if (mean <= options_.scale_in_below && active > options_.min_active &&
               drain_best != nullptr) {
      if (held) {
        decision.reason = "hold";
      } else {
        decision.desired_nodes_delta = -1;
        decision.drain_candidate = drain_best->name;
        decision.reason = "idle";
        last_hint_us_ = now_us;
        ++stats_.scale_in_hints;
      }
    }
  }
  return decision;
}

MemberState MembershipPolicy::StateOf(const std::string& name) const {
  auto it = members_.find(name);
  return it == members_.end() ? MemberState::kLeft : it->second.state;
}

}  // namespace dpolicy
