#include "src/policy/elasticity.h"

#include <algorithm>
#include <cmath>

namespace dpolicy {

// ----------------------------------------------------------------- PaperPi

double PiController::Update(double error) {
  integral_ = std::clamp(integral_ + error, -gains_.integral_limit, gains_.integral_limit);
  return gains_.kp * error + gains_.ki * integral_;
}

void PiController::Reset() { integral_ = 0.0; }

ElasticityDecision PaperPiPolicy::Decide(const ElasticitySignals& signals) {
  ElasticityDecision decision;
  // Positive error: the compute queue is growing faster → compute engines
  // need more cores (§5).
  const double error = signals.compute_growth - signals.comm_growth;
  decision.signal = pi_.Update(error);
  if (decision.signal > options_.shift_threshold) {
    decision.shift_toward_compute = 1;
    decision.reason = "compute queue growing faster";
  } else if (decision.signal < -options_.shift_threshold) {
    decision.shift_toward_compute = -1;
    decision.reason = "comm queue growing faster";
  } else {
    decision.reason = "within threshold";
  }
  return decision;
}

// -------------------------------------------------------------- Hysteresis

ElasticityDecision HysteresisPolicy::Decide(const ElasticitySignals& signals) {
  ElasticityDecision decision;

  // Backlog with the interactive lane over-weighted: a batch flood must not
  // drown out the (much smaller) interactive queue that actually needs the
  // shift.
  const auto weighted_backlog = [&](uint64_t total, uint64_t interactive) {
    const double batch = static_cast<double>(total - std::min(total, interactive));
    return batch + options_.interactive_weight * static_cast<double>(interactive);
  };
  const double compute_pressure =
      signals.compute_growth +
      options_.backlog_weight *
          weighted_backlog(signals.compute_backlog, signals.interactive_compute_backlog);
  const double comm_pressure =
      signals.comm_growth +
      options_.backlog_weight *
          weighted_backlog(signals.comm_backlog, signals.interactive_comm_backlog);

  const double per_compute = compute_pressure / std::max(1, signals.compute_workers);
  const double per_comm = comm_pressure / std::max(1, signals.comm_workers);
  const double imbalance = per_compute - per_comm;
  decision.signal = imbalance;

  if (signals.now_us - last_shift_us_ < options_.cooldown_us) {
    decision.reason = "cooldown";
    return decision;
  }
  const double magnitude = std::fabs(imbalance) / std::max(1e-9, options_.deadband);
  if (magnitude < 1.0) {
    decision.reason = "within deadband";
    return decision;
  }
  const int shift = std::min(options_.max_shift, static_cast<int>(magnitude));
  decision.shift_toward_compute = imbalance > 0 ? shift : -shift;
  decision.reason = imbalance > 0 ? "compute pressure dominates" : "comm pressure dominates";
  last_shift_us_ = signals.now_us;
  return decision;
}

// ------------------------------------------------------ ConcurrencyTarget

ConcurrencyTargetPolicy::ConcurrencyTargetPolicy(Options options)
    : options_(options), kpa_([&options] {
        KpaConfig config = options.kpa;
        // Concurrency is normalized before it reaches the KPA, so one
        // replica == one comm core at exactly the per-core target.
        config.target_concurrency = 1.0;
        return config;
      }()) {}

ElasticityDecision ConcurrencyTargetPolicy::Decide(const ElasticitySignals& signals) {
  ElasticityDecision decision;

  const double per_core = options_.per_core_target > 0
                              ? options_.per_core_target
                              : static_cast<double>(std::max(1, signals.comm_parallelism));
  // Queued comm work will occupy a green thread as soon as one frees up, so
  // it counts toward concurrency exactly like Knative's queue-proxy counts
  // queued requests.
  const double concurrency =
      (signals.comm_inflight + static_cast<double>(signals.comm_backlog)) / per_core;

  // The KPA's panic comparison must see the split the driver actually
  // actuated, not what this policy last asked for.
  kpa_.SyncReplicas(signals.comm_workers);
  int desired = kpa_.Tick(signals.now_us, concurrency);
  desired = std::clamp(desired, options_.min_comm_workers,
                       std::max(options_.min_comm_workers, signals.total_workers() - 1));

  decision.signal = concurrency;
  decision.panic = kpa_.in_panic_mode();
  decision.shift_toward_compute = signals.comm_workers - desired;
  if (decision.shift_toward_compute > 0) {
    decision.reason = "comm concurrency below target";
  } else if (decision.shift_toward_compute < 0) {
    decision.reason = decision.panic ? "comm burst (panic window)" : "comm concurrency above target";
  } else {
    decision.reason = "at target";
  }
  return decision;
}

// ----------------------------------------------------------------- Factory

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPaperPi:
      return "paper-pi";
    case PolicyKind::kHysteresis:
      return "hysteresis";
    case PolicyKind::kConcurrencyTarget:
      return "concurrency-target";
  }
  return "unknown";
}

dbase::Result<PolicyKind> PolicyKindFromName(std::string_view name) {
  if (name == "paper-pi") {
    return PolicyKind::kPaperPi;
  }
  if (name == "hysteresis") {
    return PolicyKind::kHysteresis;
  }
  if (name == "concurrency-target") {
    return PolicyKind::kConcurrencyTarget;
  }
  return dbase::InvalidArgument("unknown elasticity policy: " + std::string(name));
}

std::unique_ptr<ElasticityPolicy> CreatePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPaperPi:
      return std::make_unique<PaperPiPolicy>();
    case PolicyKind::kHysteresis:
      return std::make_unique<HysteresisPolicy>();
    case PolicyKind::kConcurrencyTarget:
      return std::make_unique<ConcurrencyTargetPolicy>();
  }
  return nullptr;
}

}  // namespace dpolicy
