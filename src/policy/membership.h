// Cluster membership policy (ROADMAP "Distributed data plane"): decides,
// from gossiped ElasticitySignals-derived observations, which remote nodes
// the router may still route to and whether the fleet should grow or
// shrink. Same mold as every dpolicy object — pure, unsynchronized, no
// clocks or threads of its own: the Cluster's gossip loop (and fake-clock
// unit tests) feed it `now` plus one MemberSignals row per known peer and
// apply whatever it decides.
//
// State machine per member:
//
//          fresh gossip                 stale > suspect_after_us
//   (join) ───────────► kActive ─────────────────────► kSuspect
//             ▲            ▲                               │
//             │            │ fresh gossip (recovery)       │ stale >
//             │            └───────────────────────────────┤ evict_after_us
//             │ fresh gossip (rejoin)                      ▼
//             └──────────────────────────────────────── kLeft
//
// Suspects stay routable only as a last resort; kLeft members are evicted
// from routing entirely until they gossip again. On top of the per-member
// machine, a fleet-utilization hysteresis emits scale hints: sustained
// high average utilization across active members asks for one more node,
// sustained low utilization nominates the least-utilized member to drain —
// never below min_active.
#ifndef SRC_POLICY_MEMBERSHIP_H_
#define SRC_POLICY_MEMBERSHIP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/clock.h"

namespace dpolicy {

enum class MemberState { kActive, kSuspect, kLeft };

std::string_view MemberStateName(MemberState state);

// One gossip-derived observation row per known peer.
struct MemberSignals {
  std::string name;
  // When the router last heard a gossip reply from this peer; 0 = never
  // (a just-added peer gets a suspect_after_us grace window from the tick
  // it first appears before staleness counts against it).
  dbase::Micros last_heard_us = 0;
  // inflight / admission cap from the peer's last ElasticitySignals
  // snapshot; the fleet-scaling input.
  double utilization = 0.0;
};

struct MembershipOptions {
  // Staleness thresholds on the last heard gossip.
  dbase::Micros suspect_after_us = 1 * dbase::kMicrosPerSecond;
  dbase::Micros evict_after_us = 5 * dbase::kMicrosPerSecond;
  // Fleet-utilization hysteresis band for scale hints.
  double scale_out_above = 0.75;
  double scale_in_below = 0.20;
  // Minimum spacing between scale hints (either direction).
  dbase::Micros scale_hold_us = 3 * dbase::kMicrosPerSecond;
  // Scale-in never drains the fleet below this many active members.
  int min_active = 1;
};

// A member whose state changed this tick.
struct MemberTransition {
  std::string name;
  MemberState from = MemberState::kActive;
  MemberState to = MemberState::kActive;
  // "joined" / "stale" / "evicted" / "recovered" / "rejoined" — static.
  const char* reason = "";
};

struct MembershipDecision {
  std::vector<MemberTransition> transitions;
  // +1: fleet saturated, ask for one more node. -1: fleet idle, drain
  // `drain_candidate`. 0: steady.
  int desired_nodes_delta = 0;
  std::string drain_candidate;
  // "steady" / "saturated" / "idle" / "hold" — static.
  const char* reason = "steady";
};

struct MembershipStats {
  uint64_t ticks = 0;
  uint64_t suspects = 0;
  uint64_t evictions = 0;
  uint64_t recoveries = 0;  // Suspect → active.
  uint64_t rejoins = 0;     // Left → active.
  uint64_t scale_out_hints = 0;
  uint64_t scale_in_hints = 0;
};

class MembershipPolicy {
 public:
  MembershipPolicy() : MembershipPolicy(MembershipOptions{}) {}
  explicit MembershipPolicy(MembershipOptions options) : options_(options) {}

  // One gossip round: `members` is the full current peer list (a peer
  // omitted from the list is forgotten entirely — an administrative
  // removal, distinct from staleness eviction). Returns the transitions to
  // apply plus at most one scale hint.
  MembershipDecision Tick(dbase::Micros now_us, const std::vector<MemberSignals>& members);

  // kLeft for unknown names: an unknown peer is not routable.
  MemberState StateOf(const std::string& name) const;

  const MembershipStats& stats() const { return stats_; }
  const MembershipOptions& options() const { return options_; }

 private:
  struct Member {
    MemberState state = MemberState::kActive;
    dbase::Micros first_seen_us = 0;
  };

  MembershipOptions options_;
  std::map<std::string, Member> members_;
  dbase::Micros last_hint_us_ = 0;
  MembershipStats stats_;
};

}  // namespace dpolicy

#endif  // SRC_POLICY_MEMBERSHIP_H_
