// Knative-style concurrency autoscaler core (KPA): desired replica counts
// driven by windowed average concurrency, with a short panic window for
// bursts and delayed scale-to-zero. Pure decision logic — time flows in
// through Tick(), so the live runtime, the discrete-event simulator, and
// fake-clock unit tests all execute the same code. Re-homed here from
// src/sim/autoscaler so dsim's Azure-trace pod models and the runtime's
// ConcurrencyTargetPolicy share one implementation.
#ifndef SRC_POLICY_KPA_H_
#define SRC_POLICY_KPA_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "src/base/clock.h"

namespace dpolicy {

struct KpaConfig {
  dbase::Micros stable_window_us = 60 * dbase::kMicrosPerSecond;
  dbase::Micros panic_window_us = 6 * dbase::kMicrosPerSecond;
  // Panic when the panic-window desire exceeds 2x current replicas.
  double panic_threshold = 2.0;
  double target_concurrency = 1.0;
  dbase::Micros scale_to_zero_grace_us = 30 * dbase::kMicrosPerSecond;
  int max_replicas = 64;
};

class KpaAutoscaler {
 public:
  explicit KpaAutoscaler(KpaConfig config = KpaConfig{});

  // Feeds a concurrency sample (in-flight requests at `now`); returns the
  // recommended replica count.
  int Tick(dbase::Micros now, double concurrency);

  // Reconciles the tracked replica count with externally-actuated state
  // (e.g. the control plane could only move some of the requested cores) so
  // the panic-threshold comparison sees reality, not intent.
  void SyncReplicas(int replicas) { replicas_ = replicas; }

  void Reset();

  int current_replicas() const { return replicas_; }
  bool in_panic_mode() const { return panic_until_ > last_tick_; }

 private:
  double WindowAverage(dbase::Micros now, dbase::Micros window) const;

  KpaConfig config_;
  std::deque<std::pair<dbase::Micros, double>> samples_;
  int replicas_ = 0;
  dbase::Micros panic_until_ = -1;
  int panic_floor_ = 0;  // Replicas may not drop below this while panicking.
  dbase::Micros last_positive_us_ = 0;
  dbase::Micros last_tick_ = 0;
};

}  // namespace dpolicy

#endif  // SRC_POLICY_KPA_H_
