// Pre-warm pool depth policy: how many warm sandboxes a function should
// keep shelved (ROADMAP "Cold-start elimination"). Like the elasticity
// policies in elasticity.h, PrewarmPolicy is a pure decision object — it
// holds only its own EWMA state and takes time as an input — so the
// runtime's SandboxPool (driven by ControlPlane ticks), dsim's pool model,
// and fake-clock unit tests execute literally the same decision code. That
// is what lets a pre-warm configuration be model-checked in the simulator
// against an SLO envelope before the runtime ever runs it.
//
// The decision logic: each tick the driver reports the function's
// cumulative arrival count; the policy turns the per-tick delta into an
// arrival-rate EWMA and provisions enough warm sandboxes to absorb the
// arrivals expected within one provisioning window (times a headroom
// factor). A function with any recent arrival keeps at least one warm
// sandbox; a function idle past scale_to_zero_after_us drops to zero and
// its rate estimate resets, so a later burst re-warms from scratch instead
// of inheriting a stale estimate.
#ifndef SRC_POLICY_PREWARM_H_
#define SRC_POLICY_PREWARM_H_

#include <cstdint>

#include "src/base/clock.h"

namespace dpolicy {

struct PrewarmOptions {
  // Per-tick smoothing of the instantaneous arrival rate.
  double ewma_alpha = 0.3;
  // Provisioning horizon: keep enough warm sandboxes to absorb the
  // arrivals expected within this window. Should be at least the
  // cold-path sandbox-creation cost plus one control-tick interval.
  dbase::Micros provision_window_us = 250 * dbase::kMicrosPerMilli;
  // Over-provisioning factor on the expected arrivals (burst slack).
  double headroom = 1.25;
  // No arrivals for this long → target depth 0 and the rate estimate
  // resets (scale-to-zero).
  dbase::Micros scale_to_zero_after_us = 2 * dbase::kMicrosPerSecond;
  // Clamp on the decision's target depth. The pool may clamp further
  // (per-function and global caps).
  int min_depth = 0;
  int max_depth = 8;
};

// One per-function snapshot per tick. `arrivals` is cumulative so drivers
// never need to reset counters; the policy differences successive ticks.
struct PrewarmSignals {
  dbase::Micros now_us = 0;
  uint64_t arrivals = 0;  // Cumulative dispatch-side arrivals.
  int shelved = 0;        // Warm sandboxes ready on the shelf.
  int leased = 0;         // Acquired by running instances, not yet returned.
};

struct PrewarmDecision {
  // Desired total warm capacity (shelved + leased). The driver fills the
  // shelf when shelved + leased < target and retires shelved sandboxes
  // when above it.
  int target_depth = 0;
  // The policy's arrival-rate estimate, for traces and statz.
  double rate_per_sec = 0.0;
  // Static, human-readable cause ("warming", "track", "scale-to-zero").
  const char* reason = "";
};

class PrewarmPolicy {
 public:
  PrewarmPolicy() : PrewarmPolicy(PrewarmOptions{}) {}
  explicit PrewarmPolicy(PrewarmOptions options) : options_(options) {}

  const char* name() const { return "prewarm-ewma"; }
  const PrewarmOptions& options() const { return options_; }

  PrewarmDecision Decide(const PrewarmSignals& signals);
  void Reset();

 private:
  static constexpr dbase::Micros kNever = INT64_MIN / 2;

  PrewarmOptions options_;
  bool primed_ = false;
  dbase::Micros last_tick_us_ = 0;
  uint64_t last_arrivals_ = 0;
  dbase::Micros last_arrival_us_ = kNever;
  double rate_per_sec_ = 0.0;
};

}  // namespace dpolicy

#endif  // SRC_POLICY_PREWARM_H_
