#include "src/policy/prewarm.h"

#include <algorithm>
#include <cmath>

namespace dpolicy {

PrewarmDecision PrewarmPolicy::Decide(const PrewarmSignals& signals) {
  PrewarmDecision decision;

  const auto clamp_depth = [&](int depth) {
    return std::clamp(depth, options_.min_depth, options_.max_depth);
  };

  if (!primed_) {
    // First tick: baseline the cumulative counter. Arrivals seen before the
    // first tick still count as recent activity, so a function that was
    // invoked before the policy attached gets its warm floor immediately.
    primed_ = true;
    last_tick_us_ = signals.now_us;
    last_arrivals_ = signals.arrivals;
    if (signals.arrivals > 0) {
      last_arrival_us_ = signals.now_us;
    }
    decision.target_depth = clamp_depth(signals.arrivals > 0 ? 1 : 0);
    decision.reason = "warming";
    return decision;
  }

  const dbase::Micros dt = signals.now_us - last_tick_us_;
  const uint64_t delta = signals.arrivals - last_arrivals_;
  if (dt > 0) {
    const double instant =
        static_cast<double>(delta) / (static_cast<double>(dt) / 1e6);
    rate_per_sec_ =
        options_.ewma_alpha * instant + (1.0 - options_.ewma_alpha) * rate_per_sec_;
    last_tick_us_ = signals.now_us;
    last_arrivals_ = signals.arrivals;
  }
  if (delta > 0) {
    last_arrival_us_ = signals.now_us;
  }

  if (last_arrival_us_ == kNever ||
      signals.now_us - last_arrival_us_ >= options_.scale_to_zero_after_us) {
    // Idle past the grace period: release everything and forget the rate —
    // a burst after a long quiet spell should re-warm from scratch, not
    // provision against a stale estimate.
    rate_per_sec_ = 0.0;
    decision.target_depth = clamp_depth(0);
    decision.reason = "scale-to-zero";
    return decision;
  }

  const double expected = rate_per_sec_ *
                          (static_cast<double>(options_.provision_window_us) / 1e6) *
                          options_.headroom;
  // A recently-active function keeps at least one warm sandbox even while
  // the EWMA is still warming up — the first repeat arrival should already
  // hit.
  decision.target_depth = clamp_depth(std::max(1, static_cast<int>(std::ceil(expected))));
  decision.rate_per_sec = rate_per_sec_;
  decision.reason = "track";
  return decision;
}

void PrewarmPolicy::Reset() {
  primed_ = false;
  last_tick_us_ = 0;
  last_arrivals_ = 0;
  last_arrival_us_ = kNever;
  rate_per_sec_ = 0.0;
}

}  // namespace dpolicy
