// Failure taxonomy and retry/circuit-breaker policy (ROADMAP "Real syscall
// jail" PR): because Dandelion functions are pure computations over declared
// input sets, a sandbox-level failure — crash, jail kill, pool-child death,
// transient resource exhaustion — is always safe to retry transparently; no
// external side effect can have escaped the sandbox. That structural
// advantage over generic FaaS is exploited here as a pure policy object in
// the same mold as PrewarmPolicy / ElasticityPolicy: RetryPolicy owns no
// clocks or threads, takes time as an input, and is executed identically by
// the runtime dispatcher and by dsim, so retry/breaker behaviour is
// unit-testable on a fake clock and parity-checkable in virtual time.
#ifndef SRC_POLICY_RETRY_H_
#define SRC_POLICY_RETRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/clock.h"

namespace dpolicy {

// How a sandbox execution ended, beyond the Status it reported. kNone means
// "no sandbox-level failure" — including functional errors a body returned
// deliberately, which are results, not faults, and are never retried.
enum class FailureKind {
  kNone = 0,
  kCrash,              // Killed by an unexpected signal (SIGSEGV, SIGILL, ...).
  kJailKill,           // Killed by the seccomp jail (SIGSYS): forbidden syscall.
  kDeadlineKill,       // SIGKILLed / preempted at the deadline.
  kCancelKill,         // SIGKILLed / preempted on invocation cancel.
  kNonzeroExit,        // Child exited with a nonzero status.
  kPoolChildLost,      // Pooled template child died between fill and dispatch.
  kResourceExhausted,  // fork/context allocation failed (or injected fault).
  kPeerLost,           // Remote node died / connection lost mid-invocation.
};

std::string_view FailureKindName(FailureKind kind);

// Retry-safe kinds: the failure is environmental, the function never
// produced an outcome, and a re-run can succeed. Jail kills and nonzero
// exits are the function's own deterministic behaviour; deadline/cancel
// kills are the client's decision — none of those retry. A lost peer is
// environmental too: Dandelion functions are pure, so re-running the
// invocation on another node is always side-effect-safe.
inline bool IsRetrySafe(FailureKind kind) {
  return kind == FailureKind::kCrash || kind == FailureKind::kPoolChildLost ||
         kind == FailureKind::kResourceExhausted || kind == FailureKind::kPeerLost;
}

// Kinds that reflect on the function's (or the node's) health and feed the
// circuit breaker. Deadline and cancel kills are client behaviour, not
// function failure, and must not trip a breaker.
inline bool IsBreakerRelevant(FailureKind kind) {
  return kind != FailureKind::kNone && kind != FailureKind::kDeadlineKill &&
         kind != FailureKind::kCancelKill;
}

struct RetryOptions {
  bool enabled = true;
  // Per-class retry budgets: interactive invocations never burn their
  // deadline on long retry chains; batch work can afford more attempts.
  int max_retries_interactive = 1;
  int max_retries_batch = 3;
  // Exponential backoff: attempt k (0-based) waits
  // min(cap, base * multiplier^k) before relaunching.
  dbase::Micros backoff_base_us = 1000;
  double backoff_multiplier = 2.0;
  dbase::Micros backoff_cap_us = 100 * 1000;
  // Circuit breaker: after this many consecutive breaker-relevant failures
  // of one function, launches fast-fail kUnavailable...
  int breaker_trip_after = 5;
  // ...until the cooldown elapses, after which one half-open probe is let
  // through; its success closes the breaker, its failure re-opens it.
  dbase::Micros breaker_cooldown_us = 1 * dbase::kMicrosPerSecond;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state);

struct AdmitDecision {
  bool allow = true;
  // "closed" / "half-open probe" / "breaker open" — static strings.
  const char* reason = "closed";
};

struct RetryDecision {
  bool retry = false;
  dbase::Micros backoff_us = 0;
  // "granted" / "budget exhausted" / "kind not retry-safe" / "breaker open"
  // / "disabled" — static strings.
  const char* reason = "";
};

struct BreakerSnapshot {
  std::string function;
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  dbase::Micros opened_at_us = 0;
};

struct RetryPolicyStats {
  uint64_t retries_granted = 0;
  uint64_t retries_denied_budget = 0;
  uint64_t retries_denied_kind = 0;
  uint64_t breaker_fast_fails = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_recoveries = 0;
  int breakers_open = 0;  // Open + half-open breakers at snapshot time.
};

// Pure and unsynchronized, like every dpolicy object: the dispatcher guards
// it with its own mutex, dsim and unit tests drive it single-threaded.
class RetryPolicy {
 public:
  RetryPolicy() : RetryPolicy(RetryOptions{}) {}
  explicit RetryPolicy(RetryOptions options) : options_(options) {}

  // Launch-time admission. A tripped breaker fast-fails until its cooldown
  // elapses, after which the first Admit becomes the half-open probe.
  AdmitDecision Admit(const std::string& function, dbase::Micros now_us);

  // One sandbox-level failure of `function`. Updates the breaker
  // (consecutive count, trip, half-open → re-open) and decides whether the
  // dispatcher should relaunch: kind must be retry-safe, the per-class
  // budget must cover attempt `attempts_so_far` (0-based), and the breaker
  // must not have just tripped.
  RetryDecision OnFailure(const std::string& function, FailureKind kind, bool interactive,
                          int attempts_so_far, dbase::Micros now_us);

  // A successful execution: resets the consecutive count and closes a
  // half-open breaker.
  void OnSuccess(const std::string& function);

  std::vector<BreakerSnapshot> Breakers() const;
  RetryPolicyStats Stats() const;
  const RetryOptions& options() const { return options_; }

  dbase::Micros BackoffForAttempt(int attempts_so_far) const;

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    dbase::Micros opened_at_us = 0;
  };

  RetryOptions options_;
  std::unordered_map<std::string, Breaker> breakers_;
  RetryPolicyStats stats_;
};

}  // namespace dpolicy

#endif  // SRC_POLICY_RETRY_H_
