#include "src/func/builtins.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/base/rng.h"
#include "src/base/string_util.h"

namespace dfunc {

std::string EncodeInt64Array(const std::vector<int64_t>& values) {
  std::string out;
  out.reserve(values.size() * 8);
  for (int64_t v : values) {
    const uint64_t u = static_cast<uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<char>((u >> (8 * b)) & 0xff));
    }
  }
  return out;
}

dbase::Result<std::vector<int64_t>> DecodeInt64Array(std::string_view payload) {
  if (payload.size() % 8 != 0) {
    return dbase::InvalidArgument("int64 array payload size not a multiple of 8");
  }
  std::vector<int64_t> values(payload.size() / 8);
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t u = 0;
    for (int b = 7; b >= 0; --b) {
      u = (u << 8) | static_cast<uint8_t>(payload[i * 8 + static_cast<size_t>(b)]);
    }
    values[i] = static_cast<int64_t>(u);
  }
  return values;
}

std::vector<int64_t> MakeMatrix(int n, uint64_t seed) {
  dbase::Rng rng(seed);
  std::vector<int64_t> m(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (auto& v : m) {
    v = rng.UniformInt(-8, 7);
  }
  return m;
}

std::vector<int64_t> MultiplyMatrices(const std::vector<int64_t>& a,
                                      const std::vector<int64_t>& b, int n) {
  std::vector<int64_t> c(static_cast<size_t>(n) * static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      const int64_t aik = a[static_cast<size_t>(i) * n + k];
      if (aik == 0) {
        continue;
      }
      for (int j = 0; j < n; ++j) {
        c[static_cast<size_t>(i) * n + j] += aik * b[static_cast<size_t>(k) * n + j];
      }
    }
  }
  return c;
}

dbase::Status MatMulFunction(FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string a_raw, ctx.SingleInput("A"));
  ASSIGN_OR_RETURN(std::string b_raw, ctx.SingleInput("B"));
  ASSIGN_OR_RETURN(auto a, DecodeInt64Array(a_raw));
  ASSIGN_OR_RETURN(auto b, DecodeInt64Array(b_raw));
  if (a.size() != b.size()) {
    return dbase::InvalidArgument("matrix size mismatch");
  }
  const int n = static_cast<int>(std::llround(std::sqrt(static_cast<double>(a.size()))));
  if (static_cast<size_t>(n) * static_cast<size_t>(n) != a.size() || n == 0) {
    return dbase::InvalidArgument("payload is not a square matrix");
  }
  auto c = MultiplyMatrices(a, b, n);
  ctx.EmitOutput("C", EncodeInt64Array(c));
  return dbase::OkStatus();
}

dbase::Status ArrayStatsFunction(FunctionCtx& ctx) {
  ASSIGN_OR_RETURN(std::string raw, ctx.SingleInput("data"));
  ASSIGN_OR_RETURN(auto values, DecodeInt64Array(raw));
  if (values.empty()) {
    return dbase::InvalidArgument("empty array");
  }
  // Sample every 8th element, like the paper's "sample of the elements".
  int64_t sum = 0;
  int64_t min = values.front();
  int64_t max = values.front();
  for (size_t i = 0; i < values.size(); i += 8) {
    sum += values[i];
    min = std::min(min, values[i]);
    max = std::max(max, values[i]);
  }
  ctx.EmitOutput("stats", dbase::StrFormat("sum=%lld min=%lld max=%lld",
                                           static_cast<long long>(sum),
                                           static_cast<long long>(min),
                                           static_cast<long long>(max)));
  return dbase::OkStatus();
}

dbase::Status EchoFunction(FunctionCtx& ctx) {
  const DataSet* in = ctx.input_set("in");
  if (in == nullptr) {
    return dbase::NotFound("echo expects input set 'in'");
  }
  for (const auto& item : in->items) {
    ctx.EmitOutput("out", item.data, item.key);
  }
  return dbase::OkStatus();
}

dbase::Status FailingFunction(FunctionCtx&) {
  return dbase::Internal("deliberate failure (test function)");
}

dbase::Status InfiniteLoopFunction(FunctionCtx& ctx) {
  // Spins until preempted. Thread-based backends preempt cooperatively via
  // the cancel flag; the process backend hard-kills regardless.
  std::atomic<uint64_t> counter{0};
  while (!ctx.cancelled()) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  return dbase::DeadlineExceeded("preempted by engine timeout");
}

dbase::Status RegisterBuiltins(FunctionRegistry& registry) {
  RETURN_IF_ERROR(registry.Register({.name = "matmul", .body = MatMulFunction}));
  RETURN_IF_ERROR(registry.Register({.name = "array_stats", .body = ArrayStatsFunction}));
  RETURN_IF_ERROR(registry.Register({.name = "echo", .body = EchoFunction}));
  RETURN_IF_ERROR(registry.Register({.name = "fail", .body = FailingFunction}));
  RETURN_IF_ERROR(registry.Register(
      {.name = "spin", .body = InfiniteLoopFunction, .timeout_us = 50 * dbase::kMicrosPerMilli}));
  return dbase::OkStatus();
}

}  // namespace dfunc
