#include "src/func/function.h"

#include "src/base/string_util.h"
#include "src/vfs/path.h"

namespace dfunc {

FunctionCtx::FunctionCtx(DataSetList inputs) : inputs_(std::move(inputs)) {}

dbase::Result<std::string> FunctionCtx::SingleInput(std::string_view set_name) const {
  const DataSet* set = input_set(set_name);
  if (set == nullptr) {
    return dbase::NotFound("no input set named " + std::string(set_name));
  }
  if (set->items.empty()) {
    return dbase::FailedPrecondition("input set is empty: " + std::string(set_name));
  }
  return set->items.front().data.ToString();
}

void FunctionCtx::EmitOutput(std::string_view set_name, Payload data, std::string key) {
  DataSet* set = FindSet(outputs_, set_name);
  if (set == nullptr) {
    outputs_.push_back(DataSet{std::string(set_name), {}});
    set = &outputs_.back();
  }
  set->items.push_back(DataItem{std::move(key), std::move(data)});
}

dvfs::MemFs& FunctionCtx::fs() {
  if (fs_ == nullptr) {
    fs_ = std::make_unique<dvfs::MemFs>();
    // Layout inputs: /in/<set>/<index-or-key> per item. Index keeps items
    // unique even when keys repeat or are empty.
    (void)fs_->Mkdir("/in");
    (void)fs_->Mkdir("/out");
    for (const auto& set : inputs_) {
      const std::string set_dir = dvfs::JoinPath("/in", set.name);
      (void)fs_->Mkdir(set_dir);
      for (size_t i = 0; i < set.items.size(); ++i) {
        const auto& item = set.items[i];
        std::string file_name =
            item.key.empty() ? dbase::StrFormat("item_%zu", i) : item.key;
        // Disambiguate duplicate keys.
        std::string path = dvfs::JoinPath(set_dir, file_name);
        if (fs_->Exists(path)) {
          path = dvfs::JoinPath(set_dir, dbase::StrFormat("%s_%zu", file_name.c_str(), i));
        }
        (void)fs_->WriteFile(path, item.data.ToString());
      }
    }
  }
  return *fs_;
}

dbase::Status FunctionCtx::CollectFsOutputs() {
  if (fs_ == nullptr) {
    return dbase::OkStatus();  // Filesystem view never used.
  }
  if (!fs_->IsDirectory("/out")) {
    return dbase::OkStatus();
  }
  ASSIGN_OR_RETURN(auto set_names, fs_->ListDir("/out"));
  for (const auto& set_name : set_names) {
    const std::string set_dir = dvfs::JoinPath("/out", set_name);
    if (!fs_->IsDirectory(set_dir)) {
      continue;  // Stray file directly under /out; sets are folders.
    }
    ASSIGN_OR_RETURN(auto file_names, fs_->ListDir(set_dir));
    for (const auto& file_name : file_names) {
      const std::string file_path = dvfs::JoinPath(set_dir, file_name);
      if (!fs_->IsFile(file_path)) {
        continue;
      }
      ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(file_path));
      EmitOutput(set_name, std::move(data), file_name);
    }
  }
  return dbase::OkStatus();
}

}  // namespace dfunc
