#include "src/func/registry.h"

namespace dfunc {

dbase::Status FunctionRegistry::Register(FunctionSpec spec) {
  if (spec.name.empty()) {
    return dbase::InvalidArgument("function name may not be empty");
  }
  if (!spec.body) {
    return dbase::InvalidArgument("function body may not be empty: " + spec.name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = functions_.emplace(spec.name, spec);
  if (!inserted) {
    return dbase::AlreadyExists("function already registered: " + spec.name);
  }
  return dbase::OkStatus();
}

dbase::Result<FunctionSpec> FunctionRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return dbase::NotFound("no registered function named " + name);
  }
  return it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return functions_.count(name) > 0;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, spec] : functions_) {
    names.push_back(name);
  }
  return names;
}

size_t FunctionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return functions_.size();
}

}  // namespace dfunc
