#include "src/func/data.h"

#include <cstring>

namespace dfunc {
namespace {

constexpr uint32_t kMagic = 0x444C4E31;  // "DLN1"

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffff));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendBlob(std::string* out, std::string_view blob) {
  AppendU64(out, blob.size());
  out->append(blob);
}

class Reader {
 public:
  explicit Reader(std::string_view buffer) : buffer_(buffer) {}

  dbase::Result<uint32_t> ReadU32() {
    if (buffer_.size() - pos_ < 4) {
      return dbase::InvalidArgument("truncated buffer reading u32");
    }
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(buffer_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    return v;
  }

  dbase::Result<uint64_t> ReadU64() {
    ASSIGN_OR_RETURN(uint32_t lo, ReadU32());
    ASSIGN_OR_RETURN(uint32_t hi, ReadU32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  dbase::Result<std::string_view> ReadBlob() {
    ASSIGN_OR_RETURN(uint64_t size, ReadU64());
    if (buffer_.size() - pos_ < size) {
      return dbase::InvalidArgument("truncated buffer reading blob");
    }
    std::string_view blob = buffer_.substr(pos_, size);
    pos_ += size;
    return blob;
  }

  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  std::string_view buffer_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t TotalBytes(const DataSetList& sets) {
  uint64_t total = 0;
  for (const auto& set : sets) {
    total += set.TotalBytes();
  }
  return total;
}

const DataSet* FindSet(const DataSetList& sets, std::string_view name) {
  for (const auto& set : sets) {
    if (set.name == name) {
      return &set;
    }
  }
  return nullptr;
}

DataSet* FindSet(DataSetList& sets, std::string_view name) {
  for (auto& set : sets) {
    if (set.name == name) {
      return &set;
    }
  }
  return nullptr;
}

std::string MarshalSets(const DataSetList& sets) {
  std::string out;
  out.reserve(16 + TotalBytes(sets));
  AppendU32(&out, kMagic);
  AppendU32(&out, static_cast<uint32_t>(sets.size()));
  for (const auto& set : sets) {
    AppendBlob(&out, set.name);
    AppendU32(&out, static_cast<uint32_t>(set.items.size()));
    for (const auto& item : set.items) {
      AppendBlob(&out, item.key);
      AppendBlob(&out, item.data);
    }
  }
  return out;
}

dbase::Result<DataSetList> UnmarshalSets(std::string_view buffer) {
  Reader reader(buffer);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return dbase::InvalidArgument("bad magic in marshalled set list");
  }
  ASSIGN_OR_RETURN(uint32_t set_count, reader.ReadU32());
  DataSetList sets;
  sets.reserve(set_count);
  for (uint32_t s = 0; s < set_count; ++s) {
    DataSet set;
    ASSIGN_OR_RETURN(std::string_view name, reader.ReadBlob());
    set.name = std::string(name);
    ASSIGN_OR_RETURN(uint32_t item_count, reader.ReadU32());
    set.items.reserve(item_count);
    for (uint32_t i = 0; i < item_count; ++i) {
      DataItem item;
      ASSIGN_OR_RETURN(std::string_view key, reader.ReadBlob());
      ASSIGN_OR_RETURN(std::string_view data, reader.ReadBlob());
      item.key = std::string(key);
      item.data = std::string(data);
      set.items.push_back(std::move(item));
    }
    sets.push_back(std::move(set));
  }
  if (!reader.AtEnd()) {
    return dbase::InvalidArgument("trailing bytes after marshalled set list");
  }
  return sets;
}

}  // namespace dfunc
