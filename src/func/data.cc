#include "src/func/data.h"

#include <algorithm>
#include <cstring>

namespace dfunc {
namespace {

constexpr uint32_t kMagic = 0x444C4E31;  // "DLN1"

// Payloads at or below this size are copied into the scatter frame buffer
// instead of emitted as standalone slices: one small memcpy beats an extra
// iovec entry (and beats pinning a large backing buffer for a few bytes).
constexpr size_t kScatterInlineBytes = 1024;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffff));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendBlob(std::string* out, std::string_view blob) {
  AppendU64(out, blob.size());
  out->append(blob);
}

// Raw-pointer variants for marshalling straight into a pre-sized region
// (a memory context) without an intermediate string.
char* PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xff);
  dst[1] = static_cast<char>((v >> 8) & 0xff);
  dst[2] = static_cast<char>((v >> 16) & 0xff);
  dst[3] = static_cast<char>((v >> 24) & 0xff);
  return dst + 4;
}

char* PutU64(char* dst, uint64_t v) {
  dst = PutU32(dst, static_cast<uint32_t>(v & 0xffffffff));
  return PutU32(dst, static_cast<uint32_t>(v >> 32));
}

char* PutBlob(char* dst, std::string_view blob) {
  dst = PutU64(dst, blob.size());
  if (!blob.empty()) {
    std::memcpy(dst, blob.data(), blob.size());
  }
  return dst + blob.size();
}

class Reader {
 public:
  explicit Reader(std::string_view buffer) : buffer_(buffer) {}

  dbase::Result<uint32_t> ReadU32() {
    if (buffer_.size() - pos_ < 4) {
      return dbase::InvalidArgument("truncated buffer reading u32");
    }
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(buffer_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    return v;
  }

  dbase::Result<uint64_t> ReadU64() {
    ASSIGN_OR_RETURN(uint32_t lo, ReadU32());
    ASSIGN_OR_RETURN(uint32_t hi, ReadU32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  dbase::Result<std::string_view> ReadBlob() {
    ASSIGN_OR_RETURN(uint64_t size, ReadU64());
    if (buffer_.size() - pos_ < size) {
      return dbase::InvalidArgument("truncated buffer reading blob");
    }
    std::string_view blob = buffer_.substr(pos_, size);
    pos_ += size;
    return blob;
  }

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  std::string_view buffer_;
  size_t pos_ = 0;
};

// Shared walk for both unmarshal flavours. `alias` is null for the copying
// variant; otherwise payloads become sub-slices of it.
dbase::Result<DataSetList> UnmarshalSetsImpl(std::string_view buffer,
                                             const dbase::BufferSlice* alias) {
  auto& stats = DataPlaneStats::Get();
  Reader reader(buffer);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return dbase::InvalidArgument("bad magic in marshalled set list");
  }
  ASSIGN_OR_RETURN(uint32_t set_count, reader.ReadU32());
  DataSetList sets;
  // Reserve no more than the remaining bytes could possibly encode (a set
  // costs at least a name length + item count): a corrupt count field must
  // not be able to force a multi-gigabyte allocation before the truncation
  // check fails the parse.
  sets.reserve(std::min<size_t>(set_count, (buffer.size() - reader.pos()) / 12));
  for (uint32_t s = 0; s < set_count; ++s) {
    DataSet set;
    ASSIGN_OR_RETURN(std::string_view name, reader.ReadBlob());
    set.name = std::string(name);
    ASSIGN_OR_RETURN(uint32_t item_count, reader.ReadU32());
    set.items.reserve(std::min<size_t>(item_count, (buffer.size() - reader.pos()) / 16));
    for (uint32_t i = 0; i < item_count; ++i) {
      DataItem item;
      ASSIGN_OR_RETURN(std::string_view key, reader.ReadBlob());
      item.key = std::string(key);
      ASSIGN_OR_RETURN(std::string_view data, reader.ReadBlob());
      if (alias != nullptr) {
        // The blob Reader just returned ends at the current cursor; its
        // offset within `buffer` is therefore pos() - size. Subslice
        // re-checks bounds against the backing buffer, so a Reader bug
        // cannot mint an out-of-range view.
        ASSIGN_OR_RETURN(dbase::BufferSlice slice,
                         alias->Subslice(reader.pos() - data.size(), data.size()));
        stats.bytes_aliased.fetch_add(data.size(), std::memory_order_relaxed);
        item.data = std::move(slice);
      } else {
        stats.bytes_copied.fetch_add(data.size(), std::memory_order_relaxed);
        item.data = std::string(data);
      }
      set.items.push_back(std::move(item));
    }
    sets.push_back(std::move(set));
  }
  if (!reader.AtEnd()) {
    return dbase::InvalidArgument("trailing bytes after marshalled set list");
  }
  return sets;
}

}  // namespace

DataPlaneStats& DataPlaneStats::Get() {
  static DataPlaneStats stats;
  return stats;
}

std::string& Payload::MutableString() {
  if (aliased_) {
    auto& stats = DataPlaneStats::Get();
    stats.cow_detaches.fetch_add(1, std::memory_order_relaxed);
    stats.bytes_copied.fetch_add(slice_.size(), std::memory_order_relaxed);
    owned_.assign(slice_.view());
    slice_ = dbase::BufferSlice();
    aliased_ = false;
  }
  return owned_;
}

const dbase::BufferSlice& Payload::EnsureShared() {
  if (!aliased_) {
    DataPlaneStats::Get().payload_promotions.fetch_add(1, std::memory_order_relaxed);
    slice_ = dbase::BufferSlice(dbase::Buffer::FromString(std::move(owned_)));
    owned_.clear();
    aliased_ = true;
  }
  return slice_;
}

uint64_t TotalBytes(const DataSetList& sets) {
  uint64_t total = 0;
  for (const auto& set : sets) {
    total += set.TotalBytes();
  }
  return total;
}

const DataSet* FindSet(const DataSetList& sets, std::string_view name) {
  for (const auto& set : sets) {
    if (set.name == name) {
      return &set;
    }
  }
  return nullptr;
}

DataSet* FindSet(DataSetList& sets, std::string_view name) {
  for (auto& set : sets) {
    if (set.name == name) {
      return &set;
    }
  }
  return nullptr;
}

uint64_t MarshalledSize(const DataSetList& sets) {
  uint64_t total = 8;  // magic + set count
  for (const auto& set : sets) {
    total += 8 + set.name.size() + 4;  // name blob + item count
    for (const auto& item : set.items) {
      total += 8 + item.key.size() + 8 + item.data.size();
    }
  }
  return total;
}

std::string MarshalSets(const DataSetList& sets) {
  std::string out;
  out.reserve(MarshalledSize(sets));
  AppendU32(&out, kMagic);
  AppendU32(&out, static_cast<uint32_t>(sets.size()));
  uint64_t payload_bytes = 0;
  for (const auto& set : sets) {
    AppendBlob(&out, set.name);
    AppendU32(&out, static_cast<uint32_t>(set.items.size()));
    for (const auto& item : set.items) {
      AppendBlob(&out, item.key);
      AppendBlob(&out, item.data.view());
      payload_bytes += item.data.size();
    }
  }
  DataPlaneStats::Get().bytes_copied.fetch_add(payload_bytes, std::memory_order_relaxed);
  return out;
}

uint64_t MarshalSetsInto(const DataSetList& sets, char* dst) {
  char* cursor = dst;
  cursor = PutU32(cursor, kMagic);
  cursor = PutU32(cursor, static_cast<uint32_t>(sets.size()));
  uint64_t payload_bytes = 0;
  for (const auto& set : sets) {
    cursor = PutBlob(cursor, set.name);
    cursor = PutU32(cursor, static_cast<uint32_t>(set.items.size()));
    for (const auto& item : set.items) {
      cursor = PutBlob(cursor, item.key);
      cursor = PutBlob(cursor, item.data.view());
      payload_bytes += item.data.size();
    }
  }
  DataPlaneStats::Get().bytes_copied.fetch_add(payload_bytes, std::memory_order_relaxed);
  return static_cast<uint64_t>(cursor - dst);
}

dbase::Result<DataSetList> UnmarshalSets(std::string_view buffer) {
  return UnmarshalSetsImpl(buffer, nullptr);
}

dbase::Result<DataSetList> UnmarshalSets(const dbase::BufferSlice& buffer) {
  return UnmarshalSetsImpl(buffer.view(), &buffer);
}

std::vector<dbase::BufferSlice> MarshalSetsScatter(DataSetList& sets) {
  auto& stats = DataPlaneStats::Get();
  // First pass builds all framing (and inlined small payloads) into one
  // owned frame string, recording where each contiguous frame run ends and
  // which external slice follows it. The frame string is only wrapped into
  // an immutable Buffer after it stops growing, so recorded offsets stay
  // valid across reallocations.
  struct Chunk {
    size_t frame_begin = 0;
    size_t frame_size = 0;        // 0 when this chunk is an external slice
    dbase::BufferSlice external;  // empty for frame chunks
  };
  std::string frame;
  std::vector<Chunk> chunks;
  size_t frame_mark = 0;
  auto flush_frame = [&] {
    if (frame.size() > frame_mark) {
      chunks.push_back(Chunk{frame_mark, frame.size() - frame_mark, {}});
      frame_mark = frame.size();
    }
  };
  uint64_t copied = 0;
  uint64_t aliased = 0;
  AppendU32(&frame, kMagic);
  AppendU32(&frame, static_cast<uint32_t>(sets.size()));
  for (auto& set : sets) {
    AppendBlob(&frame, set.name);
    AppendU32(&frame, static_cast<uint32_t>(set.items.size()));
    for (auto& item : set.items) {
      AppendBlob(&frame, item.key);
      if (item.data.size() <= kScatterInlineBytes) {
        AppendBlob(&frame, item.data.view());
        copied += item.data.size();
      } else {
        AppendU64(&frame, item.data.size());
        flush_frame();
        chunks.push_back(Chunk{0, 0, item.data.EnsureShared()});
        aliased += item.data.size();
      }
    }
  }
  flush_frame();
  stats.bytes_copied.fetch_add(copied, std::memory_order_relaxed);
  stats.bytes_aliased.fetch_add(aliased, std::memory_order_relaxed);

  auto frame_buffer = dbase::Buffer::FromString(std::move(frame));
  std::vector<dbase::BufferSlice> out;
  out.reserve(chunks.size());
  for (auto& chunk : chunks) {
    if (chunk.frame_size == 0) {
      out.push_back(std::move(chunk.external));
    } else {
      // In bounds by construction: the offsets were recorded against the
      // very string the buffer adopted.
      out.push_back(
          dbase::BufferSlice::Make(frame_buffer, chunk.frame_begin, chunk.frame_size).value());
    }
  }
  return out;
}

}  // namespace dfunc
