// The compute-function programming interface (the "SDK", §4.2). A compute
// function is pure: it reads declared input sets, writes declared output
// sets, and performs no I/O or syscalls. Two equivalent views are offered,
// mirroring dlibc:
//   - direct set/item access (the low-level descriptor interface), and
//   - an in-memory filesystem where "/in/<set>/<item-index>" are the inputs
//     and files created under "/out/<set>/" become output items.
#ifndef SRC_FUNC_FUNCTION_H_
#define SRC_FUNC_FUNCTION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/func/data.h"
#include "src/vfs/memfs.h"

namespace dfunc {

class FunctionCtx {
 public:
  explicit FunctionCtx(DataSetList inputs);

  // --- Low-level interface -------------------------------------------------
  const DataSetList& inputs() const { return inputs_; }
  // nullptr when the set is absent (declared-optional sets may be missing).
  const DataSet* input_set(std::string_view name) const { return FindSet(inputs_, name); }
  // Convenience: the first item of a set, or error if the set is empty/absent.
  dbase::Result<std::string> SingleInput(std::string_view set_name) const;

  // Appends an item to the named output set (created on first use). Takes a
  // Payload so pass-through outputs (re-emitting an input item) stay
  // aliased — no copy; plain strings convert implicitly as before.
  void EmitOutput(std::string_view set_name, Payload data, std::string key = "");

  DataSetList& outputs() { return outputs_; }
  const DataSetList& outputs() const { return outputs_; }

  // --- Filesystem interface ------------------------------------------------
  // Lazily materializes "/in" from the input sets on first access.
  dvfs::MemFs& fs();
  // Converts files under "/out/<set>/" into output items (file name becomes
  // the item key), merging with any items emitted via EmitOutput.
  dbase::Status CollectFsOutputs();
  bool fs_materialized() const { return fs_ != nullptr; }

  // --- Cooperative preemption ---------------------------------------------
  // Thread-based isolation backends cannot hard-kill a runaway function
  // (the process backend can); they set this flag on timeout. Long-running
  // loops should poll cancelled() — the stand-in for the paper's preemption
  // of over-deadline tasks (§5 footnote 2).
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }
  // Second kill switch: the invocation-wide cancel flag (client cancel /
  // invocation deadline), independent of the per-execution timeout flag.
  void set_invocation_cancel_flag(const std::atomic<bool>* flag) {
    invocation_cancel_ = flag;
  }
  bool cancelled() const {
    return (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) ||
           (invocation_cancel_ != nullptr &&
            invocation_cancel_->load(std::memory_order_relaxed));
  }

 private:
  DataSetList inputs_;
  DataSetList outputs_;
  std::unique_ptr<dvfs::MemFs> fs_;  // Lazily created.
  const std::atomic<bool>* cancel_ = nullptr;
  const std::atomic<bool>* invocation_cancel_ = nullptr;
};

// A compute function body. Returning a non-OK status fails the instance;
// the dispatcher converts it into an error signal on the output edges
// (§4.4). Must not block, must not touch global state.
using ComputeFunction = std::function<dbase::Status(FunctionCtx&)>;

}  // namespace dfunc

#endif  // SRC_FUNC_FUNCTION_H_
