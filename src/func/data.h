// Dandelion's data model (§4.1): functions consume and produce *sets* of
// *items*. An edge in a composition names one output set of the producer and
// one input set of the consumer; the `key` distribution keyword groups items
// by the keys producers attach to them.
#ifndef SRC_FUNC_DATA_H_
#define SRC_FUNC_DATA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace dfunc {

struct DataItem {
  // Grouping key; empty unless the producer set one. "Keys are set by the
  // user when formatting output data and are only used for grouping."
  std::string key;
  std::string data;

  bool operator==(const DataItem& other) const = default;
};

struct DataSet {
  std::string name;
  std::vector<DataItem> items;

  bool operator==(const DataSet& other) const = default;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& item : items) {
      total += item.data.size() + item.key.size();
    }
    return total;
  }
};

// The complete input (or output) of one function instance.
using DataSetList = std::vector<DataSet>;

uint64_t TotalBytes(const DataSetList& sets);

// Finds a set by name; nullptr if absent.
const DataSet* FindSet(const DataSetList& sets, std::string_view name);
DataSet* FindSet(DataSetList& sets, std::string_view name);

// Flat, versioned wire format used to move set lists in and out of memory
// contexts (shared memory for the process backend, guest memory for VMs).
// Layout: magic, set count, then per set: name, item count, per item: key,
// payload. All integers little-endian.
std::string MarshalSets(const DataSetList& sets);
dbase::Result<DataSetList> UnmarshalSets(std::string_view buffer);

}  // namespace dfunc

#endif  // SRC_FUNC_DATA_H_
