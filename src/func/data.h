// Dandelion's data model (§4.1): functions consume and produce *sets* of
// *items*. An edge in a composition names one output set of the producer and
// one input set of the consumer; the `key` distribution keyword groups items
// by the keys producers attach to them.
//
// Item payloads are Payloads, not strings: a payload either owns its bytes
// or aliases a refcounted dbase::BufferSlice (a frontend request body, a
// producer's memory-context region). Aliasing is what lets an `each`
// fan-out of N instances reference one copy of every non-fanout input set;
// the copy-on-write seam (MutableString) is the escape hatch for code that
// mutates payloads in place.
#ifndef SRC_FUNC_DATA_H_
#define SRC_FUNC_DATA_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/buffer.h"
#include "src/base/status.h"

namespace dfunc {

// Process-wide counters for the composition data plane. `copied` counts
// payload bytes physically memcpy'd at data-plane seams (marshal into a
// context, copying unmarshal, CoW detach); `aliased` counts payload bytes
// moved by reference instead (aliasing unmarshal, shared fan-out bindings,
// scatter-gather response slices). Framing bytes (magic, counts, lengths,
// keys) are excluded from both so the ratio reflects payload movement.
struct DataPlaneStats {
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<uint64_t> bytes_aliased{0};
  // Owned payloads promoted into refcounted buffers (EnsureShared).
  std::atomic<uint64_t> payload_promotions{0};
  // Copy-on-write detaches (MutableString on an aliased payload).
  std::atomic<uint64_t> cow_detaches{0};
  // Per-binding materializations in BuildInstanceInputs — the fan-out
  // sharing invariant is one per binding, not one per instance.
  std::atomic<uint64_t> binding_materializations{0};

  static DataPlaneStats& Get();

  struct Snapshot {
    uint64_t bytes_copied = 0;
    uint64_t bytes_aliased = 0;
    uint64_t payload_promotions = 0;
    uint64_t cow_detaches = 0;
    uint64_t binding_materializations = 0;
  };
  Snapshot snapshot() const {
    return Snapshot{bytes_copied.load(std::memory_order_relaxed),
                    bytes_aliased.load(std::memory_order_relaxed),
                    payload_promotions.load(std::memory_order_relaxed),
                    cow_detaches.load(std::memory_order_relaxed),
                    binding_materializations.load(std::memory_order_relaxed)};
  }
};

// An item's payload: either an owned string or an aliased BufferSlice.
// Reads go through view(); mutation goes through MutableString(), which
// detaches aliased bytes into an owned copy first (copy-on-write). The
// inverse seam, EnsureShared(), promotes an owned string into a refcounted
// buffer without copying, so subsequent Payload copies are refcount bumps.
class Payload {
 public:
  Payload() = default;
  // Implicit on purpose: DataItem{key, data} aggregate initializers and
  // the many call sites that build payloads from strings keep working.
  Payload(std::string bytes) : owned_(std::move(bytes)) {}
  Payload(std::string_view bytes) : owned_(bytes) {}
  Payload(const char* bytes) : owned_(bytes) {}
  Payload(dbase::BufferSlice slice) : slice_(std::move(slice)), aliased_(true) {}

  std::string_view view() const { return aliased_ ? slice_.view() : std::string_view(owned_); }
  operator std::string_view() const { return view(); }
  const char* data() const { return view().data(); }
  size_t size() const { return aliased_ ? slice_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  bool aliased() const { return aliased_; }

  std::string ToString() const { return std::string(view()); }

  // Copy-on-write seam: an aliased payload detaches into an owned copy
  // (other slices of the same buffer are unaffected); an owned payload is
  // returned as is.
  std::string& MutableString();

  // Promotes an owned payload into a refcounted buffer by *moving* its
  // storage (no byte copy) and returns the slice; an already-aliased
  // payload returns its slice unchanged. After this, copying the Payload
  // shares bytes instead of duplicating them.
  const dbase::BufferSlice& EnsureShared();

  // The backing slice when aliased; the empty slice otherwise.
  const dbase::BufferSlice& slice() const { return slice_; }

  friend bool operator==(const Payload& a, const Payload& b) { return a.view() == b.view(); }
  // Heterogeneous comparison against anything string-like. A template (not
  // a string_view overload) so that `payload == "literal"` has exactly one
  // viable candidate — a member taking string_view would tie with the
  // Payload converting constructor and make every comparison ambiguous.
  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Payload> &&
             std::is_convertible_v<const T&, std::string_view>)
  friend bool operator==(const Payload& a, const T& b) {
    return a.view() == std::string_view(b);
  }

 private:
  std::string owned_;
  dbase::BufferSlice slice_;
  bool aliased_ = false;
};

struct DataItem {
  // Grouping key; empty unless the producer set one. "Keys are set by the
  // user when formatting output data and are only used for grouping."
  std::string key;
  Payload data;

  bool operator==(const DataItem& other) const = default;
};

struct DataSet {
  std::string name;
  std::vector<DataItem> items;

  bool operator==(const DataSet& other) const = default;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& item : items) {
      total += item.data.size() + item.key.size();
    }
    return total;
  }
};

// The complete input (or output) of one function instance.
using DataSetList = std::vector<DataSet>;

uint64_t TotalBytes(const DataSetList& sets);

// Finds a set by name; nullptr if absent.
const DataSet* FindSet(const DataSetList& sets, std::string_view name);
DataSet* FindSet(DataSetList& sets, std::string_view name);

// Flat, versioned wire format used to move set lists in and out of memory
// contexts (shared memory for the process backend, guest memory for VMs).
// Layout: magic, set count, then per set: name, item count, per item: key,
// payload. All integers little-endian.
std::string MarshalSets(const DataSetList& sets);

// Exact marshalled size of `sets` — lets callers marshal straight into a
// destination region (a memory context) without an intermediate string.
uint64_t MarshalledSize(const DataSetList& sets);
// Writes the marshalled form into `dst`, which must hold at least
// MarshalledSize(sets) bytes. Returns the bytes written.
uint64_t MarshalSetsInto(const DataSetList& sets, char* dst);

// Copying unmarshal: every key and payload is duplicated out of `buffer`.
dbase::Result<DataSetList> UnmarshalSets(std::string_view buffer);
// Aliasing unmarshal: item payloads are sub-slices of `buffer` — zero
// payload copies, and the underlying Buffer stays alive (refcounted) until
// the last item referencing it is destroyed. Keys and set names are small
// and still copied.
dbase::Result<DataSetList> UnmarshalSets(const dbase::BufferSlice& buffer);

// Scatter marshal for gathered (writev) writes: returns the wire format as
// a chunk sequence instead of one contiguous string. Framing and payloads
// below a small inline threshold are copied into one owned frame buffer;
// larger payloads are emitted as slices of their existing backing buffers
// (owned payloads are promoted via EnsureShared — no byte copy — which is
// why `sets` is mutable). Concatenating the chunks yields exactly
// MarshalSets(sets).
std::vector<dbase::BufferSlice> MarshalSetsScatter(DataSetList& sets);

}  // namespace dfunc

#endif  // SRC_FUNC_DATA_H_
