// Function registry: the dispatcher's catalog of registered compute-function
// "binaries" and their metadata (§5). In the paper users upload compiled
// binaries; here a binary is a native ComputeFunction plus a synthetic
// binary size that the engines use to model code loading from disk vs. the
// in-memory cache (§7.4 cached vs. uncached).
#ifndef SRC_FUNC_REGISTRY_H_
#define SRC_FUNC_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/func/function.h"

namespace dfunc {

struct FunctionSpec {
  std::string name;
  ComputeFunction body;
  // Memory requirement declared at registration (like AWS Lambda, §5);
  // the dispatcher sizes the memory context from this.
  uint64_t context_bytes = 16 * 1024 * 1024;
  // Synthetic binary size; drives the load-from-disk cost model.
  uint64_t binary_bytes = 256 * 1024;
  // Preemption deadline for run-to-completion compute engines (§5 fn.2).
  dbase::Micros timeout_us = 5 * dbase::kMicrosPerSecond;
};

class FunctionRegistry {
 public:
  dbase::Status Register(FunctionSpec spec);
  dbase::Result<FunctionSpec> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, FunctionSpec> functions_;
};

}  // namespace dfunc

#endif  // SRC_FUNC_REGISTRY_H_
