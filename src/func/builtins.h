// Built-in compute functions used across the paper's microbenchmarks:
//   - MatMul: N×N int64 matrix multiplication (Figures 2, 5, 6, 7).
//   - ArrayStats: sum/min/max over a sample of an int64 array — the
//     "fetch and compute" phase body (§7.4).
//   - Busy-spin and echo helpers for tests.
// Matrices and arrays travel as little-endian int64 payloads.
#ifndef SRC_FUNC_BUILTINS_H_
#define SRC_FUNC_BUILTINS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/func/function.h"
#include "src/func/registry.h"

namespace dfunc {

// --- Payload helpers ---------------------------------------------------

// Encodes int64 values little-endian, 8 bytes each.
std::string EncodeInt64Array(const std::vector<int64_t>& values);
dbase::Result<std::vector<int64_t>> DecodeInt64Array(std::string_view payload);

// Generates a deterministic N×N matrix with entries in [-8, 8).
std::vector<int64_t> MakeMatrix(int n, uint64_t seed);

// Reference multiply for tests: row-major N×N.
std::vector<int64_t> MultiplyMatrices(const std::vector<int64_t>& a,
                                      const std::vector<int64_t>& b, int n);

// --- Compute function bodies -------------------------------------------

// Input set "A" and "B": one item each, N×N int64 row-major. Output set
// "C": the product. N is inferred from the payload size.
dbase::Status MatMulFunction(FunctionCtx& ctx);

// Input set "data": one int64-array item. Output set "stats": one item with
// "sum=<s> min=<m> max=<M>" computed over a strided sample of the elements.
dbase::Status ArrayStatsFunction(FunctionCtx& ctx);

// Input set "in": items copied verbatim to output set "out".
dbase::Status EchoFunction(FunctionCtx& ctx);

// Always fails — for error-propagation tests.
dbase::Status FailingFunction(FunctionCtx& ctx);

// Spins forever; used to exercise the engine timeout/preemption path.
dbase::Status InfiniteLoopFunction(FunctionCtx& ctx);

// Registers all of the above under their canonical names
// ("matmul", "array_stats", "echo", "fail", "spin").
dbase::Status RegisterBuiltins(FunctionRegistry& registry);

}  // namespace dfunc

#endif  // SRC_FUNC_BUILTINS_H_
