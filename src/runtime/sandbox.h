// Isolation backends for compute engines (§6.2). Dandelion's design is not
// tied to one mechanism; the paper implements four (KVM, processes, CHERI,
// rWasm) and we mirror that set:
//
//   kProcess  — real fork()-based isolation: the function runs in a child
//               process over a MAP_SHARED memory context; the parent
//               enforces the deadline with SIGKILL and the child is confined
//               by a seccomp-BPF syscall jail (src/runtime/jail.h): any
//               forbidden syscall kills it, surfacing as kJailKill. See the
//               threat-model section in DESIGN.md.
//   kThread   — CHERI stand-in: runs in-process on a scratch thread within a
//               single address space, zero spawn cost on the critical path.
//               CHERI's hardware bounds checks are modelled, not enforced.
//   kKvmSim   — KVM stand-in: thread execution plus the VM-setup cost
//               calibrated from Table 1 (/dev/kvm is unavailable here).
//   kWasmSim  — rWasm stand-in: thread execution plus dynamic-load cost and
//               a compute slowdown factor (transpiled code runs slower,
//               §7.3).
#ifndef SRC_RUNTIME_SANDBOX_H_
#define SRC_RUNTIME_SANDBOX_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/func/data.h"
#include "src/func/registry.h"
#include "src/policy/retry.h"
#include "src/runtime/memory_context.h"

namespace dandelion {

enum class IsolationBackend { kProcess, kThread, kKvmSim, kWasmSim };

std::string_view IsolationBackendName(IsolationBackend backend);
dbase::Result<IsolationBackend> IsolationBackendFromName(std::string_view name);

// Per-execution latency breakdown, mirroring Table 1's rows.
struct SandboxTimings {
  dbase::Micros load_us = 0;     // "Load from disk": binary load / transpile.
  dbase::Micros setup_us = 0;    // Sandbox creation (fork / VM enter / none).
  dbase::Micros execute_us = 0;  // User code.
  dbase::Micros output_us = 0;   // "Get/send output": outcome readback.
  // The instance ran on a pre-warmed sandbox: load_us and setup_us were
  // paid at pool-fill time, off the critical path, and report ~0 here so
  // fig02/tab01 breakdowns stay honest about what the request actually
  // waited for.
  bool pool_hit = false;

  dbase::Micros Total() const { return load_us + setup_us + execute_us + output_us; }
};

struct ExecOutcome {
  dbase::Status status;
  dfunc::DataSetList outputs;
  SandboxTimings timings;
  // Sandbox-level failure classification (kNone for success and for
  // functional errors the body returned deliberately). The dispatcher's
  // RetryPolicy keys off this, never off the Status alone.
  dpolicy::FailureKind failure = dpolicy::FailureKind::kNone;
};

// Classification of a waitpid() status from a sandbox child, shared by the
// cold process backend and the pool's template children so signal decoding
// lives in exactly one place. Deadline/cancel SIGKILLs are resolved by the
// caller *before* decoding (the parent knows why it killed); DecodeWaitStatus
// only sees deaths the parent did not cause.
struct WaitDecode {
  dpolicy::FailureKind kind = dpolicy::FailureKind::kNone;
  dbase::Status status;
};

WaitDecode DecodeWaitStatus(int wait_status, const std::string& function_name);

struct SandboxOptions {
  // Whether the function binary is in the node's in-memory cache (§7.4
  // compares cached vs. uncached chains). Cold binary ⇒ disk-load model.
  bool binary_cached = true;
  // Overrides the FunctionSpec timeout when > 0.
  dbase::Micros timeout_us = 0;
  // External kill switch (the invocation's cancel flag). Thread-flavoured
  // backends merge it with their deadline flag so the function's
  // cancelled() poll sees both; the process backend SIGKILLs the child
  // when it flips. A set flag yields a kCancelled outcome.
  const std::atomic<bool>* cancel_flag = nullptr;
  // The sandbox was pre-warmed by a SandboxPool: the binary is already
  // loaded and the sandbox already instantiated, so the executor skips the
  // load/setup cost models and reports the execution as a pool hit.
  bool prewarmed = false;
  // By-reference input handoff for in-process backends: when set, the
  // function body reads these sets directly (refcount bumps for aliased
  // payloads) and StoreInputSets is skipped entirely. Address-space-crossing
  // backends (process) ignore this — their children can only see the
  // marshalled context mapping.
  std::shared_ptr<const dfunc::DataSetList> input_sets;
  // When set, in-process backends read outputs back zero-copy: payloads
  // alias the context region and this keepalive (the owning shared_ptr of
  // the context) pins it until the last downstream reader drops its slice.
  // Null ⇒ copying read-back (warm sandboxes whose context is recycled
  // immediately after Execute).
  std::shared_ptr<const void> context_keepalive;
};

// Injected cost model per backend. Values are derived from Table 1 /
// §7.2 ("with the default Linux 5.15 kernel the totals of the rWasm,
// process and KVM backends are 109, 539 and 218 us"); the process backend
// injects nothing — its fork()+wait cost is real.
struct BackendCostModel {
  dbase::Micros setup_us = 0;          // Fixed sandbox-creation surcharge.
  double load_disk_us_per_mb = 200.0;  // Binary load from disk.
  double load_disk_base_us = 30.0;
  double load_cached_us_per_mb = 20.0;  // Binary copy from in-memory cache.
  double load_cached_base_us = 3.0;
  double compute_slowdown = 1.0;  // >1 emulates slower generated code.

  static BackendCostModel Defaults(IsolationBackend backend);
};

// Executes compute functions under one isolation mechanism. Thread-safe:
// engines on different cores share one executor per backend.
class SandboxExecutor {
 public:
  virtual ~SandboxExecutor() = default;

  // The context must already contain the marshalled inputs
  // (MemoryContext::StoreInputSets). On return it contains the outcome and
  // the parsed outputs are in ExecOutcome::outputs.
  virtual ExecOutcome Execute(const dfunc::FunctionSpec& spec, MemoryContext& context,
                              const SandboxOptions& options) = 0;

  virtual IsolationBackend backend() const = 0;
};

std::unique_ptr<SandboxExecutor> CreateSandboxExecutor(IsolationBackend backend);
std::unique_ptr<SandboxExecutor> CreateSandboxExecutor(IsolationBackend backend,
                                                       const BackendCostModel& costs);

// The modelled binary-load cost (Table 1 "load from disk" row). Exposed so
// the sandbox pool can pay it at pre-warm time instead of on the request's
// critical path.
dbase::Micros ModeledLoadCostUs(const BackendCostModel& costs, uint64_t binary_bytes,
                                bool cached);

// Runs the function body in-process against a context already holding
// marshalled inputs, leaving the outcome in the context. Shared by the
// thread-flavoured backends, the forked child of the process backend, and
// the sandbox pool's pre-forked template children. `timeout_flag` is the
// per-execution deadline flag and `invocation_cancel` the invocation-wide
// kill switch (either may be null). `preloaded_inputs`, when non-null,
// bypasses LoadInputSets: the body consumes these sets directly (aliased
// payloads stay refcount bumps) — the in-process zero-copy input path.
dbase::Status RunFunctionBodyAgainstContext(const dfunc::FunctionSpec& spec,
                                            MemoryContext& context,
                                            const std::atomic<bool>* timeout_flag,
                                            const std::atomic<bool>* invocation_cancel,
                                            const dfunc::DataSetList* preloaded_inputs = nullptr);

}  // namespace dandelion

#endif  // SRC_RUNTIME_SANDBOX_H_
