// Pre-warmed sandbox pools (ROADMAP "Cold-start elimination"): per-function
// shelves of ready-to-run sandboxes so a dispatching instance skips the
// cold path — fork + binary load for the process backend, modelled
// load/setup for the thread-flavoured ones — and pays only execution.
//
// Lifecycle of one warm sandbox:
//
//     Tick (policy fill)                 Dispatch                Completion
//   ┌───────────────────┐   Acquire   ┌───────────┐   Release  ┌──────────┐
//   │ create context,   │ ──────────► │ inputs    │ ─────────► │ scrub    │
//   │ load binary,      │   (shelf)   │ marshal   │  (engine)  │ extent,  │
//   │ fork template /   │             │ straight  │            │ re-arm,  │
//   │ instantiate state │             │ into the  │            │ re-shelf │
//   └───────────────────┘             │ warm ctx  │            └────┬─────┘
//             ▲                       └───────────┘                 │
//             └──────────── retire (over target / clamp / drain) ◄──┘
//
// Backends:
//   kProcess  — fork-from-template: a child is forked at fill time over a
//               MAP_SHARED context and parks on a go-pipe; COW shares the
//               parent image until dispatch writes inputs and releases it.
//               The template child is single-use (it _exit()s after the
//               body); Release re-forks during recycle, off the next
//               request's critical path.
//   kThread / kKvmSim / kWasmSim — instantiated executor state: the binary
//               load and sandbox setup cost models are paid at fill time,
//               and execution runs with SandboxOptions::prewarmed so the
//               executor skips them.
//
// Scrub contract (the ContextPool touched-extent idiom, applied in place):
// on Release the context's written extent is zeroed (small) or
// MADV_DONTNEED'd (large) before the sandbox returns to the shelf, so a
// reused sandbox is indistinguishable from a fresh one — no state crosses
// instances. For the process backend the parent widens the extent to cover
// the child's outcome writes (header + declared payload; the full capacity
// after an unclean exit, where the header cannot be trusted).
//
// Depth is policy-driven: each Tick feeds per-function cumulative arrivals
// to a dpolicy::PrewarmPolicy instance (the same pure decision object dsim
// executes) and fills or retires toward the decided target, clamped by the
// per-function and global caps.
#ifndef SRC_RUNTIME_SANDBOX_POOL_H_
#define SRC_RUNTIME_SANDBOX_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/func/registry.h"
#include "src/policy/prewarm.h"
#include "src/runtime/invocation.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/sandbox.h"

namespace dandelion {

struct SandboxPoolStats {
  uint64_t hits = 0;           // Acquire found a warm sandbox.
  uint64_t misses = 0;         // Acquire fell back to the cold path.
  uint64_t bypassed = 0;       // Batch acquires refused by the interactive reserve.
  uint64_t prewarm_fills = 0;  // Warm sandboxes created by policy ticks.
  uint64_t recycled = 0;       // Released sandboxes scrubbed and re-shelved.
  uint64_t retired = 0;        // Destroyed: over target, clamped, unhealthy, drain.
  uint64_t arrivals = 0;       // Dispatch-side arrivals (the EWMA feed).
  // Template child found dead at dispatch (go-pipe write failed); the
  // engine fell back to a cold fork transparently instead of failing the
  // invocation.
  uint64_t pool_child_lost = 0;
  int shelved = 0;             // Ready warm sandboxes, all functions.
  int leased = 0;              // Acquired and not yet released.
  int functions = 0;           // Function pools tracked.
  int max_total = 0;           // Global shelf cap (for occupancy signals).
};

// One pre-initialized sandbox. Owns its memory context for its whole pooled
// lifetime; the dispatcher marshals inputs straight into that context, the
// engine executes via Execute(), and the pool scrubs + re-arms on Release.
class WarmSandbox {
 public:
  WarmSandbox(dfunc::FunctionSpec spec, std::shared_ptr<MemoryContext> context)
      : spec_(std::move(spec)), context_(std::move(context)) {}
  virtual ~WarmSandbox() = default;

  WarmSandbox(const WarmSandbox&) = delete;
  WarmSandbox& operator=(const WarmSandbox&) = delete;

  const dfunc::FunctionSpec& spec() const { return spec_; }
  const std::shared_ptr<MemoryContext>& context() const { return context_; }

  // Runs the function against the inputs already marshalled into
  // context(). Timings report load_us/setup_us ≈ 0 with pool_hit set —
  // those costs were paid at fill time.
  virtual ExecOutcome Execute(const SandboxOptions& options) = 0;

  // Scrubs the context and re-arms for the next lease. Returns false when
  // the sandbox cannot be reused (e.g. the template child was killed and
  // the re-fork failed) — the caller destroys it instead of shelving.
  virtual bool Recycle() = 0;

  // Fault-injection seam (FaultPoint::kPoolTemplateDeath): kills the parked
  // template child without telling the bookkeeping, so the next Execute()
  // finds the go-pipe dead — exactly what a child OOM-killed between fill
  // and dispatch looks like. No-op for backends without a parked child.
  virtual void SimulateTemplateDeath() {}

 protected:
  dfunc::FunctionSpec spec_;
  std::shared_ptr<MemoryContext> context_;
};

// Thread-safe. One per Platform; engines Release from worker threads while
// the dispatcher Acquires and the control plane Ticks.
class SandboxPool {
 public:
  struct Config {
    IsolationBackend backend = IsolationBackend::kThread;
    // Per-function clamp on the policy's target depth.
    int max_depth_per_function = 8;
    // Global cap on shelved sandboxes across all functions.
    int max_total = 64;
    // When shelved depth is at or below this, batch-class acquires miss
    // (cold create) so the remaining warm sandboxes stay available for
    // interactive requests — priority requests bypass the pool-miss cold
    // path even under a batch flood.
    int interactive_reserve = 0;
    dpolicy::PrewarmOptions prewarm;
    // Overrides the default per-function PrewarmPolicy (parity tests pin
    // options this way). Called once per function.
    std::function<std::unique_ptr<dpolicy::PrewarmPolicy>()> policy_factory;
  };

  SandboxPool(Config config, MemoryAccountant* accountant);
  ~SandboxPool();

  SandboxPool(const SandboxPool&) = delete;
  SandboxPool& operator=(const SandboxPool&) = delete;

  // Dispatch-side: records the arrival for the EWMA and returns a warm
  // sandbox whose context is ready to receive inputs, or nullptr on miss
  // (the caller cold-creates as before).
  std::shared_ptr<WarmSandbox> Acquire(const dfunc::FunctionSpec& spec,
                                       PriorityClass priority);

  // Completion-side: scrub, re-arm, and re-shelf — or retire when the
  // function's target no longer wants it, a cap is hit, the sandbox is
  // unhealthy, or the pool is draining. Safe to call with sandboxes whose
  // execution was cancelled or timed out.
  void Release(std::shared_ptr<WarmSandbox> sandbox);

  // One policy step: per function, feed cumulative arrivals to the
  // PrewarmPolicy and fill/retire toward its target. Driven by the
  // ControlPlane ticker in the runtime, called directly by tests, and
  // mirrored in virtual time by dsim's pool model.
  void Tick(dbase::Micros now_us);

  // Engine-side: a leased sandbox's template child turned out to be dead at
  // dispatch (Execute reported kPoolChildLost) and the caller recovered
  // with a cold fork. Counted separately from misses: the request still
  // *waited* like a miss but the shelf lied about readiness.
  void CountChildLost();

  // Stops re-arming and empties every shelf (killing parked template
  // children). Idempotent; the destructor calls it too.
  void Shutdown();

  SandboxPoolStats Stats() const;
  // (now_us, total shelved) recorded at each Tick — the pool-depth
  // timeline the sim-vs-runtime parity assertion compares.
  std::vector<std::pair<dbase::Micros, int>> DepthTrace() const;
  // Last per-function decisions, keyed by function name (statz).
  std::vector<std::pair<std::string, dpolicy::PrewarmDecision>> LastDecisions() const;

 private:
  struct FunctionPool {
    dfunc::FunctionSpec spec;
    std::unique_ptr<dpolicy::PrewarmPolicy> policy;
    std::vector<std::shared_ptr<WarmSandbox>> shelved;
    uint64_t arrivals = 0;
    int leased = 0;
    int target = 0;
    dpolicy::PrewarmDecision last_decision;
  };

  // Creates one warm sandbox (context + template fork / instantiated
  // state). Runs outside mu_ — fills fork and spin. Null on failure.
  std::shared_ptr<WarmSandbox> CreateWarm(const dfunc::FunctionSpec& spec);

  FunctionPool& PoolForLocked(const dfunc::FunctionSpec& spec);

  Config config_;
  // Fill-time cost model (Table 1 defaults for the backend) and the shared
  // executor the thread-flavoured warm sandboxes delegate to. Warm
  // sandboxes hold a raw pointer to the executor; the Platform keeps the
  // pool alive past engine shutdown, so no lease outlives it.
  BackendCostModel costs_;
  std::unique_ptr<SandboxExecutor> executor_;
  MemoryAccountant* accountant_;
  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  std::unordered_map<std::string, FunctionPool> pools_;  // Guarded by mu_.
  int total_shelved_ = 0;                                // Guarded by mu_.
  int total_leased_ = 0;                                 // Guarded by mu_.
  SandboxPoolStats stats_;                               // Guarded by mu_ (counters).
  std::vector<std::pair<dbase::Micros, int>> depth_trace_;  // Guarded by mu_.
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_SANDBOX_POOL_H_
