#include "src/runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>

namespace dandelion {

Cluster::Cluster(Config config) : config_(config) {
  const int nodes = std::max(1, config.num_nodes);
  nodes_.reserve(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<Platform>(config.node_config));
    served_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    inflight_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

dbase::Status Cluster::RegisterFunction(const dfunc::FunctionSpec& spec) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterFunction(spec));
  }
  return dbase::OkStatus();
}

dbase::Status Cluster::RegisterCompositionDsl(std::string_view dsl_source) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterCompositionDsl(dsl_source));
  }
  return dbase::OkStatus();
}

void Cluster::ForEachNode(const std::function<void(Platform&)>& setup) {
  for (auto& node : nodes_) {
    setup(*node);
  }
}

double Cluster::NodeLoad(int index) const {
  const auto& node = nodes_[static_cast<size_t>(index)];
  const EngineStats stats = node->engine_stats();
  const double queued =
      static_cast<double>(stats.compute_queue_len + stats.comm_queue_len);
  const double inflight =
      static_cast<double>(inflight_[static_cast<size_t>(index)]->load(std::memory_order_relaxed));
  return queued + inflight;
}

int Cluster::PickNode(PriorityClass priority) {
  // Batch work tolerates queueing: under kLeastLoaded it still spreads
  // round-robin (backlog smoothing) while interactive requests pay the
  // load scan for the quietest node.
  if (config_.policy == LoadBalancePolicy::kRoundRobin || nodes_.size() == 1 ||
      priority == PriorityClass::kBatch) {
    return static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                            nodes_.size());
  }
  int best = 0;
  double best_load = std::numeric_limits<double>::max();
  for (int n = 0; n < num_nodes(); ++n) {
    const double load = NodeLoad(n);
    if (load < best_load) {
      best_load = load;
      best = n;
    }
  }
  return best;
}

InvocationHandle Cluster::InvokeAsync(
    InvocationRequest request,
    std::function<void(dbase::Result<dfunc::DataSetList>, int)> callback) {
  const int node = PickNode(request.priority);
  served_[static_cast<size_t>(node)]->fetch_add(1, std::memory_order_relaxed);
  inflight_[static_cast<size_t>(node)]->fetch_add(1, std::memory_order_relaxed);
  return nodes_[static_cast<size_t>(node)]->Submit(
      std::move(request),
      [this, node, callback = std::move(callback)](dbase::Result<dfunc::DataSetList> result) {
        inflight_[static_cast<size_t>(node)]->fetch_sub(1, std::memory_order_relaxed);
        callback(std::move(result), node);
      });
}

void Cluster::InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                          std::function<void(dbase::Result<dfunc::DataSetList>, int)> callback) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  (void)InvokeAsync(std::move(request), std::move(callback));
}

Cluster::RoutedResult Cluster::Invoke(InvocationRequest request) {
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    RoutedResult routed;
  };
  auto state = std::make_shared<WaitState>();
  // Deadline-aware wait with the same never-hang backstop as
  // Dispatcher::Invoke: a lost callback surfaces as kDeadlineExceeded, it
  // does not block the caller forever.
  constexpr dbase::Micros kBlockingWaitCapUs = 120 * dbase::kMicrosPerSecond;
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  dbase::Micros wait_deadline = now + kBlockingWaitCapUs;
  if (request.deadline_us > 0) {
    wait_deadline = std::min(wait_deadline, request.deadline_us);
  }
  InvocationHandle handle =
      InvokeAsync(std::move(request),
                  [state](dbase::Result<dfunc::DataSetList> result, int node) {
                    std::lock_guard<std::mutex> lock(state->mu);
                    state->routed.result = std::move(result);
                    state->routed.node_index = node;
                    state->done = true;
                    state->cv.notify_one();
                  });
  std::unique_lock<std::mutex> lock(state->mu);
  while (!state->done) {
    const dbase::Micros remaining =
        wait_deadline - dbase::MonotonicClock::Get()->NowMicros();
    if (remaining <= 0) {
      // The serving node's reaper owes us a terminal callback imminently;
      // one bounded grace wait covers scheduling skew before giving up.
      if (!state->cv.wait_for(lock, std::chrono::seconds(5), [&] { return state->done; })) {
        lock.unlock();
        handle.Cancel();
        RoutedResult routed;
        routed.result = dbase::DeadlineExceeded("routed invoke timed out");
        return routed;
      }
      break;
    }
    state->cv.wait_for(lock, std::chrono::microseconds(remaining));
  }
  return std::move(state->routed);
}

Cluster::RoutedResult Cluster::Invoke(const std::string& composition,
                                      dfunc::DataSetList args) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  return Invoke(std::move(request));
}

std::vector<uint64_t> Cluster::InvocationsPerNode() const {
  std::vector<uint64_t> counts;
  counts.reserve(served_.size());
  for (const auto& counter : served_) {
    counts.push_back(counter->load(std::memory_order_relaxed));
  }
  return counts;
}

std::vector<Cluster::CoreSplit> Cluster::CoreSplits() const {
  std::vector<CoreSplit> splits;
  splits.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    // One role scan per node (full EngineStats would lock every queue shard
    // just to read two ints); comm derived so the split sums to the pool.
    const WorkerSet& workers = node->workers();
    const int compute = workers.compute_workers();
    splits.push_back({compute, workers.total_workers() - compute});
  }
  return splits;
}

void Cluster::Shutdown() {
  for (auto& node : nodes_) {
    node->Shutdown();
  }
}

}  // namespace dandelion
