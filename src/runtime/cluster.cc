#include "src/runtime/cluster.h"

#include <limits>

namespace dandelion {

Cluster::Cluster(Config config) : config_(config) {
  const int nodes = std::max(1, config.num_nodes);
  nodes_.reserve(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<Platform>(config.node_config));
    served_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    inflight_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

dbase::Status Cluster::RegisterFunction(const dfunc::FunctionSpec& spec) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterFunction(spec));
  }
  return dbase::OkStatus();
}

dbase::Status Cluster::RegisterCompositionDsl(std::string_view dsl_source) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterCompositionDsl(dsl_source));
  }
  return dbase::OkStatus();
}

void Cluster::ForEachNode(const std::function<void(Platform&)>& setup) {
  for (auto& node : nodes_) {
    setup(*node);
  }
}

double Cluster::NodeLoad(int index) const {
  const auto& node = nodes_[static_cast<size_t>(index)];
  const EngineStats stats = node->engine_stats();
  const double queued =
      static_cast<double>(stats.compute_queue_len + stats.comm_queue_len);
  const double inflight =
      static_cast<double>(inflight_[static_cast<size_t>(index)]->load(std::memory_order_relaxed));
  return queued + inflight;
}

int Cluster::PickNode() {
  if (config_.policy == LoadBalancePolicy::kRoundRobin || nodes_.size() == 1) {
    return static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                            nodes_.size());
  }
  int best = 0;
  double best_load = std::numeric_limits<double>::max();
  for (int n = 0; n < num_nodes(); ++n) {
    const double load = NodeLoad(n);
    if (load < best_load) {
      best_load = load;
      best = n;
    }
  }
  return best;
}

void Cluster::InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                          std::function<void(dbase::Result<dfunc::DataSetList>, int)> callback) {
  const int node = PickNode();
  served_[static_cast<size_t>(node)]->fetch_add(1, std::memory_order_relaxed);
  inflight_[static_cast<size_t>(node)]->fetch_add(1, std::memory_order_relaxed);
  nodes_[static_cast<size_t>(node)]->InvokeAsync(
      composition, std::move(args),
      [this, node, callback = std::move(callback)](dbase::Result<dfunc::DataSetList> result) {
        inflight_[static_cast<size_t>(node)]->fetch_sub(1, std::memory_order_relaxed);
        callback(std::move(result), node);
      });
}

Cluster::RoutedResult Cluster::Invoke(const std::string& composition,
                                      dfunc::DataSetList args) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RoutedResult routed;
  InvokeAsync(composition, std::move(args),
              [&](dbase::Result<dfunc::DataSetList> result, int node) {
                std::lock_guard<std::mutex> lock(mu);
                routed.result = std::move(result);
                routed.node_index = node;
                done = true;
                cv.notify_one();
              });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return routed;
}

std::vector<uint64_t> Cluster::InvocationsPerNode() const {
  std::vector<uint64_t> counts;
  counts.reserve(served_.size());
  for (const auto& counter : served_) {
    counts.push_back(counter->load(std::memory_order_relaxed));
  }
  return counts;
}

void Cluster::Shutdown() {
  for (auto& node : nodes_) {
    node->Shutdown();
  }
}

}  // namespace dandelion
