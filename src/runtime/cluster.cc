#include "src/runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "src/base/clock.h"
#include "src/http/http_parser.h"

namespace dandelion {

namespace {
// Grace added to the router-side timeout when the request carries a
// deadline, so the serving node's own deadline machinery (which produces
// the richer report) wins the race against the client timer.
constexpr dbase::Micros kRemoteDeadlineGraceUs = 100 * dbase::kMicrosPerMilli;
// Per-peer gossip timeout cap: one slow peer must not stall the round.
constexpr dbase::Micros kGossipTimeoutCapUs = 500 * dbase::kMicrosPerMilli;
}  // namespace

Cluster::Cluster(Config config)
    : config_(std::move(config)),
      remote_retry_(config_.remote_retry),
      membership_(config_.membership) {
  // With remote nodes configured a router-only cluster (0 locals) is
  // legitimate; a fully empty cluster is not.
  const int locals = config_.remote_nodes.empty() ? std::max(1, config_.num_nodes)
                                                  : std::max(0, config_.num_nodes);
  nodes_.reserve(static_cast<size_t>(locals));
  for (int n = 0; n < locals; ++n) {
    nodes_.push_back(std::make_unique<Platform>(config_.node_config));
    served_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    inflight_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
  // Every local node's mesh can carry remote-registered hosts over the
  // node wire — the same socket path invokes ride.
  for (auto& node : nodes_) {
    node->mesh().SetRemoteTransport(
        [this](const std::string& peer, const dhttp::SanitizedRequest& request)
            -> dbase::Result<dhttp::MeshCallResult> {
          dnet::NodeClient* client = nullptr;
          {
            std::lock_guard<std::mutex> lock(remotes_mu_);
            client = client_started_ ? client_.get() : nullptr;
          }
          if (client == nullptr) {
            return dbase::FailedPrecondition("cluster has no remote nodes");
          }
          ASSIGN_OR_RETURN(
              dnet::WireMeshReply reply,
              client->MeshCall(peer, request.request.Serialize(), 2 * dbase::kMicrosPerSecond));
          ASSIGN_OR_RETURN(dhttp::HttpResponse response, dhttp::ParseResponse(reply.response));
          dhttp::MeshCallResult result;
          result.response = std::move(response);
          result.latency_us = reply.latency_us;
          return result;
        });
  }
  for (const RemoteNode& remote : config_.remote_nodes) {
    (void)AddRemoteNode(remote.name, remote.port);
  }
}

Cluster::~Cluster() { Shutdown(); }

void Cluster::EnsureClientStarted() {
  // Caller holds remotes_mu_.
  if (client_started_) {
    return;
  }
  dnet::NodeClient::Config client_config;
  client_config.node_name = config_.router_name;
  client_config.limits = config_.limits;
  client_ = std::make_unique<dnet::NodeClient>(client_config);
  client_->Start();
  client_started_ = true;
  if (config_.gossip_interval_us > 0) {
    gossip_thread_ = std::make_unique<dbase::JoiningThread>("cluster-gossip", [this] {
      std::unique_lock<std::mutex> lock(gossip_mu_);
      while (!stopping_) {
        gossip_cv_.wait_for(lock, std::chrono::microseconds(config_.gossip_interval_us));
        if (stopping_) {
          break;
        }
        lock.unlock();
        GossipNow();
        lock.lock();
      }
    });
  }
}

dbase::Status Cluster::AddRemoteNode(const std::string& name, uint16_t port) {
  std::lock_guard<std::mutex> lock(remotes_mu_);
  for (auto& slot : remotes_) {
    if (slot->name != name) {
      continue;
    }
    std::lock_guard<std::mutex> slot_lock(slot->mu);
    if (slot->state != dpolicy::MemberState::kLeft) {
      return dbase::AlreadyExists("remote node already joined: " + name);
    }
    // Administrative rejoin of an evicted/removed node (possibly on a new
    // port after a restart).
    slot->port = port;
    slot->state = dpolicy::MemberState::kActive;
    slot->last_gossip_us = 0;
    EnsureClientStarted();
    client_->RemovePeer(name);
    client_->AddPeer(name, port);
    return dbase::OkStatus();
  }
  EnsureClientStarted();
  client_->AddPeer(name, port);
  auto slot = std::make_unique<RemoteSlot>();
  slot->name = name;
  slot->port = port;
  remotes_.push_back(std::move(slot));
  return dbase::OkStatus();
}

void Cluster::RemoveRemoteNode(const std::string& name) {
  std::lock_guard<std::mutex> lock(remotes_mu_);
  for (auto& slot : remotes_) {
    if (slot->name != name) {
      continue;
    }
    {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      slot->state = dpolicy::MemberState::kLeft;
    }
    // Administrative leave really disconnects (unlike staleness eviction,
    // which keeps probing so the node can rejoin when it recovers).
    if (client_started_) {
      client_->RemovePeer(name);
    }
    return;
  }
}

int Cluster::total_nodes() const {
  std::lock_guard<std::mutex> lock(remotes_mu_);
  return num_nodes() + static_cast<int>(remotes_.size());
}

Cluster::RemoteSlot* Cluster::remote_slot(int index) const {
  std::lock_guard<std::mutex> lock(remotes_mu_);
  const int r = index - num_nodes();
  if (r < 0 || r >= static_cast<int>(remotes_.size())) {
    return nullptr;
  }
  return remotes_[static_cast<size_t>(r)].get();
}

dbase::Status Cluster::RegisterFunction(const dfunc::FunctionSpec& spec) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterFunction(spec));
  }
  return dbase::OkStatus();
}

dbase::Status Cluster::RegisterCompositionDsl(std::string_view dsl_source) {
  for (auto& node : nodes_) {
    RETURN_IF_ERROR(node->RegisterCompositionDsl(dsl_source));
  }
  return dbase::OkStatus();
}

void Cluster::ForEachNode(const std::function<void(Platform&)>& setup) {
  for (auto& node : nodes_) {
    setup(*node);
  }
}

void Cluster::NoteAffinity(const std::string& composition, int index) {
  std::lock_guard<std::mutex> lock(affinity_mu_);
  affinity_[composition] = index;
}

int Cluster::AffinityFor(const std::string& composition) const {
  std::lock_guard<std::mutex> lock(affinity_mu_);
  auto it = affinity_.find(composition);
  return it == affinity_.end() ? -1 : it->second;
}

bool Cluster::Eligible(int index, const std::set<int>& exclude, bool allow_suspect) const {
  if (exclude.count(index) > 0) {
    return false;
  }
  if (index < num_nodes()) {
    return true;
  }
  RemoteSlot* slot = remote_slot(index);
  if (slot == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  switch (slot->state) {
    case dpolicy::MemberState::kActive:
      return true;
    case dpolicy::MemberState::kSuspect:
      return allow_suspect;
    case dpolicy::MemberState::kLeft:
      return false;
  }
  return false;
}

double Cluster::NodeLoad(int index) const {
  if (index < num_nodes()) {
    const auto& node = nodes_[static_cast<size_t>(index)];
    const EngineStats stats = node->engine_stats();
    const double queued =
        static_cast<double>(stats.compute_queue_len + stats.comm_queue_len);
    const double inflight = static_cast<double>(
        inflight_[static_cast<size_t>(index)]->load(std::memory_order_relaxed));
    return queued + inflight;
  }
  RemoteSlot* slot = remote_slot(index);
  if (slot == nullptr) {
    return std::numeric_limits<double>::max();
  }
  const double router_inflight =
      static_cast<double>(slot->inflight.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(slot->mu);
  if (slot->last_gossip_us == 0) {
    // Never heard: a fresh joiner is presumed idle — only what we have in
    // flight toward it counts.
    return router_inflight;
  }
  const dpolicy::ElasticitySignals& s = slot->status.signals;
  double load = router_inflight + static_cast<double>(slot->status.inflight) +
                static_cast<double>(s.compute_backlog + s.comm_backlog);
  const dbase::Micros age =
      dbase::MonotonicClock::Get()->NowMicros() - slot->last_gossip_us;
  if (age > config_.membership.suspect_after_us) {
    // Stale signals: rank below every fresh node without hard-excluding.
    load += 1e6;
  }
  return load;
}

int Cluster::PickNode(const InvocationRequest& request, const std::set<int>& exclude) {
  const int total = total_nodes();
  if (total == 0) {
    return -1;
  }
  // Locality first: the sticky node wins while it is healthy and below its
  // gossiped admission cap; otherwise fall through to the load fallback.
  if (config_.policy == LoadBalancePolicy::kLocality) {
    const int affine = AffinityFor(request.composition);
    if (affine >= 0 && affine < total && Eligible(affine, exclude, false)) {
      bool saturated = false;
      if (affine >= num_nodes()) {
        if (RemoteSlot* slot = remote_slot(affine); slot != nullptr) {
          std::lock_guard<std::mutex> lock(slot->mu);
          saturated = slot->status.admission_cap > 0 &&
                      slot->status.inflight +
                              static_cast<uint64_t>(std::max<int64_t>(
                                  0, slot->inflight.load(std::memory_order_relaxed))) >=
                          slot->status.admission_cap;
        }
      }
      if (!saturated) {
        return affine;
      }
    }
  }
  // Batch work tolerates queueing: under the load-aware policies it still
  // spreads round-robin (backlog smoothing) while interactive requests pay
  // the load scan for the quietest node.
  const bool scan = config_.policy != LoadBalancePolicy::kRoundRobin &&
                    request.priority != PriorityClass::kBatch && total > 1;
  for (const bool allow_suspect : {false, true}) {
    if (!scan) {
      const uint64_t start = round_robin_.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < total; ++i) {
        const int candidate = static_cast<int>((start + static_cast<uint64_t>(i)) %
                                               static_cast<uint64_t>(total));
        if (Eligible(candidate, exclude, allow_suspect)) {
          return candidate;
        }
      }
      continue;
    }
    int best = -1;
    double best_load = std::numeric_limits<double>::max();
    for (int n = 0; n < total; ++n) {
      if (!Eligible(n, exclude, allow_suspect)) {
        continue;
      }
      const double load = NodeLoad(n);
      if (load < best_load) {
        best_load = load;
        best = n;
      }
    }
    if (best >= 0) {
      return best;
    }
  }
  return -1;
}

void Cluster::Dispatch(InvocationRequest request, RoutedCallback callback, int attempts,
                       std::set<int> tried, bool shed_rerouted,
                       InvocationHandle* first_handle) {
  const int index = PickNode(request, tried);
  if (index < 0) {
    no_eligible_node_.fetch_add(1, std::memory_order_relaxed);
    callback(dbase::Unavailable("no eligible cluster node for '" + request.composition + "'"),
             -1, attempts + 1);
    return;
  }
  if (index < num_nodes()) {
    served_[static_cast<size_t>(index)]->fetch_add(1, std::memory_order_relaxed);
    inflight_[static_cast<size_t>(index)]->fetch_add(1, std::memory_order_relaxed);
    NoteAffinity(request.composition, index);
    InvocationHandle handle = nodes_[static_cast<size_t>(index)]->Submit(
        std::move(request),
        [this, index, attempts,
         callback = std::move(callback)](dbase::Result<dfunc::DataSetList> result) {
          inflight_[static_cast<size_t>(index)]->fetch_sub(1, std::memory_order_relaxed);
          callback(std::move(result), index, attempts + 1);
        });
    if (first_handle != nullptr) {
      *first_handle = handle;
    }
    return;
  }
  DispatchRemote(index, std::move(request), std::move(callback), attempts, std::move(tried),
                 shed_rerouted);
}

void Cluster::DispatchRemote(int index, InvocationRequest request, RoutedCallback callback,
                             int attempts, std::set<int> tried, bool shed_rerouted) {
  RemoteSlot* slot = remote_slot(index);
  dnet::NodeClient* client = nullptr;
  {
    std::lock_guard<std::mutex> lock(remotes_mu_);
    client = client_started_ ? client_.get() : nullptr;
  }
  if (slot == nullptr || client == nullptr) {
    callback(dbase::Internal("remote slot vanished"), index, attempts + 1);
    return;
  }

  dnet::WireInvoke wire;
  wire.composition = request.composition;
  // Payloads are refcounted slices (PR 7): this copy shares buffers, and a
  // re-route after a shed or a dead peer re-sends the same bytes without
  // materializing them twice.
  wire.args = request.args;
  wire.priority = static_cast<uint8_t>(request.priority);
  wire.invocation_id = request.id;
  dbase::Micros timeout = config_.remote_invoke_timeout_us;
  if (request.deadline_us > 0) {
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    const dbase::Micros remaining = request.deadline_us > now ? request.deadline_us - now : 1;
    wire.remaining_deadline_us = remaining;
    timeout = std::min(timeout, remaining + kRemoteDeadlineGraceUs);
  }

  slot->inflight.fetch_add(1, std::memory_order_relaxed);
  client->InvokeAsync(
      slot->name, std::move(wire), timeout,
      [this, index, slot, request = std::move(request), callback = std::move(callback), attempts,
       tried = std::move(tried), shed_rerouted](dbase::Result<dnet::WireOutcome> raw) mutable {
        slot->inflight.fetch_sub(1, std::memory_order_relaxed);
        const bool interactive = request.priority != PriorityClass::kBatch;

        if (!raw.ok()) {
          // Transport-level failure. kUnavailable means the peer (or the
          // connection to it) died mid-flight — FailureKind::kPeerLost,
          // retry-safe because functions are pure. Everything else
          // (deadline, shutdown) is the client's own doing and surfaces.
          if (raw.status().code() == dbase::StatusCode::kUnavailable) {
            dpolicy::RetryDecision decision;
            {
              std::lock_guard<std::mutex> lock(policy_mu_);
              decision = remote_retry_.OnFailure(slot->name, dpolicy::FailureKind::kPeerLost,
                                                 interactive, attempts,
                                                 dbase::MonotonicClock::Get()->NowMicros());
            }
            {
              std::lock_guard<std::mutex> slot_lock(slot->mu);
              if (slot->state == dpolicy::MemberState::kActive) {
                slot->state = dpolicy::MemberState::kSuspect;
              }
            }
            if (decision.retry) {
              reroutes_peer_lost_.fetch_add(1, std::memory_order_relaxed);
              tried.insert(index);
              Dispatch(std::move(request), std::move(callback), attempts + 1, std::move(tried),
                       shed_rerouted, nullptr);
              return;
            }
            reroute_denied_.fetch_add(1, std::memory_order_relaxed);
          }
          callback(raw.status(), index, attempts + 1);
          return;
        }

        dnet::WireOutcome outcome = std::move(raw).value();
        if (outcome.shed && !shed_rerouted) {
          // 429-style admission shed: re-route once, then surface.
          reroutes_shed_.fetch_add(1, std::memory_order_relaxed);
          tried.insert(index);
          Dispatch(std::move(request), std::move(callback), attempts + 1, std::move(tried),
                   /*shed_rerouted=*/true, nullptr);
          return;
        }
        if (outcome.code == dbase::StatusCode::kOk) {
          {
            std::lock_guard<std::mutex> lock(policy_mu_);
            remote_retry_.OnSuccess(slot->name);
          }
          slot->served.fetch_add(1, std::memory_order_relaxed);
          NoteAffinity(request.composition, index);
          callback(std::move(outcome.sets), index, attempts + 1);
          return;
        }
        // A failure the node itself reported: deterministic function
        // failures (including jail kills, never retry-safe) and errors its
        // own RetryPolicy already gave up on surface unchanged.
        callback(dbase::Status(outcome.code, std::move(outcome.message)), index, attempts + 1);
      });
}

InvocationHandle Cluster::InvokeRouted(InvocationRequest request, RoutedCallback callback) {
  if (request.id == 0) {
    // One cluster-wide id per invocation: re-routes keep it, so a node
    // serving a re-sent invocation and the cancel path agree on identity.
    request.id = next_invocation_id_.fetch_add(1, std::memory_order_relaxed);
  }
  InvocationHandle handle;
  Dispatch(std::move(request), std::move(callback), /*attempts=*/0, {}, false, &handle);
  return handle;
}

InvocationHandle Cluster::InvokeAsync(
    InvocationRequest request,
    std::function<void(dbase::Result<dfunc::DataSetList>, int)> callback) {
  return InvokeRouted(std::move(request),
                      [callback = std::move(callback)](dbase::Result<dfunc::DataSetList> result,
                                                       int node, int /*attempts*/) {
                        callback(std::move(result), node);
                      });
}

void Cluster::InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                          std::function<void(dbase::Result<dfunc::DataSetList>, int)> callback) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  (void)InvokeAsync(std::move(request), std::move(callback));
}

Cluster::RoutedResult Cluster::Invoke(InvocationRequest request) {
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    RoutedResult routed;
  };
  auto state = std::make_shared<WaitState>();
  // Deadline-aware wait with the same never-hang backstop as
  // Dispatcher::Invoke: a lost callback surfaces as kDeadlineExceeded, it
  // does not block the caller forever.
  constexpr dbase::Micros kBlockingWaitCapUs = 120 * dbase::kMicrosPerSecond;
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  dbase::Micros wait_deadline = now + kBlockingWaitCapUs;
  if (request.deadline_us > 0) {
    wait_deadline = std::min(wait_deadline, request.deadline_us);
  }
  InvocationHandle handle = InvokeRouted(
      std::move(request),
      [this, state](dbase::Result<dfunc::DataSetList> result, int node, int attempts) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->routed.result = std::move(result);
        state->routed.node_index = node;
        state->routed.node_name = NodeName(node);
        state->routed.attempts = attempts;
        state->done = true;
        state->cv.notify_one();
      });
  std::unique_lock<std::mutex> lock(state->mu);
  while (!state->done) {
    const dbase::Micros remaining =
        wait_deadline - dbase::MonotonicClock::Get()->NowMicros();
    if (remaining <= 0) {
      // The serving node's reaper owes us a terminal callback imminently;
      // one bounded grace wait covers scheduling skew before giving up.
      if (!state->cv.wait_for(lock, std::chrono::seconds(5), [&] { return state->done; })) {
        lock.unlock();
        handle.Cancel();
        RoutedResult routed;
        routed.result = dbase::DeadlineExceeded("routed invoke timed out");
        return routed;
      }
      break;
    }
    state->cv.wait_for(lock, std::chrono::microseconds(remaining));
  }
  return std::move(state->routed);
}

Cluster::RoutedResult Cluster::Invoke(const std::string& composition,
                                      dfunc::DataSetList args) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  return Invoke(std::move(request));
}

std::string Cluster::NodeName(int index) const {
  if (index < 0) {
    return "";
  }
  if (index < num_nodes()) {
    return "local-" + std::to_string(index);
  }
  RemoteSlot* slot = remote_slot(index);
  return slot != nullptr ? slot->name : "";
}

std::vector<uint64_t> Cluster::InvocationsPerNode() const {
  std::vector<uint64_t> counts;
  counts.reserve(served_.size());
  for (const auto& counter : served_) {
    counts.push_back(counter->load(std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> lock(remotes_mu_);
  for (const auto& slot : remotes_) {
    counts.push_back(slot->served.load(std::memory_order_relaxed));
  }
  return counts;
}

std::vector<Cluster::CoreSplit> Cluster::CoreSplits() const {
  std::vector<CoreSplit> splits;
  splits.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    // One role scan per node (full EngineStats would lock every queue shard
    // just to read two ints); comm derived so the split sums to the pool.
    const WorkerSet& workers = node->workers();
    const int compute = workers.compute_workers();
    splits.push_back({compute, workers.total_workers() - compute});
  }
  return splits;
}

void Cluster::GossipNow() {
  std::vector<RemoteSlot*> slots;
  dnet::NodeClient* client = nullptr;
  {
    std::lock_guard<std::mutex> lock(remotes_mu_);
    client = client_started_ ? client_.get() : nullptr;
    slots.reserve(remotes_.size());
    for (const auto& slot : remotes_) {
      slots.push_back(slot.get());
    }
  }
  if (client == nullptr || slots.empty()) {
    return;
  }
  const dbase::Micros timeout =
      config_.gossip_interval_us > 0
          ? std::min(config_.gossip_interval_us, kGossipTimeoutCapUs)
          : kGossipTimeoutCapUs;

  std::vector<dpolicy::MemberSignals> signals;
  signals.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    RemoteSlot* slot = slots[i];
    bool probe = true;
    {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      // Administratively removed nodes (disconnected peer) are skipped
      // entirely; staleness-evicted ones keep getting probed so they can
      // rejoin when they come back.
      probe = !(slot->state == dpolicy::MemberState::kLeft && slot->last_gossip_us == 0);
    }
    dbase::Result<dnet::WireNodeStatus> status =
        probe ? client->Gossip(slot->name, timeout)
              : dbase::Result<dnet::WireNodeStatus>(dbase::Unavailable("removed"));
    dpolicy::MemberSignals member;
    member.name = slot->name;
    if (status.ok()) {
      const dbase::Micros heard = dbase::MonotonicClock::Get()->NowMicros();
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      slot->status = std::move(status).value();
      slot->last_gossip_us = heard;
      // Gossiped residency feeds locality routing: route a composition to
      // the node that already holds its context/data.
      const int global_index = num_nodes() + static_cast<int>(i);
      for (const std::string& composition : slot->status.resident_compositions) {
        NoteAffinityFromGossip(composition, global_index);
      }
    }
    {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      member.last_heard_us = slot->last_gossip_us;
      if (slot->status.admission_cap > 0) {
        member.utilization = static_cast<double>(slot->status.inflight) /
                             static_cast<double>(slot->status.admission_cap);
      }
    }
    signals.push_back(std::move(member));
  }

  dpolicy::MembershipDecision decision;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    decision = membership_.Tick(dbase::MonotonicClock::Get()->NowMicros(), signals);
  }
  ApplyMembership(decision);
  gossip_rounds_.fetch_add(1, std::memory_order_relaxed);
}

void Cluster::NoteAffinityFromGossip(const std::string& composition, int index) {
  // Slot mutex is held by the caller; only affinity_mu_ is taken here.
  std::lock_guard<std::mutex> lock(affinity_mu_);
  affinity_[composition] = index;
}

void Cluster::ApplyMembership(const dpolicy::MembershipDecision& decision) {
  for (const dpolicy::MemberTransition& transition : decision.transitions) {
    RemoteSlot* found = nullptr;
    {
      std::lock_guard<std::mutex> lock(remotes_mu_);
      for (const auto& slot : remotes_) {
        if (slot->name == transition.name) {
          found = slot.get();
          break;
        }
      }
    }
    if (found == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> slot_lock(found->mu);
    found->state = transition.to;
  }
  if (config_.apply_scale_in && decision.desired_nodes_delta < 0 &&
      !decision.drain_candidate.empty()) {
    RemoveRemoteNode(decision.drain_candidate);
  }
}

Cluster::ClusterStats Cluster::Stats() const {
  ClusterStats stats;
  stats.reroutes_shed = reroutes_shed_.load(std::memory_order_relaxed);
  stats.reroutes_peer_lost = reroutes_peer_lost_.load(std::memory_order_relaxed);
  stats.reroute_denied = reroute_denied_.load(std::memory_order_relaxed);
  stats.no_eligible_node = no_eligible_node_.load(std::memory_order_relaxed);
  stats.gossip_rounds = gossip_rounds_.load(std::memory_order_relaxed);

  for (int n = 0; n < num_nodes(); ++n) {
    PeerStats peer;
    peer.name = "local-" + std::to_string(n);
    peer.remote = false;
    peer.state = "active";
    peer.served = served_[static_cast<size_t>(n)]->load(std::memory_order_relaxed);
    peer.inflight = inflight_[static_cast<size_t>(n)]->load(std::memory_order_relaxed);
    stats.peers.push_back(std::move(peer));
  }

  std::vector<dnet::NodeClient::PeerSnapshot> wire;
  {
    std::lock_guard<std::mutex> lock(remotes_mu_);
    if (client_started_) {
      wire = client_->SnapshotPeers();
    }
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    for (const auto& slot : remotes_) {
      PeerStats peer;
      peer.name = slot->name;
      peer.remote = true;
      peer.served = slot->served.load(std::memory_order_relaxed);
      peer.inflight = slot->inflight.load(std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> slot_lock(slot->mu);
        peer.state = dpolicy::MemberStateName(slot->state);
        peer.gossip_age_us =
            slot->last_gossip_us > 0 ? static_cast<int64_t>(now - slot->last_gossip_us) : -1;
        peer.remote_inflight = slot->status.inflight;
        peer.remote_admission_cap = slot->status.admission_cap;
        if (slot->status.admission_cap > 0) {
          peer.utilization = static_cast<double>(slot->status.inflight) /
                             static_cast<double>(slot->status.admission_cap);
        }
      }
      for (const auto& snapshot : wire) {
        if (snapshot.name != slot->name) {
          continue;
        }
        peer.invokes_sent = snapshot.invokes_sent;
        peer.sheds_received = snapshot.sheds_received;
        peer.peer_lost_failures = snapshot.peer_lost_failures;
        peer.bytes_sent = snapshot.bytes_sent;
        peer.bytes_received = snapshot.bytes_received;
        break;
      }
      stats.peers.push_back(std::move(peer));
    }
  }
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    stats.membership = membership_.stats();
    stats.remote_retry = remote_retry_.Stats();
  }
  return stats;
}

void Cluster::Shutdown() {
  if (shut_down_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(gossip_mu_);
    stopping_ = true;
  }
  gossip_cv_.notify_all();
  gossip_thread_.reset();
  {
    std::lock_guard<std::mutex> lock(remotes_mu_);
    if (client_started_) {
      client_->Stop();
    }
  }
  for (auto& node : nodes_) {
    node->Shutdown();
  }
}

}  // namespace dandelion
