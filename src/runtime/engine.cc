#include "src/runtime/engine.h"

#include <algorithm>
#include <iterator>
#include <thread>

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/runtime/comm_function.h"
#include "src/runtime/fault.h"

namespace dandelion {
namespace {

// Untracked tasks (no control block) ride the urgent lane with interactive
// work: the legacy path must not be starvable by batch backlog.
bool TaskIsUrgent(const std::shared_ptr<InvocationControl>& control) {
  return control == nullptr || control->priority() == PriorityClass::kInteractive;
}

}  // namespace

WorkerSet::WorkerSet(Config config, dhttp::ServiceMesh* mesh)
    : config_(config),
      mesh_(mesh),
      sandbox_(CreateSandboxExecutor(config.backend)),
      compute_queue_(static_cast<size_t>(std::max(1, config.num_workers))),
      comm_queue_(static_cast<size_t>(std::max(1, config.num_workers))) {
  const int workers = std::max(1, config_.num_workers);
  const int comm = std::clamp(config_.initial_comm_workers, workers > 1 ? 1 : 0, workers - 1);
  roles_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    const EngineType role = i < comm ? EngineType::kCommunication : EngineType::kCompute;
    roles_.push_back(std::make_unique<std::atomic<EngineType>>(role));
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back("engine-" + std::to_string(i), [this, i] { WorkerLoop(i); });
  }
}

WorkerSet::~WorkerSet() { Shutdown(); }

std::vector<size_t> WorkerSet::ShardsWithRole(EngineType role, size_t excluding) const {
  std::vector<size_t> shards;
  for (size_t i = 0; i < roles_.size(); ++i) {
    if (i != excluding && roles_[i]->load(std::memory_order_relaxed) == role) {
      shards.push_back(i);
    }
  }
  return shards;
}

bool WorkerSet::SubmitCompute(ComputeTask task) {
  task.enqueue_time_us = dbase::MonotonicClock::Get()->NowMicros();
  const bool urgent = TaskIsUrgent(task.control);
  const size_t shard = PickShard(EngineType::kCompute, compute_queue_);
  return compute_queue_.PushToShard(shard, std::move(task), urgent);
}

bool WorkerSet::SubmitComputeBatch(std::vector<ComputeTask> tasks) {
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  for (auto& task : tasks) {
    task.enqueue_time_us = now;
  }
  // One fan-out belongs to one invocation, so the whole batch shares a lane.
  const bool urgent = tasks.empty() || TaskIsUrgent(tasks.front().control);
  // A fan-out bigger than one worker's bite is split into per-shard chunks:
  // still one queue crossing per chunk, but the siblings consume their own
  // chunks in parallel instead of serializing steals against one victim
  // shard. Small fan-outs stay a single crossing on the least-loaded shard.
  constexpr size_t kMinChunk = 16;
  const std::vector<size_t> targets =
      ShardsWithRole(EngineType::kCompute, roles_.size());  // Exclude none.
  const size_t chunks =
      targets.size() <= 1
          ? 1
          : std::min(targets.size(), std::max<size_t>(1, tasks.size() / kMinChunk));
  if (chunks <= 1) {
    const size_t shard = PickShard(EngineType::kCompute, compute_queue_);
    return compute_queue_.PushBatch(std::move(tasks), shard, urgent);
  }
  const size_t per_chunk = (tasks.size() + chunks - 1) / chunks;
  bool ok = true;
  size_t target = 0;
  for (size_t begin = 0; begin < tasks.size(); begin += per_chunk) {
    const size_t end = std::min(begin + per_chunk, tasks.size());
    std::vector<ComputeTask> chunk(std::make_move_iterator(tasks.begin() + begin),
                                   std::make_move_iterator(tasks.begin() + end));
    ok = compute_queue_.PushBatch(std::move(chunk), targets[target++ % targets.size()], urgent) &&
         ok;
  }
  return ok;
}

bool WorkerSet::SubmitComm(CommTask task) {
  task.enqueue_time_us = dbase::MonotonicClock::Get()->NowMicros();
  const bool urgent = TaskIsUrgent(task.control);
  const size_t shard = PickShard(EngineType::kCommunication, comm_queue_);
  return comm_queue_.PushToShard(shard, std::move(task), urgent);
}

bool WorkerSet::ShiftWorkerToCompute() {
  // Find a communication worker to relabel, keeping at least one.
  if (comm_workers() <= 1) {
    return false;
  }
  for (size_t i = 0; i < roles_.size(); ++i) {
    EngineType expected = EngineType::kCommunication;
    if (roles_[i]->compare_exchange_strong(expected, EngineType::kCompute)) {
      // Comm tasks queued on the departed shard would otherwise wait for a
      // sibling's idle steal; hand them to workers still doing comm.
      comm_queue_.RehomeShard(i, ShardsWithRole(EngineType::kCommunication, i));
      return true;
    }
  }
  return false;
}

bool WorkerSet::ShiftWorkerToComm() {
  if (compute_workers() <= 1) {
    return false;
  }
  for (size_t i = 0; i < roles_.size(); ++i) {
    EngineType expected = EngineType::kCompute;
    if (roles_[i]->compare_exchange_strong(expected, EngineType::kCommunication)) {
      compute_queue_.RehomeShard(i, ShardsWithRole(EngineType::kCompute, i));
      return true;
    }
  }
  return false;
}

int WorkerSet::ShiftWorkers(int n) {
  int moved = 0;
  while (n > 0 && ShiftWorkerToCompute()) {
    ++moved;
    --n;
  }
  while (n < 0 && ShiftWorkerToComm()) {
    --moved;
    ++n;
  }
  return moved;
}

int WorkerSet::compute_workers() const {
  int count = 0;
  for (const auto& role : roles_) {
    if (role->load(std::memory_order_relaxed) == EngineType::kCompute) {
      ++count;
    }
  }
  return count;
}

int WorkerSet::comm_workers() const { return static_cast<int>(roles_.size()) - compute_workers(); }

WorkerSet::SignalsSnapshot WorkerSet::Signals() const {
  SignalsSnapshot snapshot;
  snapshot.compute_pushed = compute_queue_.total_pushed();
  snapshot.compute_popped = compute_queue_.total_popped();
  snapshot.comm_pushed = comm_queue_.total_pushed();
  snapshot.comm_popped = comm_queue_.total_popped();
  snapshot.compute_backlog = compute_queue_.Size();
  snapshot.comm_backlog = comm_queue_.Size();
  snapshot.compute_urgent_backlog = compute_queue_.UrgentSize();
  snapshot.comm_urgent_backlog = comm_queue_.UrgentSize();
  snapshot.comm_inflight = static_cast<uint64_t>(
      std::max<int64_t>(0, comm_inflight_.load(std::memory_order_relaxed)));
  // One pass over the roles; comm is derived so the split always sums to
  // the pool size even when a shift lands mid-scan.
  snapshot.compute_workers = compute_workers();
  snapshot.comm_workers = static_cast<int>(roles_.size()) - snapshot.compute_workers;
  snapshot.comm_parallelism = config_.comm_parallelism;
  return snapshot;
}

EngineStats WorkerSet::Stats() const {
  EngineStats stats;
  stats.compute_tasks = compute_done_.load(std::memory_order_relaxed);
  stats.comm_tasks = comm_done_.load(std::memory_order_relaxed);
  stats.compute_aborted = compute_aborted_.load(std::memory_order_relaxed);
  stats.comm_aborted = comm_aborted_.load(std::memory_order_relaxed);
  stats.compute_queue_len = compute_queue_.Size();
  stats.comm_queue_len = comm_queue_.Size();
  stats.compute_urgent_queue_len = compute_queue_.UrgentSize();
  stats.comm_urgent_queue_len = comm_queue_.UrgentSize();
  stats.comm_inflight = static_cast<uint64_t>(
      std::max<int64_t>(0, comm_inflight_.load(std::memory_order_relaxed)));
  stats.compute_workers = compute_workers();
  stats.comm_workers = comm_workers();
  stats.compute_shard_depths.reserve(compute_queue_.shard_count());
  stats.comm_shard_depths.reserve(comm_queue_.shard_count());
  for (size_t i = 0; i < compute_queue_.shard_count(); ++i) {
    stats.compute_shard_depths.push_back(compute_queue_.ShardSize(i));
  }
  for (size_t i = 0; i < comm_queue_.shard_count(); ++i) {
    stats.comm_shard_depths.push_back(comm_queue_.ShardSize(i));
  }
  stats.compute_steals = compute_queue_.total_stolen();
  stats.comm_steals = comm_queue_.total_stolen();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stats.compute_wait_p50_us = compute_wait_us_.ApproxPercentile(50);
    stats.compute_wait_p99_us = compute_wait_us_.ApproxPercentile(99);
    stats.comm_wait_p50_us = comm_wait_us_.ApproxPercentile(50);
    stats.comm_wait_p99_us = comm_wait_us_.ApproxPercentile(99);
  }
  return stats;
}

void WorkerSet::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  compute_queue_.Close();
  comm_queue_.Close();
  for (auto& worker : workers_) {
    worker.Join();
  }
}

void WorkerSet::RunComputeTask(ComputeTask task) {
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  {
    const dbase::Micros wait = now - task.enqueue_time_us;
    std::lock_guard<std::mutex> lock(wait_mu_);
    compute_wait_us_.Add(static_cast<uint64_t>(std::max<dbase::Micros>(0, wait)));
  }
  SandboxOptions options = task.options;
  if (task.control != nullptr) {
    // Dead invocation: drop the task at the dequeue seam — no sandbox, no
    // binary load. This is what makes Cancel() stop a fan-out mid-flight.
    const dbase::Status dead = task.control->RetireStatus(now);
    if (!dead.ok()) {
      task.control->CountAborted();
      compute_aborted_.fetch_add(1, std::memory_order_relaxed);
      if (task.warm != nullptr) {
        // The warm sandbox never ran — hand it straight back so the pool
        // can scrub the marshalled inputs and re-shelf it.
        if (sandbox_pool_ != nullptr) {
          sandbox_pool_->Release(std::move(task.warm));
        }
        task.warm.reset();
      }
      if (task.done) {
        ExecOutcome outcome;
        outcome.status = dead;
        task.done(std::move(outcome));
      }
      return;
    }
    task.control->MarkFirstRun(now);
    task.control->CountLaunched();
    options.cancel_flag = task.control->stop_flag();
    if (task.control->deadline_us() > 0) {
      // The invocation deadline clamps the per-function timeout so the
      // DeadlineWatchdog preempts at whichever comes first.
      const dbase::Micros remaining = task.control->deadline_us() - now;
      const dbase::Micros spec_timeout =
          options.timeout_us > 0 ? options.timeout_us : task.spec.timeout_us;
      options.timeout_us =
          spec_timeout > 0 ? std::min(spec_timeout, remaining) : remaining;
    }
  }
  if (config_.binary_cold_fraction > 0.0) {
    // Deterministic cache-miss pattern: every k-th task loads from disk.
    const auto k = static_cast<uint64_t>(
        std::max(1.0, 1.0 / config_.binary_cold_fraction));
    if (cold_counter_.fetch_add(1, std::memory_order_relaxed) % k == 0) {
      options.binary_cached = false;
    }
  }
  if (FaultInjector::Get().ShouldFire(FaultPoint::kTransientResourceExhausted)) {
    // Injected transient: the sandbox never runs; the dispatcher's retry
    // path is expected to absorb it. The warm lease goes straight back.
    if (task.warm != nullptr && sandbox_pool_ != nullptr) {
      sandbox_pool_->Release(std::move(task.warm));
    }
    task.warm.reset();
    compute_done_.fetch_add(1, std::memory_order_relaxed);
    if (task.done) {
      ExecOutcome outcome;
      outcome.failure = dpolicy::FailureKind::kResourceExhausted;
      outcome.status = dbase::ResourceExhausted(dbase::StrFormat(
          "injected transient fault launching '%s'", task.spec.name.c_str()));
      task.done(std::move(outcome));
    }
    return;
  }
  ExecOutcome outcome;
  if (task.warm != nullptr) {
    // Pool hit: execute on the pre-warmed sandbox (inputs are already in
    // its context) and return it for scrub + re-shelf.
    if (task.control != nullptr) {
      task.control->CountPoolHit();
    }
    outcome = task.warm->Execute(options);
    if (outcome.failure == dpolicy::FailureKind::kPoolChildLost) {
      // The shelf lied: the template child died between fill and dispatch.
      // The inputs are still marshalled in the warm context, so recover
      // with a cold fork over that same context before the pool scrubs it
      // on Release. prewarmed stays set — the binary was loaded at fill.
      SandboxOptions cold = options;
      cold.prewarmed = true;
      outcome = sandbox_->Execute(task.spec, *task.warm->context(), cold);
      outcome.timings.pool_hit = false;
      if (sandbox_pool_ != nullptr) {
        sandbox_pool_->CountChildLost();
      }
    }
    if (sandbox_pool_ != nullptr) {
      sandbox_pool_->Release(std::move(task.warm));
    }
    task.warm.reset();
  } else {
    // Cold path: the context is this task's own — pin it so the read-back
    // can alias its region instead of copying outputs out.
    options.context_keepalive = task.context;
    outcome = sandbox_->Execute(task.spec, *task.context, options);
  }
  compute_done_.fetch_add(1, std::memory_order_relaxed);
  if (task.done) {
    task.done(std::move(outcome));
  }
}

void WorkerSet::StartCommTask(CommTask task, std::vector<InFlight>* inflight) {
  {
    const dbase::Micros wait =
        dbase::MonotonicClock::Get()->NowMicros() - task.enqueue_time_us;
    std::lock_guard<std::mutex> lock(wait_mu_);
    comm_wait_us_.Add(static_cast<uint64_t>(std::max<dbase::Micros>(0, wait)));
  }
  if (task.control != nullptr &&
      !task.control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros()).ok()) {
    // Dead invocation: skip the mesh call and its modelled latency. The
    // response content never reaches a client — the dispatcher drops late
    // completions of a finished invocation.
    comm_aborted_.fetch_add(1, std::memory_order_relaxed);
    if (task.done) {
      task.done(dhttp::HttpResponse::Make(499, "Client Closed Request", ""), 0);
    }
    return;
  }
  CommCallResult call = task.handler ? task.handler(*mesh_, task.raw_request)
                                     : ExecuteHttpFunction(*mesh_, task.raw_request);
  InFlight pending;
  pending.response = std::move(call.response);
  pending.latency_us = call.latency_us;
  pending.done = std::move(task.done);
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  pending.ready_at_us = sleep_latency_.load(std::memory_order_relaxed)
                            ? now + call.latency_us
                            : now;
  inflight->push_back(std::move(pending));
  comm_inflight_.fetch_add(1, std::memory_order_relaxed);
}

void WorkerSet::CompleteDue(std::vector<InFlight>* inflight, dbase::Micros now) {
  for (size_t i = 0; i < inflight->size();) {
    if ((*inflight)[i].ready_at_us <= now) {
      InFlight item = std::move((*inflight)[i]);
      (*inflight)[i] = std::move(inflight->back());
      inflight->pop_back();
      comm_inflight_.fetch_sub(1, std::memory_order_relaxed);
      if (item.done) {
        item.done(std::move(item.response), item.latency_us);
      }
    } else {
      ++i;
    }
  }
}

void WorkerSet::WorkerLoop(int index) {
  if (config_.pin_threads) {
    dbase::PinCurrentThreadToCpu(index);
  }
  // This worker's home shard in both queues. Pops hit the shard first and
  // steal from siblings only when it is empty.
  const size_t shard = static_cast<size_t>(index);
  // Pending comm completions owned by this worker — the cooperative
  // runtime's outstanding network operations.
  std::vector<InFlight> inflight;

  while (true) {
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    CompleteDue(&inflight, now);

    const bool draining = shutdown_.load(std::memory_order_relaxed);
    const EngineType role = roles_[static_cast<size_t>(index)]->load(std::memory_order_relaxed);

    if (role == EngineType::kCommunication || draining) {
      // Accept new requests up to the green-thread budget.
      bool accepted = false;
      while (static_cast<int>(inflight.size()) < config_.comm_parallelism) {
        auto task = comm_queue_.TryPop(shard);
        if (!task.has_value()) {
          break;
        }
        StartCommTask(std::move(*task), &inflight);
        comm_done_.fetch_add(1, std::memory_order_relaxed);
        accepted = true;
      }
      if (role == EngineType::kCommunication && !draining) {
        if (inflight.empty() && !accepted) {
          // Idle: block briefly on the home shard so we wake on arrivals.
          auto task = comm_queue_.PopWithTimeout(shard, 500);
          if (task.has_value()) {
            StartCommTask(std::move(*task), &inflight);
            comm_done_.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!inflight.empty()) {
          // Sleep to the nearest completion (bounded so role flips and new
          // arrivals are noticed promptly).
          dbase::Micros nearest = INT64_MAX;
          for (const auto& item : inflight) {
            nearest = std::min(nearest, item.ready_at_us);
          }
          const dbase::Micros wait =
              std::clamp<dbase::Micros>(nearest - now, 0, 200);
          if (wait > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(wait));
          }
        }
        continue;
      }
    }

    if (role == EngineType::kCompute && !draining) {
      auto task = compute_queue_.PopWithTimeout(shard, inflight.empty() ? 1000 : 100);
      if (task.has_value()) {
        RunComputeTask(std::move(*task));
      }
      continue;
    }

    if (draining) {
      // Finish everything still queued, then exit once idle.
      bool did_work = false;
      if (auto task = compute_queue_.TryPop(shard)) {
        RunComputeTask(std::move(*task));
        did_work = true;
      }
      if (!inflight.empty()) {
        CompleteDue(&inflight, INT64_MAX);  // Flush without sleeping.
        did_work = true;
      }
      if (!did_work && comm_queue_.Size() == 0 && compute_queue_.Size() == 0) {
        return;
      }
    }
  }
}

}  // namespace dandelion
