#include "src/runtime/sandbox_pool.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include <algorithm>
#include <mutex>
#include <thread>

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/runtime/fault.h"
#include "src/runtime/jail.h"

namespace dandelion {

namespace {

// The go-pipe write in Execute() is the liveness probe for the template
// child: if the child died, every read end is closed (the parent dropped
// its own at Arm) and the write must come back EPIPE — not raise SIGPIPE
// and kill the whole runtime. Ignored process-wide, once, when the first
// process-backend pool is built; nothing else in the runtime relies on
// SIGPIPE's default action.
void IgnoreSigpipeOnce() {
  static std::once_flag once;
  std::call_once(once, [] { signal(SIGPIPE, SIG_IGN); });
}

// Serialized size of ContextHeader ([u32][i32][u64]); the parent widens
// the scrub extent past its own touched() mark to cover the child's
// outcome writes starting at offset 0.
constexpr uint64_t kContextHeaderBytes = 16;

// How long Arm() waits for a fresh template child's liveness ack. Arming
// runs off the critical path (Tick's fill half), so a generous bound costs
// nothing; a child that misses it is killed and the fill falls back cold.
constexpr int kArmAckTimeoutMs = 200;

// ---------------------------------------------------------------------------
// Thread-flavoured warm sandbox: the binary load and setup cost models were
// paid at fill time; execution delegates to the shared executor with
// prewarmed set, which skips both and reports pool_hit.
// ---------------------------------------------------------------------------
class ThreadWarmSandbox : public WarmSandbox {
 public:
  ThreadWarmSandbox(dfunc::FunctionSpec spec, std::shared_ptr<MemoryContext> context,
                    SandboxExecutor* executor)
      : WarmSandbox(std::move(spec), std::move(context)), executor_(executor) {}

  ExecOutcome Execute(const SandboxOptions& options) override {
    SandboxOptions prewarmed = options;
    prewarmed.prewarmed = true;
    return executor_->Execute(spec_, *context_, prewarmed);
  }

  bool Recycle() override {
    // Thread backends run the body in-process, so every write went through
    // the context object and touched() is the exact dirty extent.
    context_->ScrubForReuse(context_->touched());
    return true;
  }

 private:
  SandboxExecutor* executor_;
};

// ---------------------------------------------------------------------------
// Process warm sandbox: fork-from-template. A child is forked at arm time
// over the MAP_SHARED context and parks on a pipe; memory stays COW-shared
// with the parent image until dispatch. Execute() writes one go byte and
// waits like the cold process backend (cancel → SIGKILL, deadline →
// SIGKILL). The child is single-use; Recycle() re-forks.
//
// Fork-safety caveat (see DESIGN.md; pooling makes fork-then-park the
// steady state, so it bites harder here than on the cold backend): the
// template is forked from a multithreaded runtime — control-plane ticks,
// engine workers running Recycle — and later executes the full function
// body, which allocates. If another thread held an allocator lock at fork
// time, the child's first malloc deadlocks. Arm() therefore makes the
// fresh child touch the heap immediately and write an ack byte; a child
// that misses the ack deadline is killed and the fill falls back to the
// cold path, instead of a wedged template eating a request's whole
// deadline at dispatch before the SIGKILL.
// ---------------------------------------------------------------------------
class ProcessWarmSandbox : public WarmSandbox {
 public:
  ProcessWarmSandbox(dfunc::FunctionSpec spec, std::shared_ptr<MemoryContext> context)
      : WarmSandbox(std::move(spec), std::move(context)) {}

  ~ProcessWarmSandbox() override { DisarmKill(); }

  bool Arm() {
    if (pid_ > 0) {
      return true;  // Template child already parked.
    }
    int fds[2];
    if (pipe(fds) != 0) {
      return false;
    }
    int ack[2];
    if (pipe(ack) != 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    // Jail and fault decisions happen pre-fork (the child must not touch
    // lazily-initialised parent state). Fault points for a pooled child are
    // sampled at arm time: the child is the unit of injection.
    const bool install_jail =
        SyscallJailEnabled() && SandboxCapabilities::Get().seccomp_filter;
    FaultInjector& faults = FaultInjector::Get();
    const bool fault_crash_before =
        faults.ShouldFire(FaultPoint::kChildCrashBeforeOutcome);
    const bool fault_crash_partial =
        faults.ShouldFire(FaultPoint::kChildCrashAfterPartialWrite);
    const bool fault_forbidden = faults.ShouldFire(FaultPoint::kChildForbiddenSyscall);
    const pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      close(ack[0]);
      close(ack[1]);
      return false;
    }
    if (pid == 0) {
      close(fds[1]);
      close(ack[0]);
      // Liveness probe (fork-safety caveat above): exercise the allocator
      // the function body will need, then ack. A child that inherited a
      // held malloc lock wedges right here — before the ack — so the
      // parent retires it instead of shelving a time bomb.
      void* probe = malloc(64);
      static volatile void* sink;  // Escape: keeps the pair from being elided.
      sink = probe;
      free(probe);
      char ok = 'a';
      ssize_t w;
      do {
        w = write(ack[1], &ok, 1);
      } while (w < 0 && errno == EINTR);
      close(ack[1]);
      // Confinement starts *after* the ack (the probe needs the allocator's
      // full freedom) and *before* the park, so the whole shelved lifetime
      // is jailed. The filter's only read permission is this go-pipe fd.
      if (install_jail) {
        JailOptions jail_options;
        jail_options.allow_read_fd = fds[0];
        if (InstallSyscallJail(jail_options) != 0) {
          _exit(125);  // Fail closed: never park an unjailed template.
        }
      }
      // Template child: park until dispatch. EOF (parent retired us) or a
      // short read exits without running the body.
      char go = 0;
      ssize_t n;
      do {
        n = read(fds[0], &go, 1);
      } while (n < 0 && errno == EINTR);
      if (n == 1) {
        if (fault_crash_before) __builtin_trap();
        if (fault_forbidden) {
          (void)syscall(SYS_openat, AT_FDCWD, "/dev/null", O_RDONLY);
        }
        (void)RunFunctionBodyAgainstContext(spec_, *context_, nullptr, nullptr);
        if (fault_crash_partial) {
          ContextHeader torn;
          torn.state = 0;
          torn.payload_len = context_->capacity();
          context_->WriteHeader(torn);
          __builtin_trap();
        }
      }
      _exit(0);
    }
    close(fds[0]);
    close(ack[1]);
    struct pollfd pfd;
    pfd.fd = ack[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready;
    do {
      ready = poll(&pfd, 1, kArmAckTimeoutMs);
    } while (ready < 0 && errno == EINTR);
    bool alive = ready > 0;
    if (alive) {
      char got = 0;
      ssize_t r;
      do {
        r = read(ack[0], &got, 1);
      } while (r < 0 && errno == EINTR);
      alive = r == 1;
    }
    close(ack[0]);
    if (!alive) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      close(fds[1]);
      return false;
    }
    pid_ = pid;
    go_fd_ = fds[1];
    clean_exit_ = false;
    reaped_ = false;
    return true;
  }

  ExecOutcome Execute(const SandboxOptions& options) override {
    ExecOutcome outcome;
    outcome.timings.pool_hit = true;
    if (pid_ <= 0) {
      outcome.status = dbase::Internal("warm sandbox has no template child");
      return outcome;
    }
    dbase::Stopwatch watch;
    // "Setup" on a pool hit is one pipe write — the fork already happened
    // at fill time. This is the ~0 that distinguishes pool-hit rows from a
    // cold fork in fig02/tab01 breakdowns.
    ssize_t n;
    do {
      n = write(go_fd_, "g", 1);
    } while (n < 0 && errno == EINTR);
    outcome.timings.setup_us = watch.ElapsedMicros();
    if (n != 1) {
      // EPIPE/short write: the template child died between fill and
      // dispatch (OOM kill, operator signal, injected fault). The inputs
      // are already marshalled in our MAP_SHARED context, so the engine can
      // recover with a transparent cold fork over the same context —
      // kPoolChildLost tells it to.
      ReapChild();
      outcome.failure = dpolicy::FailureKind::kPoolChildLost;
      outcome.status = dbase::Unavailable(dbase::StrFormat(
          "warm sandbox template child for '%s' died before dispatch", spec_.name.c_str()));
      return outcome;
    }

    watch.Restart();
    const dbase::Micros timeout =
        options.timeout_us > 0 ? options.timeout_us : spec_.timeout_us;
    const dbase::Micros deadline = dbase::MonotonicClock::Get()->NowMicros() + timeout;
    int wait_status = 0;
    bool timed_out = false;
    bool cancelled = false;
    while (true) {
      const pid_t done = waitpid(pid_, &wait_status, WNOHANG);
      if (done == pid_) {
        break;
      }
      if (done < 0) {
        pid_ = -1;
        CloseGoFd();
        outcome.status = dbase::Internal("waitpid failed");
        return outcome;
      }
      if (options.cancel_flag != nullptr &&
          options.cancel_flag->load(std::memory_order_relaxed)) {
        kill(pid_, SIGKILL);
        waitpid(pid_, &wait_status, 0);
        cancelled = true;
        break;
      }
      if (dbase::MonotonicClock::Get()->NowMicros() > deadline) {
        kill(pid_, SIGKILL);
        waitpid(pid_, &wait_status, 0);
        timed_out = true;
        break;
      }
      std::this_thread::yield();
    }
    pid_ = -1;
    CloseGoFd();
    outcome.timings.execute_us = watch.ElapsedMicros();

    watch.Restart();
    const WaitDecode decode = DecodeWaitStatus(wait_status, spec_.name);
    if (cancelled) {
      outcome.failure = dpolicy::FailureKind::kCancelKill;
      outcome.status = dbase::Cancelled(
          dbase::StrFormat("function '%s' killed on cancellation", spec_.name.c_str()));
    } else if (timed_out) {
      outcome.failure = dpolicy::FailureKind::kDeadlineKill;
      outcome.status = dbase::DeadlineExceeded(
          dbase::StrFormat("function '%s' killed after %lld us timeout", spec_.name.c_str(),
                           static_cast<long long>(timeout)));
    } else if (decode.kind != dpolicy::FailureKind::kNone) {
      outcome.failure = decode.kind;
      outcome.status = decode.status;
    } else {
      clean_exit_ = true;
      auto outputs = context_->LoadOutputSets();
      if (outputs.ok()) {
        outcome.outputs = std::move(outputs).value();
        outcome.status = dbase::OkStatus();
      } else {
        outcome.status = outputs.status();
      }
    }
    outcome.timings.output_us = watch.ElapsedMicros();
    return outcome;
  }

  bool Recycle() override {
    if (pid_ > 0) {
      // Never dispatched (e.g. the invocation died in the queue): only the
      // parent's input marshalling dirtied the context; the parked child
      // stays armed over the re-zeroed region.
      context_->ScrubForReuse(context_->touched());
      return true;
    }
    uint64_t extent = context_->capacity();
    if (clean_exit_) {
      // The child wrote [0, header + payload); trust its header only after
      // a clean exit — a SIGKILLed child may have left a torn header, and
      // then only a full-extent scrub guarantees no state survives.
      const ContextHeader header = context_->ReadHeader();
      const uint64_t child_extent =
          kContextHeaderBytes +
          std::min<uint64_t>(header.payload_len, context_->capacity());
      extent = std::max(context_->touched(), child_extent);
    }
    context_->ScrubForReuse(extent);
    return Arm();
  }

  void SimulateTemplateDeath() override {
    // Kill and reap the parked child but leave the bookkeeping (pid_,
    // go_fd_) believing it is alive, so the next Execute() discovers the
    // death the way production would: the go-pipe write fails. reaped_
    // keeps the later cleanup from kill()ing a recycled pid.
    if (pid_ > 0 && !reaped_) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      reaped_ = true;
    }
  }

 private:
  void CloseGoFd() {
    if (go_fd_ >= 0) {
      close(go_fd_);
      go_fd_ = -1;
    }
  }

  void ReapChild() {
    if (pid_ > 0) {
      if (!reaped_) {
        kill(pid_, SIGKILL);
        waitpid(pid_, nullptr, 0);
      }
      reaped_ = false;
      pid_ = -1;
    }
    CloseGoFd();
  }

  // A parked template child is killed outright on retire: closing the go
  // pipe would wake it too, but later-forked siblings inherit this pipe's
  // write end and would hold EOF open indefinitely.
  void DisarmKill() { ReapChild(); }

  pid_t pid_ = -1;
  int go_fd_ = -1;
  bool clean_exit_ = false;
  // Set when SimulateTemplateDeath already reaped the child while pid_
  // still reads as armed (the injected-death seam).
  bool reaped_ = false;
};

}  // namespace

// ---------------------------------------------------------------- SandboxPool

SandboxPool::SandboxPool(Config config, MemoryAccountant* accountant)
    : config_(std::move(config)),
      costs_(BackendCostModel::Defaults(config_.backend)),
      executor_(CreateSandboxExecutor(config_.backend)),
      accountant_(accountant) {
  config_.max_depth_per_function = std::max(0, config_.max_depth_per_function);
  config_.max_total = std::max(0, config_.max_total);
  config_.interactive_reserve = std::max(0, config_.interactive_reserve);
  if (config_.backend == IsolationBackend::kProcess) {
    IgnoreSigpipeOnce();
  }
}

SandboxPool::~SandboxPool() { Shutdown(); }

SandboxPool::FunctionPool& SandboxPool::PoolForLocked(const dfunc::FunctionSpec& spec) {
  auto it = pools_.find(spec.name);
  if (it == pools_.end()) {
    FunctionPool pool;
    pool.spec = spec;
    pool.policy = config_.policy_factory
                      ? config_.policy_factory()
                      : std::make_unique<dpolicy::PrewarmPolicy>(config_.prewarm);
    it = pools_.emplace(spec.name, std::move(pool)).first;
  }
  return it->second;
}

std::shared_ptr<WarmSandbox> SandboxPool::CreateWarm(const dfunc::FunctionSpec& spec) {
  const bool shared = config_.backend == IsolationBackend::kProcess;
  auto context_result = MemoryContext::Create(spec.context_bytes, accountant_, shared);
  if (!context_result.ok()) {
    return nullptr;
  }
  std::shared_ptr<MemoryContext> context = std::move(context_result).value();

  // Pay the Table 1 load (and, for thread-flavoured backends, setup) cost
  // models now, at fill time — this is exactly the cost a pool hit no
  // longer pays on the critical path.
  dbase::SpinFor(ModeledLoadCostUs(costs_, spec.binary_bytes, /*cached=*/true));
  if (config_.backend == IsolationBackend::kProcess) {
    auto warm = std::make_shared<ProcessWarmSandbox>(spec, std::move(context));
    if (!warm->Arm()) {
      return nullptr;
    }
    return warm;
  }
  dbase::SpinFor(costs_.setup_us);
  return std::make_shared<ThreadWarmSandbox>(spec, std::move(context), executor_.get());
}

std::shared_ptr<WarmSandbox> SandboxPool::Acquire(const dfunc::FunctionSpec& spec,
                                                  PriorityClass priority) {
  if (draining_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  FunctionPool& pool = PoolForLocked(spec);
  ++pool.arrivals;
  ++stats_.arrivals;
  if (pool.shelved.empty()) {
    ++stats_.misses;
    return nullptr;
  }
  if (priority == PriorityClass::kBatch &&
      static_cast<int>(pool.shelved.size()) <= config_.interactive_reserve) {
    // The shelf is down to the interactive reserve: batch work takes the
    // cold path so priority requests keep bypassing it.
    ++stats_.bypassed;
    ++stats_.misses;
    return nullptr;
  }
  std::shared_ptr<WarmSandbox> warm = std::move(pool.shelved.back());
  pool.shelved.pop_back();
  ++pool.leased;
  --total_shelved_;
  ++total_leased_;
  ++stats_.hits;
  if (FaultInjector::Get().ShouldFire(FaultPoint::kPoolTemplateDeath)) {
    warm->SimulateTemplateDeath();
  }
  return warm;
}

void SandboxPool::CountChildLost() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.pool_child_lost;
}

void SandboxPool::Release(std::shared_ptr<WarmSandbox> sandbox) {
  if (sandbox == nullptr) {
    return;
  }
  bool keep = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(sandbox->spec().name);
    if (it != pools_.end() && it->second.leased > 0) {
      --it->second.leased;
      --total_leased_;
      keep = !draining_.load(std::memory_order_relaxed) &&
             static_cast<int>(it->second.shelved.size()) + it->second.leased <
                 it->second.target &&
             static_cast<int>(it->second.shelved.size()) < config_.max_depth_per_function &&
             total_shelved_ < config_.max_total;
    }
  }
  // Scrub + re-arm outside the lock: the re-fork of a process template is
  // the expensive half of "return-on-completion" and must not serialize
  // Acquires.
  if (keep && sandbox->Recycle()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(sandbox->spec().name);
    if (it != pools_.end() && !draining_.load(std::memory_order_relaxed) &&
        static_cast<int>(it->second.shelved.size()) < config_.max_depth_per_function &&
        total_shelved_ < config_.max_total) {
      it->second.shelved.push_back(std::move(sandbox));
      ++total_shelved_;
      ++stats_.recycled;
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.retired;
  // The sandbox destructor (outside this function) kills any parked child
  // and returns the context region.
}

void SandboxPool::Tick(dbase::Micros now_us) {
  if (draining_.load(std::memory_order_relaxed)) {
    return;
  }
  struct FillPlan {
    dfunc::FunctionSpec spec;
    int count = 0;
  };
  std::vector<FillPlan> fills;
  std::vector<std::shared_ptr<WarmSandbox>> retire;  // Destroyed outside mu_.
  int planned = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, pool] : pools_) {
      dpolicy::PrewarmSignals signals;
      signals.now_us = now_us;
      signals.arrivals = pool.arrivals;
      signals.shelved = static_cast<int>(pool.shelved.size());
      signals.leased = pool.leased;
      dpolicy::PrewarmDecision decision = pool.policy->Decide(signals);
      decision.target_depth = std::min(decision.target_depth, config_.max_depth_per_function);
      pool.target = decision.target_depth;
      pool.last_decision = decision;

      // Retire shelved sandboxes above the target immediately; the fill
      // half runs outside the lock.
      while (static_cast<int>(pool.shelved.size()) + pool.leased > pool.target &&
             !pool.shelved.empty()) {
        retire.push_back(std::move(pool.shelved.back()));
        pool.shelved.pop_back();
        --total_shelved_;
        ++stats_.retired;
      }
      const int want = pool.target - static_cast<int>(pool.shelved.size()) - pool.leased;
      const int room = config_.max_total - total_shelved_ - planned;
      const int count = std::clamp(want, 0, std::max(0, room));
      if (count > 0) {
        fills.push_back(FillPlan{pool.spec, count});
        planned += count;
      }
    }
  }
  retire.clear();

  for (const auto& plan : fills) {
    for (int i = 0; i < plan.count; ++i) {
      std::shared_ptr<WarmSandbox> warm = CreateWarm(plan.spec);
      if (warm == nullptr) {
        break;
      }
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pools_.find(plan.spec.name);
      if (it == pools_.end() || draining_.load(std::memory_order_relaxed) ||
          static_cast<int>(it->second.shelved.size()) >= config_.max_depth_per_function ||
          total_shelved_ >= config_.max_total) {
        ++stats_.retired;
        break;  // Destroyed outside via warm's destructor on scope exit.
      }
      it->second.shelved.push_back(std::move(warm));
      ++total_shelved_;
      ++stats_.prewarm_fills;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  depth_trace_.emplace_back(now_us, total_shelved_);
  // Bounded like the control plane's decision history.
  constexpr size_t kTraceLimit = 65536;
  if (depth_trace_.size() > kTraceLimit) {
    depth_trace_.erase(depth_trace_.begin(),
                       depth_trace_.begin() + (depth_trace_.size() - kTraceLimit));
  }
}

void SandboxPool::Shutdown() {
  draining_.store(true, std::memory_order_relaxed);
  std::vector<std::shared_ptr<WarmSandbox>> drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, pool] : pools_) {
      for (auto& warm : pool.shelved) {
        drop.push_back(std::move(warm));
      }
      pool.shelved.clear();
      pool.target = 0;
    }
    total_shelved_ = 0;
    stats_.retired += drop.size();
  }
  drop.clear();  // Kills parked template children, unmaps contexts.
}

SandboxPoolStats SandboxPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SandboxPoolStats stats = stats_;
  stats.shelved = total_shelved_;
  stats.leased = total_leased_;
  stats.functions = static_cast<int>(pools_.size());
  stats.max_total = config_.max_total;
  return stats;
}

std::vector<std::pair<dbase::Micros, int>> SandboxPool::DepthTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_trace_;
}

std::vector<std::pair<std::string, dpolicy::PrewarmDecision>> SandboxPool::LastDecisions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, dpolicy::PrewarmDecision>> decisions;
  decisions.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) {
    decisions.emplace_back(name, pool.last_decision);
  }
  return decisions;
}

}  // namespace dandelion
