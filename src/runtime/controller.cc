#include "src/runtime/controller.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace dandelion {

ControlPlane::ControlPlane(WorkerSet* workers, std::unique_ptr<dpolicy::ElasticityPolicy> policy,
                           Config config)
    : workers_(workers), config_(config), policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    policy_ = dpolicy::CreatePolicy(dpolicy::PolicyKind::kPaperPi);
  }
  if (config_.history_limit == 0) {
    config_.history_limit = 1;
  }
}

ControlPlane::~ControlPlane() { Stop(); }

void ControlPlane::Start() {
  if (running_.exchange(true)) {
    return;
  }
  // Baseline the counters so the first interval measures only new growth.
  const WorkerSet::SignalsSnapshot snapshot = workers_->Signals();
  last_compute_pushed_ = snapshot.compute_pushed;
  last_compute_popped_ = snapshot.compute_popped;
  last_comm_pushed_ = snapshot.comm_pushed;
  last_comm_popped_ = snapshot.comm_popped;

  thread_ = dbase::JoiningThread("ctrl-plane", [this] {
    while (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.interval_us));
      if (!running_.load(std::memory_order_relaxed)) {
        break;
      }
      StepOnce();
    }
  });
}

void ControlPlane::Stop() {
  running_.store(false);
  thread_.Join();
}

uint64_t ControlPlane::AddSignalSource(SignalSource source) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_source_id_++;
  sources_.emplace_back(id, std::move(source));
  return id;
}

void ControlPlane::RemoveSignalSource(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->first == id) {
      sources_.erase(it);
      return;
    }
  }
}

uint64_t ControlPlane::AddTicker(Ticker ticker) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_source_id_++;
  tickers_.emplace_back(id, std::move(ticker));
  return id;
}

void ControlPlane::RemoveTicker(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = tickers_.begin(); it != tickers_.end(); ++it) {
    if (it->first == id) {
      tickers_.erase(it);
      return;
    }
  }
}

ControlPlane::Decision ControlPlane::StepOnce() {
  const WorkerSet::SignalsSnapshot snapshot = workers_->Signals();

  dpolicy::ElasticitySignals signals;
  signals.now_us = dbase::MonotonicClock::Get()->NowMicros();
  signals.compute_workers = snapshot.compute_workers;
  signals.comm_workers = snapshot.comm_workers;
  // Queue growth over the last interval: arrivals minus departures.
  signals.compute_growth =
      static_cast<double>(snapshot.compute_pushed - last_compute_pushed_) -
      static_cast<double>(snapshot.compute_popped - last_compute_popped_);
  signals.comm_growth = static_cast<double>(snapshot.comm_pushed - last_comm_pushed_) -
                        static_cast<double>(snapshot.comm_popped - last_comm_popped_);
  last_compute_pushed_ = snapshot.compute_pushed;
  last_compute_popped_ = snapshot.compute_popped;
  last_comm_pushed_ = snapshot.comm_pushed;
  last_comm_popped_ = snapshot.comm_popped;

  signals.compute_backlog = snapshot.compute_backlog;
  signals.comm_backlog = snapshot.comm_backlog;
  signals.interactive_compute_backlog = snapshot.compute_urgent_backlog;
  signals.interactive_comm_backlog = snapshot.comm_urgent_backlog;
  signals.comm_inflight = static_cast<double>(snapshot.comm_inflight);
  signals.comm_parallelism = snapshot.comm_parallelism;

  {
    // Snapshot the sources under the lock, run them outside it (a source
    // may itself take locks; AddSignalSource must never deadlock a tick).
    std::vector<std::pair<uint64_t, SignalSource>> sources;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sources = sources_;
    }
    for (const auto& [id, source] : sources) {
      source(&signals);
    }
  }

  Decision decision;
  decision.time_us = signals.now_us;
  decision.action = policy_->Decide(signals);
  decision.shifted = decision.action.shift_toward_compute != 0
                         ? workers_->ShiftWorkers(decision.action.shift_toward_compute)
                         : 0;
  // One role scan; comm is derived so the recorded split always sums to the
  // pool size even when another shift lands between here and the scan.
  decision.compute_workers = workers_->compute_workers();
  decision.comm_workers = workers_->total_workers() - decision.compute_workers;
  decision.signals = signals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(decision);
    while (history_.size() > config_.history_limit) {
      history_.pop_front();
    }
    ++decisions_;
    if (decision.shifted > 0) {
      shifts_toward_compute_ += static_cast<uint64_t>(decision.shifted);
    } else if (decision.shifted < 0) {
      shifts_toward_comm_ += static_cast<uint64_t>(-decision.shifted);
    }
  }
  {
    // Same snapshot-then-run-unlocked discipline as the signal sources: a
    // ticker (the sandbox pool's prewarm step) takes its own locks and may
    // fork, so it must never run under mu_.
    std::vector<std::pair<uint64_t, Ticker>> tickers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tickers = tickers_;
    }
    for (const auto& [id, ticker] : tickers) {
      ticker(signals.now_us);
    }
  }
  return decision;
}

std::vector<ControlPlane::Decision> ControlPlane::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Decision>(history_.begin(), history_.end());
}

ControlPlane::Summary ControlPlane::GetSummary() const {
  Summary summary;
  summary.policy_name = policy_->name();
  std::lock_guard<std::mutex> lock(mu_);
  summary.decisions = decisions_;
  summary.shifts_toward_compute = shifts_toward_compute_;
  summary.shifts_toward_comm = shifts_toward_comm_;
  if (!history_.empty()) {
    summary.last = history_.back();
  }
  return summary;
}

}  // namespace dandelion
