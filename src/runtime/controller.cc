#include "src/runtime/controller.h"

#include <algorithm>
#include <thread>

namespace dandelion {

double PiController::Update(double error) {
  integral_ = std::clamp(integral_ + error, -gains_.integral_limit, gains_.integral_limit);
  return gains_.kp * error + gains_.ki * integral_;
}

void PiController::Reset() { integral_ = 0.0; }

ControlPlane::ControlPlane(WorkerSet* workers, Config config)
    : workers_(workers), config_(config), pi_(config.gains) {}

ControlPlane::~ControlPlane() { Stop(); }

void ControlPlane::Start() {
  if (running_.exchange(true)) {
    return;
  }
  // Baseline the counters so the first interval measures only new growth.
  last_compute_pushed_ = workers_->compute_pushed();
  last_compute_popped_ = workers_->compute_popped();
  last_comm_pushed_ = workers_->comm_pushed();
  last_comm_popped_ = workers_->comm_popped();

  thread_ = dbase::JoiningThread("ctrl-plane", [this] {
    while (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.interval_us));
      if (!running_.load(std::memory_order_relaxed)) {
        break;
      }
      StepOnce();
    }
  });
}

void ControlPlane::Stop() {
  running_.store(false);
  thread_.Join();
}

ControlPlane::Decision ControlPlane::StepOnce() {
  const uint64_t compute_pushed = workers_->compute_pushed();
  const uint64_t compute_popped = workers_->compute_popped();
  const uint64_t comm_pushed = workers_->comm_pushed();
  const uint64_t comm_popped = workers_->comm_popped();

  // Queue growth over the last interval: arrivals minus departures.
  const double compute_growth = static_cast<double>(compute_pushed - last_compute_pushed_) -
                                static_cast<double>(compute_popped - last_compute_popped_);
  const double comm_growth = static_cast<double>(comm_pushed - last_comm_pushed_) -
                             static_cast<double>(comm_popped - last_comm_popped_);
  last_compute_pushed_ = compute_pushed;
  last_compute_popped_ = compute_popped;
  last_comm_pushed_ = comm_pushed;
  last_comm_popped_ = comm_popped;

  // Positive error: the compute queue is growing faster → compute engines
  // need more cores (§5).
  const double error = compute_growth - comm_growth;
  const double signal = pi_.Update(error);

  if (signal > config_.shift_threshold) {
    workers_->ShiftWorkerToCompute();
  } else if (signal < -config_.shift_threshold) {
    workers_->ShiftWorkerToComm();
  }

  Decision decision;
  decision.time_us = dbase::MonotonicClock::Get()->NowMicros();
  decision.error = error;
  decision.signal = signal;
  decision.compute_workers = workers_->compute_workers();
  decision.comm_workers = workers_->comm_workers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(decision);
  }
  return decision;
}

std::vector<ControlPlane::Decision> ControlPlane::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace dandelion
