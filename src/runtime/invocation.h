// First-class invocation API: every composition invocation is described by
// an InvocationRequest (what to run, by when, at which priority) and
// observed through an InvocationHandle (cancel, completion state, report).
// The shared InvocationControl block threads the deadline, the cancel flag,
// and the lifecycle counters through every layer — dispatcher, engine
// queues, sandboxes — so a dead invocation stops consuming compute at the
// next seam instead of running to completion. Elasticity controls belong in
// the application-facing API itself: under overload the platform sheds or
// deprioritizes by request class instead of queueing blindly.
#ifndef SRC_RUNTIME_INVOCATION_H_
#define SRC_RUNTIME_INVOCATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/func/data.h"
#include "src/policy/retry.h"

namespace dandelion {

// Request classes, in descending urgency. Interactive work overtakes batch
// backlog in the engine queues and is what admission control protects.
enum class PriorityClass { kInteractive = 0, kBatch = 1 };
inline constexpr int kNumPriorityClasses = 2;

std::string_view PriorityClassName(PriorityClass priority);
dbase::Result<PriorityClass> PriorityClassFromName(std::string_view name);

// Everything the platform needs to know about one invocation up front.
struct InvocationRequest {
  std::string composition;
  dfunc::DataSetList args;
  // Absolute deadline on the monotonic clock (dbase::MonotonicClock),
  // 0 = none. Once passed, the invocation terminates kDeadlineExceeded and
  // launches no further instances.
  dbase::Micros deadline_us = 0;
  PriorityClass priority = PriorityClass::kInteractive;
  // 0 = assigned at submit; non-zero ids are taken verbatim (cluster
  // routing keeps one id across nodes).
  uint64_t id = 0;

  // Convenience for callers that think in relative time.
  static dbase::Micros DeadlineIn(dbase::Micros from_now_us);
};

// Terminal and transient lifecycle states.
enum class InvocationPhase {
  kPending,   // Submitted; no instance has executed yet.
  kRunning,   // At least one instance reached an engine.
  kSucceeded,
  kFailed,
  kCancelled,
  kDeadlineExceeded,
};

std::string_view InvocationPhaseName(InvocationPhase phase);

// Snapshot of one invocation's lifecycle, readable at any time.
struct InvocationReport {
  uint64_t id = 0;
  PriorityClass priority = PriorityClass::kInteractive;
  InvocationPhase phase = InvocationPhase::kPending;
  dbase::Micros submit_time_us = 0;
  // Submit → first instance executing. 0 until then (and forever for an
  // invocation that never reached an engine).
  dbase::Micros queue_time_us = 0;
  // Submit → terminal. 0 while in flight.
  dbase::Micros run_time_us = 0;
  // Compute instances that actually started executing in a sandbox.
  uint64_t instances_launched = 0;
  // Compute instances dequeued after the invocation died — dropped without
  // executing. launched + aborted ≤ instances built by the dispatcher.
  uint64_t instances_aborted = 0;
  // Of the launched instances, how many ran on a pre-warmed sandbox (pool
  // hit — no fork / binary load on the critical path).
  uint64_t instances_pool_hits = 0;
  // The most recent sandbox-level failure any of this invocation's
  // instances hit (kNone when every instance completed or only functional
  // errors occurred). A successful invocation may still carry a non-kNone
  // kind here — that means a retry absorbed the failure.
  dpolicy::FailureKind failure_kind = dpolicy::FailureKind::kNone;
  // Instance relaunches the dispatcher's RetryPolicy granted.
  uint64_t retries_attempted = 0;
};

// The shared control block. One per external invocation; nested
// compositions launched on its behalf share it, so cancelling the root
// stops the whole tree. All members are lock-free: the flags sit on the
// engine pop path and the sandbox poll path.
class InvocationControl {
 public:
  InvocationControl(uint64_t id, PriorityClass priority, dbase::Micros deadline_us,
                    dbase::Micros submit_time_us);

  uint64_t id() const { return id_; }
  PriorityClass priority() const { return priority_; }
  dbase::Micros deadline_us() const { return deadline_us_; }
  dbase::Micros submit_time_us() const { return submit_time_us_; }

  // The cooperative kill switch sandboxes poll (FunctionCtx::cancelled()).
  const std::atomic<bool>* stop_flag() const { return &stop_; }

  // Requests termination; the first reason recorded wins. Idempotent.
  void Cancel() { RequestStop(dbase::StatusCode::kCancelled); }
  void RequestStop(dbase::StatusCode reason);

  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }
  bool done() const;

  // OkStatus while the invocation may keep launching work. Otherwise the
  // terminal status to fail with (kCancelled / kDeadlineExceeded) — checking
  // also trips the stop flag when the deadline has newly passed, so a
  // running sibling instance sees the kill switch without a reaper hop.
  dbase::Status RetireStatus(dbase::Micros now_us);

  // Lifecycle bookkeeping (set-once semantics where it matters).
  void MarkFirstRun(dbase::Micros now_us);
  void MarkDone(InvocationPhase phase, dbase::Micros now_us);
  void CountLaunched() { instances_launched_.fetch_add(1, std::memory_order_relaxed); }
  void CountAborted() { instances_aborted_.fetch_add(1, std::memory_order_relaxed); }
  void CountPoolHit() { instances_pool_hits_.fetch_add(1, std::memory_order_relaxed); }
  // Records a sandbox-level failure kind (last writer wins — enough for
  // the report's "what went wrong" single field).
  void NoteFailure(dpolicy::FailureKind kind) {
    failure_kind_.store(static_cast<int>(kind), std::memory_order_relaxed);
  }
  void CountRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }

  InvocationReport Report() const;

 private:
  const uint64_t id_;
  const PriorityClass priority_;
  const dbase::Micros deadline_us_;
  const dbase::Micros submit_time_us_;

  std::atomic<bool> stop_{false};
  // StatusCode of the stop reason; only meaningful after stop_ is set.
  std::atomic<int> stop_reason_{0};
  std::atomic<int> phase_{static_cast<int>(InvocationPhase::kPending)};
  std::atomic<dbase::Micros> first_run_us_{0};
  std::atomic<dbase::Micros> finish_us_{0};
  std::atomic<uint64_t> instances_launched_{0};
  std::atomic<uint64_t> instances_aborted_{0};
  std::atomic<uint64_t> instances_pool_hits_{0};
  std::atomic<int> failure_kind_{static_cast<int>(dpolicy::FailureKind::kNone)};
  std::atomic<uint64_t> retries_{0};
};

// The caller's view of an in-flight invocation. Cheap to copy; an empty
// handle (default-constructed) is valid() == false.
class InvocationHandle {
 public:
  InvocationHandle() = default;
  explicit InvocationHandle(std::shared_ptr<InvocationControl> control)
      : control_(std::move(control)) {}

  bool valid() const { return control_ != nullptr; }
  uint64_t id() const { return valid() ? control_->id() : 0; }
  // Requests cancellation: no further instances launch, queued instances
  // are dropped at dequeue, running thread-backend instances are preempted
  // cooperatively, forked instances are killed. The result callback still
  // fires (with kCancelled) exactly once.
  void Cancel() const {
    if (valid()) {
      control_->Cancel();
    }
  }
  bool done() const { return valid() && control_->done(); }
  InvocationReport Report() const {
    return valid() ? control_->Report() : InvocationReport{};
  }
  const std::shared_ptr<InvocationControl>& control() const { return control_; }

 private:
  std::shared_ptr<InvocationControl> control_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_INVOCATION_H_
