// Cluster manager (§5): "orchestrates multiple worker nodes and load
// balances composition invocations across nodes. We extended Dirigent to
// support Dandelion worker nodes." This is the single-process stand-in:
// N Platform instances (worker nodes) behind a load-balancing invoke API.
#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/platform.h"

namespace dandelion {

enum class LoadBalancePolicy {
  kRoundRobin,
  // Routes to the node with the fewest in-flight invocations + queued
  // engine tasks.
  kLeastLoaded,
};

class Cluster {
 public:
  struct Config {
    int num_nodes = 2;
    PlatformConfig node_config;
    LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin;
  };

  explicit Cluster(Config config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Platform& node(int index) { return *nodes_[static_cast<size_t>(index)]; }

  // Registration is cluster-wide: every node gets the function/composition
  // (a node can only serve what it has registered).
  dbase::Status RegisterFunction(const dfunc::FunctionSpec& spec);
  dbase::Status RegisterCompositionDsl(std::string_view dsl_source);

  // Applies `setup` to every node — e.g. registering mesh services.
  void ForEachNode(const std::function<void(Platform&)>& setup);

  // Load-balanced invocation. Returns the result plus which node served it
  // (for tests and placement studies).
  struct RoutedResult {
    dbase::Result<dfunc::DataSetList> result;
    int node_index = -1;
    RoutedResult() : result(dbase::Internal("unset")) {}
  };
  // Routed invokes take first-class requests: the deadline and cancel flag
  // travel with the invocation to whichever node serves it, and placement
  // can consider the request class (under kLeastLoaded, interactive
  // requests pay the load scan while batch spreads round-robin — backlog
  // smoothing is enough for work that tolerates queueing).
  RoutedResult Invoke(InvocationRequest request);
  InvocationHandle InvokeAsync(
      InvocationRequest request,
      std::function<void(dbase::Result<dfunc::DataSetList>, int node)> callback);

  // Legacy shims over the request API.
  RoutedResult Invoke(const std::string& composition, dfunc::DataSetList args);
  void InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                   std::function<void(dbase::Result<dfunc::DataSetList>, int node)> callback);

  // Per-node served-invocation counters.
  std::vector<uint64_t> InvocationsPerNode() const;

  // Per-node compute/comm core split — cluster-wide view of what each
  // node's elasticity control plane (configured via node_config) has done.
  struct CoreSplit {
    int compute_workers = 0;
    int comm_workers = 0;
  };
  std::vector<CoreSplit> CoreSplits() const;

  void Shutdown();

 private:
  int PickNode(PriorityClass priority);
  double NodeLoad(int index) const;

  Config config_;
  std::vector<std::unique_ptr<Platform>> nodes_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> served_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> inflight_;
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_CLUSTER_H_
