// Cluster manager (§5): "orchestrates multiple worker nodes and load
// balances composition invocations across nodes. We extended Dirigent to
// support Dandelion worker nodes."
//
// Two node flavors live behind one Invoke/InvokeAsync API:
//
//   - local nodes: N in-process Platform instances (the single-process
//     stand-in the earlier PRs built everything on), and
//   - remote nodes: engine processes reached over the dnet wire (ROADMAP
//     "Distributed data plane") through one connection-pooling NodeClient.
//
// Routing is locality-aware under LoadBalancePolicy::kLocality: a
// composition goes to the node that served it most recently (locally
// observed, plus the resident-composition lists remote nodes gossip),
// falling back to kLeastLoaded when the sticky node is saturated, suspect
// or gone. Remote load is read from gossiped ElasticitySignals.
//
// Cross-node shedding: a peer that responds 429-style (kUnavailable with
// the shed frame flag) gets the invocation re-routed once to another node
// before the error surfaces. Remote transport failures map into the PR 8
// failure taxonomy as FailureKind::kPeerLost — retry-safe, because
// Dandelion functions are pure — and are absorbed by a router-side
// RetryPolicy (breaker keyed by node) that re-routes to surviving nodes;
// remote jail kills and other deterministic function failures surface
// unchanged. Node join/leave is policy-driven: a gossip loop feeds
// dpolicy::MembershipPolicy, which suspects stale peers, evicts dead ones,
// re-admits rejoiners, and emits fleet scale hints.
#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/node_client.h"
#include "src/policy/membership.h"
#include "src/policy/retry.h"
#include "src/runtime/platform.h"

namespace dandelion {

enum class LoadBalancePolicy {
  kRoundRobin,
  // Routes to the node with the fewest in-flight invocations + queued
  // engine tasks (gossiped backlog for remote nodes).
  kLeastLoaded,
  // Sticky composition→node affinity from serve history and gossiped
  // residency; falls back to kLeastLoaded when the affine node is
  // saturated or unavailable.
  kLocality,
};

class Cluster {
 public:
  struct RemoteNode {
    std::string name;
    uint16_t port = 0;
  };

  struct Config {
    // In-process nodes; 0 is allowed when remote nodes are configured.
    int num_nodes = 2;
    PlatformConfig node_config;
    LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin;

    // Engine processes to dial over the dnet wire (loopback ports).
    std::vector<RemoteNode> remote_nodes;
    std::string router_name = "router";
    dnet::FrameLimits limits;
    // Backstop timeout for remote invokes carrying no deadline.
    dbase::Micros remote_invoke_timeout_us = 120 * dbase::kMicrosPerSecond;
    // Gossip cadence for remote signals + membership; 0 disables the
    // background loop (tests drive GossipNow() by hand).
    dbase::Micros gossip_interval_us = 200 * dbase::kMicrosPerMilli;
    dpolicy::MembershipOptions membership;
    // Router-side absorption of kPeerLost (breakers keyed by node name).
    dpolicy::RetryOptions remote_retry;
    // When the membership policy emits a scale-in hint, actually drain
    // (remove) the nominated node instead of just counting the hint.
    bool apply_scale_in = false;
  };

  explicit Cluster(Config config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Local (in-process) nodes.
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Platform& node(int index) { return *nodes_[static_cast<size_t>(index)]; }
  // Locals + remote nodes ever added (remote slots persist through
  // eviction so node indices stay stable).
  int total_nodes() const;

  // Dynamic membership: join a running engine process / drain one. Join
  // makes the node routable immediately; the membership policy evicts it
  // if it never answers gossip.
  dbase::Status AddRemoteNode(const std::string& name, uint16_t port);
  void RemoveRemoteNode(const std::string& name);

  // Registration is cluster-wide for local nodes (a node can only serve
  // what it has registered); remote nodes register their own functions at
  // spawn (see src/tools/dandelion_node.cc).
  dbase::Status RegisterFunction(const dfunc::FunctionSpec& spec);
  dbase::Status RegisterCompositionDsl(std::string_view dsl_source);

  // Applies `setup` to every local node — e.g. registering mesh services.
  void ForEachNode(const std::function<void(Platform&)>& setup);

  // Load-balanced invocation. Returns the result plus which node served it
  // (for tests and placement studies). `result` is empty only before the
  // invocation has been routed — a terminal RoutedResult always holds one.
  struct RoutedResult {
    std::optional<dbase::Result<dfunc::DataSetList>> result;
    int node_index = -1;
    std::string node_name;
    // Total placement attempts: >1 means shedding or peer loss re-routed.
    int attempts = 1;

    bool ok() const { return result.has_value() && result->ok(); }
    dbase::Status status() const {
      return result.has_value() ? result->status() : dbase::Unavailable("not routed");
    }
    const dfunc::DataSetList& sets() const { return result->value(); }
  };
  // Routed invokes take first-class requests: the deadline and cancel flag
  // travel with the invocation to whichever node serves it (remote nodes
  // get the *remaining* time re-anchored on their own clock), and
  // placement can consider the request class (under kLeastLoaded,
  // interactive requests pay the load scan while batch spreads
  // round-robin — backlog smoothing is enough for work that tolerates
  // queueing).
  RoutedResult Invoke(InvocationRequest request);
  InvocationHandle InvokeAsync(
      InvocationRequest request,
      std::function<void(dbase::Result<dfunc::DataSetList>, int node)> callback);

  // Legacy shims over the request API.
  RoutedResult Invoke(const std::string& composition, dfunc::DataSetList args);
  void InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                   std::function<void(dbase::Result<dfunc::DataSetList>, int node)> callback);

  // Per-node served-invocation counters (locals then remotes).
  std::vector<uint64_t> InvocationsPerNode() const;

  // Per-local-node compute/comm core split — cluster-wide view of what each
  // node's elasticity control plane (configured via node_config) has done.
  struct CoreSplit {
    int compute_workers = 0;
    int comm_workers = 0;
  };
  std::vector<CoreSplit> CoreSplits() const;

  // One synchronous gossip + membership round (the background loop runs
  // this on gossip_interval_us; tests call it directly).
  void GossipNow();

  // The statz "cluster" section's source of truth.
  struct PeerStats {
    std::string name;
    bool remote = false;
    std::string_view state = "active";
    uint64_t served = 0;
    int64_t inflight = 0;  // Router-side in-flight toward this node.
    // Remote-only wire counters (from the NodeClient).
    uint64_t invokes_sent = 0;
    uint64_t sheds_received = 0;
    uint64_t peer_lost_failures = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    // Age of the last gossip snapshot; -1 = never heard.
    int64_t gossip_age_us = -1;
    // From the peer's last gossiped ElasticitySignals.
    uint64_t remote_inflight = 0;
    uint64_t remote_admission_cap = 0;
    double utilization = 0.0;
  };
  struct ClusterStats {
    std::vector<PeerStats> peers;
    uint64_t reroutes_shed = 0;
    uint64_t reroutes_peer_lost = 0;
    uint64_t reroute_denied = 0;
    uint64_t no_eligible_node = 0;
    uint64_t gossip_rounds = 0;
    dpolicy::MembershipStats membership;
    dpolicy::RetryPolicyStats remote_retry;
  };
  ClusterStats Stats() const;

  void Shutdown();

 private:
  struct RemoteSlot {
    std::string name;
    uint16_t port = 0;
    std::atomic<uint64_t> served{0};
    std::atomic<int64_t> inflight{0};
    mutable std::mutex mu;
    dnet::WireNodeStatus status;              // Last gossip snapshot.
    dbase::Micros last_gossip_us = 0;         // 0 = never heard.
    dpolicy::MemberState state = dpolicy::MemberState::kActive;
  };

  // Node indices are global: [0, num_nodes) local, then remotes in join
  // order. Remote slots are never erased (indices stay stable); evicted
  // slots sit in MemberState::kLeft until their node gossips again.
  // Internal terminal callback: result, serving node index, total
  // placement attempts (so RoutedResult can report re-routes).
  using RoutedCallback =
      std::function<void(dbase::Result<dfunc::DataSetList>, int node, int attempts)>;

  int PickNode(const InvocationRequest& request, const std::set<int>& exclude);
  double NodeLoad(int index) const;
  bool Eligible(int index, const std::set<int>& exclude, bool allow_suspect) const;
  void Dispatch(InvocationRequest request, RoutedCallback callback, int attempts,
                std::set<int> tried, bool shed_rerouted, InvocationHandle* first_handle);
  void DispatchRemote(int index, InvocationRequest request, RoutedCallback callback,
                      int attempts, std::set<int> tried, bool shed_rerouted);
  InvocationHandle InvokeRouted(InvocationRequest request, RoutedCallback callback);
  void NoteAffinity(const std::string& composition, int index);
  void NoteAffinityFromGossip(const std::string& composition, int index);
  int AffinityFor(const std::string& composition) const;
  std::string NodeName(int index) const;
  RemoteSlot* remote_slot(int index) const;
  void EnsureClientStarted();
  void ApplyMembership(const dpolicy::MembershipDecision& decision);

  Config config_;
  std::vector<std::unique_ptr<Platform>> nodes_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> served_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> inflight_;
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<uint64_t> next_invocation_id_{1};

  // Remote side. remotes_ is append-only under remotes_mu_; slots are
  // heap-allocated so raw pointers stay valid across growth.
  mutable std::mutex remotes_mu_;
  std::vector<std::unique_ptr<RemoteSlot>> remotes_;
  std::unique_ptr<dnet::NodeClient> client_;
  bool client_started_ = false;  // Guarded by remotes_mu_.

  // Composition → global node index (most recent server / gossiped
  // residency).
  mutable std::mutex affinity_mu_;
  std::unordered_map<std::string, int> affinity_;

  // Router-side policy state.
  mutable std::mutex policy_mu_;
  dpolicy::RetryPolicy remote_retry_;
  dpolicy::MembershipPolicy membership_;

  // Re-route + gossip counters.
  std::atomic<uint64_t> reroutes_shed_{0};
  std::atomic<uint64_t> reroutes_peer_lost_{0};
  std::atomic<uint64_t> reroute_denied_{0};
  std::atomic<uint64_t> no_eligible_node_{0};
  std::atomic<uint64_t> gossip_rounds_{0};

  // Background gossip loop.
  std::mutex gossip_mu_;
  std::condition_variable gossip_cv_;
  bool stopping_ = false;
  std::unique_ptr<dbase::JoiningThread> gossip_thread_;

  std::atomic<bool> shut_down_{false};
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_CLUSTER_H_
