#include "src/runtime/platform.h"

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/dsl/parser.h"
#include "src/runtime/comm_function.h"

namespace dandelion {

Platform::Platform(PlatformConfig config) : config_(config) {
  WorkerSet::Config worker_config;
  worker_config.num_workers = config.num_workers;
  worker_config.initial_comm_workers = config.initial_comm_workers;
  worker_config.backend = config.backend;
  worker_config.binary_cold_fraction = config.binary_cold_fraction;
  worker_config.pin_threads = config.pin_threads;
  worker_config.comm_parallelism = config.comm_parallelism;
  if (config.enable_sandbox_pool) {
    SandboxPool::Config pool_config = config.sandbox_pool;
    pool_config.backend = config.backend;  // The pool must match the engines.
    sandbox_pool_ = std::make_unique<SandboxPool>(std::move(pool_config), &accountant_);
  }

  workers_ = std::make_unique<WorkerSet>(worker_config, &mesh_);
  workers_->set_sleep_for_modeled_latency(config.sleep_for_modeled_latency);
  if (sandbox_pool_ != nullptr) {
    workers_->set_sandbox_pool(sandbox_pool_.get());
  }

  Dispatcher::Config dispatcher_config;
  dispatcher_config.shared_contexts = config.backend == IsolationBackend::kProcess;
  dispatcher_config.sandbox_pool = sandbox_pool_.get();
  dispatcher_config.retry = config.retry;
  dispatcher_ = std::make_unique<Dispatcher>(&functions_, &compositions_, &comm_functions_,
                                             workers_.get(), &accountant_, dispatcher_config);

  if (config.enable_control_plane) {
    ControlPlane::Config control_config;
    control_config.interval_us = config.control_interval_us;
    control_config.history_limit = config.control_history_limit;
    std::unique_ptr<dpolicy::ElasticityPolicy> policy =
        config.elasticity_policy_factory ? config.elasticity_policy_factory()
                                         : dpolicy::CreatePolicy(config.elasticity_policy);
    control_plane_ = std::make_unique<ControlPlane>(workers_.get(), std::move(policy),
                                                    control_config);
    // Signals the WorkerSet cannot see: dispatcher gauges and the
    // memory-context recycler's occupancy. Frontend admission counters are
    // added by HttpFrontend when one is attached.
    control_plane_->AddSignalSource([this](dpolicy::ElasticitySignals* signals) {
      const DispatcherStats stats = dispatcher_->Stats();
      signals->inflight_interactive = stats.inflight_interactive;
      signals->inflight_batch = stats.inflight_batch;
      signals->deadline_exceeded += stats.invocations_deadline_exceeded;
      signals->sandbox_failures = stats.sandbox_failures;
      signals->retries_attempted = stats.retries_attempted;
      signals->breaker_fast_fails = stats.breaker_fast_fails;
      signals->breakers_open = stats.breakers_open;
      ContextPool* pool = ContextPool::Get();
      const size_t cap = pool->max_entries();
      signals->context_pool_occupancy =
          cap == 0 ? 0.0
                   : static_cast<double>(pool->entries()) / static_cast<double>(cap);
      if (sandbox_pool_ != nullptr) {
        const SandboxPoolStats warm = sandbox_pool_->Stats();
        signals->warm_pool_shelved = static_cast<uint64_t>(warm.shelved);
        signals->warm_pool_occupancy =
            warm.max_total == 0
                ? 0.0
                : static_cast<double>(warm.shelved) / static_cast<double>(warm.max_total);
        signals->warm_pool_misses = warm.misses;
      }
    });
    if (sandbox_pool_ != nullptr) {
      // The prewarm policy shares the elasticity cadence: every control
      // tick also advances the pool's per-function EWMA targets.
      control_plane_->AddTicker(
          [this](dbase::Micros now_us) { sandbox_pool_->Tick(now_us); });
    }
    control_plane_->Start();
  }
}

Platform::~Platform() { Shutdown(); }

void Platform::Shutdown() {
  if (control_plane_ != nullptr) {
    control_plane_->Stop();
  }
  if (workers_ != nullptr) {
    workers_->Shutdown();
  }
  if (sandbox_pool_ != nullptr) {
    // After the engines: in-flight tasks release their leases first.
    sandbox_pool_->Shutdown();
  }
}

dbase::Status Platform::RegisterFunction(dfunc::FunctionSpec spec) {
  if (comm_functions_.Contains(spec.name)) {
    return dbase::InvalidArgument("'" + spec.name +
                                  "' names a platform communication function and cannot be a "
                                  "compute function");
  }
  return functions_.Register(std::move(spec));
}

dbase::Status Platform::RegisterCommFunction(CommFunctionSpec spec) {
  if (functions_.Contains(spec.name)) {
    return dbase::InvalidArgument("'" + spec.name + "' is already a compute function");
  }
  return comm_functions_.Register(std::move(spec));
}

dbase::Status Platform::ValidateCommNodes(const ddsl::CompositionGraph& graph) const {
  for (const auto& node : graph.nodes()) {
    auto comm = comm_functions_.Lookup(node.callee);
    if (!comm.ok()) {
      continue;
    }
    if (node.inputs.size() != 1 || node.inputs[0].set_name != comm->request_set) {
      return dbase::InvalidArgument(dbase::StrFormat(
          "composition '%s': %s nodes take exactly one input set named '%s'",
          graph.name().c_str(), node.callee.c_str(), comm->request_set.c_str()));
    }
    if (node.outputs.size() != 1 || node.outputs[0].set_name != comm->response_set) {
      return dbase::InvalidArgument(dbase::StrFormat(
          "composition '%s': %s nodes produce exactly one output set named '%s'",
          graph.name().c_str(), node.callee.c_str(), comm->response_set.c_str()));
    }
  }
  return dbase::OkStatus();
}

dbase::Status Platform::RegisterComposition(ddsl::CompositionGraph graph) {
  RETURN_IF_ERROR(ValidateCommNodes(graph));
  return compositions_.Register(std::move(graph));
}

dbase::Status Platform::RegisterCompositionDsl(std::string_view dsl_source) {
  ASSIGN_OR_RETURN(auto asts, ddsl::ParseCompositions(dsl_source));
  for (const auto& ast : asts) {
    ASSIGN_OR_RETURN(auto graph, ddsl::CompositionGraph::FromAst(ast));
    RETURN_IF_ERROR(RegisterComposition(std::move(graph)));
  }
  return dbase::OkStatus();
}

InvocationHandle Platform::Submit(InvocationRequest request,
                                  Dispatcher::ResultCallback callback) {
  return dispatcher_->Submit(std::move(request), std::move(callback));
}

dbase::Result<dfunc::DataSetList> Platform::Invoke(InvocationRequest request) {
  return dispatcher_->Invoke(std::move(request));
}

dbase::Result<dfunc::DataSetList> Platform::Invoke(const std::string& composition,
                                                   dfunc::DataSetList args) {
  return dispatcher_->Invoke(composition, std::move(args));
}

void Platform::InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                           Dispatcher::ResultCallback callback) {
  dispatcher_->InvokeAsync(composition, std::move(args), std::move(callback));
}

}  // namespace dandelion
