#include "src/runtime/memory_context.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "src/base/string_util.h"

namespace dandelion {

void MemoryAccountant::AttachClock(const dbase::Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void MemoryAccountant::Acquire(uint64_t bytes) {
  const uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  total_acquired_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  RecordPoint();
}

void MemoryAccountant::Release(uint64_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
  RecordPoint();
}

void MemoryAccountant::RecordPoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (clock_ == nullptr) {
    return;
  }
  timeline_.Add(clock_->NowMicros(),
                static_cast<double>(current_.load(std::memory_order_relaxed)) / (1024.0 * 1024.0));
}

dbase::TimeSeries MemoryAccountant::TimelineSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeline_;
}

ContextPool* ContextPool::Get() {
  // Intentionally leaked: contexts may be released during static teardown,
  // after a function-local static pool would already be gone.
  static ContextPool* pool = new ContextPool();
  return pool;
}

char* ContextPool::Take(uint64_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_by_capacity_.find(capacity);
  if (it == free_by_capacity_.end() || it->second.empty()) {
    ++stats_.misses;
    return nullptr;
  }
  char* region = it->second.back();
  it->second.pop_back();
  --entries_;
  ++stats_.hits;
  return region;
}

bool ContextPool::Put(char* region, uint64_t capacity, uint64_t touched) {
  // Scrub outside the lock, and only the extent that was written: a small
  // invocation pays for its own pages, not the context's declared capacity.
  // Two regimes, both leaving the region indistinguishable from a fresh
  // mapping (reads as zeros):
  //  - small extents are memset to zero in place: ~0.3 µs for a few pages
  //    versus several µs of madvise + demand-zero refaults in the kernel,
  //    at the cost of keeping those pages committed while shelved (bounded
  //    by kZeroExtentBytes × max_entries_ ≈ 4 MB platform-wide);
  //  - large extents are genuinely uncommitted with MADV_DONTNEED so
  //    committed memory keeps tracking demand (§7.8).
  // Scrub-before-reserve wastes one scrub when the pool turns out to be
  // full, but keeps the capacity check and the shelving atomic — a
  // concurrent set_max_entries() shrink cannot interleave with a
  // half-registered entry.
  const uint64_t extent = std::min(touched, capacity);
  if (extent > 0 && extent <= kZeroExtentBytes) {
    std::memset(region, 0, extent);
  } else if (extent > 0) {
    const uint64_t page = 4096;
    madvise(region, (extent + page - 1) / page * page, MADV_DONTNEED);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_ >= max_entries_) {
    ++stats_.dropped;
    return false;
  }
  ++entries_;
  ++stats_.recycled;
  free_by_capacity_[capacity].push_back(region);
  return true;
}

ContextPool::Stats ContextPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ContextPool::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t ContextPool::max_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

void ContextPool::set_max_entries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = n;
  // Shrink below the new bound so lowering it (benchmark baselines, tests)
  // takes effect immediately rather than after organic churn.
  for (auto& [capacity, regions] : free_by_capacity_) {
    while (entries_ > max_entries_ && !regions.empty()) {
      munmap(regions.back(), capacity);
      regions.pop_back();
      --entries_;
    }
  }
}

dbase::Result<std::unique_ptr<MemoryContext>> MemoryContext::Create(uint64_t capacity,
                                                                    MemoryAccountant* accountant,
                                                                    bool shared) {
  if (capacity < kHeaderSize) {
    return dbase::InvalidArgument("context capacity below header size");
  }
  char* mem = nullptr;
  if (!shared) {
    mem = ContextPool::Get()->Take(capacity);
  }
  if (mem == nullptr) {
    const int visibility = shared ? MAP_SHARED : MAP_PRIVATE;
    void* fresh = mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                       visibility | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (fresh == MAP_FAILED) {
      return dbase::ResourceExhausted(
          dbase::StrFormat("mmap of %llu-byte context failed",
                           static_cast<unsigned long long>(capacity)));
    }
    mem = static_cast<char*>(fresh);
  }
  if (accountant != nullptr) {
    accountant->Acquire(capacity);
  }
  return std::unique_ptr<MemoryContext>(new MemoryContext(mem, capacity, accountant, shared));
}

MemoryContext::~MemoryContext() {
  if (data_ != nullptr) {
    if (shared_ || !ContextPool::Get()->Put(data_, capacity_, touched_)) {
      munmap(data_, capacity_);
    }
    if (accountant_ != nullptr) {
      accountant_->Release(capacity_);
    }
  }
}

void MemoryContext::ScrubForReuse(uint64_t extent) {
  // Same two regimes as ContextPool::Put: zero small extents in place
  // (cheaper than re-faulting), genuinely uncommit large ones so committed
  // memory keeps tracking demand while the region stays shelved.
  //
  // The uncommit call differs by mapping kind. On MAP_PRIVATE anonymous
  // memory MADV_DONTNEED discards the pages and refaults read fresh zeros.
  // On MAP_SHARED|MAP_ANONYMOUS it only drops this mapping's PTEs — the
  // backing shmem object keeps the old bytes and refaults repopulate them,
  // so the previous invocation's data would survive the "scrub". Shared
  // regions therefore need MADV_REMOVE, which hole-punches the shmem object
  // back to zeros (also uncommitting), with an explicit memset fallback if
  // the kernel refuses the punch.
  extent = std::min(extent, capacity_);
  if (extent > 0 && extent <= ContextPool::kZeroExtentBytes) {
    std::memset(data_, 0, extent);
  } else if (extent > 0) {
    const uint64_t page = 4096;
    const uint64_t rounded = (extent + page - 1) / page * page;
    if (shared_) {
      if (madvise(data_, rounded, MADV_REMOVE) != 0) {
        std::memset(data_, 0, extent);
      }
    } else {
      madvise(data_, rounded, MADV_DONTNEED);
    }
  }
  touched_ = 0;
}

dbase::Status MemoryContext::WriteAt(uint64_t offset, std::string_view bytes) {
  if (offset > capacity_ || bytes.size() > capacity_ - offset) {
    return dbase::ResourceExhausted("write exceeds context bounds");
  }
  std::memcpy(data_ + offset, bytes.data(), bytes.size());
  touched_ = std::max(touched_, offset + bytes.size());
  return dbase::OkStatus();
}

dbase::Result<std::string_view> MemoryContext::ReadAt(uint64_t offset, uint64_t size) const {
  if (offset > capacity_ || size > capacity_ - offset) {
    return dbase::InvalidArgument("read exceeds context bounds");
  }
  return std::string_view(data_ + offset, size);
}

dbase::Status MemoryContext::TransferFrom(const MemoryContext& source, uint64_t src_offset,
                                          uint64_t dst_offset, uint64_t size) {
  ASSIGN_OR_RETURN(std::string_view view, source.ReadAt(src_offset, size));
  return WriteAt(dst_offset, view);
}

ContextHeader MemoryContext::ReadHeader() const {
  ContextHeader header;
  std::memcpy(&header.magic, data_, 4);
  std::memcpy(&header.state, data_ + 4, 4);
  std::memcpy(&header.payload_len, data_ + 8, 8);
  return header;
}

void MemoryContext::WriteHeader(const ContextHeader& header) {
  std::memcpy(data_, &header.magic, 4);
  std::memcpy(data_ + 4, &header.state, 4);
  std::memcpy(data_ + 8, &header.payload_len, 8);
  touched_ = std::max(touched_, kHeaderSize);
}

dbase::Status MemoryContext::StoreInputSets(const dfunc::DataSetList& inputs) {
  const uint64_t payload_len = dfunc::MarshalledSize(inputs);
  if (payload_len > capacity_ - kHeaderSize) {
    return dbase::ResourceExhausted(
        dbase::StrFormat("inputs (%zu bytes) exceed context capacity (%llu bytes); raise the "
                         "function's declared memory requirement",
                         static_cast<size_t>(payload_len),
                         static_cast<unsigned long long>(capacity_)));
  }
  ContextHeader header;
  header.state = ContextHeader::kStatePending;
  header.payload_len = payload_len;
  WriteHeader(header);
  // Marshal straight into the region — no intermediate string of the full
  // input size. MarshalledSize was checked against capacity above.
  dfunc::MarshalSetsInto(inputs, data_ + kHeaderSize);
  touched_ = std::max(touched_, kHeaderSize + payload_len);
  return dbase::OkStatus();
}

dbase::Result<dfunc::DataSetList> MemoryContext::LoadInputSets() const {
  const ContextHeader header = ReadHeader();
  if (header.magic != ContextHeader::kMagic) {
    return dbase::Internal("context header corrupted (bad magic)");
  }
  ASSIGN_OR_RETURN(std::string_view payload, ReadAt(kHeaderSize, header.payload_len));
  return dfunc::UnmarshalSets(payload);
}

dbase::Status MemoryContext::StoreOutcome(const dbase::Status& status,
                                          const dfunc::DataSetList& outputs) {
  const auto report_overflow = [&]() -> dbase::Status {
    // Outputs do not fit: report resource exhaustion instead.
    ContextHeader header;
    header.state = static_cast<int32_t>(dbase::StatusCode::kResourceExhausted);
    const char* msg = "outputs exceed context capacity";
    header.payload_len = std::strlen(msg);
    WriteHeader(header);
    return WriteAt(kHeaderSize, msg);
  };
  if (!status.ok()) {
    const std::string& payload = status.message();
    if (payload.size() > capacity_ - kHeaderSize) {
      return report_overflow();
    }
    ContextHeader header;
    header.state = static_cast<int32_t>(status.code());
    header.payload_len = payload.size();
    WriteHeader(header);
    return WriteAt(kHeaderSize, payload);
  }
  const uint64_t payload_len = dfunc::MarshalledSize(outputs);
  if (payload_len > capacity_ - kHeaderSize) {
    return report_overflow();
  }
  // Direct marshal is only safe when no output payload aliases this very
  // region (a pass-through of an aliased input would be memcpy'd over
  // itself mid-read). Self-aliasing cannot happen today — LoadInputSets
  // copies — but the guard keeps the invariant local instead of relying on
  // a distant caller's behaviour.
  bool self_alias = false;
  for (const auto& set : outputs) {
    for (const auto& item : set.items) {
      if (!item.data.empty() && Contains(item.data.data())) {
        self_alias = true;
        break;
      }
    }
    if (self_alias) break;
  }
  ContextHeader header;
  header.state = static_cast<int32_t>(dbase::StatusCode::kOk);
  header.payload_len = payload_len;
  if (self_alias) {
    const std::string payload = dfunc::MarshalSets(outputs);
    WriteHeader(header);
    return WriteAt(kHeaderSize, payload);
  }
  WriteHeader(header);
  dfunc::MarshalSetsInto(outputs, data_ + kHeaderSize);
  touched_ = std::max(touched_, kHeaderSize + payload_len);
  return dbase::OkStatus();
}

dbase::Result<dfunc::DataSetList> MemoryContext::LoadOutputSets() const {
  const ContextHeader header = ReadHeader();
  if (header.magic != ContextHeader::kMagic) {
    return dbase::Internal("context header corrupted (bad magic)");
  }
  if (header.state == ContextHeader::kStatePending) {
    return dbase::Internal("function did not produce an outcome (state still pending)");
  }
  ASSIGN_OR_RETURN(std::string_view payload, ReadAt(kHeaderSize, header.payload_len));
  const auto code = static_cast<dbase::StatusCode>(header.state);
  if (code != dbase::StatusCode::kOk) {
    return dbase::Status(code, std::string(payload));
  }
  return dfunc::UnmarshalSets(payload);
}

dbase::Result<dfunc::DataSetList> MemoryContext::LoadOutputSetsAliased(
    std::shared_ptr<const void> keepalive) const {
  const ContextHeader header = ReadHeader();
  if (keepalive == nullptr || header.magic != ContextHeader::kMagic ||
      header.payload_len < kAliasReadbackMinBytes) {
    // Small outputs (or error outcomes) are cheaper to copy than to pin a
    // whole context's committed pages for; corrupt headers take the copying
    // path's error handling.
    return LoadOutputSets();
  }
  if (header.state == ContextHeader::kStatePending) {
    return dbase::Internal("function did not produce an outcome (state still pending)");
  }
  ASSIGN_OR_RETURN(std::string_view payload, ReadAt(kHeaderSize, header.payload_len));
  const auto code = static_cast<dbase::StatusCode>(header.state);
  if (code != dbase::StatusCode::kOk) {
    return dbase::Status(code, std::string(payload));
  }
  auto buffer = dbase::Buffer::Wrap(payload.data(), payload.size(), std::move(keepalive));
  return dfunc::UnmarshalSets(dbase::BufferSlice(std::move(buffer)));
}

}  // namespace dandelion
