#include "src/runtime/sandbox.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/func/function.h"
#include "src/runtime/fault.h"
#include "src/runtime/jail.h"

namespace dandelion {

std::string_view IsolationBackendName(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kProcess:
      return "process";
    case IsolationBackend::kThread:
      return "cheri";
    case IsolationBackend::kKvmSim:
      return "kvm";
    case IsolationBackend::kWasmSim:
      return "rwasm";
  }
  return "?";
}

dbase::Result<IsolationBackend> IsolationBackendFromName(std::string_view name) {
  if (name == "process") {
    return IsolationBackend::kProcess;
  }
  if (name == "cheri" || name == "thread") {
    return IsolationBackend::kThread;
  }
  if (name == "kvm") {
    return IsolationBackend::kKvmSim;
  }
  if (name == "rwasm" || name == "wasm") {
    return IsolationBackend::kWasmSim;
  }
  return dbase::InvalidArgument("unknown isolation backend: " + std::string(name));
}

BackendCostModel BackendCostModel::Defaults(IsolationBackend backend) {
  BackendCostModel costs;
  switch (backend) {
    case IsolationBackend::kThread:
      // CHERI row of Table 1: no thread spawn, cheap executable load.
      costs.setup_us = 0;
      break;
    case IsolationBackend::kKvmSim:
      // KVM on x86 (Linux 5.15): ~218 us total for a 1x1 matmul; the VM
      // enter/exit + vCPU reset portion is the setup surcharge.
      costs.setup_us = 150;
      break;
    case IsolationBackend::kWasmSim:
      // rWasm: fast isolation but "mainly limited by slow dynamic loading"
      // (§7.2) and slower generated code (§7.3).
      costs.setup_us = 10;
      costs.load_disk_us_per_mb = 500.0;
      costs.load_disk_base_us = 80.0;
      costs.load_cached_us_per_mb = 120.0;
      costs.load_cached_base_us = 40.0;
      costs.compute_slowdown = 2.4;
      break;
    case IsolationBackend::kProcess:
      // Fork cost is real; nothing injected.
      costs.setup_us = 0;
      break;
  }
  return costs;
}

namespace {

dbase::Micros LoadCost(const BackendCostModel& costs, uint64_t binary_bytes, bool cached) {
  const double mb = static_cast<double>(binary_bytes) / (1024.0 * 1024.0);
  const double us = cached ? costs.load_cached_base_us + costs.load_cached_us_per_mb * mb
                           : costs.load_disk_base_us + costs.load_disk_us_per_mb * mb;
  return static_cast<dbase::Micros>(us);
}

dbase::Micros EffectiveTimeout(const dfunc::FunctionSpec& spec, const SandboxOptions& options) {
  return options.timeout_us > 0 ? options.timeout_us : spec.timeout_us;
}

// ---------------------------------------------------------------------------
// Deadline watchdog: a single background thread that flips cancel flags when
// deadlines pass. Keeps the thread-flavoured backends' critical path free of
// thread spawns — the property that makes the CHERI backend the fastest row
// of Table 1.
// ---------------------------------------------------------------------------
class DeadlineWatchdog {
 public:
  static DeadlineWatchdog* Get() {
    static DeadlineWatchdog* instance = new DeadlineWatchdog();
    return instance;
  }

  // Registers a cancel flag to be set at `deadline`; returns a ticket used
  // to deregister.
  uint64_t Arm(dbase::Micros deadline, std::atomic<bool>* flag) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t ticket = next_ticket_++;
    entries_[ticket] = Entry{deadline, flag};
    // Wake the watchdog only when this deadline is sooner than the one it
    // is already sleeping toward. Arming is on every sandbox execution's
    // critical path; an unconditional notify would cost a futex wake (and,
    // on one core, a context switch) per function instance.
    if (deadline < sleeping_until_) {
      sleeping_until_ = deadline;
      cv_.notify_one();
    }
    return ticket;
  }

  void Disarm(uint64_t ticket) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(ticket);
  }

 private:
  struct Entry {
    dbase::Micros deadline;
    std::atomic<bool>* flag;
  };

  DeadlineWatchdog() {
    thread_ = std::thread([this] { Loop(); });
    thread_.detach();  // Process-lifetime singleton.
  }

  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (entries_.empty()) {
        sleeping_until_ = INT64_MAX;
        cv_.wait(lock);
        continue;
      }
      const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
      dbase::Micros nearest = INT64_MAX;
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.deadline <= now) {
          it->second.flag->store(true, std::memory_order_relaxed);
          it = entries_.erase(it);
        } else {
          nearest = std::min(nearest, it->second.deadline);
          ++it;
        }
      }
      if (nearest != INT64_MAX) {
        sleeping_until_ = nearest;
        cv_.wait_for(lock, std::chrono::microseconds(nearest - now + 100));
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> entries_;
  uint64_t next_ticket_ = 1;
  // Earliest deadline the loop is currently sleeping toward (guarded by
  // mu_); INT64_MAX while idle. May run stale-early after a Disarm, which
  // only causes a harmless spurious wake.
  dbase::Micros sleeping_until_ = INT64_MAX;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Thread-based sandbox (CHERI stand-in) + the cost-injecting variants.
// Executes inline on the engine's core — run-to-completion, no context
// switch (§5) — with the watchdog providing cooperative preemption.
// ---------------------------------------------------------------------------
class ThreadSandbox : public SandboxExecutor {
 public:
  ThreadSandbox(IsolationBackend backend, BackendCostModel costs)
      : backend_(backend), costs_(costs) {}

  ExecOutcome Execute(const dfunc::FunctionSpec& spec, MemoryContext& context,
                      const SandboxOptions& options) override {
    ExecOutcome outcome;
    outcome.timings.pool_hit = options.prewarmed;
    dbase::Stopwatch watch;

    // Binary load (modelled; §7.4 cached vs. uncached). A pre-warmed
    // sandbox loaded its binary at pool-fill time — nothing to pay here,
    // and the timing rows must say so (setup_us distinguishes pool-hit ~0
    // from a cold create).
    if (!options.prewarmed) {
      const dbase::Micros load = LoadCost(costs_, spec.binary_bytes, options.binary_cached);
      dbase::SpinFor(load);
    }
    outcome.timings.load_us = watch.ElapsedMicros();

    // Sandbox setup surcharge (VM enter for kvm-sim, runtime init for
    // wasm-sim; zero for the CHERI stand-in — its point is that a sandbox
    // is just a capability switch within the address space).
    watch.Restart();
    if (!options.prewarmed) {
      dbase::SpinFor(costs_.setup_us);
    }
    outcome.timings.setup_us = watch.ElapsedMicros();

    // Execute inline with a watchdog-enforced cooperative deadline. The
    // invocation's external cancel flag rides along: the body's
    // cancelled() poll returns true for either, and the outcome below
    // distinguishes timeout from cancellation.
    watch.Restart();
    const dbase::Micros timeout = EffectiveTimeout(spec, options);
    std::atomic<bool> cancel{false};
    const uint64_t ticket = DeadlineWatchdog::Get()->Arm(
        dbase::MonotonicClock::Get()->NowMicros() + timeout, &cancel);
    (void)RunFunctionBodyAgainstContext(spec, context, &cancel, options.cancel_flag,
                                        options.input_sets.get());
    DeadlineWatchdog::Get()->Disarm(ticket);
    const bool externally_cancelled =
        options.cancel_flag != nullptr && options.cancel_flag->load(std::memory_order_relaxed);
    const bool timed_out = cancel.load(std::memory_order_relaxed) && !externally_cancelled;
    dbase::Micros exec = watch.ElapsedMicros();

    // Emulate slower generated code by stretching execution time.
    if (costs_.compute_slowdown > 1.0 && !timed_out && !externally_cancelled) {
      const auto extra = static_cast<dbase::Micros>(
          static_cast<double>(exec) * (costs_.compute_slowdown - 1.0));
      dbase::SpinFor(extra);
      exec += extra;
    }
    outcome.timings.execute_us = exec;

    watch.Restart();
    if (externally_cancelled) {
      outcome.failure = dpolicy::FailureKind::kCancelKill;
      outcome.status = dbase::Cancelled(
          dbase::StrFormat("function '%s' cancelled", spec.name.c_str()));
    } else if (timed_out) {
      outcome.failure = dpolicy::FailureKind::kDeadlineKill;
      outcome.status = dbase::DeadlineExceeded(
          dbase::StrFormat("function '%s' exceeded %lld us timeout", spec.name.c_str(),
                           static_cast<long long>(timeout)));
    } else {
      // Zero-copy read-back when the caller pins the context; the copying
      // path otherwise (warm sandboxes recycle the context right after).
      auto outputs = options.context_keepalive != nullptr
                         ? context.LoadOutputSetsAliased(options.context_keepalive)
                         : context.LoadOutputSets();
      if (outputs.ok()) {
        outcome.outputs = std::move(outputs).value();
        outcome.status = dbase::OkStatus();
      } else {
        outcome.status = outputs.status();
      }
    }
    outcome.timings.output_us = watch.ElapsedMicros();
    return outcome;
  }

  IsolationBackend backend() const override { return backend_; }

 private:
  IsolationBackend backend_;
  BackendCostModel costs_;
};

// ---------------------------------------------------------------------------
// Process sandbox: real fork-based isolation.
// ---------------------------------------------------------------------------
class ProcessSandbox : public SandboxExecutor {
 public:
  explicit ProcessSandbox(BackendCostModel costs) : costs_(costs) {}

  ExecOutcome Execute(const dfunc::FunctionSpec& spec, MemoryContext& context,
                      const SandboxOptions& options) override {
    ExecOutcome outcome;
    dbase::Stopwatch watch;

    if (!context.shared()) {
      outcome.status =
          dbase::FailedPrecondition("process sandbox requires a shared memory context");
      return outcome;
    }

    if (!options.prewarmed) {
      const dbase::Micros load = LoadCost(costs_, spec.binary_bytes, options.binary_cached);
      dbase::SpinFor(load);
    }
    outcome.timings.load_us = watch.ElapsedMicros();

    watch.Restart();
    // Jail and fault decisions happen pre-fork: the child must never touch
    // lazily-initialised parent state (capability probe, injector lock).
    const bool install_jail =
        SyscallJailEnabled() && SandboxCapabilities::Get().seccomp_filter;
    FaultInjector& faults = FaultInjector::Get();
    const bool fault_crash_before =
        faults.ShouldFire(FaultPoint::kChildCrashBeforeOutcome);
    const bool fault_crash_partial =
        faults.ShouldFire(FaultPoint::kChildCrashAfterPartialWrite);
    const bool fault_forbidden = faults.ShouldFire(FaultPoint::kChildForbiddenSyscall);
    const pid_t pid = fork();
    if (pid < 0) {
      outcome.failure = dpolicy::FailureKind::kResourceExhausted;
      outcome.status = dbase::ResourceExhausted("fork failed");
      return outcome;
    }
    if (pid == 0) {
      // Child: the memory context is MAP_SHARED, so outcome writes are plain
      // stores the parent can read — and with the seccomp jail installed,
      // that is the child's *only* channel. Any syscall outside the
      // completion set kills it with SIGSYS; the parent decodes that death
      // as kJailKill.
      if (install_jail && InstallSyscallJail(JailOptions{}) != 0) {
        _exit(125);  // Jail refused to install: fail closed, never run unjailed.
      }
      if (fault_crash_before) __builtin_trap();
      if (fault_forbidden) {
        // Behaves like a confined function opening a file: under the jail
        // this call never returns; unjailed it is a harmless open+leak.
        (void)syscall(SYS_openat, AT_FDCWD, "/dev/null", O_RDONLY);
      }
      (void)RunFunctionBodyAgainstContext(spec, context, nullptr, nullptr);
      if (fault_crash_partial) {
        // Tear the outcome the body just wrote — plausible header, garbage
        // length — then die. The parent must discard the context and any
        // retry must re-marshal inputs instead of trusting these bytes.
        ContextHeader torn;
        torn.state = 0;
        torn.payload_len = context.capacity();
        context.WriteHeader(torn);
        __builtin_trap();
      }
      _exit(0);
    }
    outcome.timings.setup_us = watch.ElapsedMicros();

    watch.Restart();
    const dbase::Micros timeout = EffectiveTimeout(spec, options);
    const dbase::Micros deadline = dbase::MonotonicClock::Get()->NowMicros() + timeout;
    int wait_status = 0;
    bool timed_out = false;
    bool cancelled = false;
    while (true) {
      const pid_t done = waitpid(pid, &wait_status, WNOHANG);
      if (done == pid) {
        break;
      }
      if (done < 0) {
        outcome.status = dbase::Internal("waitpid failed");
        return outcome;
      }
      if (options.cancel_flag != nullptr &&
          options.cancel_flag->load(std::memory_order_relaxed)) {
        // Invocation cancelled: the process backend can hard-kill.
        kill(pid, SIGKILL);
        waitpid(pid, &wait_status, 0);
        cancelled = true;
        break;
      }
      if (dbase::MonotonicClock::Get()->NowMicros() > deadline) {
        kill(pid, SIGKILL);
        waitpid(pid, &wait_status, 0);
        timed_out = true;
        break;
      }
      std::this_thread::yield();
    }
    outcome.timings.execute_us = watch.ElapsedMicros();

    watch.Restart();
    const WaitDecode decode = DecodeWaitStatus(wait_status, spec.name);
    if (cancelled) {
      outcome.failure = dpolicy::FailureKind::kCancelKill;
      outcome.status = dbase::Cancelled(
          dbase::StrFormat("function '%s' killed on cancellation", spec.name.c_str()));
    } else if (timed_out) {
      outcome.failure = dpolicy::FailureKind::kDeadlineKill;
      outcome.status = dbase::DeadlineExceeded(
          dbase::StrFormat("function '%s' killed after %lld us timeout", spec.name.c_str(),
                           static_cast<long long>(timeout)));
    } else if (decode.kind != dpolicy::FailureKind::kNone) {
      outcome.failure = decode.kind;
      outcome.status = decode.status;
    } else {
      // The child wrote through the MAP_SHARED mapping; the parent-side
      // read-back can still alias it when the caller pins the context.
      auto outputs = options.context_keepalive != nullptr
                         ? context.LoadOutputSetsAliased(options.context_keepalive)
                         : context.LoadOutputSets();
      if (outputs.ok()) {
        outcome.outputs = std::move(outputs).value();
        outcome.status = dbase::OkStatus();
      } else {
        outcome.status = outputs.status();
      }
    }
    outcome.timings.output_us = watch.ElapsedMicros();
    return outcome;
  }

  IsolationBackend backend() const override { return IsolationBackend::kProcess; }

 private:
  BackendCostModel costs_;
};

}  // namespace

dbase::Micros ModeledLoadCostUs(const BackendCostModel& costs, uint64_t binary_bytes,
                                bool cached) {
  return LoadCost(costs, binary_bytes, cached);
}

WaitDecode DecodeWaitStatus(int wait_status, const std::string& function_name) {
  WaitDecode decode;
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    if (sig == SIGSYS) {
      // SECCOMP_RET_KILL_PROCESS delivers SIGSYS: the function attempted a
      // syscall outside the jail's completion set. That is the function's
      // own deterministic behaviour — permission denied, never retried.
      decode.kind = dpolicy::FailureKind::kJailKill;
      decode.status = dbase::PermissionDenied(
          dbase::StrFormat("function '%s' killed by syscall jail (SIGSYS): attempted a "
                           "forbidden syscall",
                           function_name.c_str()));
    } else {
      decode.kind = dpolicy::FailureKind::kCrash;
      decode.status = dbase::Internal(dbase::StrFormat("function '%s' crashed with signal %d",
                                                       function_name.c_str(), sig));
    }
  } else if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    decode.kind = dpolicy::FailureKind::kNonzeroExit;
    decode.status = dbase::Internal(
        dbase::StrFormat("function '%s' exited abnormally", function_name.c_str()));
  }
  return decode;
}

dbase::Status RunFunctionBodyAgainstContext(const dfunc::FunctionSpec& spec,
                                            MemoryContext& context,
                                            const std::atomic<bool>* timeout_flag,
                                            const std::atomic<bool>* invocation_cancel,
                                            const dfunc::DataSetList* preloaded_inputs) {
  dfunc::DataSetList input_sets;
  if (preloaded_inputs != nullptr) {
    // By-reference handoff: copying the list is refcount bumps for aliased
    // payloads, not byte copies.
    input_sets = *preloaded_inputs;
  } else {
    auto inputs = context.LoadInputSets();
    if (!inputs.ok()) {
      (void)context.StoreOutcome(inputs.status(), {});
      return inputs.status();
    }
    input_sets = std::move(inputs).value();
  }
  dfunc::FunctionCtx ctx(std::move(input_sets));
  ctx.set_cancel_flag(timeout_flag);
  ctx.set_invocation_cancel_flag(invocation_cancel);
  dbase::Status status = spec.body(ctx);
  if (status.ok()) {
    status = ctx.CollectFsOutputs();
  }
  (void)context.StoreOutcome(status, ctx.outputs());
  return status;
}

std::unique_ptr<SandboxExecutor> CreateSandboxExecutor(IsolationBackend backend) {
  return CreateSandboxExecutor(backend, BackendCostModel::Defaults(backend));
}

std::unique_ptr<SandboxExecutor> CreateSandboxExecutor(IsolationBackend backend,
                                                       const BackendCostModel& costs) {
  switch (backend) {
    case IsolationBackend::kProcess:
      return std::make_unique<ProcessSandbox>(costs);
    case IsolationBackend::kThread:
    case IsolationBackend::kKvmSim:
    case IsolationBackend::kWasmSim:
      return std::make_unique<ThreadSandbox>(backend, costs);
  }
  return nullptr;
}

}  // namespace dandelion
