// Memory contexts (§5): "a bounded, contiguous memory region with methods to
// read or write at particular offsets and methods to transfer data to other
// contexts." The dispatcher prepares one per function instance; engines hand
// it to the isolation backend; the accountant tracks platform-wide committed
// bytes (the metric in Figures 1 and 10).
//
// Contexts are backed by anonymous mmap with MAP_NORESERVE, so the reserved
// virtual size is the user-declared memory requirement while physical pages
// appear on demand — exactly the paper's demand-paging behaviour.
//
// Creating and destroying one mmap per instance serializes every invocation
// on the kernel's per-process mmap_lock (~30 µs each, flat across threads —
// the whole node caps near 33k instances/s regardless of cores). Private
// contexts therefore recycle their virtual regions through a bounded
// process-wide ContextPool: on release the touched extent is uncommitted
// with madvise(MADV_DONTNEED) — committed memory still tracks demand and
// the next user reads fresh zero pages, so no state survives between
// instances — while the VMA itself is reused, keeping mmap_lock off the
// hot path. Shared (MAP_SHARED, process-isolation) contexts are not pooled.
#ifndef SRC_RUNTIME_MEMORY_CONTEXT_H_
#define SRC_RUNTIME_MEMORY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/func/data.h"

namespace dandelion {

// Tracks committed context memory across the platform. Thread-safe. When a
// clock is attached, every change appends to a TimeSeries in MB — the
// committed-memory curves of Figures 1/10.
class MemoryAccountant {
 public:
  MemoryAccountant() = default;

  // Attaching a clock enables timeline recording.
  void AttachClock(const dbase::Clock* clock);

  void Acquire(uint64_t bytes);
  void Release(uint64_t bytes);

  uint64_t current_bytes() const { return current_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t total_acquired() const { return total_acquired_.load(std::memory_order_relaxed); }

  // Snapshot of the timeline (copies under lock).
  dbase::TimeSeries TimelineSnapshot() const;

 private:
  void RecordPoint();

  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> total_acquired_{0};

  mutable std::mutex mu_;
  const dbase::Clock* clock_ = nullptr;  // Guarded by mu_.
  dbase::TimeSeries timeline_;           // Guarded by mu_.
};

// Process-wide recycler of private context regions, keyed by capacity.
// Returned regions have had their touched extent MADV_DONTNEED'd, so a
// reused region is indistinguishable from a fresh mapping (zero pages,
// uncommitted) without paying mmap/munmap under the process mmap_lock.
class ContextPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t recycled = 0;
    uint64_t dropped = 0;
  };

  // Never destroyed (contexts may be released during static teardown).
  static ContextPool* Get();

  // A region of exactly `capacity` bytes, or nullptr on miss.
  char* Take(uint64_t capacity);
  // Uncommits [0, touched) and shelves the region for reuse. Returns false
  // when the pool is full — the caller munmaps as before.
  bool Put(char* region, uint64_t capacity, uint64_t touched);

  Stats stats() const;
  // Bounds the number of shelved regions (virtual address space, plus up
  // to kZeroExtentBytes of committed-but-zeroed pages each). 0 disables
  // pooling.
  void set_max_entries(size_t n);
  // Occupancy signal for the elasticity control plane: shelved regions and
  // the cap they count against.
  size_t entries() const;
  size_t max_entries() const;

  // Touched extents up to this size are zeroed in place on release instead
  // of uncommitted — cheaper than re-faulting the pages on reuse, with
  // committed-memory retention bounded by this × max_entries.
  static constexpr uint64_t kZeroExtentBytes = 64 * 1024;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<char*>> free_by_capacity_;
  size_t entries_ = 0;
  size_t max_entries_ = 64;
  Stats stats_;
};

// Wire protocol inside a context, shared with sandboxed children:
//   [u32 magic][i32 state][u64 payload_len][payload...]
// state: kPending before execution; a dbase::StatusCode after. The payload
// is a marshalled DataSetList (inputs before, outputs after) or an error
// message when state != OK.
struct ContextHeader {
  static constexpr uint32_t kMagic = 0x43545831;  // "CTX1"
  static constexpr int32_t kStatePending = -1;

  uint32_t magic = kMagic;
  int32_t state = kStatePending;
  uint64_t payload_len = 0;
};

class MemoryContext {
 public:
  // `shared` selects MAP_SHARED so a forked child's writes are visible to
  // the parent (process isolation backend); otherwise MAP_PRIVATE.
  static dbase::Result<std::unique_ptr<MemoryContext>> Create(uint64_t capacity,
                                                              MemoryAccountant* accountant,
                                                              bool shared = false);
  ~MemoryContext();

  MemoryContext(const MemoryContext&) = delete;
  MemoryContext& operator=(const MemoryContext&) = delete;

  uint64_t capacity() const { return capacity_; }
  // Payload bytes the header+payload protocol can hold. By-reference input
  // handoff still enforces this bound (outputs must marshal back into the
  // context), so under-declared memory fails identically on both paths.
  uint64_t payload_capacity() const { return capacity_ - kHeaderSize; }
  char* data() { return data_; }
  const char* data() const { return data_; }
  bool shared() const { return shared_; }

  dbase::Status WriteAt(uint64_t offset, std::string_view bytes);
  dbase::Result<std::string_view> ReadAt(uint64_t offset, uint64_t size) const;

  // Whether `ptr` points into this context's region — the self-alias guard
  // for direct marshalling (an output slice of this very context must not
  // be memcpy'd over itself).
  bool Contains(const void* ptr) const {
    const char* p = static_cast<const char*>(ptr);
    return p >= data_ && p < data_ + capacity_;
  }

  // Copies a range from another context ("methods to transfer data to other
  // contexts", §5). Ranges must be in bounds on both sides.
  dbase::Status TransferFrom(const MemoryContext& source, uint64_t src_offset,
                             uint64_t dst_offset, uint64_t size);

  // --- Header + marshalled-payload protocol --------------------------------
  // Serializes the sets after the header; fails with RESOURCE_EXHAUSTED when
  // the declared context size is too small (the user under-declared their
  // memory requirement).
  dbase::Status StoreInputSets(const dfunc::DataSetList& inputs);

  // Reads the header+payload the function left behind. Non-OK state becomes
  // that error Status.
  dbase::Result<dfunc::DataSetList> LoadOutputSets() const;

  // Zero-copy variant: output item payloads become slices aliasing this
  // context's memory, with `keepalive` (the owning shared_ptr of this
  // context) held until the last slice dies — so the region is not scrubbed
  // or recycled while downstream nodes still read it. Payloads below
  // kAliasReadbackMinBytes fall back to the copying path: pinning a whole
  // context for a few bytes would hold its committed pages hostage.
  dbase::Result<dfunc::DataSetList> LoadOutputSetsAliased(
      std::shared_ptr<const void> keepalive) const;

  // Minimum marshalled-output size worth aliasing on read-back.
  static constexpr uint64_t kAliasReadbackMinBytes = 64 * 1024;

  // Raw header access, used by sandbox children.
  ContextHeader ReadHeader() const;
  void WriteHeader(const ContextHeader& header);

  // In-place recycle for warm sandboxes that keep this mapping across
  // executions: applies the ContextPool scrub idiom to [0, extent) — small
  // extents are zeroed in place, large private ones MADV_DONTNEED'd back to
  // uncommitted zero pages, large shared (shmem-backed) ones hole-punched
  // with MADV_REMOVE (MADV_DONTNEED would not zero them: refaults repopulate
  // from the live shmem object) — and resets the touched high-water mark.
  // `extent` is clamped to capacity; callers widen it past touched() when
  // writes bypassed this object (a forked child's stores into a MAP_SHARED
  // region).
  void ScrubForReuse(uint64_t extent);
  uint64_t touched() const { return touched_; }

  // In-place execution protocol used inside sandboxes: read input payload,
  // overwrite with output payload.
  dbase::Result<dfunc::DataSetList> LoadInputSets() const;
  dbase::Status StoreOutcome(const dbase::Status& status, const dfunc::DataSetList& outputs);

 private:
  MemoryContext(char* data, uint64_t capacity, MemoryAccountant* accountant, bool shared)
      : data_(data), capacity_(capacity), accountant_(accountant), shared_(shared) {}

  static constexpr uint64_t kHeaderSize = 16;

  char* data_ = nullptr;
  uint64_t capacity_ = 0;
  MemoryAccountant* accountant_ = nullptr;
  bool shared_ = false;
  // High-water mark of bytes written through this object; on release only
  // this extent needs uncommitting. Writes that bypass WriteAt (a forked
  // child's stores into a MAP_SHARED region) are invisible here, which is
  // why shared contexts are never pooled.
  uint64_t touched_ = 0;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_MEMORY_CONTEXT_H_
