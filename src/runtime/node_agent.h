// NodeAgent: binds a Platform to the dnet wire (ROADMAP "Distributed data
// plane"). It embeds a dnet::NodeServer in the engine process and plugs
// the four wire duties into the runtime:
//
//   invoke  → per-class admission check (shed with kUnavailable+shed flag
//             at the caps, exactly like the HTTP frontend's 429), then
//             Platform::Submit with the deadline reconstructed from the
//             wire's relative remaining time;
//   cancel  → InvocationHandle::Cancel via an id-keyed inflight table
//             (also driven by the server's cancel-on-disconnect);
//   gossip  → an ElasticitySignals snapshot assembled from the engine and
//             dispatcher stats plus the recently-served composition list
//             (the router's locality + membership input);
//   mesh    → serve a carried service-mesh request against the local mesh
//             and report the modelled latency back.
//
// Dispatch setup and mesh serving run on a small offload pool so the wire
// loop thread never leaves socket work.
#ifndef SRC_RUNTIME_NODE_AGENT_H_
#define SRC_RUNTIME_NODE_AGENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/net/node_server.h"
#include "src/runtime/platform.h"

namespace dandelion {

struct NodeAgentConfig {
  std::string node_name = "node";
  // 0 picks an ephemeral port; the bound port is readable via port().
  uint16_t port = 0;
  // Per-class admission caps, same semantics as the HTTP frontend's:
  // arriving work beyond the cap is shed immediately (kUnavailable with
  // the shed frame flag) instead of queueing blindly. 0 = uncapped.
  size_t max_inflight_interactive = 256;
  size_t max_inflight_batch = 256;
  // How many recently-served composition names travel in gossip (the
  // locality signal); oldest drop first.
  size_t max_resident_gossip = 64;
  dnet::FrameLimits limits;
  // Offload threads for dispatch setup and mesh serving.
  int dispatch_threads = 2;
};

class NodeAgent {
 public:
  NodeAgent(Platform* platform, NodeAgentConfig config);
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  dbase::Status Start();
  void Stop();

  uint16_t port() const { return server_.port(); }
  const std::string& node_name() const { return config_.node_name; }
  const dnet::NodeServer& server() const { return server_; }

  // Counters for statz/tests (thread-safe).
  uint64_t invocations_served() const { return served_.load(std::memory_order_relaxed); }
  uint64_t invocations_shed() const { return shed_.load(std::memory_order_relaxed); }

  // The gossip snapshot; also callable directly by tests.
  dnet::WireNodeStatus BuildStatus();

 private:
  void HandleInvoke(dnet::WireInvoke invoke, dnet::NodeServer::OutcomeFn done);
  void HandleCancel(uint64_t invocation_id);
  void HandleMesh(std::string request, dnet::NodeServer::MeshReplyFn done);
  void NoteServed(const std::string& composition);

  Platform* const platform_;
  NodeAgentConfig config_;
  dnet::NodeServer server_;
  std::unique_ptr<dbase::WorkerPool> dispatch_pool_;
  std::atomic<bool> running_{false};

  // Admission gauges (the wire-side analogue of the frontend's
  // InvokeCounters).
  std::atomic<int64_t> inflight_[kNumPriorityClasses] = {};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> shed_{0};

  // Accepted work whose completion has not fired yet. Completions touch
  // this object and post into the server's loop, so Stop() drains to zero
  // before returning — otherwise a late engine completion would re-enter a
  // destroyed agent.
  std::atomic<int64_t> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  // Cancel currency: invocation id → handle, while in flight. An id whose
  // completion outran Submit's return parks in completed_early_ so the
  // submit side skips the (now pointless) handle insert.
  std::mutex inflight_mu_;
  std::map<uint64_t, InvocationHandle> inflight_handles_;
  std::set<uint64_t> completed_early_;

  // Recently-served compositions, most recent last (gossip residency).
  std::mutex resident_mu_;
  std::deque<std::string> resident_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_NODE_AGENT_H_
