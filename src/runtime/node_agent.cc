#include "src/runtime/node_agent.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/http/sanitizer.h"

namespace dandelion {

NodeAgent::NodeAgent(Platform* platform, NodeAgentConfig config)
    : platform_(platform),
      config_(std::move(config)),
      server_([this] {
        dnet::NodeServer::Config server_config;
        server_config.port = config_.port;
        server_config.node_name = config_.node_name;
        server_config.limits = config_.limits;
        return server_config;
      }()) {
  server_.set_invoke_handler([this](dnet::WireInvoke invoke, dnet::NodeServer::OutcomeFn done) {
    HandleInvoke(std::move(invoke), std::move(done));
  });
  server_.set_cancel_handler([this](uint64_t invocation_id) { HandleCancel(invocation_id); });
  server_.set_status_provider([this] { return BuildStatus(); });
  server_.set_mesh_handler([this](std::string request, dnet::NodeServer::MeshReplyFn done) {
    HandleMesh(std::move(request), std::move(done));
  });
}

NodeAgent::~NodeAgent() { Stop(); }

dbase::Status NodeAgent::Start() {
  if (running_.exchange(true, std::memory_order_relaxed)) {
    return dbase::FailedPrecondition("NodeAgent already started");
  }
  if (config_.dispatch_threads > 0) {
    dispatch_pool_ =
        std::make_unique<dbase::WorkerPool>(config_.dispatch_threads, "node-dispatch");
  }
  return server_.Start();
}

void NodeAgent::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  // Stopping the server joins its loop thread: no new invokes or mesh
  // calls can be accepted past this point.
  server_.Stop();
  // Cancel whatever a (possibly dead) router still owes us an answer for,
  // then wait for every accepted completion to fire: those callbacks touch
  // this object and post into the server's loop, so returning with one
  // pending would hand a dangling agent to an engine thread. The dispatch
  // pool stays up through the drain — queued submits must run, not leak.
  std::vector<InvocationHandle> handles;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    handles.reserve(inflight_handles_.size());
    for (auto& [id, handle] : inflight_handles_) {
      handles.push_back(handle);
    }
  }
  for (auto& handle : handles) {
    handle.Cancel();
  }
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock,
                   [this] { return outstanding_.load(std::memory_order_acquire) == 0; });
  }
  if (dispatch_pool_ != nullptr) {
    dispatch_pool_->Shutdown();
    dispatch_pool_.reset();
  }
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_handles_.clear();
  completed_early_.clear();
}

void NodeAgent::NoteServed(const std::string& composition) {
  std::lock_guard<std::mutex> lock(resident_mu_);
  auto it = std::find(resident_.begin(), resident_.end(), composition);
  if (it != resident_.end()) {
    resident_.erase(it);
  }
  resident_.push_back(composition);
  while (resident_.size() > config_.max_resident_gossip) {
    resident_.pop_front();
  }
}

void NodeAgent::HandleInvoke(dnet::WireInvoke invoke, dnet::NodeServer::OutcomeFn done) {
  const PriorityClass priority =
      invoke.priority == static_cast<uint8_t>(PriorityClass::kBatch) ? PriorityClass::kBatch
                                                                     : PriorityClass::kInteractive;
  // Admission: shed at the per-class cap with the re-routable marker, the
  // wire analogue of the frontend's 429.
  const size_t cap = priority == PriorityClass::kBatch ? config_.max_inflight_batch
                                                       : config_.max_inflight_interactive;
  const int klass = static_cast<int>(priority);
  if (cap != 0) {
    const int64_t now_inflight = inflight_[klass].fetch_add(1, std::memory_order_relaxed);
    if (static_cast<size_t>(now_inflight) >= cap) {
      inflight_[klass].fetch_sub(1, std::memory_order_relaxed);
      shed_.fetch_add(1, std::memory_order_relaxed);
      dnet::WireOutcome outcome;
      outcome.code = dbase::StatusCode::kUnavailable;
      outcome.message = "node at capacity";
      outcome.shed = true;
      done(std::move(outcome));
      return;
    }
  } else {
    inflight_[klass].fetch_add(1, std::memory_order_relaxed);
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);

  InvocationRequest request;
  request.composition = std::move(invoke.composition);
  request.args = std::move(invoke.args);
  request.priority = priority;
  request.id = invoke.invocation_id;
  if (invoke.remaining_deadline_us > 0) {
    // The wire carries time *remaining*; absolute monotonic stamps do not
    // transfer between processes. Clamp it: a corrupt or hostile value must
    // not overflow now+remaining into the past, nor park a reaper entry in
    // the unreachable future.
    constexpr dbase::Micros kMaxRemoteDeadlineUs = 24ll * 3600 * dbase::kMicrosPerSecond;
    request.deadline_us = InvocationRequest::DeadlineIn(
        std::min(invoke.remaining_deadline_us, kMaxRemoteDeadlineUs));
  }
  NoteServed(request.composition);

  const uint64_t invocation_id = request.id;
  auto submit = [this, request = std::move(request), done = std::move(done), invocation_id,
                 klass]() mutable {
    // The handle is captured by the completion so the report (failure
    // kind, absorbed retries) is readable at outcome-build time.
    auto handle = std::make_shared<InvocationHandle>();
    auto callback = [this, done = std::move(done), handle, invocation_id,
                     klass](dbase::Result<dfunc::DataSetList> result) {
      inflight_[klass].fetch_sub(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      if (invocation_id != 0) {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        // The completion can outrun Submit's return: leave a token so the
        // submit side knows not to insert a handle for a dead invocation.
        if (inflight_handles_.erase(invocation_id) == 0) {
          completed_early_.insert(invocation_id);
        }
      }
      dnet::WireOutcome outcome;
      const InvocationReport report = handle->Report();
      outcome.failure_kind = static_cast<uint8_t>(report.failure_kind);
      outcome.retries_attempted = static_cast<uint32_t>(report.retries_attempted);
      if (result.ok()) {
        outcome.code = dbase::StatusCode::kOk;
        outcome.sets = std::move(result).value();
      } else {
        outcome.code = result.status().code();
        outcome.message = result.status().message();
      }
      done(std::move(outcome));
      {
        std::lock_guard<std::mutex> drain_lock(drain_mu_);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      }
      drain_cv_.notify_all();
    };
    *handle = platform_->Submit(std::move(request), std::move(callback));
    if (invocation_id != 0) {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (completed_early_.erase(invocation_id) == 0) {
        inflight_handles_[invocation_id] = *handle;
      }
    }
  };
  if (dispatch_pool_ != nullptr && dispatch_pool_->Submit(submit)) {
    return;
  }
  submit();
}

void NodeAgent::HandleCancel(uint64_t invocation_id) {
  InvocationHandle handle;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_handles_.find(invocation_id);
    if (it == inflight_handles_.end()) {
      return;
    }
    handle = it->second;
  }
  handle.Cancel();
}

void NodeAgent::HandleMesh(std::string request, dnet::NodeServer::MeshReplyFn done) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto serve = [this, request = std::move(request), done = std::move(done)]() {
    dnet::WireMeshReply reply;
    auto sanitized = dhttp::SanitizeRequest(request);
    if (!sanitized.ok()) {
      reply.response = dhttp::HttpResponse::BadRequest(sanitized.status().ToString()).Serialize();
    } else {
      dhttp::MeshCallResult result = platform_->mesh().Call(*sanitized);
      reply.latency_us = result.latency_us;
      reply.response = result.response.Serialize();
    }
    done(std::move(reply));
    {
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
  };
  if (dispatch_pool_ != nullptr && dispatch_pool_->Submit(serve)) {
    return;
  }
  serve();
}

dnet::WireNodeStatus NodeAgent::BuildStatus() {
  dnet::WireNodeStatus status;
  status.node_name = config_.node_name;
  const EngineStats engines = platform_->engine_stats();
  const DispatcherStats dispatch = platform_->dispatcher_stats();
  dpolicy::ElasticitySignals& s = status.signals;
  s.now_us = dbase::MonotonicClock::Get()->NowMicros();
  s.compute_workers = engines.compute_workers;
  s.comm_workers = engines.comm_workers;
  s.compute_backlog = engines.compute_queue_len;
  s.comm_backlog = engines.comm_queue_len;
  s.interactive_compute_backlog = engines.compute_urgent_queue_len;
  s.interactive_comm_backlog = engines.comm_urgent_queue_len;
  s.inflight_interactive = dispatch.inflight_interactive;
  s.inflight_batch = dispatch.inflight_batch;
  s.admission_shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = dispatch.invocations_deadline_exceeded;
  s.sandbox_failures = dispatch.sandbox_failures;
  s.breaker_fast_fails = dispatch.breaker_fast_fails;
  s.breakers_open = dispatch.breakers_open;
  if (SandboxPool* pool = platform_->sandbox_pool(); pool != nullptr) {
    const SandboxPoolStats warm = pool->Stats();
    s.warm_pool_shelved = static_cast<uint64_t>(warm.shelved);
    s.warm_pool_misses = warm.misses;
  }
  status.inflight = dispatch.inflight_interactive + dispatch.inflight_batch;
  status.admission_cap = config_.max_inflight_interactive + config_.max_inflight_batch;
  {
    std::lock_guard<std::mutex> lock(resident_mu_);
    status.resident_compositions.assign(resident_.begin(), resident_.end());
  }
  return status;
}

}  // namespace dandelion
