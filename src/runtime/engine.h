// Engines (§5): compute engines run one sandboxed task at a time to
// completion on a dedicated core; communication engines run many requests
// cooperatively. A WorkerSet owns one worker thread per core; the control
// plane re-labels workers between the two roles at runtime ("re-assigns a
// CPU core from the communication engine type to the compute engine type").
#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "src/base/clock.h"
#include "src/base/sharded_queue.h"
#include "src/base/stats.h"
#include "src/base/thread.h"
#include "src/func/registry.h"
#include "src/http/service_mesh.h"
#include "src/runtime/comm_function.h"
#include "src/runtime/invocation.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/sandbox.h"
#include "src/runtime/sandbox_pool.h"

namespace dandelion {

enum class EngineType { kCompute, kCommunication };

// A unit of compute work: a prepared memory context plus metadata. The
// engine invokes `done` exactly once with the outcome. When `control` is
// set, the task belongs to a tracked invocation: its class picks the queue
// lane, a task of a dead invocation is dropped at dequeue (done fires with
// the terminal status, the sandbox never runs), and the invocation
// deadline clamps the sandbox timeout.
struct ComputeTask {
  dfunc::FunctionSpec spec;
  std::shared_ptr<MemoryContext> context;
  SandboxOptions options;
  std::function<void(ExecOutcome)> done;
  dbase::Micros enqueue_time_us = 0;
  std::shared_ptr<InvocationControl> control;
  // Set when the dispatcher got a pool hit: `context` aliases the warm
  // sandbox's context and the engine executes via the warm sandbox instead
  // of the cold executor, releasing it back to the pool afterwards.
  std::shared_ptr<WarmSandbox> warm;
};

// A unit of communication work: raw request bytes produced by an untrusted
// function. The engine sanitizes, dispatches to the service mesh, and
// returns the serialized response (or an HTTP-level error — §4.4 failure
// forwarding). `handler` selects the communication function (HTTP when
// empty); handlers are trusted platform code. A dead invocation's comm
// task skips the mesh call and modelled latency entirely.
struct CommTask {
  // A Payload, not a string: the producing function's output item usually
  // aliases its memory context or the frontend request body, and the comm
  // engine only ever reads it (string_view into the handler).
  dfunc::Payload raw_request;
  std::function<CommCallResult(dhttp::ServiceMesh&, std::string_view)> handler;
  std::function<void(dhttp::HttpResponse, dbase::Micros latency_us)> done;
  dbase::Micros enqueue_time_us = 0;
  std::shared_ptr<InvocationControl> control;
};

struct EngineStats {
  uint64_t compute_tasks = 0;
  uint64_t comm_tasks = 0;
  // Tasks dequeued after their invocation died (cancelled / past deadline):
  // dropped without entering a sandbox or calling the mesh.
  uint64_t compute_aborted = 0;
  uint64_t comm_aborted = 0;
  uint64_t compute_queue_len = 0;
  uint64_t comm_queue_len = 0;
  // Urgent-lane (interactive + untracked legacy) share of the backlogs.
  uint64_t compute_urgent_queue_len = 0;
  uint64_t comm_urgent_queue_len = 0;
  // Comm requests currently in flight on comm engines (occupied green
  // threads, mesh call issued but modelled latency not yet elapsed).
  uint64_t comm_inflight = 0;
  int compute_workers = 0;
  int comm_workers = 0;
  // Per-shard backlog (one entry per worker) and cumulative steals, so
  // operators can see imbalance the aggregate depth hides.
  std::vector<uint64_t> compute_shard_depths;
  std::vector<uint64_t> comm_shard_depths;
  uint64_t compute_steals = 0;
  uint64_t comm_steals = 0;
  // Queue-wait (enqueue → dequeue) distribution, µs. Approximate (log2
  // buckets); the control plane's growth signal is exact, this is for
  // operators.
  uint64_t compute_wait_p50_us = 0;
  uint64_t compute_wait_p99_us = 0;
  uint64_t comm_wait_p50_us = 0;
  uint64_t comm_wait_p99_us = 0;
};

// The pool of engine workers. Task queues are sharded per worker: a worker
// pops its own shard first and steals from siblings before sleeping, so
// dispatch scales past the single-mutex ceiling while keeping late binding
// of tasks to cores (§5). Submissions route to a shard whose worker holds
// the matching role; role shifts re-home the departed shard's residue.
class WorkerSet {
 public:
  struct Config {
    int num_workers = 4;
    int initial_comm_workers = 1;
    IsolationBackend backend = IsolationBackend::kThread;
    // Fraction of compute tasks whose binary misses the in-memory cache
    // (Fig. 6 loads from disk for 3% of requests).
    double binary_cold_fraction = 0.0;
    bool pin_threads = false;
    // Max in-flight requests per communication worker ("green threads").
    int comm_parallelism = 64;
  };

  WorkerSet(Config config, dhttp::ServiceMesh* mesh);
  ~WorkerSet();

  WorkerSet(const WorkerSet&) = delete;
  WorkerSet& operator=(const WorkerSet&) = delete;

  bool SubmitCompute(ComputeTask task);
  // Lands the whole batch on one shard in a single queue crossing — the
  // dispatcher's amortized path for each/key fan-outs. All-or-nothing:
  // returns false (dropping the batch) when the engines are shut down.
  bool SubmitComputeBatch(std::vector<ComputeTask> tasks);
  bool SubmitComm(CommTask task);

  // Control-plane hooks: move one worker between roles. Returns false when
  // the source role is at its minimum of one worker.
  bool ShiftWorkerToCompute();
  bool ShiftWorkerToComm();
  // Multi-core shift: moves up to |n| workers toward compute (n > 0) or
  // toward comm (n < 0), stopping at one worker per role. Returns the
  // signed count actually moved.
  int ShiftWorkers(int n);

  int compute_workers() const;
  int comm_workers() const;
  int total_workers() const { return static_cast<int>(roles_.size()); }

  // Cumulative queue counters for controller error signals.
  uint64_t compute_pushed() const { return compute_queue_.total_pushed(); }
  uint64_t compute_popped() const { return compute_queue_.total_popped(); }
  uint64_t comm_pushed() const { return comm_queue_.total_pushed(); }
  uint64_t comm_popped() const { return comm_queue_.total_popped(); }

  // One coherent control-plane sample. Cumulative counters plus
  // instantaneous backlogs/occupancy; the split is read once so
  // compute_workers + comm_workers always equals the pool size even when a
  // role shift races the snapshot.
  struct SignalsSnapshot {
    uint64_t compute_pushed = 0;
    uint64_t compute_popped = 0;
    uint64_t comm_pushed = 0;
    uint64_t comm_popped = 0;
    uint64_t compute_backlog = 0;
    uint64_t comm_backlog = 0;
    uint64_t compute_urgent_backlog = 0;
    uint64_t comm_urgent_backlog = 0;
    uint64_t comm_inflight = 0;
    int compute_workers = 0;
    int comm_workers = 0;
    int comm_parallelism = 1;
  };
  SignalsSnapshot Signals() const;

  EngineStats Stats() const;

  // Latency the mesh modelled for completed comm calls is *slept* by the
  // worker (real runtime) unless disabled (unit tests).
  void set_sleep_for_modeled_latency(bool enabled) { sleep_latency_ = enabled; }

  // When set, tasks carrying a warm sandbox release it back to this pool
  // after execution (and on the dead-invocation drop path). The pool must
  // outlive the worker set; the Platform owns both in that order.
  void set_sandbox_pool(SandboxPool* pool) { sandbox_pool_ = pool; }

  void Shutdown();

 private:
  // A comm request whose mesh call completed but whose modelled network
  // latency has not yet elapsed — the cooperative runtime's pending I/O.
  struct InFlight {
    dbase::Micros ready_at_us = 0;
    dhttp::HttpResponse response;
    dbase::Micros latency_us = 0;
    std::function<void(dhttp::HttpResponse, dbase::Micros)> done;
  };

  void WorkerLoop(int index);
  // Shard of a worker currently holding `role`, preferring the least
  // loaded by the queue's lock-free approximate depth — the submit path
  // takes no shard lock beyond the final push; any shard when no worker
  // matches (stealing then redistributes).
  template <typename Task>
  size_t PickShard(EngineType role, const dbase::ShardedTaskQueue<Task>& queue) const {
    // The scan start rotates so depth ties (the common all-zero idle case)
    // spread round-robin instead of funneling every submission onto the
    // lowest-index shard — strict less-than keeps the first of a tie.
    const size_t n = roles_.size();
    const size_t start = submit_rr_.fetch_add(1, std::memory_order_relaxed);
    size_t best = static_cast<size_t>(-1);
    size_t best_depth = 0;
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (start + k) % n;
      if (roles_[i]->load(std::memory_order_relaxed) != role) {
        continue;
      }
      const size_t depth = queue.ApproxShardSize(i);
      if (best == static_cast<size_t>(-1) || depth < best_depth) {
        best = i;
        best_depth = depth;
      }
    }
    if (best != static_cast<size_t>(-1)) {
      return best;
    }
    // No worker currently holds the role (transient during shifts): any
    // shard; stealing and re-homing redistribute.
    return start % n;
  }
  // Shards of all workers currently holding `role`, except `excluding`.
  std::vector<size_t> ShardsWithRole(EngineType role, size_t excluding) const;
  void RunComputeTask(ComputeTask task);
  // Issues the mesh call and appends the pending completion to `inflight`.
  void StartCommTask(CommTask task, std::vector<InFlight>* inflight);
  void CompleteDue(std::vector<InFlight>* inflight, dbase::Micros now);

  Config config_;
  dhttp::ServiceMesh* mesh_;
  std::unique_ptr<SandboxExecutor> sandbox_;
  SandboxPool* sandbox_pool_ = nullptr;  // Set before workers start; optional.
  dbase::ShardedTaskQueue<ComputeTask> compute_queue_;
  dbase::ShardedTaskQueue<CommTask> comm_queue_;
  std::vector<std::unique_ptr<std::atomic<EngineType>>> roles_;
  std::vector<dbase::JoiningThread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> sleep_latency_{true};
  std::atomic<uint64_t> compute_done_{0};
  std::atomic<uint64_t> comm_done_{0};
  std::atomic<uint64_t> compute_aborted_{0};
  std::atomic<uint64_t> comm_aborted_{0};
  // Occupied comm green threads across workers (incremented when a mesh
  // call is issued, decremented when its modelled latency elapses).
  std::atomic<int64_t> comm_inflight_{0};
  std::atomic<uint64_t> cold_counter_{0};
  // Fallback rotation for submissions racing a role shift.
  mutable std::atomic<uint64_t> submit_rr_{0};

  mutable std::mutex wait_mu_;
  dbase::LogHistogram compute_wait_us_;  // Guarded by wait_mu_.
  dbase::LogHistogram comm_wait_us_;     // Guarded by wait_mu_.
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_ENGINE_H_
