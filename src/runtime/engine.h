// Engines (§5): compute engines run one sandboxed task at a time to
// completion on a dedicated core; communication engines run many requests
// cooperatively. A WorkerSet owns one worker thread per core; the control
// plane re-labels workers between the two roles at runtime ("re-assigns a
// CPU core from the communication engine type to the compute engine type").
#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "src/base/clock.h"
#include "src/base/queue.h"
#include "src/base/stats.h"
#include "src/base/thread.h"
#include "src/func/registry.h"
#include "src/http/service_mesh.h"
#include "src/runtime/comm_function.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/sandbox.h"

namespace dandelion {

enum class EngineType { kCompute, kCommunication };

// A unit of compute work: a prepared memory context plus metadata. The
// engine invokes `done` exactly once with the outcome.
struct ComputeTask {
  dfunc::FunctionSpec spec;
  std::shared_ptr<MemoryContext> context;
  SandboxOptions options;
  std::function<void(ExecOutcome)> done;
  dbase::Micros enqueue_time_us = 0;
};

// A unit of communication work: raw request bytes produced by an untrusted
// function. The engine sanitizes, dispatches to the service mesh, and
// returns the serialized response (or an HTTP-level error — §4.4 failure
// forwarding). `handler` selects the communication function (HTTP when
// empty); handlers are trusted platform code.
struct CommTask {
  std::string raw_request;
  std::function<CommCallResult(dhttp::ServiceMesh&, std::string_view)> handler;
  std::function<void(dhttp::HttpResponse, dbase::Micros latency_us)> done;
  dbase::Micros enqueue_time_us = 0;
};

struct EngineStats {
  uint64_t compute_tasks = 0;
  uint64_t comm_tasks = 0;
  uint64_t compute_queue_len = 0;
  uint64_t comm_queue_len = 0;
  int compute_workers = 0;
  int comm_workers = 0;
  // Queue-wait (enqueue → dequeue) distribution, µs. Approximate (log2
  // buckets); the control plane's growth signal is exact, this is for
  // operators.
  uint64_t compute_wait_p50_us = 0;
  uint64_t compute_wait_p99_us = 0;
  uint64_t comm_wait_p50_us = 0;
  uint64_t comm_wait_p99_us = 0;
};

// The pool of engine workers. Task queues are shared — engines poll the
// queue for their current role, giving late binding of tasks to cores (§5).
class WorkerSet {
 public:
  struct Config {
    int num_workers = 4;
    int initial_comm_workers = 1;
    IsolationBackend backend = IsolationBackend::kThread;
    // Fraction of compute tasks whose binary misses the in-memory cache
    // (Fig. 6 loads from disk for 3% of requests).
    double binary_cold_fraction = 0.0;
    bool pin_threads = false;
    // Max in-flight requests per communication worker ("green threads").
    int comm_parallelism = 64;
  };

  WorkerSet(Config config, dhttp::ServiceMesh* mesh);
  ~WorkerSet();

  WorkerSet(const WorkerSet&) = delete;
  WorkerSet& operator=(const WorkerSet&) = delete;

  bool SubmitCompute(ComputeTask task);
  bool SubmitComm(CommTask task);

  // Control-plane hooks: move one worker between roles. Returns false when
  // the source role is at its minimum of one worker.
  bool ShiftWorkerToCompute();
  bool ShiftWorkerToComm();

  int compute_workers() const;
  int comm_workers() const;

  // Cumulative queue counters for controller error signals.
  uint64_t compute_pushed() const { return compute_queue_.total_pushed(); }
  uint64_t compute_popped() const { return compute_queue_.total_popped(); }
  uint64_t comm_pushed() const { return comm_queue_.total_pushed(); }
  uint64_t comm_popped() const { return comm_queue_.total_popped(); }

  EngineStats Stats() const;

  // Latency the mesh modelled for completed comm calls is *slept* by the
  // worker (real runtime) unless disabled (unit tests).
  void set_sleep_for_modeled_latency(bool enabled) { sleep_latency_ = enabled; }

  void Shutdown();

 private:
  // A comm request whose mesh call completed but whose modelled network
  // latency has not yet elapsed — the cooperative runtime's pending I/O.
  struct InFlight {
    dbase::Micros ready_at_us = 0;
    dhttp::HttpResponse response;
    dbase::Micros latency_us = 0;
    std::function<void(dhttp::HttpResponse, dbase::Micros)> done;
  };

  void WorkerLoop(int index);
  void RunComputeTask(ComputeTask task);
  // Issues the mesh call and appends the pending completion to `inflight`.
  void StartCommTask(CommTask task, std::vector<InFlight>* inflight);
  static void CompleteDue(std::vector<InFlight>* inflight, dbase::Micros now);

  Config config_;
  dhttp::ServiceMesh* mesh_;
  std::unique_ptr<SandboxExecutor> sandbox_;
  dbase::MpmcQueue<ComputeTask> compute_queue_;
  dbase::MpmcQueue<CommTask> comm_queue_;
  std::vector<std::unique_ptr<std::atomic<EngineType>>> roles_;
  std::vector<dbase::JoiningThread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> sleep_latency_{true};
  std::atomic<uint64_t> compute_done_{0};
  std::atomic<uint64_t> comm_done_{0};
  std::atomic<uint64_t> cold_counter_{0};

  mutable std::mutex wait_mu_;
  dbase::LogHistogram compute_wait_us_;  // Guarded by wait_mu_.
  dbase::LogHistogram comm_wait_us_;     // Guarded by wait_mu_.
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_ENGINE_H_
