// seccomp-BPF syscall jail for kProcess sandbox children (the ROADMAP "Real
// syscall jail" item). The paper ptrace-jails every process sandbox so any
// syscall kills it; seccomp-BPF gets the same containment without a tracer
// context switch per syscall. The filter is installed in the child after
// fork (cold path) or after the Arm() ack (pooled template), allows only the
// minimal completion set a pure Dandelion function needs — memory
// management, futex, clock reads, stderr writes, the go-pipe read, exit —
// and kills the process (SIGSYS via SECCOMP_RET_KILL_PROCESS) on anything
// else. The parent decodes that death as FailureKind::kJailKill.
#ifndef SRC_RUNTIME_JAIL_H_
#define SRC_RUNTIME_JAIL_H_

#include <string>

namespace dandelion {

// Probed once at first use: whether this kernel accepts
// SECCOMP_SET_MODE_FILTER. When false, kProcess children run unconfined
// (the pre-jail behaviour) and tests/statz report the fallback explicitly.
struct SandboxCapabilities {
  bool seccomp_filter = false;
  std::string detail;  // Human-readable probe outcome for /statz and logs.

  static const SandboxCapabilities& Get();
};

// Process-wide switch (default on). Benches toggle it to measure what
// confinement costs; it only gates *installation* — capability probing is
// unaffected.
bool SyscallJailEnabled();
void SetSyscallJailEnabled(bool enabled);

struct JailOptions {
  // Pooled template children park on a go-pipe read; the filter permits
  // read(2) only on this fd. -1 forbids read entirely (cold children have
  // no pipe to wait on).
  int allow_read_fd = -1;
};

// Installs the filter in the calling (child) process. Async-signal-safe:
// no allocation, no locks — callable between fork and exec^W the function
// body. Returns 0 on success, -errno on failure. Callers must have decided
// *before* forking whether to install (capability + enabled flag), so the
// child never touches lazily-initialised state.
int InstallSyscallJail(const JailOptions& options);

}  // namespace dandelion

#endif  // SRC_RUNTIME_JAIL_H_
