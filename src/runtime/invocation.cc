#include "src/runtime/invocation.h"

namespace dandelion {

std::string_view PriorityClassName(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "?";
}

dbase::Result<PriorityClass> PriorityClassFromName(std::string_view name) {
  if (name == "interactive") {
    return PriorityClass::kInteractive;
  }
  if (name == "batch") {
    return PriorityClass::kBatch;
  }
  return dbase::InvalidArgument("unknown priority class: " + std::string(name));
}

std::string_view InvocationPhaseName(InvocationPhase phase) {
  switch (phase) {
    case InvocationPhase::kPending:
      return "pending";
    case InvocationPhase::kRunning:
      return "running";
    case InvocationPhase::kSucceeded:
      return "succeeded";
    case InvocationPhase::kFailed:
      return "failed";
    case InvocationPhase::kCancelled:
      return "cancelled";
    case InvocationPhase::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

dbase::Micros InvocationRequest::DeadlineIn(dbase::Micros from_now_us) {
  return dbase::MonotonicClock::Get()->NowMicros() + from_now_us;
}

InvocationControl::InvocationControl(uint64_t id, PriorityClass priority,
                                     dbase::Micros deadline_us, dbase::Micros submit_time_us)
    : id_(id), priority_(priority), deadline_us_(deadline_us), submit_time_us_(submit_time_us) {}

void InvocationControl::RequestStop(dbase::StatusCode reason) {
  // First reason wins: record it before publishing the flag so a reader
  // that observes stop_ always sees a reason.
  int expected = 0;
  stop_reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
}

bool InvocationControl::done() const {
  const auto phase = static_cast<InvocationPhase>(phase_.load(std::memory_order_acquire));
  return phase != InvocationPhase::kPending && phase != InvocationPhase::kRunning;
}

dbase::Status InvocationControl::RetireStatus(dbase::Micros now_us) {
  if (stop_.load(std::memory_order_acquire)) {
    const auto reason = static_cast<dbase::StatusCode>(stop_reason_.load(std::memory_order_relaxed));
    if (reason == dbase::StatusCode::kDeadlineExceeded) {
      return dbase::DeadlineExceeded("invocation deadline exceeded");
    }
    return dbase::Cancelled("invocation cancelled");
  }
  if (deadline_us_ > 0 && now_us >= deadline_us_) {
    // Trip the kill switch so running siblings stop cooperatively too.
    RequestStop(dbase::StatusCode::kDeadlineExceeded);
    return dbase::DeadlineExceeded("invocation deadline exceeded");
  }
  return dbase::OkStatus();
}

void InvocationControl::MarkFirstRun(dbase::Micros now_us) {
  dbase::Micros expected = 0;
  first_run_us_.compare_exchange_strong(expected, now_us, std::memory_order_relaxed);
  int phase_expected = static_cast<int>(InvocationPhase::kPending);
  phase_.compare_exchange_strong(phase_expected, static_cast<int>(InvocationPhase::kRunning),
                                 std::memory_order_release);
}

void InvocationControl::MarkDone(InvocationPhase phase, dbase::Micros now_us) {
  dbase::Micros expected = 0;
  finish_us_.compare_exchange_strong(expected, now_us, std::memory_order_relaxed);
  phase_.store(static_cast<int>(phase), std::memory_order_release);
}

InvocationReport InvocationControl::Report() const {
  InvocationReport report;
  report.id = id_;
  report.priority = priority_;
  report.phase = static_cast<InvocationPhase>(phase_.load(std::memory_order_acquire));
  report.submit_time_us = submit_time_us_;
  const dbase::Micros first_run = first_run_us_.load(std::memory_order_relaxed);
  if (first_run > 0) {
    report.queue_time_us = first_run - submit_time_us_;
  }
  const dbase::Micros finish = finish_us_.load(std::memory_order_relaxed);
  if (finish > 0) {
    report.run_time_us = finish - submit_time_us_;
  }
  report.instances_launched = instances_launched_.load(std::memory_order_relaxed);
  report.instances_aborted = instances_aborted_.load(std::memory_order_relaxed);
  report.instances_pool_hits = instances_pool_hits_.load(std::memory_order_relaxed);
  report.failure_kind =
      static_cast<dpolicy::FailureKind>(failure_kind_.load(std::memory_order_relaxed));
  report.retries_attempted = retries_.load(std::memory_order_relaxed);
  return report;
}

}  // namespace dandelion
