// The Platform facade: one Dandelion worker node (Figure 4). Owns the
// function/DAG registries, the service mesh, the engine worker set, the
// dispatcher, and the control plane. This is the public API examples and
// benchmarks program against.
#ifndef SRC_RUNTIME_PLATFORM_H_
#define SRC_RUNTIME_PLATFORM_H_

#include <memory>
#include <string>
#include <string_view>

#include <functional>

#include "src/base/status.h"
#include "src/dsl/graph.h"
#include "src/func/data.h"
#include "src/func/registry.h"
#include "src/http/service_mesh.h"
#include "src/policy/elasticity.h"
#include "src/runtime/controller.h"
#include "src/runtime/dispatcher.h"
#include "src/runtime/engine.h"
#include "src/runtime/invocation.h"
#include "src/runtime/memory_context.h"
#include "src/runtime/sandbox.h"

namespace dandelion {

struct PlatformConfig {
  // Engine workers ≈ CPU cores of the node.
  int num_workers = 4;
  int initial_comm_workers = 1;
  IsolationBackend backend = IsolationBackend::kThread;
  // Enable the elasticity control plane that re-balances cores (§5). Off by
  // default so unit tests are deterministic; benchmarks switch it on.
  bool enable_control_plane = false;
  dbase::Micros control_interval_us = 30 * dbase::kMicrosPerMilli;
  // Which elasticity policy the control plane executes (src/policy/).
  dpolicy::PolicyKind elasticity_policy = dpolicy::PolicyKind::kPaperPi;
  // Overrides elasticity_policy with a custom-configured policy instance
  // (tests, sim-vs-runtime parity runs).
  std::function<std::unique_ptr<dpolicy::ElasticityPolicy>()> elasticity_policy_factory;
  // Decision-history ring-buffer cap (ControlPlane::Config::history_limit).
  size_t control_history_limit = 4096;
  // Fraction of compute launches whose binary load misses the in-memory
  // cache (Fig. 6 uses 3%).
  double binary_cold_fraction = 0.0;
  bool pin_threads = false;
  // Sleep for modelled network latency on comm calls (disable for fast
  // unit tests).
  bool sleep_for_modeled_latency = true;
  int comm_parallelism = 64;
  // Pre-warmed sandbox pool (ROADMAP "Cold-start elimination"): dispatch
  // acquires warm sandboxes instead of cold-creating, the control plane
  // ticks the PrewarmPolicy that sets the per-function depth. Off by
  // default; fig02/fig10 and the pool tests switch it on.
  bool enable_sandbox_pool = false;
  // Pool knobs; `backend` is overridden to match PlatformConfig::backend.
  SandboxPool::Config sandbox_pool;
  // Retry/circuit-breaker policy for sandbox-level failures, executed by the
  // dispatcher (src/policy/retry.h). Enabled by default: Dandelion functions
  // are pure, so relaunching a crashed instance is always side-effect-safe.
  dpolicy::RetryOptions retry;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config = PlatformConfig{});
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // --- Registration --------------------------------------------------------
  dbase::Status RegisterFunction(dfunc::FunctionSpec spec);
  // Registers an additional platform communication function (trusted code;
  // "HTTP" is pre-registered). The name becomes reserved in compositions.
  dbase::Status RegisterCommFunction(CommFunctionSpec spec);
  // Parses DSL text (possibly several compositions) and registers each.
  dbase::Status RegisterCompositionDsl(std::string_view dsl_source);
  dbase::Status RegisterComposition(ddsl::CompositionGraph graph);

  // --- Invocation ----------------------------------------------------------
  // Primary API: a first-class InvocationRequest (deadline, priority class,
  // id) observed through the returned InvocationHandle (Cancel, completion
  // state, InvocationReport). The callback fires exactly once, possibly on
  // an engine thread.
  InvocationHandle Submit(InvocationRequest request, Dispatcher::ResultCallback callback);
  // Blocking counterpart; deadline-aware (returns kDeadlineExceeded instead
  // of waiting forever).
  dbase::Result<dfunc::DataSetList> Invoke(InvocationRequest request);

  // Legacy shims over the request API (no deadline, interactive class) so
  // examples and benches migrate incrementally.
  dbase::Result<dfunc::DataSetList> Invoke(const std::string& composition,
                                           dfunc::DataSetList args);
  void InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                   Dispatcher::ResultCallback callback);

  // --- Introspection -------------------------------------------------------
  dhttp::ServiceMesh& mesh() { return mesh_; }
  MemoryAccountant& accountant() { return accountant_; }
  const dfunc::FunctionRegistry& functions() const { return functions_; }
  const CompositionRegistry& compositions() const { return compositions_; }
  const CommFunctionRegistry& comm_functions() const { return comm_functions_; }
  EngineStats engine_stats() const { return workers_->Stats(); }
  DispatcherStats dispatcher_stats() const { return dispatcher_->Stats(); }
  // Per-function circuit-breaker states (statz's `breaker` section).
  std::vector<dpolicy::BreakerSnapshot> breaker_snapshots() const {
    return dispatcher_->Breakers();
  }
  // The engine pool itself — manual role shifts (operators, tests) go
  // through the same WorkerSet hooks the control plane uses.
  WorkerSet& workers() { return *workers_; }
  const WorkerSet& workers() const { return *workers_; }
  ControlPlane* control_plane() { return control_plane_.get(); }
  // Null unless PlatformConfig::enable_sandbox_pool. Tests drive Tick()
  // directly; production pools tick on the control-plane cadence.
  SandboxPool* sandbox_pool() { return sandbox_pool_.get(); }
  const PlatformConfig& config() const { return config_; }

  // Graceful shutdown: drains queues and joins engines. Idempotent; the
  // destructor calls it too.
  void Shutdown();

 private:
  // Validates communication-function node shapes at registration time
  // (§6.3): exactly one input set with the function's declared request-set
  // name, exactly one output set with its response-set name.
  dbase::Status ValidateCommNodes(const ddsl::CompositionGraph& graph) const;

  PlatformConfig config_;
  dfunc::FunctionRegistry functions_;
  CompositionRegistry compositions_;
  CommFunctionRegistry comm_functions_;
  dhttp::ServiceMesh mesh_;
  MemoryAccountant accountant_;
  // Declared before the worker set: workers release leased warm sandboxes
  // into the pool during shutdown, so the pool must be destroyed after.
  std::unique_ptr<SandboxPool> sandbox_pool_;
  std::unique_ptr<WorkerSet> workers_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<ControlPlane> control_plane_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_PLATFORM_H_
