#include "src/runtime/frontend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/http/http_parser.h"
#include "src/runtime/cluster.h"
#include "src/runtime/fault.h"
#include "src/runtime/jail.h"

namespace dandelion {
namespace {

// A hostile Content-Length must not balloon memory: bodies beyond this are
// rejected with 413 before any body byte is buffered.
constexpr uint64_t kMaxBodyBytes = 64ull * 1024 * 1024;
// Header blocks are far smaller than bodies; an unterminated or oversized
// head is rejected at 64 KiB (slowloris / header-bomb guard).
constexpr size_t kMaxHeaderBytes = 64 * 1024;
// Bytes a draining connection will discard before giving up on the client.
constexpr size_t kMaxDrainBytes = 1u << 20;

// Blocking-style full write with EINTR retry; on EAGAIN (non-blocking fd,
// or SO_SNDTIMEO) it polls for writability instead of silently truncating
// the response. Bounded in time so a hostile zero-window client cannot
// pin the caller. Used outside the per-connection state machine (e.g. the
// over-capacity 503 written straight from accept).
void WriteAll(int fd, const std::string& data) {
  const dbase::Stopwatch watch;
  size_t offset = 0;
  while (offset < data.size() && watch.ElapsedMicros() < dbase::kMicrosPerSecond) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      poll(&pfd, 1, 100);
      continue;
    }
    return;  // Hard error (EPIPE, ...): the response is undeliverable.
  }
}

// True when `token` appears in the comma-separated Connection header value
// (RFC 9110 §7.6.1 — e.g. "close, te" contains "close").
bool ConnectionHeaderHasToken(std::string_view value, std::string_view token) {
  for (std::string_view part : dbase::SplitString(value, ',')) {
    if (dbase::EqualsIgnoreCase(dbase::TrimWhitespace(part), token)) {
      return true;
    }
  }
  return false;
}

// Keep-alive decision per RFC 9112 §9.3: HTTP/1.1 persists unless the
// client says "Connection: close"; HTTP/1.0 closes unless it says
// "Connection: keep-alive".
bool WantsKeepAlive(const dhttp::HttpRequest& request) {
  const auto connection = request.headers.Get("Connection");
  if (request.version == "HTTP/1.0") {
    return connection.has_value() && ConnectionHeaderHasToken(*connection, "keep-alive");
  }
  return !(connection.has_value() && ConnectionHeaderHasToken(*connection, "close"));
}

// Wire form of an invocation's response as a gather list. The success path
// never concatenates the payload: the HTTP header is one small owned chunk,
// and the marshalled sets follow as scatter chunks whose large payloads
// alias the result items' backing buffers (a producer's context region, or
// even the original request body for a pass-through composition) all the
// way into writev.
WireChunks InvocationResponseWire(dbase::Result<dfunc::DataSetList> result) {
  if (result.ok()) {
    dfunc::DataSetList sets = std::move(result).value();
    const uint64_t payload_len = dfunc::MarshalledSize(sets);
    std::string head;
    head.reserve(96);
    head.append(
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/x-dandelion-sets\r\n"
        "Content-Length: ");
    head.append(std::to_string(payload_len));
    head.append("\r\n\r\n");
    WireChunks wire;
    wire.Append(dbase::BufferSlice(dbase::Buffer::FromString(std::move(head))));
    for (auto& chunk : dfunc::MarshalSetsScatter(sets)) {
      wire.Append(std::move(chunk));
    }
    return wire;
  }
  int code = 500;
  const char* reason = "Internal Server Error";
  switch (result.status().code()) {
    case dbase::StatusCode::kNotFound:
      code = 404;
      reason = "Not Found";
      break;
    case dbase::StatusCode::kDeadlineExceeded:
      code = 504;
      reason = "Gateway Timeout";
      break;
    case dbase::StatusCode::kCancelled:
      // nginx's convention for "client closed request"; mostly unreadable
      // (the client is usually gone) but keeps the wire truthful.
      code = 499;
      reason = "Client Closed Request";
      break;
    default:
      break;
  }
  return WireChunks::FromString(
      dhttp::HttpResponse::Make(code, reason, result.status().ToString()).Serialize());
}

// Minimal JSON string escaping for identifier-ish values.
void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->append(dbase::StrFormat("\\u%04x", c));
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

HttpFrontend::HttpFrontend(Platform* platform, FrontendConfig config)
    : platform_(platform), config_(config), port_(config.port) {}

HttpFrontend::HttpFrontend(Platform* platform, uint16_t port)
    : HttpFrontend(platform, FrontendConfig{.port = port}) {}

HttpFrontend::~HttpFrontend() {
  Stop();
  // The frontend may not outlive its platform (it serves requests through
  // it), so the control plane — if any — is still valid here.
  if (signals_registered_) {
    if (ControlPlane* control = platform_->control_plane(); control != nullptr) {
      control->RemoveSignalSource(signal_source_id_);
    }
  }
}

dbase::Status HttpFrontend::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return dbase::Unavailable("socket() failed");
  }
  int reuse = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return dbase::Unavailable("bind() failed (sandboxed environment?)");
  }
  if (listen(listen_fd_, 128) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return dbase::Unavailable("listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  auto loop = dbase::EventLoop::Create();
  if (!loop.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return loop.status();
  }
  loop_ = std::move(loop).value();
  const dbase::Status added = loop_->Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
  if (!added.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    loop_.reset();
    return added;
  }

  int dispatch_threads = config_.dispatch_threads;
  if (dispatch_threads < 0) {
    dispatch_threads = std::thread::hardware_concurrency() > 2 ? 2 : 0;
  }
  if (dispatch_threads > 0) {
    dispatch_pool_ = std::make_unique<dbase::WorkerPool>(dispatch_threads, "frontend-dispatch");
  }
  // Feed the admission-control counters into the elasticity control plane's
  // per-tick snapshot: 429s only — deadline expiries are already counted by
  // the dispatcher's signal source, and every frontend 504 is a dispatcher
  // kDeadlineExceeded, so adding deadline_504 here would double-count. The
  // registration is once per frontend (Start after Stop must not stack
  // duplicates) and undone in the destructor, so a replaced frontend does
  // not leave its frozen counters inflating the signal forever.
  if (ControlPlane* control = platform_->control_plane();
      control != nullptr && !signals_registered_) {
    signals_registered_ = true;
    signal_source_id_ = control->AddSignalSource(
        [counters = counters_, cluster = cluster_](dpolicy::ElasticitySignals* signals) {
          signals->admission_shed +=
              counters->shed_429.load(std::memory_order_relaxed);
          if (cluster == nullptr) {
            return;
          }
          // Router pressure: how often work had to move nodes, how much of
          // the fleet is unreachable, and what the wire is carrying.
          const Cluster::ClusterStats stats = cluster->Stats();
          signals->cluster_reroutes += stats.reroutes_shed + stats.reroutes_peer_lost;
          for (const Cluster::PeerStats& peer : stats.peers) {
            if (peer.remote && peer.state != "active") {
              ++signals->cluster_peers_unavailable;
            }
            signals->net_bytes_sent += peer.bytes_sent;
            signals->net_bytes_received += peer.bytes_received;
          }
        });
  }
  running_.store(true);
  loop_thread_ = dbase::JoiningThread("frontend", [loop = loop_] { loop->Run(); });
  return dbase::OkStatus();
}

void HttpFrontend::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  loop_->Stop();
  loop_thread_.Join();
  if (dispatch_pool_ != nullptr) {
    // Drains queued dispatches; their completions post into the (stopped)
    // loop and are simply never run.
    dispatch_pool_->Shutdown();
    dispatch_pool_.reset();
  }
  // The loop thread is gone; tear the remaining sockets down directly.
  for (auto& [fd, conn] : connections_) {
    close(fd);
    conn->fd = -1;
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpFrontend::OnAcceptable() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // Backlog drained.
      }
      if (errno != EMFILE && errno != ENFILE) {
        // Transient per-connection failures (ECONNABORTED: client RST'd
        // while queued; EPROTO, network errors) — skip that connection and
        // keep accepting, per accept(2).
        continue;
      }
      // Out of file descriptors: the pending connection stays in the
      // backlog, so level-triggered EPOLLIN would re-fire every wait and
      // spin the loop at 100% CPU. Mute the listener briefly and retry
      // once descriptors may have freed.
      (void)loop_->Modify(listen_fd_, 0);
      loop_->AddTimer(50 * dbase::kMicrosPerMilli, [this] {
        if (running_.load(std::memory_order_relaxed)) {
          (void)loop_->Modify(listen_fd_, EPOLLIN);
        }
      });
      return;
    }
    if (connections_.size() >= config_.max_connections) {
      WriteAll(fd, dhttp::HttpResponse::Make(503, "Service Unavailable", "connection limit\n")
                       .Serialize());
      // Respond-then-drain, non-blocking flavour: signal end-of-response,
      // then clear whatever request bytes already arrived so close() does
      // not RST the 503 out of the client's receive buffer. Bytes still in
      // flight can race the close; blocking the accept path to wait for
      // them is not worth it on an already-overloaded node.
      shutdown(fd, SHUT_WR);
      char sink[4096];
      while (read(fd, sink, sizeof(sink)) > 0) {
      }
      close(fd);
      continue;
    }
    int nodelay = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->armed_events = EPOLLIN;
    conn->last_activity = dbase::MonotonicClock::Get()->NowMicros();
    connections_[fd] = conn;
    const dbase::Status added =
        loop_->Add(fd, EPOLLIN, [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
    if (!added.ok()) {
      connections_.erase(fd);
      close(fd);
      continue;
    }
    ArmIdleTimer(conn);
  }
}

void HttpFrontend::OnConnectionEvent(const ConnectionPtr& conn, uint32_t events) {
  if (conn->fd < 0) {
    return;
  }
  if (events & EPOLLERR) {
    CloseConnection(conn);
    return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) {
    OnReadable(conn);
    if (conn->fd < 0) {
      return;
    }
  }
  if (events & EPOLLOUT) {
    TryWrite(conn);
  }
}

void HttpFrontend::OnReadable(const ConnectionPtr& conn) {
  // Per-callback read budget: a fast sender (loopback, 10GbE) can keep the
  // socket non-empty indefinitely; without a bound, one connection's
  // upload would monopolize the loop thread and buffer unboundedly ahead
  // of the pipeline-depth backpressure. Level-triggered epoll re-fires for
  // the remainder, interleaving other connections' events.
  constexpr size_t kReadBudget = 256 * 1024;
  size_t budget_used = 0;
  char chunk[16384];
  bool got_bytes = false;
  bool saw_eof = false;
  while (budget_used < kReadBudget) {
    const ssize_t n = read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      got_bytes = true;
      budget_used += static_cast<size_t>(n);
      if (conn->state == Connection::State::kDraining) {
        conn->drained_bytes += static_cast<size_t>(n);
        if (conn->drained_bytes > kMaxDrainBytes) {
          CloseConnection(conn);
          return;
        }
        continue;  // Discard: only waiting for the client to finish/close.
      }
      conn->in.append(chunk, static_cast<size_t>(n));
      total_buffered_bytes_ += static_cast<size_t>(n);
      if (total_buffered_bytes_ > config_.max_total_buffered_bytes) {
        // Platform-wide buffering budget breached: this connection's
        // bytes are the ones that tipped it, so it takes the 503.
        FailConnection(conn, dhttp::HttpResponse::Make(503, "Service Unavailable",
                                                       "request buffers full"));
        ReleaseDeadInput(conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      if (conn->state == Connection::State::kDraining) {
        CloseConnection(conn);  // Drain complete.
        return;
      }
      saw_eof = true;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConnection(conn);
    return;
  }
  if (got_bytes) {
    conn->last_activity = dbase::MonotonicClock::Get()->NowMicros();
  }
  // Parse BEFORE acting on EOF: a client may legitimately half-close right
  // after its (complete) requests and still expects every response —
  // including requests parked in `in` behind the pipeline-depth limit,
  // which get parsed later as slots free up.
  if (saw_eof) {
    conn->saw_eof = true;
  }
  if (conn->state == Connection::State::kReading) {
    ProcessInput(conn);
  }
  if (saw_eof && conn->fd >= 0) {
    MaybeFinishEof(conn);
    if (conn->fd >= 0) {
      UpdateInterest(conn);  // Drop EPOLLIN: nothing more will arrive.
    }
  }
}

void HttpFrontend::ProcessInput(const ConnectionPtr& conn) {
  // Outer loop: FlushPipeline pops inline-answered (already-ready) slots,
  // which can re-open pipeline capacity for requests still buffered in
  // `in` — without it, a burst of, say, 65 pipelined /healthz requests
  // would strand number 65 unparsed forever (no further EPOLLIN fires for
  // bytes already read). Progress is monotone (each pass consumes bytes),
  // so this terminates.
  bool progressed = true;
  size_t total_consumed = 0;
  while (progressed && conn->state == Connection::State::kReading) {
    progressed = false;
    size_t consumed = 0;
    while (conn->state == Connection::State::kReading &&
           conn->pipeline.size() < config_.max_pipeline_depth) {
      const std::string_view pending = std::string_view(conn->in).substr(consumed);
      auto head = dhttp::ScanMessageHead(pending, kMaxHeaderBytes);
      if (!head.ok()) {
        if (head.status().code() == dbase::StatusCode::kResourceExhausted) {
          FailConnection(conn, dhttp::HttpResponse::Make(413, "Payload Too Large",
                                                         head.status().ToString()));
        } else {
          FailConnection(conn, dhttp::HttpResponse::BadRequest(head.status().ToString()));
        }
        break;
      }
      if (!head->has_value()) {
        break;  // Incomplete head: wait for more bytes.
      }
      const dhttp::MessageHead& framing = head->value();
      if (framing.content_length > kMaxBodyBytes) {
        FailConnection(conn, dhttp::HttpResponse::Make(413, "Payload Too Large",
                                                       "request body too large"));
        break;
      }
      const size_t total = framing.head_bytes + static_cast<size_t>(framing.content_length);
      if (pending.size() < total) {
        break;  // Incomplete body: wait for more bytes.
      }
      const std::string_view wire = pending.substr(0, total);
      consumed += total;
      if (!HandleRequest(conn, wire)) {
        break;
      }
    }
    if (conn->fd < 0) {
      return;
    }
    if (consumed > 0) {
      conn->in.erase(0, consumed);
      total_buffered_bytes_ -= consumed;
      total_consumed += consumed;
    }
    const size_t slots_before = conn->pipeline.size();
    FlushPipeline(conn);  // Answer everything completed inline in one write.
    if (conn->fd < 0) {
      return;
    }
    // Consumed bytes and popped slots are both monotone, so requiring one
    // of them per pass guarantees termination.
    progressed = consumed > 0 || conn->pipeline.size() < slots_before;
    if (conn->in.empty() || conn->pipeline.size() >= config_.max_pipeline_depth) {
      break;  // Nothing left, or genuinely backpressured on async slots.
    }
  }
  if (conn->fd >= 0) {
    if (conn->state != Connection::State::kReading) {
      // Parsing stopped (error drain, Connection: close): leftover input
      // can never be consumed — drop it and free its budget share now.
      ReleaseDeadInput(conn);
    }
    // Track how long the buffered partial request has been pending (the
    // request_timeout trickle-slowloris bound). Completing a request is
    // progress and restarts the clock — a healthy pipelining client whose
    // buffer never drains to an exact request boundary must not age out.
    if (conn->in.empty()) {
      conn->partial_since = 0;
    } else if (conn->partial_since == 0 || total_consumed > 0) {
      conn->partial_since = dbase::MonotonicClock::Get()->NowMicros();
    }
    UpdateInterest(conn);
  }
}

bool HttpFrontend::HandleRequest(const ConnectionPtr& conn, std::string_view wire) {
  auto parsed = dhttp::ParseRequest(wire);
  if (!parsed.ok()) {
    // The framing was consistent but the request itself is malformed;
    // answer 400 and close (resynchronizing a pipelined stream after a bad
    // request is not worth the ambiguity).
    FailConnection(conn, dhttp::HttpResponse::BadRequest(parsed.status().ToString()));
    return false;
  }
  const dhttp::HttpRequest& request = parsed.value();
  const std::string& target = request.target;

  auto slot = std::make_shared<Connection::ResponseSlot>();
  conn->pipeline.push_back(slot);
  if (!WantsKeepAlive(request)) {
    conn->state = Connection::State::kStopped;  // Flush, then close.
  }

  if (request.method == dhttp::Method::kGet && target == "/healthz") {
    FinishSlot(conn, slot, dhttp::HttpResponse::Ok("ok\n"));
  } else if (request.method == dhttp::Method::kGet && target == "/compositions") {
    std::string json = "{\"compositions\":[";
    bool first = true;
    for (const std::string& name : platform_->compositions().Names()) {
      if (!first) {
        json.push_back(',');
      }
      first = false;
      AppendJsonString(&json, name);
    }
    json += "]}\n";
    dhttp::HttpResponse response = dhttp::HttpResponse::Ok(std::move(json));
    response.headers.Set("Content-Type", "application/json");
    FinishSlot(conn, slot, response);
  } else if (request.method == dhttp::Method::kGet && target == "/statz") {
    dhttp::HttpResponse response = dhttp::HttpResponse::Ok(StatzJson());
    response.headers.Set("Content-Type", "application/json");
    FinishSlot(conn, slot, response);
  } else if (request.method == dhttp::Method::kPost && target == "/register/composition") {
    const dbase::Status status = platform_->RegisterCompositionDsl(request.body);
    FinishSlot(conn, slot,
               status.ok() ? dhttp::HttpResponse::Make(201, "Created", "registered\n")
                           : dhttp::HttpResponse::BadRequest(status.ToString()));
  } else if (request.method == dhttp::Method::kPost && target.rfind("/invoke/", 0) == 0) {
    // Hand the dispatch itself (argument resolution, memory-context
    // creation, input marshalling inside the dispatcher) to the pool so the
    // loop thread moves on to the next connection immediately — unless the
    // pool is disabled (small machines), where dispatching inline avoids a
    // thread hop. Either way the engine work itself is asynchronous.
    std::weak_ptr<Connection> weak_conn = conn;
    if (dispatch_pool_ == nullptr) {
      DispatchInvoke(weak_conn, slot, std::move(parsed).value());
    } else if (!dispatch_pool_->Submit(
                   [this, weak_conn, slot, request = std::move(parsed).value()]() mutable {
                     DispatchInvoke(weak_conn, slot, std::move(request));
                   })) {
      FinishSlot(conn, slot,
                 dhttp::HttpResponse::Make(503, "Service Unavailable", "shutting down"));
    }
  } else {
    FinishSlot(conn, slot, dhttp::HttpResponse::NotFound("unknown endpoint: " + target));
  }
  return conn->fd >= 0 && conn->state == Connection::State::kReading;
}

void HttpFrontend::DispatchInvoke(const std::weak_ptr<Connection>& weak_conn, const SlotPtr& slot,
                                  dhttp::HttpRequest request) {
  const std::string composition = request.target.substr(std::strlen("/invoke/"));

  // Request class and deadline come off the headers before any expensive
  // work: a shed or malformed request must cost the node nothing.
  PriorityClass priority = PriorityClass::kInteractive;
  if (const auto header = request.headers.Get("X-Dandelion-Priority"); header.has_value()) {
    auto parsed = PriorityClassFromName(*header);
    if (!parsed.ok()) {
      PostSlotCompletion(weak_conn, slot,
                         WireChunks::FromString(
                             dhttp::HttpResponse::BadRequest(parsed.status().ToString())
                                 .Serialize()));
      return;
    }
    priority = *parsed;
  }
  dbase::Micros deadline_us = 0;
  if (const auto header = request.headers.Get("X-Dandelion-Deadline-Ms"); header.has_value()) {
    int64_t ms = 0;
    if (!dbase::ParseInt64(*header, &ms) || ms <= 0) {
      PostSlotCompletion(
          weak_conn, slot,
          WireChunks::FromString(
              dhttp::HttpResponse::BadRequest("invalid X-Dandelion-Deadline-Ms").Serialize()));
      return;
    }
    deadline_us = dbase::MonotonicClock::Get()->NowMicros() + ms * dbase::kMicrosPerMilli;
  }

  // Per-class admission control: reject early with 429 once the class's
  // in-flight cap is reached, instead of queueing blindly until buffers or
  // clients give up.
  const auto class_index = static_cast<size_t>(priority);
  const size_t cap = priority == PriorityClass::kInteractive
                         ? config_.max_inflight_interactive
                         : config_.max_inflight_batch;
  const std::shared_ptr<InvokeCounters> counters = counters_;
  if (cap > 0 &&
      static_cast<size_t>(counters->inflight[class_index].fetch_add(
          1, std::memory_order_relaxed)) >= cap) {
    counters->inflight[class_index].fetch_sub(1, std::memory_order_relaxed);
    counters->shed_429.fetch_add(1, std::memory_order_relaxed);
    PostSlotCompletion(
        weak_conn, slot,
        WireChunks::FromString(
            dhttp::HttpResponse::Make(429, "Too Many Requests",
                                      "admission control: " +
                                          std::string(PriorityClassName(priority)) +
                                          " in-flight cap reached\n")
                .Serialize()));
    return;
  }
  const auto release_admission = [counters, class_index] {
    counters->inflight[class_index].fetch_sub(1, std::memory_order_relaxed);
  };

  // Zero-copy ingest: the request body moves into a refcounted buffer
  // (adopting the string's storage, no byte copy) and argument payloads
  // become slices of it. The buffer stays alive — pinned by the item
  // refcounts — until the last node consuming those bytes completes.
  dbase::BufferSlice body(dbase::Buffer::FromString(std::move(request.body)));
  dfunc::DataSetList args;
  if (request.headers.Get("X-Dandelion-Raw").has_value()) {
    // Plain-text convenience: the body becomes the single item of a set
    // named after the composition's first parameter.
    auto graph = platform_->compositions().Lookup(composition);
    if (!graph.ok() || graph.value()->params().empty()) {
      release_admission();
      PostSlotCompletion(weak_conn, slot,
                         WireChunks::FromString(
                             dhttp::HttpResponse::NotFound("unknown composition").Serialize()));
      return;
    }
    dfunc::DataPlaneStats::Get().bytes_aliased.fetch_add(body.size(),
                                                         std::memory_order_relaxed);
    args.push_back(dfunc::DataSet{graph.value()->params().front(),
                                  {dfunc::DataItem{"", std::move(body)}}});
  } else {
    // Aliasing unmarshal: item payloads are sub-slices of the body buffer.
    auto unmarshalled = dfunc::UnmarshalSets(body);
    if (!unmarshalled.ok()) {
      release_admission();
      PostSlotCompletion(
          weak_conn, slot,
          WireChunks::FromString(
              dhttp::HttpResponse::BadRequest(unmarshalled.status().ToString()).Serialize()));
      return;
    }
    args = std::move(unmarshalled).value();
  }

  InvocationRequest invocation;
  invocation.composition = composition;
  invocation.args = std::move(args);
  invocation.deadline_us = deadline_us;
  invocation.priority = priority;

  // The completion runs on an engine thread, possibly after Stop() — it
  // captures the loop shared_ptr and the counters block itself (keeping
  // both alive until the last completion lands) and must not read frontend
  // members. The posted closure only ever runs on a live loop, which
  // implies a live frontend (Stop() joins the loop thread before
  // destruction).
  auto completion = [this, loop = loop_, counters, class_index, weak_conn,
                     slot](dbase::Result<dfunc::DataSetList> result) {
    counters->inflight[class_index].fetch_sub(1, std::memory_order_relaxed);
    counters->served.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok() &&
        result.status().code() == dbase::StatusCode::kDeadlineExceeded) {
      counters->deadline_504.fetch_add(1, std::memory_order_relaxed);
    }
    WireChunks bytes = InvocationResponseWire(std::move(result));
    loop->Post([this, weak_conn, slot, bytes = std::move(bytes)]() mutable {
      ApplySlotCompletion(weak_conn, slot, std::move(bytes));
    });
  };
  InvocationHandle handle;
  if (cluster_ != nullptr) {
    // Cluster route: locality-aware placement across local + remote nodes,
    // with cross-node shed/peer-lost re-routing, behind the same callback.
    handle = cluster_->InvokeAsync(
        std::move(invocation),
        [completion = std::move(completion)](dbase::Result<dfunc::DataSetList> result,
                                             int /*node*/) { completion(std::move(result)); });
  } else {
    handle = platform_->Submit(std::move(invocation), std::move(completion));
  }

  // Attach the handle so a dying connection cancels the invocation instead
  // of letting orphaned work run to completion. If the connection already
  // died while we were dispatching, cancel right here.
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->abandoned) {
      counters->disconnect_cancelled.fetch_add(1, std::memory_order_relaxed);
      handle.Cancel();
    } else {
      slot->handle = std::move(handle);
    }
  }
}

void HttpFrontend::PostSlotCompletion(const std::weak_ptr<Connection>& weak_conn,
                                      const SlotPtr& slot, WireChunks bytes) {
  loop_->Post([this, weak_conn, slot, bytes = std::move(bytes)]() mutable {
    ApplySlotCompletion(weak_conn, slot, std::move(bytes));
  });
}

void HttpFrontend::ApplySlotCompletion(const std::weak_ptr<Connection>& weak_conn,
                                       const SlotPtr& slot, WireChunks bytes) {
  slot->ready = true;
  slot->bytes = std::move(bytes);
  const ConnectionPtr locked = weak_conn.lock();
  if (locked == nullptr || locked->fd < 0) {
    return;  // Connection died first; the slot was never budget-counted.
  }
  if (!AccountResponseBytes(locked, slot->bytes.total_bytes)) {
    return;
  }
  if (locked->flush_queued) {
    return;
  }
  // Defer the actual socket work one loop turn: completions that land in
  // the same posted batch coalesce into one flush (and one write) per
  // connection.
  locked->flush_queued = true;
  dirty_connections_.push_back(locked);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    loop_->Post([this] { FlushDirtyConnections(); });
  }
}

void HttpFrontend::FlushDirtyConnections() {
  flush_scheduled_ = false;
  std::vector<ConnectionPtr> batch;
  batch.swap(dirty_connections_);
  for (const ConnectionPtr& conn : batch) {
    conn->flush_queued = false;
    if (conn->fd < 0) {
      continue;
    }
    FlushPipeline(conn);
    // Popping slots may have lifted pipelining backpressure; any requests
    // already buffered in `in` get no further EPOLLIN edge, so resume
    // parsing them here.
    if (conn->fd >= 0 && conn->state == Connection::State::kReading && !conn->in.empty()) {
      ProcessInput(conn);
    }
    if (conn->fd >= 0) {
      MaybeFinishEof(conn);
    }
  }
}

void HttpFrontend::FinishSlot(const ConnectionPtr& conn, const SlotPtr& slot,
                              const dhttp::HttpResponse& response) {
  // Mark-only: the caller (ProcessInput) flushes once after consuming the
  // whole read buffer, so a burst of inline-handled pipelined requests is
  // answered with one write.
  slot->ready = true;
  slot->bytes = WireChunks::FromString(response.Serialize());
  AccountResponseBytes(conn, slot->bytes.total_bytes);
}

void HttpFrontend::ReleaseDeadInput(const ConnectionPtr& conn) {
  total_buffered_bytes_ -= conn->in.size();
  conn->in.clear();
  conn->partial_since = 0;
}

bool HttpFrontend::AccountResponseBytes(const ConnectionPtr& conn, size_t bytes) {
  total_response_bytes_ += bytes;
  if (total_response_bytes_ > config_.max_total_response_bytes) {
    // A reader this far behind has clogged its own write path; an error
    // response could not reach it. Closing releases its share.
    CloseConnection(conn);
    return false;
  }
  return true;
}

void HttpFrontend::FailConnection(const ConnectionPtr& conn, dhttp::HttpResponse response) {
  if (conn->state == Connection::State::kDraining || conn->fd < 0) {
    return;
  }
  auto slot = std::make_shared<Connection::ResponseSlot>();
  slot->ready = true;
  slot->bytes = WireChunks::FromString(response.Serialize());
  conn->pipeline.push_back(slot);
  conn->state = Connection::State::kStopped;
  conn->drain_requested = true;
  if (!AccountResponseBytes(conn, slot->bytes.total_bytes)) {
    return;  // Budget breach closed the connection outright.
  }
  FlushPipeline(conn);
}

void HttpFrontend::FlushPipeline(const ConnectionPtr& conn) {
  while (!conn->pipeline.empty() && conn->pipeline.front()->ready) {
    WireChunks& wire = conn->pipeline.front()->bytes;
    for (auto& chunk : wire.chunks) {
      if (!chunk.empty()) {
        conn->out.push_back(std::move(chunk));
      }
    }
    conn->out_pending += wire.total_bytes;
    conn->pipeline.pop_front();
  }
  TryWrite(conn);
}

void HttpFrontend::TryWrite(const ConnectionPtr& conn) {
  while (conn->HasPendingOut()) {
    // Gather the queued chunks into one writev: header, framing, and
    // payload slices go to the kernel without ever being concatenated.
    constexpr size_t kMaxIov = 64;
    iovec iov[kMaxIov];
    size_t iov_count = 0;
    size_t skip = conn->out_offset;  // Partial-write cursor into the front chunk.
    for (const dbase::BufferSlice& chunk : conn->out) {
      if (iov_count == kMaxIov) {
        break;
      }
      iov[iov_count].iov_base = const_cast<char*>(chunk.data() + skip);
      iov[iov_count].iov_len = chunk.size() - skip;
      skip = 0;
      ++iov_count;
    }
    const ssize_t n = writev(conn->fd, iov, static_cast<int>(iov_count));
    if (n > 0) {
      conn->out_pending -= static_cast<size_t>(n);
      total_response_bytes_ -= static_cast<size_t>(n);
      // Advance the cursor: drop fully-sent chunks, move the offset within
      // the first partially-sent one.
      size_t advanced = static_cast<size_t>(n);
      while (advanced > 0) {
        const size_t front_remaining = conn->out.front().size() - conn->out_offset;
        if (advanced >= front_remaining) {
          advanced -= front_remaining;
          conn->out.pop_front();
          conn->out_offset = 0;
        } else {
          conn->out_offset += advanced;
          advanced = 0;
        }
      }
      // Write progress counts as liveness for the idle timer: a client
      // consuming a large response slowly is slow, not stalled.
      conn->last_activity = dbase::MonotonicClock::Get()->NowMicros();
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    CloseConnection(conn);  // Hard error: the peer is gone.
    return;
  }
  if (!conn->HasPendingOut() && conn->pipeline.empty() &&
      conn->state == Connection::State::kStopped) {
    if (conn->drain_requested) {
      BeginDrain(conn);
    } else {
      CloseConnection(conn);
    }
    return;
  }
  // The EPOLLOUT-driven drain of a half-closed connection's last response
  // ends here, with no FlushDirtyConnections pass behind it to finish up.
  MaybeFinishEof(conn);
  if (conn->fd >= 0) {
    UpdateInterest(conn);
  }
}

void HttpFrontend::MaybeFinishEof(const ConnectionPtr& conn) {
  // Only while kReading: kStopped/kDraining have their own close paths.
  if (conn->fd < 0 || !conn->saw_eof || conn->state != Connection::State::kReading ||
      !conn->pipeline.empty() || conn->HasPendingOut()) {
    return;
  }
  if (!conn->in.empty()) {
    // Buffered bytes remain. This can be a still-parseable request parked
    // behind the backpressure limit when the EOF arrived (every caller
    // runs ProcessInput right after us — it must get its chance, the
    // client fully delivered it) — only an incomplete tail, which can
    // never finish arriving now, closes the connection here.
    auto head = dhttp::ScanMessageHead(conn->in, kMaxHeaderBytes);
    const bool incomplete =
        head.ok() && (!head->has_value() ||
                      conn->in.size() < (*head)->head_bytes +
                                            static_cast<size_t>((*head)->content_length));
    if (!incomplete) {
      return;
    }
  }
  CloseConnection(conn);
}

void HttpFrontend::UpdateInterest(const ConnectionPtr& conn) {
  if (conn->fd < 0) {
    return;
  }
  uint32_t events = 0;
  switch (conn->state) {
    case Connection::State::kReading:
      // Backpressure: stop reading while the pipeline is full. After a
      // half-close there is nothing left to read either.
      if (!conn->saw_eof && conn->pipeline.size() < config_.max_pipeline_depth) {
        events |= EPOLLIN;
      }
      break;
    case Connection::State::kStopped:
      // No further requests will be accepted; reading more would only
      // buffer hostile bytes unboundedly. Responses still flush out.
      break;
    case Connection::State::kDraining:
      events |= EPOLLIN;  // Discarding the client's in-flight body.
      break;
  }
  if (conn->HasPendingOut()) {
    events |= EPOLLOUT;
  }
  if (events == conn->armed_events) {
    return;
  }
  conn->armed_events = events;
  if (!loop_->Modify(conn->fd, events).ok()) {
    CloseConnection(conn);
  }
}

void HttpFrontend::ArmIdleTimer(const ConnectionPtr& conn) {
  std::weak_ptr<Connection> weak_conn = conn;
  conn->idle_timer = loop_->AddTimer(config_.idle_timeout, [this, weak_conn] {
    const ConnectionPtr locked = weak_conn.lock();
    if (locked == nullptr || locked->fd < 0) {
      return;
    }
    // A connection whose invocation is still running in the engines is
    // working, not idle — a slow composition must not be reaped out from
    // under its client (engine deadlines bound that state). Everything
    // else falls through to the inactivity check: reads AND write
    // progress refresh last_activity, so a stalled reader that never
    // drains its response is reaped just like a stalled sender.
    if (!locked->pipeline.empty()) {
      ArmIdleTimer(locked);
      return;
    }
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    // Absolute per-request deadline: a trickle-slowloris client feeding
    // one header byte per idle_timeout defeats the inactivity check below
    // forever, but not this bound on the partial request's total age.
    if (locked->partial_since != 0 && now - locked->partial_since >= config_.request_timeout) {
      CloseConnection(locked);
      return;
    }
    if (now - locked->last_activity >= config_.idle_timeout) {
      CloseConnection(locked);  // Slowloris / stale keep-alive reap.
      return;
    }
    ArmIdleTimer(locked);  // Activity since arming: sleep out the remainder.
  });
}

void HttpFrontend::BeginDrain(const ConnectionPtr& conn) {
  conn->state = Connection::State::kDraining;
  conn->drained_bytes = 0;
  shutdown(conn->fd, SHUT_WR);  // Signal end-of-response to the client.
  // Make sure reads are on (backpressure may have paused them) so the
  // client's unread body bytes keep draining until EOF, the byte cap, or
  // the drain timer closes the socket.
  UpdateInterest(conn);
  if (conn->fd < 0) {
    return;  // The interest change failed and closed the connection.
  }
  std::weak_ptr<Connection> weak_conn = conn;
  loop_->AddTimer(config_.drain_timeout, [this, weak_conn] {
    const ConnectionPtr locked = weak_conn.lock();
    if (locked != nullptr && locked->fd >= 0) {
      CloseConnection(locked);
    }
  });
}

void HttpFrontend::CloseConnection(const ConnectionPtr& conn) {
  if (conn->fd < 0) {
    return;
  }
  total_buffered_bytes_ -= conn->in.size();
  conn->in.clear();
  // Release this connection's share of the response budget: the unsent
  // chunk tail plus every completed slot (not-yet-completed slots were
  // never counted, and their completions see the dead connection).
  total_response_bytes_ -= conn->out_pending;
  for (const SlotPtr& slot : conn->pipeline) {
    if (slot->ready) {
      total_response_bytes_ -= slot->bytes.total_bytes;
    }
  }
  loop_->CancelTimer(conn->idle_timer);
  loop_->Remove(conn->fd);
  close(conn->fd);
  connections_.erase(conn->fd);
  conn->fd = -1;
  // The client is gone: cancel every invocation still running on its
  // behalf so orphaned work stops consuming engines. Slots whose dispatch
  // is still in flight are marked abandoned and cancelled by the
  // dispatching thread instead.
  for (const SlotPtr& slot : conn->pipeline) {
    if (slot->ready) {
      continue;
    }
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->abandoned = true;
    if (slot->handle.valid() && !slot->handle.done()) {
      counters_->disconnect_cancelled.fetch_add(1, std::memory_order_relaxed);
      slot->handle.Cancel();
    }
  }
  // In-flight async completions hold the slots; with the connection gone
  // their posted flushes become no-ops.
  conn->pipeline.clear();
}

std::string HttpFrontend::StatzJson() const {
  const EngineStats engine = platform_->engine_stats();
  const DispatcherStats dispatcher = platform_->dispatcher_stats();
  const auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string json = "{\"engine\":{";
  json += dbase::StrFormat(
      "\"compute_tasks\":%llu,\"comm_tasks\":%llu,\"compute_aborted\":%llu,"
      "\"comm_aborted\":%llu,\"compute_queue_len\":%llu,\"comm_queue_len\":%llu,"
      "\"compute_workers\":%d,\"comm_workers\":%d,\"compute_steals\":%llu,"
      "\"comm_steals\":%llu",
      u(engine.compute_tasks), u(engine.comm_tasks), u(engine.compute_aborted),
      u(engine.comm_aborted), u(engine.compute_queue_len), u(engine.comm_queue_len),
      engine.compute_workers, engine.comm_workers, u(engine.compute_steals),
      u(engine.comm_steals));
  json += "},\"dispatcher\":{";
  json += dbase::StrFormat(
      "\"invocations_started\":%llu,\"invocations_completed\":%llu,"
      "\"invocations_failed\":%llu,\"invocations_cancelled\":%llu,"
      "\"invocations_deadline_exceeded\":%llu,\"compute_instances\":%llu,"
      "\"comm_instances\":%llu,\"skipped_instances\":%llu,"
      "\"inflight_interactive\":%llu,\"inflight_batch\":%llu",
      u(dispatcher.invocations_started), u(dispatcher.invocations_completed),
      u(dispatcher.invocations_failed), u(dispatcher.invocations_cancelled),
      u(dispatcher.invocations_deadline_exceeded), u(dispatcher.compute_instances),
      u(dispatcher.comm_instances), u(dispatcher.skipped_instances),
      u(dispatcher.inflight_interactive), u(dispatcher.inflight_batch));
  json += "},\"frontend\":{";
  json += dbase::StrFormat(
      "\"open_connections\":%llu,\"inflight_interactive\":%lld,"
      "\"inflight_batch\":%lld,\"served\":%llu,\"shed_429\":%llu,"
      "\"deadline_504\":%llu,\"disconnect_cancelled\":%llu",
      u(connections_.size()),
      static_cast<long long>(counters_->inflight[static_cast<size_t>(
          PriorityClass::kInteractive)].load(std::memory_order_relaxed)),
      static_cast<long long>(counters_->inflight[static_cast<size_t>(
          PriorityClass::kBatch)].load(std::memory_order_relaxed)),
      u(counters_->served.load(std::memory_order_relaxed)),
      u(counters_->shed_429.load(std::memory_order_relaxed)),
      u(counters_->deadline_504.load(std::memory_order_relaxed)),
      u(counters_->disconnect_cancelled.load(std::memory_order_relaxed)));
  json += "},\"data_plane\":{";
  json += dbase::StrFormat(
      "\"bytes_copied\":%llu,\"bytes_aliased\":%llu,\"payload_promotions\":%llu,"
      "\"cow_detaches\":%llu,\"binding_materializations\":%llu",
      u(dispatcher.bytes_copied), u(dispatcher.bytes_aliased),
      u(dispatcher.payload_promotions), u(dispatcher.cow_detaches),
      u(dispatcher.binding_materializations));
  json += "},\"control_plane\":{";
  if (ControlPlane* control = platform_->control_plane(); control != nullptr) {
    const ControlPlane::Summary summary = control->GetSummary();
    json += dbase::StrFormat(
        "\"enabled\":true,\"policy\":\"%s\",\"compute_workers\":%d,"
        "\"comm_workers\":%d,\"decisions\":%llu,\"shifts_toward_compute\":%llu,"
        "\"shifts_toward_comm\":%llu",
        summary.policy_name, engine.compute_workers, engine.comm_workers,
        u(summary.decisions), u(summary.shifts_toward_compute),
        u(summary.shifts_toward_comm));
    if (summary.decisions > 0) {
      json += dbase::StrFormat(
          ",\"last_decision\":{\"time_us\":%lld,\"signal\":%.3f,"
          "\"shift_toward_compute\":%d,\"shifted\":%d,\"panic\":%s,"
          "\"reason\":\"%s\"}",
          static_cast<long long>(summary.last.time_us), summary.last.action.signal,
          summary.last.action.shift_toward_compute, summary.last.shifted,
          summary.last.action.panic ? "true" : "false", summary.last.action.reason);
    }
  } else {
    json += dbase::StrFormat(
        "\"enabled\":false,\"compute_workers\":%d,\"comm_workers\":%d",
        engine.compute_workers, engine.comm_workers);
  }
  json += "},\"sandbox_pool\":{";
  if (SandboxPool* pool = platform_->sandbox_pool(); pool != nullptr) {
    const SandboxPoolStats warm = pool->Stats();
    json += dbase::StrFormat(
        "\"enabled\":true,\"hits\":%llu,\"misses\":%llu,\"bypassed\":%llu,"
        "\"prewarm_fills\":%llu,\"recycled\":%llu,\"retired\":%llu,"
        "\"arrivals\":%llu,\"pool_child_lost\":%llu,\"shelved\":%d,\"leased\":%d,"
        "\"functions\":%d,\"max_total\":%d",
        u(warm.hits), u(warm.misses), u(warm.bypassed), u(warm.prewarm_fills),
        u(warm.recycled), u(warm.retired), u(warm.arrivals), u(warm.pool_child_lost),
        warm.shelved, warm.leased, warm.functions, warm.max_total);
    bool first = true;
    json += ",\"targets\":{";
    for (const auto& [name, decision] : pool->LastDecisions()) {
      if (!first) {
        json.push_back(',');
      }
      first = false;
      // Function names are caller-supplied: escape them (a quote or
      // backslash in a registered name must not corrupt the document).
      AppendJsonString(&json, name);
      json += dbase::StrFormat(":{\"depth\":%d,\"rate_per_sec\":%.2f,"
                               "\"reason\":\"%s\"}",
                               decision.target_depth, decision.rate_per_sec,
                               decision.reason);
    }
    json += "}";
  } else {
    json += "\"enabled\":false";
  }
  // Fault containment: jail capability, injected faults, retry/breaker
  // activity. `seccomp_filter` false means the process backend runs
  // unconfined (kernel without seccomp) — tests and operators must be able
  // to tell that apart from "jailed".
  const SandboxCapabilities& caps = SandboxCapabilities::Get();
  json += dbase::StrFormat("},\"jail\":{\"seccomp_filter\":%s,\"enabled\":%s,",
                           caps.seccomp_filter ? "true" : "false",
                           SyscallJailEnabled() ? "true" : "false");
  json += "\"detail\":";
  AppendJsonString(&json, caps.detail);
  json += "},\"faults\":{";
  {
    bool first = true;
    for (const FaultPointSnapshot& point : FaultInjector::Get().Snapshot()) {
      if (!first) {
        json.push_back(',');
      }
      first = false;
      json += dbase::StrFormat(
          "\"%s\":{\"armed\":%s,\"crossings\":%llu,\"fired\":%llu}",
          std::string(FaultPointName(point.point)).c_str(),
          point.armed ? "true" : "false", u(point.crossings), u(point.fired));
    }
  }
  json += "},\"retries\":{";
  json += dbase::StrFormat(
      "\"sandbox_failures\":%llu,\"attempted\":%llu,\"denied\":%llu",
      u(dispatcher.sandbox_failures), u(dispatcher.retries_attempted),
      u(dispatcher.retries_denied));
  json += "},\"breaker\":{";
  json += dbase::StrFormat(
      "\"fast_fails\":%llu,\"trips\":%llu,\"recoveries\":%llu,\"open\":%d,"
      "\"functions\":{",
      u(dispatcher.breaker_fast_fails), u(dispatcher.breaker_trips),
      u(dispatcher.breaker_recoveries), dispatcher.breakers_open);
  {
    bool first = true;
    for (const dpolicy::BreakerSnapshot& breaker : platform_->breaker_snapshots()) {
      if (!first) {
        json.push_back(',');
      }
      first = false;
      AppendJsonString(&json, breaker.function);
      json += dbase::StrFormat(":{\"state\":\"%s\",\"consecutive_failures\":%d}",
                               std::string(dpolicy::BreakerStateName(breaker.state)).c_str(),
                               breaker.consecutive_failures);
    }
  }
  json += "}}";
  // Distributed data plane: router-side view of every cluster node — wire
  // counters from the NodeClient, membership state + gossip staleness, and
  // the cross-node re-route activity.
  json += ",\"cluster\":{";
  if (cluster_ != nullptr) {
    const Cluster::ClusterStats cluster = cluster_->Stats();
    json += dbase::StrFormat(
        "\"enabled\":true,\"reroutes_shed\":%llu,\"reroutes_peer_lost\":%llu,"
        "\"reroute_denied\":%llu,\"no_eligible_node\":%llu,\"gossip_rounds\":%llu,"
        "\"members_suspected\":%llu,\"members_evicted\":%llu,"
        "\"members_rejoined\":%llu,\"scale_out_hints\":%llu,\"scale_in_hints\":%llu,"
        "\"peers\":{",
        u(cluster.reroutes_shed), u(cluster.reroutes_peer_lost), u(cluster.reroute_denied),
        u(cluster.no_eligible_node), u(cluster.gossip_rounds), u(cluster.membership.suspects),
        u(cluster.membership.evictions), u(cluster.membership.rejoins),
        u(cluster.membership.scale_out_hints), u(cluster.membership.scale_in_hints));
    bool first = true;
    for (const Cluster::PeerStats& peer : cluster.peers) {
      if (!first) {
        json.push_back(',');
      }
      first = false;
      AppendJsonString(&json, peer.name);
      json += dbase::StrFormat(
          ":{\"remote\":%s,\"state\":\"%s\",\"served\":%llu,\"inflight\":%lld,"
          "\"invokes_sent\":%llu,\"sheds_received\":%llu,\"peer_lost_failures\":%llu,"
          "\"bytes_sent\":%llu,\"bytes_received\":%llu,\"gossip_age_us\":%lld,"
          "\"remote_inflight\":%llu,\"remote_admission_cap\":%llu,"
          "\"utilization\":%.3f}",
          peer.remote ? "true" : "false", std::string(peer.state).c_str(), u(peer.served),
          static_cast<long long>(peer.inflight), u(peer.invokes_sent), u(peer.sheds_received),
          u(peer.peer_lost_failures), u(peer.bytes_sent), u(peer.bytes_received),
          static_cast<long long>(peer.gossip_age_us), u(peer.remote_inflight),
          u(peer.remote_admission_cap), peer.utilization);
    }
    json += "}";
  } else {
    json += "\"enabled\":false";
  }
  json += "}}\n";
  return json;
}

}  // namespace dandelion
