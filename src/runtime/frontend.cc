#include "src/runtime/frontend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/http/http_parser.h"

namespace dandelion {
namespace {

// A hostile Content-Length must not balloon memory: bodies beyond this are
// rejected with 413 before any body byte is buffered.
constexpr uint64_t kMaxBodyBytes = 64ull * 1024 * 1024;

// Reads one HTTP request from a connected socket: headers first, then the
// Content-Length-many body bytes. Oversized headers or bodies surface as
// kResourceExhausted, which the connection handler answers with 413.
dbase::Result<std::string> ReadHttpRequest(int fd) {
  std::string buffer;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      return dbase::Unavailable("client closed connection mid-request");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > 64 * 1024 * 1024) {
      return dbase::ResourceExhausted("request header block too large");
    }
  }
  // Find Content-Length to know how much body remains.
  uint64_t content_length = 0;
  {
    const std::string head = buffer.substr(0, header_end);
    for (auto line : dbase::SplitString(head, "\r\n")) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        continue;
      }
      if (dbase::EqualsIgnoreCase(dbase::TrimWhitespace(line.substr(0, colon)),
                                  "Content-Length")) {
        // A value that doesn't parse (garbage, or past 2^64) must fail
        // closed: treating it as 0 would sail past the body cap below.
        // Malformed length is a 400, not a 413 (RFC 9110 §8.6).
        if (!dbase::ParseUint64(dbase::TrimWhitespace(line.substr(colon + 1)), &content_length)) {
          return dbase::InvalidArgument("unparseable Content-Length");
        }
      }
    }
  }
  if (content_length > kMaxBodyBytes) {
    return dbase::ResourceExhausted("request body too large");
  }
  const size_t body_start = header_end + 4;
  while (buffer.size() - body_start < content_length) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      return dbase::Unavailable("client closed connection mid-body");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return buffer;
}

void WriteAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    if (n <= 0) {
      return;
    }
    offset += static_cast<size_t>(n);
  }
}

// Writes an error response for a request whose body was never read. The
// client may still be streaming it; closing with unread bytes in the
// receive buffer sends RST, which discards the response before the client
// reads it. Signal end-of-response, then drain — bounded in both bytes and
// time (a hostile client that just holds the socket open must not stall
// the accept thread) — so a well-behaved client gets the error instead of
// a connection reset.
void RespondAndDrain(int fd, const dhttp::HttpResponse& response) {
  WriteAll(fd, response.Serialize());
  shutdown(fd, SHUT_WR);
  timeval timeout{};
  timeout.tv_usec = 200 * 1000;  // Per-read bound.
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  const dbase::Stopwatch watch;  // Whole-drain bound.
  char sink[4096];
  for (size_t drained = 0; drained < (1u << 20);) {
    const ssize_t n = read(fd, sink, sizeof(sink));
    if (n <= 0 || watch.ElapsedMicros() > dbase::kMicrosPerSecond) {
      break;
    }
    drained += static_cast<size_t>(n);
  }
}

}  // namespace

HttpFrontend::HttpFrontend(Platform* platform, uint16_t port)
    : platform_(platform), port_(port) {}

HttpFrontend::~HttpFrontend() { Stop(); }

dbase::Status HttpFrontend::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return dbase::Unavailable("socket() failed");
  }
  int reuse = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return dbase::Unavailable("bind() failed (sandboxed environment?)");
  }
  if (listen(listen_fd_, 64) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return dbase::Unavailable("listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = dbase::JoiningThread("frontend", [this] { AcceptLoop(); });
  return dbase::OkStatus();
}

void HttpFrontend::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  accept_thread_.Join();
}

void HttpFrontend::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_relaxed)) {
        return;
      }
      continue;
    }
    // One connection at a time keeps the frontend simple; invocation work
    // itself runs on the engines, so the frontend is not the bottleneck for
    // the single-client examples/tests that use it.
    HandleConnection(client);
    close(client);
  }
}

void HttpFrontend::HandleConnection(int client_fd) {
  auto raw = ReadHttpRequest(client_fd);
  if (!raw.ok()) {
    if (raw.status().code() == dbase::StatusCode::kResourceExhausted) {
      RespondAndDrain(client_fd, dhttp::HttpResponse::Make(413, "Payload Too Large",
                                                           raw.status().ToString()));
    } else if (raw.status().code() == dbase::StatusCode::kInvalidArgument) {
      RespondAndDrain(client_fd, dhttp::HttpResponse::BadRequest(raw.status().ToString()));
    }
    return;
  }
  auto parsed = dhttp::ParseRequest(*raw);
  dhttp::HttpResponse response;
  if (!parsed.ok()) {
    response = dhttp::HttpResponse::BadRequest(parsed.status().ToString());
    WriteAll(client_fd, response.Serialize());
    return;
  }
  const dhttp::HttpRequest& request = parsed.value();
  const std::string& target = request.target;

  if (request.method == dhttp::Method::kGet && target == "/healthz") {
    response = dhttp::HttpResponse::Ok("ok\n");
  } else if (request.method == dhttp::Method::kPost && target == "/register/composition") {
    const dbase::Status status = platform_->RegisterCompositionDsl(request.body);
    response = status.ok() ? dhttp::HttpResponse::Make(201, "Created", "registered\n")
                           : dhttp::HttpResponse::BadRequest(status.ToString());
  } else if (request.method == dhttp::Method::kPost && target.rfind("/invoke/", 0) == 0) {
    const std::string composition = target.substr(std::strlen("/invoke/"));
    dfunc::DataSetList args;
    const bool raw_mode = request.headers.Get("X-Dandelion-Raw").has_value();
    if (raw_mode) {
      // Plain-text convenience: the body becomes the single item of a set
      // named after the composition's first parameter.
      auto graph = platform_->compositions().Lookup(composition);
      if (!graph.ok() || graph.value()->params().empty()) {
        WriteAll(client_fd, dhttp::HttpResponse::NotFound("unknown composition").Serialize());
        return;
      }
      args.push_back(
          dfunc::DataSet{graph.value()->params().front(), {dfunc::DataItem{"", request.body}}});
    } else {
      auto unmarshalled = dfunc::UnmarshalSets(request.body);
      if (!unmarshalled.ok()) {
        WriteAll(client_fd,
                 dhttp::HttpResponse::BadRequest(unmarshalled.status().ToString()).Serialize());
        return;
      }
      args = std::move(unmarshalled).value();
    }
    auto result = platform_->Invoke(composition, std::move(args));
    if (result.ok()) {
      response = dhttp::HttpResponse::Ok(dfunc::MarshalSets(result.value()));
      response.headers.Set("Content-Type", "application/x-dandelion-sets");
    } else {
      const int code = result.status().code() == dbase::StatusCode::kNotFound ? 404 : 500;
      response = dhttp::HttpResponse::Make(code, "Error", result.status().ToString());
    }
  } else {
    response = dhttp::HttpResponse::NotFound("unknown endpoint: " + target);
  }
  WriteAll(client_fd, response.Serialize());
}

}  // namespace dandelion
