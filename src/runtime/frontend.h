// HTTP frontend (Figure 4): "manages client communication, handling
// requests for composition/function registration and invocation". This is a
// minimal HTTP/1.1 server over a TCP listening socket:
//
//   POST /invoke/<composition>      body: marshalled DataSetList (binary) or
//                                   plain text (becomes the first param's
//                                   single item when X-Dandelion-Raw: 1)
//   POST /register/composition     body: DSL source text
//   GET  /healthz                  liveness probe
//
// Responses carry marshalled DataSetList bodies for invocations.
#ifndef SRC_RUNTIME_FRONTEND_H_
#define SRC_RUNTIME_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/runtime/platform.h"

namespace dandelion {

class HttpFrontend {
 public:
  // port 0 lets the kernel pick; the bound port is then readable via port().
  HttpFrontend(Platform* platform, uint16_t port = 0);
  ~HttpFrontend();

  HttpFrontend(const HttpFrontend&) = delete;
  HttpFrontend& operator=(const HttpFrontend&) = delete;

  // Binds, listens, and starts the accept loop.
  dbase::Status Start();
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  Platform* platform_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  dbase::JoiningThread accept_thread_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_FRONTEND_H_
