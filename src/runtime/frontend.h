// HTTP frontend (Figure 4): "manages client communication, handling
// requests for composition/function registration and invocation". An
// epoll-driven HTTP/1.1 server on a single event-loop thread:
//
//   POST /invoke/<composition>      body: marshalled DataSetList (binary) or
//                                   plain text (becomes the first param's
//                                   single item when X-Dandelion-Raw: 1).
//                                   X-Dandelion-Deadline-Ms: <n> sets a
//                                   relative deadline (504 when exceeded);
//                                   X-Dandelion-Priority: interactive|batch
//                                   picks the request class. Per-class
//                                   admission control sheds with 429; a
//                                   client whose connection dies has its
//                                   in-flight invocations cancelled.
//   POST /register/composition     body: DSL source text
//   GET  /healthz                  liveness probe
//   GET  /compositions             registered composition names (JSON)
//   GET  /statz                    engine/dispatcher/frontend counters plus
//                                  the control plane's policy, current
//                                  compute/comm core split, and last
//                                  elasticity decision (JSON)
//
// Connections are non-blocking with keep-alive and pipelining: requests are
// parsed incrementally as bytes arrive, invocations are dispatched through
// Platform::InvokeAsync, and each completion is posted back to the loop and
// written out in request order — the loop thread never blocks on engine
// work, so one slow invocation cannot stall other connections.
// Responses carry marshalled DataSetList bodies for invocations.
#ifndef SRC_RUNTIME_FRONTEND_H_
#define SRC_RUNTIME_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/buffer.h"
#include "src/base/clock.h"
#include "src/base/event_loop.h"
#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/http/http_message.h"
#include "src/runtime/invocation.h"
#include "src/runtime/platform.h"

namespace dandelion {

class Cluster;

struct FrontendConfig {
  // port 0 lets the kernel pick; the bound port is then readable via port().
  uint16_t port = 0;
  // A connection that makes no read progress for this long is closed
  // (slowloris guard; also reaps idle keep-alive connections).
  dbase::Micros idle_timeout = 10 * dbase::kMicrosPerSecond;
  // Absolute bound on how long one request may take to arrive once its
  // first byte is in: defeats trickle-slowloris clients that keep beating
  // the inactivity check with one byte per idle_timeout. Enforced with up
  // to idle_timeout of lag (the reaper shares the idle timer).
  dbase::Micros request_timeout = 30 * dbase::kMicrosPerSecond;
  // Bound on the respond-then-drain window after a request-framing error.
  dbase::Micros drain_timeout = dbase::kMicrosPerSecond;
  // Beyond this many open connections, new accepts get an immediate 503.
  size_t max_connections = 1024;
  // Aggregate cap on not-yet-consumed request bytes across ALL
  // connections: the per-request 64 MiB body cap times max_connections
  // would otherwise let a fleet of hostile clients buffer tens of GiB. A
  // connection whose read would breach the budget is failed with 503.
  size_t max_total_buffered_bytes = 256 * 1024 * 1024;
  // Same idea on the response side: completed responses waiting in slots
  // or in write buffers, across ALL connections. A client that sends
  // requests but never reads the answers accumulates here; the connection
  // that breaches the budget is closed (its write path is clogged, so no
  // error response could reach it anyway).
  size_t max_total_response_bytes = 256 * 1024 * 1024;
  // Pipelining backpressure: stop reading from a connection once this many
  // requests are awaiting responses on it.
  size_t max_pipeline_depth = 64;
  // Admission control: cap on invocations of each class in flight through
  // this frontend. A request arriving at a full class is shed immediately
  // with 429 instead of queueing blindly — under overload the platform
  // degrades by rejecting cheap and early. 0 = uncapped.
  size_t max_inflight_interactive = 256;
  size_t max_inflight_batch = 256;
  // Threads that run Platform::InvokeAsync dispatch (dependency setup,
  // memory-context creation, input marshalling) so the loop thread stays on
  // socket work. -1 auto-sizes: 2 when the machine has cores to spare,
  // 0 (dispatch inline on the loop thread) otherwise — on a 1-core box the
  // extra thread hop costs more than it hides. Response ordering is
  // unaffected (slots are queued at parse time); only invocation start
  // order across one connection's pipelined requests becomes best-effort.
  int dispatch_threads = -1;
};

// A response as an ordered chunk sequence for gathered (writev) output:
// framing/header chunks own their bytes via refcounted buffers, large
// payload chunks alias the marshalled set slices directly — the frontend
// never concatenates a big response into one contiguous string.
struct WireChunks {
  std::vector<dbase::BufferSlice> chunks;
  size_t total_bytes = 0;

  void Append(dbase::BufferSlice chunk) {
    total_bytes += chunk.size();
    chunks.push_back(std::move(chunk));
  }
  static WireChunks FromString(std::string bytes) {
    WireChunks wire;
    wire.Append(dbase::BufferSlice(dbase::Buffer::FromString(std::move(bytes))));
    return wire;
  }
};

class HttpFrontend {
 public:
  explicit HttpFrontend(Platform* platform, FrontendConfig config);
  HttpFrontend(Platform* platform, uint16_t port = 0);
  ~HttpFrontend();

  HttpFrontend(const HttpFrontend&) = delete;
  HttpFrontend& operator=(const HttpFrontend&) = delete;

  // Binds, listens, and starts the event-loop thread.
  dbase::Status Start();
  void Stop();

  // Routes invokes through a cluster (locality-aware dispatch + cross-node
  // shedding over the dnet wire) instead of submitting straight to the
  // local platform. The attached platform keeps serving registration,
  // statz and signals. Call before Start(); the cluster must outlive the
  // frontend. /statz grows a "cluster" section with per-peer wire and
  // membership counters.
  void AttachCluster(Cluster* cluster) { cluster_ = cluster; }

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  // Per-connection state machine, mutated only on the loop thread. Held by
  // shared_ptr so async completions can hold a weak_ptr that expires when
  // the connection closes first.
  struct Connection {
    int fd = -1;
    enum class State {
      kReading,   // Parsing pipelined requests out of `in`.
      kStopped,   // No further requests accepted (Connection: close, a
                  // framing error queued, or the client half-closed);
                  // pending responses still flush in order.
      kDraining,  // Error response flushed, SHUT_WR done; discarding the
                  // client's in-flight body so the response isn't RST-lost.
    };
    State state = State::kReading;
    std::string in;   // Received, not-yet-consumed bytes.
    // Response chunks awaiting write, gathered with writev. out_offset is
    // the cursor into the front chunk (partial writes advance it without
    // memmoving anything); out_pending is the total unsent byte count
    // across all chunks (the budget-accounting quantity).
    std::deque<dbase::BufferSlice> out;
    size_t out_offset = 0;
    size_t out_pending = 0;
    bool HasPendingOut() const { return out_pending > 0; }
    // One slot per accepted request, in arrival order; a slot's response
    // may complete out of order but is written only at the queue head.
    struct ResponseSlot {
      bool ready = false;
      WireChunks bytes;
      // Invocation attached to this slot, if any. `mu` orders the dispatch
      // thread's handle store against the loop thread's close-time cancel:
      // whichever runs second sees the other's write, so a connection that
      // dies mid-dispatch still cancels the invocation.
      std::mutex mu;
      InvocationHandle handle;   // Guarded by mu.
      bool abandoned = false;    // Guarded by mu; set when the conn died.
    };
    std::deque<std::shared_ptr<ResponseSlot>> pipeline;
    uint32_t armed_events = 0;  // Interest set currently registered.
    bool flush_queued = false;  // Already on the deferred-flush list.
    // Client half-closed. Unlike kStopped, already-buffered complete
    // requests are still parsed and answered (as backpressure slots free
    // up); the connection closes once nothing parseable remains.
    bool saw_eof = false;
    // When the buffered partial request's first byte arrived (0 = no
    // partial pending); drives FrontendConfig::request_timeout.
    dbase::Micros partial_since = 0;
    // After everything flushed: drain before closing (framing-error path).
    bool drain_requested = false;
    dbase::Micros last_activity = 0;  // For the idle timer.
    dbase::EventLoop::TimerId idle_timer = 0;
    size_t drained_bytes = 0;
  };
  using ConnectionPtr = std::shared_ptr<Connection>;
  using SlotPtr = std::shared_ptr<Connection::ResponseSlot>;

  // All of the below run on the loop thread.
  void OnAcceptable();
  void OnConnectionEvent(const ConnectionPtr& conn, uint32_t events);
  void OnReadable(const ConnectionPtr& conn);
  void ProcessInput(const ConnectionPtr& conn);
  // Consumes one complete request's bytes. Returns false when the
  // connection stopped accepting further requests.
  bool HandleRequest(const ConnectionPtr& conn, std::string_view wire);
  // POST /invoke/<composition>: resolves the arguments and hands the work
  // to Platform::InvokeAsync; the completion posts back to the loop. Runs
  // on a dispatch-pool thread when the pool is enabled, inline on the loop
  // thread otherwise — so it must never block (engine work is async either
  // way; only the dispatch setup happens here).
  void DispatchInvoke(const std::weak_ptr<Connection>& weak_conn, const SlotPtr& slot,
                      dhttp::HttpRequest request);
  void FinishSlot(const ConnectionPtr& conn, const SlotPtr& slot,
                  const dhttp::HttpResponse& response);
  // Accounts a newly-completed response against the response budget;
  // closes the connection (and returns false) when it tips the total over
  // max_total_response_bytes.
  bool AccountResponseBytes(const ConnectionPtr& conn, size_t bytes);
  // Thread-safe slot completion: fills the slot and posts the flush (and
  // any backpressure-resumed parsing) onto the loop thread. Safe from
  // dispatch-pool threads (drained before the frontend dies); engine-side
  // callers that may outlive Stop() capture loop_ themselves instead.
  void PostSlotCompletion(const std::weak_ptr<Connection>& weak_conn, const SlotPtr& slot,
                          WireChunks bytes);
  // Loop-thread half of a completion: marks the slot ready and queues the
  // connection for a deferred flush, so a burst of completions costs one
  // write() per connection instead of one per response.
  void ApplySlotCompletion(const std::weak_ptr<Connection>& weak_conn, const SlotPtr& slot,
                           WireChunks bytes);
  void FlushDirtyConnections();
  // Queues an error response for a request whose body was never consumed,
  // then transitions to respond → SHUT_WR → bounded drain → close, so a
  // well-behaved client reads the error instead of a connection reset.
  void FailConnection(const ConnectionPtr& conn, dhttp::HttpResponse response);
  void FlushPipeline(const ConnectionPtr& conn);
  // Once a connection stops parsing (kStopped/kDraining), its buffered
  // input is dead weight: release it and its budget share immediately so
  // one failed upload cannot 503-cascade onto other connections for the
  // whole drain window. Callers must hold no views into conn->in.
  void ReleaseDeadInput(const ConnectionPtr& conn);
  void TryWrite(const ConnectionPtr& conn);
  void UpdateInterest(const ConnectionPtr& conn);
  void ArmIdleTimer(const ConnectionPtr& conn);
  // Closes a half-closed (saw_eof) connection once everything answerable
  // has been answered and flushed.
  void MaybeFinishEof(const ConnectionPtr& conn);
  void BeginDrain(const ConnectionPtr& conn);
  void CloseConnection(const ConnectionPtr& conn);

  // Invocation-side counters. Shared (not members-by-value) because engine
  // threads may run completion callbacks after the frontend object is gone;
  // the callbacks capture this block by shared_ptr.
  struct InvokeCounters {
    std::atomic<int64_t> inflight[kNumPriorityClasses] = {};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> shed_429{0};
    std::atomic<uint64_t> deadline_504{0};
    std::atomic<uint64_t> disconnect_cancelled{0};
  };

  // Builds the GET /statz JSON snapshot (loop thread only).
  std::string StatzJson() const;

  Platform* platform_;
  Cluster* cluster_ = nullptr;  // Optional invoke route; not owned.
  FrontendConfig config_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  // Shared with async completion callbacks: they Post() into the loop and
  // must keep it alive even if the frontend is torn down first.
  std::shared_ptr<dbase::EventLoop> loop_;
  std::unordered_map<int, ConnectionPtr> connections_;  // Loop thread only.
  std::vector<ConnectionPtr> dirty_connections_;        // Loop thread only.
  bool flush_scheduled_ = false;                        // Loop thread only.
  // Sum of all connections' `in` buffers (loop thread only); enforces
  // FrontendConfig::max_total_buffered_bytes.
  size_t total_buffered_bytes_ = 0;
  // Sum of completed-but-unsent response bytes (ready slots + unsent
  // `out` tails) across connections (loop thread only); enforces
  // FrontendConfig::max_total_response_bytes.
  size_t total_response_bytes_ = 0;
  std::unique_ptr<dbase::WorkerPool> dispatch_pool_;
  std::shared_ptr<InvokeCounters> counters_ = std::make_shared<InvokeCounters>();
  // Admission counters registered with the platform's control plane (only
  // once, even across Start/Stop cycles; unregistered in the destructor).
  bool signals_registered_ = false;
  uint64_t signal_source_id_ = 0;
  dbase::JoiningThread loop_thread_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_FRONTEND_H_
