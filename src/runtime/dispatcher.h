// The dispatcher (§5, §6.1): orchestrates composition invocations. It
// tracks input/output dependencies, decides when each function is ready,
// prepares an isolated memory context per compute instance, enqueues tasks
// on the engine queues, fans instances out according to the all/each/key
// distribution keywords, merges instance outputs, and applies the
// conditional-execution rule (§4.4: a function runs only when every
// non-optional input set contains at least one item).
#ifndef SRC_RUNTIME_DISPATCHER_H_
#define SRC_RUNTIME_DISPATCHER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/dsl/graph.h"
#include "src/func/data.h"
#include "src/func/registry.h"
#include "src/runtime/engine.h"
#include "src/runtime/memory_context.h"

namespace dandelion {

// Thread-safe name → composition graph catalog (the "Function / DAG
// Registry" box of Figure 4, composition half).
class CompositionRegistry {
 public:
  dbase::Status Register(ddsl::CompositionGraph graph);
  dbase::Result<std::shared_ptr<const ddsl::CompositionGraph>> Lookup(
      const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ddsl::CompositionGraph>> graphs_;
};

// Aggregate counters exported by the dispatcher.
struct DispatcherStats {
  uint64_t invocations_started = 0;
  uint64_t invocations_completed = 0;
  uint64_t invocations_failed = 0;
  uint64_t compute_instances = 0;
  uint64_t comm_instances = 0;
  uint64_t skipped_instances = 0;
};

class Dispatcher {
 public:
  struct Config {
    // Process isolation requires MAP_SHARED contexts.
    bool shared_contexts = false;
    // Nested-composition recursion bound (compositions may invoke
    // compositions, §4.1).
    int max_depth = 16;
  };

  Dispatcher(const dfunc::FunctionRegistry* functions, const CompositionRegistry* compositions,
             const CommFunctionRegistry* comm_functions, WorkerSet* workers,
             MemoryAccountant* accountant, Config config);

  using ResultCallback = std::function<void(dbase::Result<dfunc::DataSetList>)>;

  // Asynchronous invocation; the callback fires exactly once, possibly on an
  // engine thread.
  void InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                   ResultCallback callback);

  // Blocking convenience wrapper.
  dbase::Result<dfunc::DataSetList> Invoke(const std::string& composition,
                                           dfunc::DataSetList args);

  DispatcherStats Stats() const;

 private:
  struct InvocationState;

  void InvokeGraphAsync(std::shared_ptr<const ddsl::CompositionGraph> graph,
                        dfunc::DataSetList args, int depth, ResultCallback callback);

  void StartNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index);
  // Prepares one compute instance (context + marshalled inputs + done
  // callback) without submitting it; nullopt after a FailLocked. Instances
  // of one fan-out are then handed to the engines as a single batch.
  std::optional<ComputeTask> BuildComputeTask(const std::shared_ptr<InvocationState>& inv,
                                              size_t node_index, size_t instance_index,
                                              dfunc::DataSetList inputs,
                                              const dfunc::FunctionSpec& spec);
  void LaunchCommInstance(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                          size_t instance_index, dfunc::DataSetList inputs,
                          const CommFunctionSpec& spec);
  void LaunchNestedInstance(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                            size_t instance_index, dfunc::DataSetList inputs,
                            std::shared_ptr<const ddsl::CompositionGraph> subgraph);
  void OnInstanceDone(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                      size_t instance_index, dbase::Result<dfunc::DataSetList> outputs);
  void MergeNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index);
  void DeliverValueLocked(const std::shared_ptr<InvocationState>& inv, const std::string& value,
                          dfunc::DataSet set);
  void FailLocked(const std::shared_ptr<InvocationState>& inv, dbase::Status status);
  void MaybeCompleteLocked(const std::shared_ptr<InvocationState>& inv);

  const dfunc::FunctionRegistry* functions_;
  const CompositionRegistry* compositions_;
  const CommFunctionRegistry* comm_functions_;
  WorkerSet* workers_;
  MemoryAccountant* accountant_;
  Config config_;

  std::atomic<uint64_t> invocations_started_{0};
  std::atomic<uint64_t> invocations_completed_{0};
  std::atomic<uint64_t> invocations_failed_{0};
  std::atomic<uint64_t> compute_instances_{0};
  std::atomic<uint64_t> comm_instances_{0};
  std::atomic<uint64_t> skipped_instances_{0};
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_DISPATCHER_H_
