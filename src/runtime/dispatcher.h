// The dispatcher (§5, §6.1): orchestrates composition invocations. It
// tracks input/output dependencies, decides when each function is ready,
// prepares an isolated memory context per compute instance, enqueues tasks
// on the engine queues, fans instances out according to the all/each/key
// distribution keywords, merges instance outputs, and applies the
// conditional-execution rule (§4.4: a function runs only when every
// non-optional input set contains at least one item).
//
// Invocations are first-class (src/runtime/invocation.h): Submit() takes an
// InvocationRequest (deadline, priority class, id) and returns an
// InvocationHandle. The shared InvocationControl propagates the deadline
// and the cancel flag into nested compositions, queued engine tasks, and
// running sandboxes; a dead invocation launches no further instances. A
// deadline reaper thread terminates past-deadline invocations even when
// they are parked on slow communication calls.
#ifndef SRC_RUNTIME_DISPATCHER_H_
#define SRC_RUNTIME_DISPATCHER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread.h"
#include "src/dsl/graph.h"
#include "src/func/data.h"
#include "src/func/registry.h"
#include "src/policy/retry.h"
#include "src/runtime/engine.h"
#include "src/runtime/invocation.h"
#include "src/runtime/memory_context.h"

namespace dandelion {

// Thread-safe name → composition graph catalog (the "Function / DAG
// Registry" box of Figure 4, composition half).
class CompositionRegistry {
 public:
  dbase::Status Register(ddsl::CompositionGraph graph);
  dbase::Result<std::shared_ptr<const ddsl::CompositionGraph>> Lookup(
      const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ddsl::CompositionGraph>> graphs_;
};

// Aggregate counters exported by the dispatcher. The invocation counters
// count graph invocations (nested compositions count once per level); the
// in-flight gauges count external Submit()s still running, by class.
struct DispatcherStats {
  uint64_t invocations_started = 0;
  uint64_t invocations_completed = 0;
  uint64_t invocations_failed = 0;
  uint64_t invocations_cancelled = 0;
  uint64_t invocations_deadline_exceeded = 0;
  uint64_t compute_instances = 0;
  uint64_t comm_instances = 0;
  uint64_t skipped_instances = 0;
  uint64_t inflight_interactive = 0;
  uint64_t inflight_batch = 0;
  // Composition data plane (process-wide dfunc::DataPlaneStats snapshot):
  // payload bytes physically copied vs. moved by reference at data-plane
  // seams, plus the seam-event counters behind them.
  uint64_t bytes_copied = 0;
  uint64_t bytes_aliased = 0;
  uint64_t payload_promotions = 0;
  uint64_t cow_detaches = 0;
  uint64_t binding_materializations = 0;
  // Fault containment: sandbox-level failures observed (non-kNone
  // FailureKinds), instance relaunches the RetryPolicy granted/denied, and
  // circuit-breaker activity (fast-failed admissions, trips, recoveries,
  // currently-open breakers).
  uint64_t sandbox_failures = 0;
  uint64_t retries_attempted = 0;
  uint64_t retries_denied = 0;
  uint64_t breaker_fast_fails = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_recoveries = 0;
  int breakers_open = 0;
};

class Dispatcher {
 public:
  struct Config {
    // Process isolation requires MAP_SHARED contexts.
    bool shared_contexts = false;
    // Nested-composition recursion bound (compositions may invoke
    // compositions, §4.1).
    int max_depth = 16;
    // Upper bound on how long the blocking Invoke() wrappers wait for a
    // completion when the request itself carries no deadline — a lost
    // callback must surface as kDeadlineExceeded, not hang the caller
    // forever. 0 disables the cap (legacy behavior).
    dbase::Micros max_blocking_wait_us = 120 * dbase::kMicrosPerSecond;
    // When set, compute instances try Acquire() before cold-creating a
    // context. Not owned; must outlive the dispatcher.
    SandboxPool* sandbox_pool = nullptr;
    // Retry/circuit-breaker policy for sandbox-level failures (crash,
    // pool-child-lost, transient resource exhaustion). Dandelion functions
    // are pure computations over declared inputs, so these relaunches are
    // always side-effect-safe. Functional errors a body returns are never
    // retried.
    dpolicy::RetryOptions retry;
  };

  Dispatcher(const dfunc::FunctionRegistry* functions, const CompositionRegistry* compositions,
             const CommFunctionRegistry* comm_functions, WorkerSet* workers,
             MemoryAccountant* accountant, Config config);
  ~Dispatcher();

  using ResultCallback = std::function<void(dbase::Result<dfunc::DataSetList>)>;

  // Primary entry point: submits the invocation and returns a handle. The
  // callback fires exactly once — possibly on an engine thread, possibly
  // before Submit returns — with the results or the terminal status
  // (kCancelled / kDeadlineExceeded / the first instance failure).
  InvocationHandle Submit(InvocationRequest request, ResultCallback callback);

  // Blocking counterpart: waits for the result, bounded by the request
  // deadline (and Config::max_blocking_wait_us as a backstop). On timeout
  // the invocation is cancelled and kDeadlineExceeded returned.
  dbase::Result<dfunc::DataSetList> Invoke(InvocationRequest request);

  // Legacy shims over the request API (no deadline, interactive class).
  void InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                   ResultCallback callback);
  dbase::Result<dfunc::DataSetList> Invoke(const std::string& composition,
                                           dfunc::DataSetList args);

  DispatcherStats Stats() const;
  // Per-function circuit-breaker states (statz's `breaker` section).
  std::vector<dpolicy::BreakerSnapshot> Breakers() const;

 private:
  struct InvocationState;

  // One scheduled instance relaunch. Inputs are retained by shared_ptr at
  // build time (refcount bumps, no payload copies — buffers are immutable
  // slices), so a relaunch can re-marshal them into a fresh context; the
  // failed child may have corrupted the old one.
  struct RetryJob {
    // Strong reference: a pending relaunch IS an outstanding instance of the
    // invocation — nothing else is guaranteed to keep the state alive while
    // the backoff elapses.
    std::shared_ptr<InvocationState> inv;
    size_t node_index = 0;
    size_t instance_index = 0;
    dfunc::FunctionSpec spec;
    std::shared_ptr<const dfunc::DataSetList> inputs;
    int attempt = 0;
    // The failure that triggered the retry — surfaced if the invocation
    // died while the retry was pending.
    dbase::Status original_status;
  };

  // Starts one graph invocation; the control block is shared across nesting
  // levels (the root's deadline and cancel flag govern the whole tree).
  // Returns the created state, or nullptr when the invocation was rejected
  // synchronously (depth bound).
  std::shared_ptr<InvocationState> InvokeGraphAsync(
      std::shared_ptr<const ddsl::CompositionGraph> graph, dfunc::DataSetList args, int depth,
      ResultCallback callback, std::shared_ptr<InvocationControl> control);

  void StartNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index);
  // Prepares one compute instance (context + marshalled inputs + done
  // callback) without submitting it; nullopt after a FailLocked. Instances
  // of one fan-out are then handed to the engines as a single batch.
  std::optional<ComputeTask> BuildComputeTask(const std::shared_ptr<InvocationState>& inv,
                                              size_t node_index, size_t instance_index,
                                              dfunc::DataSetList inputs,
                                              const dfunc::FunctionSpec& spec, int attempt = 0);
  void LaunchCommInstance(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                          size_t instance_index, dfunc::DataSetList inputs,
                          const CommFunctionSpec& spec);
  void LaunchNestedInstance(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                            size_t instance_index, dfunc::DataSetList inputs,
                            std::shared_ptr<const ddsl::CompositionGraph> subgraph);
  void OnInstanceDone(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                      size_t instance_index, dbase::Result<dfunc::DataSetList> outputs);
  void MergeNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index);
  void DeliverValueLocked(const std::shared_ptr<InvocationState>& inv, const std::string& value,
                          dfunc::DataSet set);
  void FailLocked(const std::shared_ptr<InvocationState>& inv, dbase::Status status);
  void MaybeCompleteLocked(const std::shared_ptr<InvocationState>& inv);

  // --- Retry executive ------------------------------------------------------
  // Every compute instance completes through OnComputeOutcome: it feeds the
  // failure kind into the RetryPolicy/breaker, and either schedules a
  // backed-off relaunch (retry-safe kinds, budget permitting) or lets the
  // failure surface through OnInstanceDone. Relaunches run on a lazily
  // spawned scheduler thread (same idiom as the deadline reaper).
  void OnComputeOutcome(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                        size_t instance_index, const dfunc::FunctionSpec& spec,
                        std::shared_ptr<const dfunc::DataSetList> retained_inputs, int attempt,
                        ExecOutcome outcome);
  void ScheduleRetry(dbase::Micros due_us, RetryJob job);
  void RelaunchCompute(RetryJob job);
  void RetrySchedulerLoop();

  // --- Deadline reaper ------------------------------------------------------
  // Fails a root invocation at its deadline even when no instance is
  // running to observe it (e.g. parked on a long comm call). The thread is
  // spawned lazily on the first deadline-carrying Submit. Entries are
  // keyed by the control block's address, not the invocation id — callers
  // may reuse explicit ids, and two live invocations must not clobber each
  // other's reaper entries.
  void ArmReaper(const InvocationControl* key, dbase::Micros deadline_us,
                 const std::shared_ptr<InvocationState>& inv);
  void DisarmReaper(const InvocationControl* key);
  void ReaperLoop();

  const dfunc::FunctionRegistry* functions_;
  const CompositionRegistry* compositions_;
  const CommFunctionRegistry* comm_functions_;
  WorkerSet* workers_;
  MemoryAccountant* accountant_;
  Config config_;

  std::atomic<uint64_t> next_invocation_id_{1};
  std::atomic<uint64_t> invocations_started_{0};
  std::atomic<uint64_t> invocations_completed_{0};
  std::atomic<uint64_t> invocations_failed_{0};
  std::atomic<uint64_t> invocations_cancelled_{0};
  std::atomic<uint64_t> invocations_deadline_exceeded_{0};
  std::atomic<uint64_t> compute_instances_{0};
  std::atomic<uint64_t> comm_instances_{0};
  std::atomic<uint64_t> skipped_instances_{0};
  std::atomic<int64_t> inflight_by_class_[kNumPriorityClasses] = {};

  struct ReaperEntry {
    dbase::Micros deadline_us = 0;
    std::weak_ptr<InvocationState> inv;
  };
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  // Keyed by control-block address (unique per live invocation; the
  // wrapped callback keeps the control alive until it disarms).
  std::map<const InvocationControl*, ReaperEntry> reaper_entries_;
  bool reaper_stop_ = false;                        // Guarded by reaper_mu_.
  dbase::JoiningThread reaper_thread_;              // Guarded by reaper_mu_ (spawn).

  // --- Retry policy + scheduler ---------------------------------------------
  std::atomic<uint64_t> sandbox_failures_{0};
  mutable std::mutex retry_mu_;
  dpolicy::RetryPolicy retry_policy_;               // Guarded by retry_mu_.
  std::mutex retry_sched_mu_;
  std::condition_variable retry_sched_cv_;
  // Pending relaunches keyed by their due time on the monotonic clock.
  std::multimap<dbase::Micros, RetryJob> retry_jobs_;
  bool retry_stop_ = false;                         // Guarded by retry_sched_mu_.
  dbase::JoiningThread retry_thread_;               // Guarded by retry_sched_mu_ (spawn).
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_DISPATCHER_H_
