// The HTTP communication function (§6.3): the platform-provided, trusted
// function users invoke from compositions. Sanitizes an untrusted request
// item, carries it to the service mesh, and hands back the serialized
// response. Failures are *forwarded* as HTTP error responses, not raised —
// downstream functions see "404 Not Found" items and can handle them (§4.4).
#ifndef SRC_RUNTIME_COMM_FUNCTION_H_
#define SRC_RUNTIME_COMM_FUNCTION_H_

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/clock.h"
#include "src/base/status.h"
#include "src/http/service_mesh.h"

namespace dandelion {

// Name under which the HTTP communication function is invocable from
// composition DSL programs.
inline constexpr const char* kHttpFunctionName = "HTTP";

// Canonical input/output set names of the HTTP function.
inline constexpr const char* kHttpRequestSet = "Request";
inline constexpr const char* kHttpResponseSet = "Response";

struct CommCallResult {
  dhttp::HttpResponse response;
  // Modelled network+service latency the caller should account (the real
  // runtime sleeps it; the simulator advances virtual time by it).
  dbase::Micros latency_us = 0;
};

// Runs the full trusted path: sanitize → route → respond. Never fails; a
// rejected request becomes a "400 Bad Request" response whose body explains
// the sanitizer's reason.
CommCallResult ExecuteHttpFunction(dhttp::ServiceMesh& mesh, std::string_view raw_request);

// A platform-provided communication function (§3: "They are implemented by
// the Dandelion platform ... We plan to add more communication functions to
// support additional protocols."). Handlers are trusted code; the raw
// request bytes are untrusted function output and must be sanitized.
struct CommFunctionSpec {
  std::string name;              // Callee name in composition DSL.
  std::string request_set = kHttpRequestSet;
  std::string response_set = kHttpResponseSet;
  // Must never throw; failures are forwarded as error responses (§4.4).
  std::function<CommCallResult(dhttp::ServiceMesh&, std::string_view raw)> handler;
};

// Thread-safe catalog of communication functions. Every platform starts
// with "HTTP" registered.
class CommFunctionRegistry {
 public:
  CommFunctionRegistry();

  dbase::Status Register(CommFunctionSpec spec);
  dbase::Result<CommFunctionSpec> Lookup(const std::string& name) const;
  // Like Lookup but allocation-free on a miss — for callers probing every
  // composition callee, where misses are the common case.
  std::optional<CommFunctionSpec> TryLookup(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CommFunctionSpec> functions_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_COMM_FUNCTION_H_
