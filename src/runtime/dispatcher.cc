#include "src/runtime/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "src/base/log.h"
#include "src/base/string_util.h"
#include "src/runtime/comm_function.h"

namespace dandelion {

// ------------------------------------------------------------- Registry

dbase::Status CompositionRegistry::Register(ddsl::CompositionGraph graph) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = graph.name();
  auto [it, inserted] =
      graphs_.emplace(name, std::make_shared<const ddsl::CompositionGraph>(std::move(graph)));
  if (!inserted) {
    return dbase::AlreadyExists("composition already registered: " + name);
  }
  return dbase::OkStatus();
}

dbase::Result<std::shared_ptr<const ddsl::CompositionGraph>> CompositionRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return dbase::NotFound("no registered composition named " + name);
  }
  return it->second;
}

bool CompositionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.count(name) > 0;
}

std::vector<std::string> CompositionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) {
    names.push_back(name);
  }
  return names;
}

// ------------------------------------------------------- Invocation state

namespace {

struct NodeRuntime {
  // Input bindings whose source value is not yet available.
  int deps_remaining = 0;
  bool started = false;
  bool merged = false;
  // One DataSetList per instance, in deterministic instance order.
  std::vector<dfunc::DataSetList> instance_outputs;
  size_t instances_pending = 0;
};

}  // namespace

struct Dispatcher::InvocationState {
  std::shared_ptr<const ddsl::CompositionGraph> graph;
  int depth = 0;
  // Shared across nesting levels: the root's deadline, class, and cancel
  // flag govern the whole invocation tree.
  std::shared_ptr<InvocationControl> control;

  std::mutex mu;
  std::map<std::string, dfunc::DataSet> values;  // Ready values by name.
  std::vector<NodeRuntime> nodes;
  size_t nodes_remaining = 0;
  bool done = false;
  ResultCallback callback;
};

// -------------------------------------------------------------- Dispatcher

Dispatcher::Dispatcher(const dfunc::FunctionRegistry* functions,
                       const CompositionRegistry* compositions,
                       const CommFunctionRegistry* comm_functions, WorkerSet* workers,
                       MemoryAccountant* accountant, Config config)
    : functions_(functions),
      compositions_(compositions),
      comm_functions_(comm_functions),
      workers_(workers),
      accountant_(accountant),
      config_(config),
      retry_policy_(config.retry) {}

Dispatcher::~Dispatcher() {
  // Stop the retry scheduler first: its drain path fails pending relaunches
  // through OnInstanceDone, whose callbacks re-enter DisarmReaper — the
  // reaper state must still be alive at that point.
  {
    std::lock_guard<std::mutex> lock(retry_sched_mu_);
    retry_stop_ = true;
  }
  retry_sched_cv_.notify_all();
  retry_thread_.Join();
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  reaper_thread_.Join();
}

DispatcherStats Dispatcher::Stats() const {
  DispatcherStats stats;
  stats.invocations_started = invocations_started_.load(std::memory_order_relaxed);
  stats.invocations_completed = invocations_completed_.load(std::memory_order_relaxed);
  stats.invocations_failed = invocations_failed_.load(std::memory_order_relaxed);
  stats.invocations_cancelled = invocations_cancelled_.load(std::memory_order_relaxed);
  stats.invocations_deadline_exceeded =
      invocations_deadline_exceeded_.load(std::memory_order_relaxed);
  stats.compute_instances = compute_instances_.load(std::memory_order_relaxed);
  stats.comm_instances = comm_instances_.load(std::memory_order_relaxed);
  stats.skipped_instances = skipped_instances_.load(std::memory_order_relaxed);
  const auto gauge = [&](PriorityClass priority) {
    const int64_t value =
        inflight_by_class_[static_cast<size_t>(priority)].load(std::memory_order_relaxed);
    return static_cast<uint64_t>(std::max<int64_t>(0, value));
  };
  stats.inflight_interactive = gauge(PriorityClass::kInteractive);
  stats.inflight_batch = gauge(PriorityClass::kBatch);
  const auto data_plane = dfunc::DataPlaneStats::Get().snapshot();
  stats.bytes_copied = data_plane.bytes_copied;
  stats.bytes_aliased = data_plane.bytes_aliased;
  stats.payload_promotions = data_plane.payload_promotions;
  stats.cow_detaches = data_plane.cow_detaches;
  stats.binding_materializations = data_plane.binding_materializations;
  stats.sandbox_failures = sandbox_failures_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retry_mu_);
    const dpolicy::RetryPolicyStats retry = retry_policy_.Stats();
    stats.retries_attempted = retry.retries_granted;
    stats.retries_denied = retry.retries_denied_budget + retry.retries_denied_kind;
    stats.breaker_fast_fails = retry.breaker_fast_fails;
    stats.breaker_trips = retry.breaker_trips;
    stats.breaker_recoveries = retry.breaker_recoveries;
    stats.breakers_open = retry.breakers_open;
  }
  return stats;
}

std::vector<dpolicy::BreakerSnapshot> Dispatcher::Breakers() const {
  std::lock_guard<std::mutex> lock(retry_mu_);
  return retry_policy_.Breakers();
}

InvocationHandle Dispatcher::Submit(InvocationRequest request, ResultCallback callback) {
  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  const uint64_t id =
      request.id != 0 ? request.id : next_invocation_id_.fetch_add(1, std::memory_order_relaxed);
  auto control =
      std::make_shared<InvocationControl>(id, request.priority, request.deadline_us, now);
  const auto class_index = static_cast<size_t>(request.priority);
  inflight_by_class_[class_index].fetch_add(1, std::memory_order_relaxed);

  // Root-terminal bookkeeping wraps the user callback so it runs no matter
  // which path (completion, failure, cancel, reaper) finishes first.
  ResultCallback wrapped = [this, control, class_index, cb = std::move(callback)](
                               dbase::Result<dfunc::DataSetList> result) mutable {
    InvocationPhase phase = InvocationPhase::kSucceeded;
    if (!result.ok()) {
      switch (result.status().code()) {
        case dbase::StatusCode::kCancelled:
          phase = InvocationPhase::kCancelled;
          break;
        case dbase::StatusCode::kDeadlineExceeded:
          phase = InvocationPhase::kDeadlineExceeded;
          break;
        default:
          phase = InvocationPhase::kFailed;
      }
    }
    control->MarkDone(phase, dbase::MonotonicClock::Get()->NowMicros());
    inflight_by_class_[class_index].fetch_sub(1, std::memory_order_relaxed);
    DisarmReaper(control.get());
    if (cb) {
      cb(std::move(result));
    }
  };

  auto graph = compositions_->Lookup(request.composition);
  if (!graph.ok()) {
    wrapped(graph.status());
    return InvocationHandle(std::move(control));
  }
  auto inv = InvokeGraphAsync(std::move(graph).value(), std::move(request.args), 0,
                              std::move(wrapped), control);
  if (inv != nullptr && request.deadline_us > 0 && !control->done()) {
    ArmReaper(control.get(), request.deadline_us, inv);
  }
  return InvocationHandle(std::move(control));
}

dbase::Result<dfunc::DataSetList> Dispatcher::Invoke(InvocationRequest request) {
  // Heap-shared wait state: on timeout this frame returns while the
  // (cancelled) invocation's callback may still fire later.
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    dbase::Result<dfunc::DataSetList> result = dbase::Internal("invocation never completed");
  };
  auto state = std::make_shared<WaitState>();

  const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
  const dbase::Micros deadline_us = request.deadline_us;
  dbase::Micros wait_deadline = INT64_MAX;
  if (deadline_us > 0) {
    wait_deadline = deadline_us;
  }
  if (config_.max_blocking_wait_us > 0) {
    wait_deadline = std::min(wait_deadline, now + config_.max_blocking_wait_us);
  }

  InvocationHandle handle =
      Submit(std::move(request), [state](dbase::Result<dfunc::DataSetList> result) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->result = std::move(result);
        state->ready = true;
        state->cv.notify_all();
      });

  std::unique_lock<std::mutex> lock(state->mu);
  while (!state->ready) {
    const dbase::Micros remaining = wait_deadline - dbase::MonotonicClock::Get()->NowMicros();
    if (remaining <= 0) {
      break;
    }
    // Bound each wait so an effectively-infinite deadline cannot overflow
    // the chrono conversion.
    state->cv.wait_for(lock,
                       std::chrono::microseconds(std::min<dbase::Micros>(
                           remaining, 3600 * dbase::kMicrosPerSecond)));
  }
  if (!state->ready) {
    lock.unlock();
    // The engines owe us a callback we are no longer waiting for; stop the
    // invocation so it sheds its remaining compute instead of running
    // orphaned. When the request's own deadline caused the timeout, the
    // recorded reason is the deadline — every observer (counters, report,
    // HTTP mapping) then agrees on kDeadlineExceeded.
    if (handle.control() != nullptr) {
      handle.control()->RequestStop(wait_deadline == deadline_us
                                        ? dbase::StatusCode::kDeadlineExceeded
                                        : dbase::StatusCode::kCancelled);
    }
    return dbase::DeadlineExceeded("blocking invoke timed out");
  }
  return std::move(state->result);
}

void Dispatcher::InvokeAsync(const std::string& composition, dfunc::DataSetList args,
                             ResultCallback callback) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  (void)Submit(std::move(request), std::move(callback));
}

dbase::Result<dfunc::DataSetList> Dispatcher::Invoke(const std::string& composition,
                                                     dfunc::DataSetList args) {
  InvocationRequest request;
  request.composition = composition;
  request.args = std::move(args);
  return Invoke(std::move(request));
}

std::shared_ptr<Dispatcher::InvocationState> Dispatcher::InvokeGraphAsync(
    std::shared_ptr<const ddsl::CompositionGraph> graph, dfunc::DataSetList args, int depth,
    ResultCallback callback, std::shared_ptr<InvocationControl> control) {
  if (depth >= config_.max_depth) {
    callback(dbase::ResourceExhausted("composition nesting exceeds maximum depth"));
    return nullptr;
  }
  invocations_started_.fetch_add(1, std::memory_order_relaxed);

  auto inv = std::make_shared<InvocationState>();
  inv->graph = std::move(graph);
  inv->depth = depth;
  inv->control = std::move(control);
  inv->callback = std::move(callback);
  inv->nodes.resize(inv->graph->nodes().size());
  inv->nodes_remaining = inv->graph->nodes().size();

  {
    std::lock_guard<std::mutex> lock(inv->mu);
    // Bind arguments to parameters. A missing argument set becomes an empty
    // set — downstream conditional execution then decides what runs (§4.4).
    for (const auto& param : inv->graph->params()) {
      dfunc::DataSet* arg = dfunc::FindSet(args, param);
      dfunc::DataSet set;
      set.name = param;
      if (arg != nullptr) {
        set.items = std::move(arg->items);  // `args` is ours; no copy.
      }
      inv->values.emplace(param, std::move(set));
    }

    // Count dependencies, then start every node whose inputs are all
    // parameters (or whose deps are already satisfied).
    const auto& nodes = inv->graph->nodes();
    for (size_t n = 0; n < nodes.size(); ++n) {
      int deps = 0;
      for (const auto& in : nodes[n].inputs) {
        if (inv->values.count(in.source_value) == 0) {
          ++deps;
        }
      }
      inv->nodes[n].deps_remaining = deps;
    }
    for (size_t n = 0; n < nodes.size(); ++n) {
      if (inv->nodes[n].deps_remaining == 0) {
        StartNodeLocked(inv, n);
        if (inv->done) {
          return inv;
        }
      }
    }
    MaybeCompleteLocked(inv);
  }
  return inv;
}

namespace {

// Items of one non-fanout binding, materialized once per node start and
// shared across every instance of the fan-out.
using SharedItems = std::shared_ptr<const std::vector<dfunc::DataItem>>;

// Builds the input sets for one instance. `fanout_binding` is the index of
// the each/key binding (or npos), and `fanout_items` the items for this
// instance of that binding (consumed). Non-fanout bindings reference the
// per-binding shared materialization: since every source payload was
// promoted to a refcounted buffer at node start, the per-instance vector
// copy is refcount bumps, not byte copies — N instances of an `each`
// fan-out all read the one underlying region.
dfunc::DataSetList BuildInstanceInputs(const ddsl::GraphNode& node,
                                       const std::vector<SharedItems>& shared_items,
                                       size_t fanout_binding,
                                       std::vector<dfunc::DataItem> fanout_items) {
  dfunc::DataSetList inputs;
  inputs.reserve(node.inputs.size());
  for (size_t b = 0; b < node.inputs.size(); ++b) {
    const auto& binding = node.inputs[b];
    dfunc::DataSet set;
    set.name = binding.set_name;
    if (b == fanout_binding) {
      set.items = std::move(fanout_items);
    } else {
      set.items = *shared_items[b];
    }
    inputs.push_back(std::move(set));
  }
  return inputs;
}

// §4.4: run only if every non-optional input set has at least one item.
bool InstanceShouldRun(const ddsl::GraphNode& node, const dfunc::DataSetList& inputs) {
  for (size_t b = 0; b < node.inputs.size(); ++b) {
    if (!node.inputs[b].optional && inputs[b].items.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Dispatcher::StartNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index) {
  NodeRuntime& rt = inv->nodes[node_index];
  if (rt.started || inv->done) {
    return;
  }
  // A dead invocation launches nothing further: this is the earliest seam
  // where a cancel or a passed deadline stops the graph walk.
  if (inv->control != nullptr) {
    const dbase::Status dead =
        inv->control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros());
    if (!dead.ok()) {
      FailLocked(inv, dead);
      return;
    }
  }
  rt.started = true;

  const ddsl::GraphNode& node = inv->graph->nodes()[node_index];

  // Locate the fan-out binding (validation guarantees at most one).
  size_t fanout_binding = static_cast<size_t>(-1);
  for (size_t b = 0; b < node.inputs.size(); ++b) {
    if (node.inputs[b].dist != ddsl::Distribution::kAll) {
      fanout_binding = b;
      break;
    }
  }

  // Promote every source item payload to a refcounted buffer before any
  // instance references it: from here on, copying a DataItem is a refcount
  // bump, so an N-instance fan-out reads one copy of every input region.
  for (size_t b = 0; b < node.inputs.size(); ++b) {
    dfunc::DataSet& source = inv->values.at(node.inputs[b].source_value);
    for (auto& item : source.items) {
      (void)item.data.EnsureShared();
    }
  }

  // Materialize each non-fanout binding's items exactly once — the sharing
  // invariant the fanout_sharing bench gates on is one materialization per
  // binding, not one per instance.
  auto& data_plane = dfunc::DataPlaneStats::Get();
  std::vector<SharedItems> shared_items(node.inputs.size());
  uint64_t shared_payload_bytes = 0;
  for (size_t b = 0; b < node.inputs.size(); ++b) {
    if (b == fanout_binding) {
      continue;
    }
    const dfunc::DataSet& source = inv->values.at(node.inputs[b].source_value);
    shared_items[b] = std::make_shared<const std::vector<dfunc::DataItem>>(source.items);
    data_plane.binding_materializations.fetch_add(1, std::memory_order_relaxed);
    for (const auto& item : source.items) {
      shared_payload_bytes += item.data.size();
    }
  }

  // Materialize per-instance item groups.
  std::vector<std::vector<dfunc::DataItem>> groups;
  if (fanout_binding == static_cast<size_t>(-1)) {
    groups.emplace_back();  // Single instance; items unused.
  } else {
    const auto& binding = node.inputs[fanout_binding];
    const dfunc::DataSet& source = inv->values.at(binding.source_value);
    if (binding.dist == ddsl::Distribution::kEach) {
      groups.reserve(source.items.size());
      for (const auto& item : source.items) {
        groups.push_back({item});
      }
    } else {  // kKey: group items by key, deterministic key order.
      std::map<std::string, std::vector<dfunc::DataItem>> by_key;
      for (const auto& item : source.items) {
        by_key[item.key].push_back(item);
      }
      groups.reserve(by_key.size());
      for (auto& [key, items] : by_key) {
        groups.push_back(std::move(items));
      }
    }
  }
  // Every instance past the first shares the per-binding materializations
  // by reference instead of duplicating them.
  if (groups.size() > 1) {
    data_plane.bytes_aliased.fetch_add(shared_payload_bytes * (groups.size() - 1),
                                       std::memory_order_relaxed);
  }

  // Build instances, applying the conditional-execution rule per instance.
  struct PendingLaunch {
    size_t instance;
    dfunc::DataSetList inputs;
  };
  std::vector<PendingLaunch> launches;
  rt.instance_outputs.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    dfunc::DataSetList inputs =
        BuildInstanceInputs(node, shared_items, fanout_binding, std::move(groups[g]));
    if (!InstanceShouldRun(node, inputs)) {
      skipped_instances_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Slot stays empty: contributes no output items.
    }
    launches.push_back(PendingLaunch{g, std::move(inputs)});
  }
  rt.instances_pending = launches.size();

  if (launches.empty()) {
    MergeNodeLocked(inv, node_index);
    return;
  }

  // Resolve the callee once. Communication functions shadow everything —
  // their names are platform-reserved.
  enum class Kind { kComm, kCompute, kComposition } kind;
  dfunc::FunctionSpec spec;
  CommFunctionSpec comm_spec;
  std::shared_ptr<const ddsl::CompositionGraph> subgraph;
  // TryLookup: a Lookup miss allocates a NotFound message, and the common
  // (compute) case would pay that on every node start.
  if (auto comm = comm_functions_->TryLookup(node.callee); comm.has_value()) {
    kind = Kind::kComm;
    comm_spec = std::move(*comm);
  } else if (auto fn = functions_->Lookup(node.callee); fn.ok()) {
    kind = Kind::kCompute;
    spec = std::move(fn).value();
  } else if (auto sub = compositions_->Lookup(node.callee); sub.ok()) {
    kind = Kind::kComposition;
    subgraph = std::move(sub).value();
  } else {
    FailLocked(inv, dbase::NotFound(dbase::StrFormat(
                        "callee '%s' is neither a registered function, a platform "
                        "communication function, nor a composition",
                        node.callee.c_str())));
    return;
  }

  // Compute fan-outs are prepared instance by instance but handed to the
  // engines as one batch — a single queue crossing per each/key fan-out
  // instead of one per instance.
  if (kind == Kind::kCompute) {
    std::vector<ComputeTask> batch;
    batch.reserve(launches.size());
    for (auto& launch : launches) {
      auto task = BuildComputeTask(inv, node_index, launch.instance, std::move(launch.inputs),
                                   spec);
      if (!task.has_value()) {
        return;  // BuildComputeTask already failed the invocation.
      }
      batch.push_back(std::move(*task));
    }
    if (!workers_->SubmitComputeBatch(std::move(batch))) {
      FailLocked(inv, dbase::Unavailable("compute engines are shut down"));
    }
    return;
  }

  // Launch outside the loop that mutated runtime state but still under the
  // invocation lock; engine callbacks land on other threads and re-lock.
  for (auto& launch : launches) {
    switch (kind) {
      case Kind::kComm:
        LaunchCommInstance(inv, node_index, launch.instance, std::move(launch.inputs),
                           comm_spec);
        break;
      case Kind::kCompute:
        break;  // Handled above as a batch.
      case Kind::kComposition:
        LaunchNestedInstance(inv, node_index, launch.instance, std::move(launch.inputs), subgraph);
        break;
    }
    if (inv->done) {
      return;  // A synchronous failure aborted the invocation.
    }
  }
}

std::optional<ComputeTask> Dispatcher::BuildComputeTask(
    const std::shared_ptr<InvocationState>& inv, size_t node_index, size_t instance_index,
    dfunc::DataSetList inputs, const dfunc::FunctionSpec& spec, int attempt) {
  compute_instances_.fetch_add(1, std::memory_order_relaxed);

  // Breaker admission gate on fresh launches only: a relaunch the policy
  // already granted must not be fast-failed mid-flight by a breaker that
  // tripped in the meantime — its own OnFailure will feed the breaker.
  if (attempt == 0 && config_.retry.enabled) {
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    dpolicy::AdmitDecision admit;
    {
      std::lock_guard<std::mutex> lock(retry_mu_);
      admit = retry_policy_.Admit(spec.name, now);
    }
    if (!admit.allow) {
      FailLocked(inv, dbase::Unavailable(dbase::StrFormat(
                          "circuit breaker open for function '%s' (%s)", spec.name.c_str(),
                          admit.reason)));
      return std::nullopt;
    }
  }

  // Retain the inputs while the instance is in flight so a sandbox-level
  // failure can be relaunched from scratch: payloads were promoted to
  // refcounted buffers at node start, so this copy is refcount bumps, not
  // payload bytes.
  std::shared_ptr<const dfunc::DataSetList> retained;
  if (config_.retry.enabled) {
    retained = std::make_shared<const dfunc::DataSetList>(inputs);
  }

  // Pool-first: a warm sandbox already holds a loaded binary and (process
  // backend) a parked template child, so the instance skips the cold path
  // entirely — inputs marshal straight into the warm context.
  std::shared_ptr<WarmSandbox> warm;
  if (config_.sandbox_pool != nullptr) {
    const PriorityClass priority =
        inv->control != nullptr ? inv->control->priority() : PriorityClass::kInteractive;
    warm = config_.sandbox_pool->Acquire(spec, priority);
  }

  std::shared_ptr<MemoryContext> context;
  if (warm != nullptr) {
    context = warm->context();
  } else {
    // Prepare the isolated memory context and copy the inputs in (§5:
    // "ensures that the outputs from prior functions are copied as inputs
    // into the new function's context").
    auto context_result =
        MemoryContext::Create(spec.context_bytes, accountant_, config_.shared_contexts);
    if (!context_result.ok()) {
      FailLocked(inv, context_result.status());
      return std::nullopt;
    }
    context = std::move(context_result).value();
  }
  ComputeTask task;
  if (!config_.shared_contexts) {
    // In-process backends (thread / kvm-sim / wasm-sim) read inputs by
    // reference: no marshal into the context, no unmarshal out of it —
    // aliased payloads reach the function body as refcount bumps. The
    // capacity bound still applies (outputs must marshal back into the
    // context), so an under-declared memory requirement fails identically
    // on both paths.
    const uint64_t need = dfunc::MarshalledSize(inputs);
    if (need > context->payload_capacity()) {
      if (warm != nullptr) {
        config_.sandbox_pool->Release(std::move(warm));
      }
      FailLocked(inv, dbase::ResourceExhausted(dbase::StrFormat(
                          "inputs (%zu bytes) exceed context capacity (%llu bytes); raise the "
                          "function's declared memory requirement",
                          static_cast<size_t>(need),
                          static_cast<unsigned long long>(context->capacity()))));
      return std::nullopt;
    }
    uint64_t payload_bytes = 0;
    for (const auto& set : inputs) {
      for (const auto& item : set.items) {
        payload_bytes += item.data.size();
      }
    }
    dfunc::DataPlaneStats::Get().bytes_aliased.fetch_add(payload_bytes,
                                                         std::memory_order_relaxed);
    task.options.input_sets =
        retained != nullptr ? retained
                            : std::make_shared<const dfunc::DataSetList>(std::move(inputs));
  } else {
    // Address-space-crossing backends (process) must see the inputs through
    // the MAP_SHARED mapping — marshal them in as before. Pre-forked
    // template children in particular read the context before any
    // SandboxOptions exist.
    if (dbase::Status stored = context->StoreInputSets(inputs); !stored.ok()) {
      if (warm != nullptr) {
        config_.sandbox_pool->Release(std::move(warm));
      }
      FailLocked(inv, stored);
      return std::nullopt;
    }
  }
  task.spec = spec;
  task.context = context;
  task.control = inv->control;
  task.warm = std::move(warm);
  auto self = this;
  task.done = [self, inv, node_index, instance_index, context, spec, retained,
               attempt](ExecOutcome outcome) {
    self->OnComputeOutcome(inv, node_index, instance_index, spec, retained, attempt,
                           std::move(outcome));
  };
  return task;
}

void Dispatcher::OnComputeOutcome(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                                  size_t instance_index, const dfunc::FunctionSpec& spec,
                                  std::shared_ptr<const dfunc::DataSetList> retained_inputs,
                                  int attempt, ExecOutcome outcome) {
  const std::shared_ptr<InvocationControl>& control = inv->control;
  dbase::Status status = outcome.status;
  // The sandbox reports any external-flag preemption as kCancelled — it
  // cannot know whether the flag meant a client cancel or the invocation
  // deadline. The control block recorded the reason; make it
  // authoritative so counters, report, and the HTTP status agree.
  if (status.code() == dbase::StatusCode::kCancelled && control != nullptr) {
    const dbase::Status dead =
        control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros());
    if (!dead.ok()) {
      status = dead;
    }
  }

  if (status.ok()) {
    if (config_.retry.enabled) {
      std::lock_guard<std::mutex> lock(retry_mu_);
      retry_policy_.OnSuccess(spec.name);
    }
    OnInstanceDone(inv, node_index, instance_index, std::move(outcome.outputs));
    return;
  }

  const dpolicy::FailureKind failure = outcome.failure;
  if (failure != dpolicy::FailureKind::kNone) {
    sandbox_failures_.fetch_add(1, std::memory_order_relaxed);
    if (control != nullptr) {
      control->NoteFailure(failure);
    }
  }
  if (config_.retry.enabled && failure != dpolicy::FailureKind::kNone &&
      retained_inputs != nullptr) {
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    const bool alive = control == nullptr || control->RetireStatus(now).ok();
    const bool interactive =
        control == nullptr || control->priority() == PriorityClass::kInteractive;
    dpolicy::RetryDecision decision;
    {
      std::lock_guard<std::mutex> lock(retry_mu_);
      // The breaker must see every failure, even from an invocation that is
      // already dead — only the relaunch itself is gated on liveness.
      decision = retry_policy_.OnFailure(spec.name, failure, interactive, attempt, now);
    }
    if (decision.retry && alive) {
      if (control != nullptr) {
        control->CountRetry();
      }
      RetryJob job;
      job.inv = inv;
      job.node_index = node_index;
      job.instance_index = instance_index;
      job.spec = spec;
      job.inputs = std::move(retained_inputs);
      job.attempt = attempt + 1;
      job.original_status = status;
      ScheduleRetry(now + decision.backoff_us, std::move(job));
      return;
    }
  }
  OnInstanceDone(inv, node_index, instance_index, std::move(status));
}

// ---------------------------------------------------------- Retry scheduler

void Dispatcher::ScheduleRetry(dbase::Micros due_us, RetryJob job) {
  {
    std::lock_guard<std::mutex> lock(retry_sched_mu_);
    if (!retry_stop_) {
      retry_jobs_.emplace(due_us, std::move(job));
      if (!retry_thread_.joinable()) {
        retry_thread_ =
            dbase::JoiningThread("retry-scheduler", [this] { RetrySchedulerLoop(); });
      }
      retry_sched_cv_.notify_one();
      return;
    }
  }
  // Shutting down: surface the original failure instead of dropping the
  // instance completion on the floor.
  OnInstanceDone(job.inv, job.node_index, job.instance_index, job.original_status);
}

void Dispatcher::RetrySchedulerLoop() {
  std::unique_lock<std::mutex> lock(retry_sched_mu_);
  while (true) {
    if (retry_stop_) {
      // Drain: pending relaunches fail with their original status so every
      // in-flight invocation still completes exactly once.
      auto jobs = std::move(retry_jobs_);
      retry_jobs_.clear();
      lock.unlock();
      for (auto& [due, job] : jobs) {
        OnInstanceDone(job.inv, job.node_index, job.instance_index, job.original_status);
      }
      return;
    }
    if (retry_jobs_.empty()) {
      retry_sched_cv_.wait(lock);
      continue;
    }
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    auto it = retry_jobs_.begin();
    if (it->first > now) {
      retry_sched_cv_.wait_for(lock, std::chrono::microseconds(it->first - now + 50));
      continue;
    }
    RetryJob job = std::move(it->second);
    retry_jobs_.erase(it);
    lock.unlock();
    RelaunchCompute(std::move(job));
    lock.lock();
  }
}

void Dispatcher::RelaunchCompute(RetryJob job) {
  const std::shared_ptr<InvocationState> inv = job.inv;
  std::unique_lock<std::mutex> lock(inv->mu);
  if (inv->done) {
    return;
  }
  if (inv->control != nullptr) {
    const dbase::Status dead =
        inv->control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros());
    if (!dead.ok()) {
      lock.unlock();
      OnInstanceDone(inv, job.node_index, job.instance_index, dead);
      return;
    }
  }
  // Always a fresh context: the failed child may have corrupted the old one
  // arbitrarily before it died.
  auto task = BuildComputeTask(inv, job.node_index, job.instance_index,
                               dfunc::DataSetList(*job.inputs), job.spec, job.attempt);
  if (!task.has_value()) {
    return;  // BuildComputeTask already failed the invocation.
  }
  std::vector<ComputeTask> batch;
  batch.push_back(std::move(*task));
  if (!workers_->SubmitComputeBatch(std::move(batch))) {
    FailLocked(inv, dbase::Unavailable("compute engines are shut down"));
  }
}

void Dispatcher::LaunchCommInstance(const std::shared_ptr<InvocationState>& inv,
                                    size_t node_index, size_t instance_index,
                                    dfunc::DataSetList inputs, const CommFunctionSpec& spec) {
  comm_instances_.fetch_add(1, std::memory_order_relaxed);

  // Communication functions take exactly one input set of requests;
  // validation at registration enforces the shape, this is the runtime
  // guard.
  if (inputs.size() != 1) {
    FailLocked(inv, dbase::InvalidArgument("communication function '" + spec.name +
                                           "' takes exactly one input set"));
    return;
  }

  // One sub-call per request item; the instance completes when all items
  // have responses. Responses keep item order.
  auto items = std::make_shared<std::vector<dfunc::DataItem>>(std::move(inputs[0].items));
  if (items->empty()) {
    // Optional empty request set: the instance runs vacuously and produces
    // an empty response set. Resolved inline — we already hold the lock.
    NodeRuntime& rt = inv->nodes[node_index];
    rt.instance_outputs[instance_index].push_back(dfunc::DataSet{spec.response_set, {}});
    if (--rt.instances_pending == 0) {
      MergeNodeLocked(inv, node_index);
    }
    return;
  }
  auto responses = std::make_shared<std::vector<dfunc::DataItem>>(items->size());
  auto remaining = std::make_shared<std::atomic<size_t>>(items->size());

  auto self = this;
  const std::string response_set = spec.response_set;
  for (size_t i = 0; i < items->size(); ++i) {
    CommTask task;
    // Each item is consumed exactly once; an aliased payload moves as a
    // slice handle, never copying the request bytes.
    task.raw_request = std::move((*items)[i].data);
    task.handler = spec.handler;
    task.control = inv->control;
    task.done = [self, inv, node_index, instance_index, responses, remaining, response_set, i](
                    dhttp::HttpResponse response, dbase::Micros) {
      (*responses)[i] = dfunc::DataItem{"", response.Serialize()};
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        dfunc::DataSetList outputs;
        outputs.push_back(dfunc::DataSet{response_set, std::move(*responses)});
        self->OnInstanceDone(inv, node_index, instance_index, std::move(outputs));
      }
    };
    if (!workers_->SubmitComm(std::move(task))) {
      FailLocked(inv, dbase::Unavailable("communication engines are shut down"));
      return;
    }
  }
}

void Dispatcher::LaunchNestedInstance(const std::shared_ptr<InvocationState>& inv,
                                      size_t node_index, size_t instance_index,
                                      dfunc::DataSetList inputs,
                                      std::shared_ptr<const ddsl::CompositionGraph> subgraph) {
  if (inv->depth + 1 >= config_.max_depth) {
    FailLocked(inv, dbase::ResourceExhausted("composition nesting exceeds maximum depth"));
    return;
  }
  // Map instance input sets to sub-composition parameters by name; the DSL
  // binding's set name must equal the parameter name.
  //
  // The nested invocation may complete (or fail) synchronously — e.g. when
  // every inner node is skipped by conditional execution — in which case
  // its callback re-enters OnInstanceDone for *this* invocation. Release
  // our lock across the call so that re-entry cannot deadlock; the node's
  // instances_pending count was fixed before any launches, so concurrent
  // completions of sibling instances cannot prematurely merge the node.
  //
  // The nested graph shares this invocation's control block: cancelling or
  // timing out the root stops the whole tree.
  auto self = this;
  inv->mu.unlock();
  InvokeGraphAsync(std::move(subgraph), std::move(inputs), inv->depth + 1,
                   [self, inv, node_index, instance_index](
                       dbase::Result<dfunc::DataSetList> result) {
                     self->OnInstanceDone(inv, node_index, instance_index, std::move(result));
                   },
                   inv->control);
  inv->mu.lock();
}

void Dispatcher::OnInstanceDone(const std::shared_ptr<InvocationState>& inv, size_t node_index,
                                size_t instance_index,
                                dbase::Result<dfunc::DataSetList> outputs) {
  std::unique_lock<std::mutex> lock(inv->mu);
  if (inv->done) {
    return;  // Invocation already failed or completed; late stragglers drop.
  }
  NodeRuntime& rt = inv->nodes[node_index];
  if (!outputs.ok()) {
    FailLocked(inv, outputs.status());
    return;
  }
  rt.instance_outputs[instance_index] = std::move(outputs).value();
  if (--rt.instances_pending == 0) {
    MergeNodeLocked(inv, node_index);
  }
}

void Dispatcher::MergeNodeLocked(const std::shared_ptr<InvocationState>& inv, size_t node_index) {
  NodeRuntime& rt = inv->nodes[node_index];
  if (rt.merged || inv->done) {
    return;
  }
  rt.merged = true;
  --inv->nodes_remaining;

  const ddsl::GraphNode& node = inv->graph->nodes()[node_index];
  for (const auto& out : node.outputs) {
    dfunc::DataSet merged;
    merged.name = out.value;
    for (auto& instance : rt.instance_outputs) {
      dfunc::DataSet* set = dfunc::FindSet(instance, out.set_name);
      if (set != nullptr) {
        // Instance outputs are cleared right after the merge; move the
        // items (aliased payloads stay aliased) instead of copying.
        merged.items.insert(merged.items.end(), std::make_move_iterator(set->items.begin()),
                            std::make_move_iterator(set->items.end()));
      }
    }
    DeliverValueLocked(inv, out.value, std::move(merged));
    if (inv->done) {
      return;
    }
  }
  rt.instance_outputs.clear();  // Release intermediate copies eagerly.
  MaybeCompleteLocked(inv);
}

void Dispatcher::DeliverValueLocked(const std::shared_ptr<InvocationState>& inv,
                                    const std::string& value, dfunc::DataSet set) {
  inv->values.emplace(value, std::move(set));
  const auto& nodes = inv->graph->nodes();
  for (size_t n = 0; n < nodes.size(); ++n) {
    NodeRuntime& rt = inv->nodes[n];
    if (rt.started) {
      continue;
    }
    for (const auto& in : nodes[n].inputs) {
      if (in.source_value == value) {
        --rt.deps_remaining;
      }
    }
    if (rt.deps_remaining == 0) {
      StartNodeLocked(inv, n);
      if (inv->done) {
        return;
      }
    }
  }
}

void Dispatcher::FailLocked(const std::shared_ptr<InvocationState>& inv, dbase::Status status) {
  if (inv->done) {
    return;
  }
  inv->done = true;
  switch (status.code()) {
    case dbase::StatusCode::kCancelled:
      invocations_cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case dbase::StatusCode::kDeadlineExceeded: {
      // Only the invocation-level deadline feeds the deadline counter. A
      // per-function spec timeout also surfaces as kDeadlineExceeded, but
      // that is a workload failure, not a client-deadline kill — the
      // monitoring signal must not conflate the two.
      const bool invocation_deadline =
          inv->control != nullptr &&
          inv->control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros()).code() ==
              dbase::StatusCode::kDeadlineExceeded;
      (invocation_deadline ? invocations_deadline_exceeded_ : invocations_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      break;
    }
    default:
      invocations_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  ResultCallback callback = std::move(inv->callback);
  // The callback runs outside the lock: unlock responsibility lies with the
  // caller's scope — we temporarily release here to avoid re-entrancy
  // deadlocks when the callback immediately invokes more compositions.
  inv->mu.unlock();
  callback(std::move(status));
  inv->mu.lock();
}

void Dispatcher::MaybeCompleteLocked(const std::shared_ptr<InvocationState>& inv) {
  if (inv->done) {
    return;
  }
  // Complete when every declared result value is available. (Some nodes may
  // still be pending if their outputs feed nothing — with nodes_remaining
  // they will be waited for only if they produce results.)
  for (const auto& result : inv->graph->results()) {
    if (inv->values.count(result) == 0) {
      return;
    }
  }
  // A cancel (or a deadline) that landed before the last merge wins over
  // the completed results: the caller was promised a terminal kCancelled /
  // kDeadlineExceeded once the handle said so.
  if (inv->control != nullptr) {
    const dbase::Status dead =
        inv->control->RetireStatus(dbase::MonotonicClock::Get()->NowMicros());
    if (!dead.ok()) {
      FailLocked(inv, dead);
      return;
    }
  }
  inv->done = true;
  invocations_completed_.fetch_add(1, std::memory_order_relaxed);

  dfunc::DataSetList results;
  results.reserve(inv->graph->results().size());
  for (const auto& result : inv->graph->results()) {
    // The invocation is complete: values are never read again, so the
    // result sets move out instead of copying.
    dfunc::DataSet set = std::move(inv->values.at(result));
    set.name = result;
    results.push_back(std::move(set));
  }
  ResultCallback callback = std::move(inv->callback);
  inv->mu.unlock();
  callback(std::move(results));
  inv->mu.lock();
}

// ---------------------------------------------------------------- Reaper

void Dispatcher::ArmReaper(const InvocationControl* key, dbase::Micros deadline_us,
                           const std::shared_ptr<InvocationState>& inv) {
  bool spawn = false;
  {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    if (reaper_stop_) {
      return;
    }
    reaper_entries_[key] = ReaperEntry{deadline_us, inv};
    spawn = !reaper_thread_.joinable();
    if (spawn) {
      reaper_thread_ = dbase::JoiningThread("invocation-reaper", [this] { ReaperLoop(); });
    }
  }
  reaper_cv_.notify_one();
}

void Dispatcher::DisarmReaper(const InvocationControl* key) {
  std::lock_guard<std::mutex> lock(reaper_mu_);
  reaper_entries_.erase(key);
}

void Dispatcher::ReaperLoop() {
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (!reaper_stop_) {
    if (reaper_entries_.empty()) {
      reaper_cv_.wait(lock);
      continue;
    }
    const dbase::Micros now = dbase::MonotonicClock::Get()->NowMicros();
    dbase::Micros nearest = INT64_MAX;
    std::vector<std::shared_ptr<InvocationState>> expired;
    for (auto it = reaper_entries_.begin(); it != reaper_entries_.end();) {
      if (it->second.deadline_us <= now) {
        if (auto inv = it->second.inv.lock()) {
          expired.push_back(std::move(inv));
        }
        it = reaper_entries_.erase(it);
      } else {
        nearest = std::min(nearest, it->second.deadline_us);
        ++it;
      }
    }
    if (!expired.empty()) {
      // Fire outside the reaper lock: FailLocked runs the invocation
      // callback, which re-enters DisarmReaper.
      lock.unlock();
      for (const auto& inv : expired) {
        std::unique_lock<std::mutex> inv_lock(inv->mu);
        if (!inv->done) {
          if (inv->control != nullptr) {
            inv->control->RequestStop(dbase::StatusCode::kDeadlineExceeded);
          }
          FailLocked(inv, dbase::DeadlineExceeded("invocation deadline exceeded"));
        }
      }
      lock.lock();
      continue;
    }
    // Bound the sleep: a deadline in the far future would overflow the
    // nanosecond conversion inside wait_for, which then returns instantly
    // and turns this loop into a spin that starves ArmReaper callers.
    // Waking once a second to re-scan costs nothing.
    const dbase::Micros sleep_us =
        std::min<dbase::Micros>(nearest - now + 500, dbase::kMicrosPerSecond);
    reaper_cv_.wait_for(lock, std::chrono::microseconds(sleep_us));
  }
}

}  // namespace dandelion
