#include "src/runtime/comm_function.h"

#include "src/http/sanitizer.h"

namespace dandelion {

CommCallResult ExecuteHttpFunction(dhttp::ServiceMesh& mesh, std::string_view raw_request) {
  CommCallResult result;
  auto sanitized = dhttp::SanitizeRequest(raw_request);
  if (!sanitized.ok()) {
    result.response =
        dhttp::HttpResponse::BadRequest("request rejected: " + sanitized.status().ToString());
    result.latency_us = 5;  // Rejected before touching the network.
    return result;
  }
  dhttp::MeshCallResult call = mesh.Call(sanitized.value());
  result.response = std::move(call.response);
  result.latency_us = call.latency_us;
  return result;
}

CommFunctionRegistry::CommFunctionRegistry() {
  CommFunctionSpec http;
  http.name = kHttpFunctionName;
  http.handler = [](dhttp::ServiceMesh& mesh, std::string_view raw) {
    return ExecuteHttpFunction(mesh, raw);
  };
  functions_.emplace(http.name, std::move(http));
}

dbase::Status CommFunctionRegistry::Register(CommFunctionSpec spec) {
  if (spec.name.empty() || !spec.handler) {
    return dbase::InvalidArgument("communication function needs a name and a handler");
  }
  if (spec.request_set.empty() || spec.response_set.empty()) {
    return dbase::InvalidArgument("communication function needs request/response set names");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = functions_.emplace(spec.name, std::move(spec));
  if (!inserted) {
    return dbase::AlreadyExists("communication function already registered: " + it->first);
  }
  return dbase::OkStatus();
}

dbase::Result<CommFunctionSpec> CommFunctionRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return dbase::NotFound("no communication function named " + name);
  }
  return it->second;
}

std::optional<CommFunctionSpec> CommFunctionRegistry::TryLookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool CommFunctionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return functions_.count(name) > 0;
}

std::vector<std::string> CommFunctionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, spec] : functions_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace dandelion
