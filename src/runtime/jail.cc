#include "src/runtime/jail.h"

#include <errno.h>
#include <stddef.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>

#include <linux/audit.h>
#include <linux/filter.h>
#include <linux/seccomp.h>

namespace dandelion {
namespace {

#if defined(__x86_64__)
constexpr uint32_t kAuditArch = AUDIT_ARCH_X86_64;
#elif defined(__aarch64__)
constexpr uint32_t kAuditArch = AUDIT_ARCH_AARCH64;
#else
constexpr uint32_t kAuditArch = 0;
#endif

std::atomic<bool> g_jail_enabled{true};

// Offsets into struct seccomp_data.
constexpr uint32_t kNrOffset = offsetof(seccomp_data, nr);
constexpr uint32_t kArchOffset = offsetof(seccomp_data, arch);
constexpr uint32_t kArgOffset(int i) { return offsetof(seccomp_data, args) + 8u * i; }

SandboxCapabilities ProbeCapabilities() {
  SandboxCapabilities caps;
  if (kAuditArch == 0) {
    caps.detail = "unsupported architecture";
    return caps;
  }
  // The canonical availability probe: a NULL filter pointer returns EFAULT
  // when SECCOMP_MODE_FILTER is understood, EINVAL/ENOSYS when it is not.
  // Nothing is installed either way.
  errno = 0;
  int rc = prctl(PR_SET_SECCOMP, SECCOMP_MODE_FILTER, nullptr, 0, 0);
  if (rc == -1 && errno == EFAULT) {
    caps.seccomp_filter = true;
    caps.detail = "seccomp-BPF filter available";
  } else {
    caps.seccomp_filter = false;
    caps.detail =
        std::string("seccomp filter unavailable (") + strerror(errno) + "), running unconfined";
  }
  return caps;
}

}  // namespace

const SandboxCapabilities& SandboxCapabilities::Get() {
  static const SandboxCapabilities caps = ProbeCapabilities();
  return caps;
}

bool SyscallJailEnabled() { return g_jail_enabled.load(std::memory_order_relaxed); }
void SetSyscallJailEnabled(bool enabled) {
  g_jail_enabled.store(enabled, std::memory_order_relaxed);
}

int InstallSyscallJail(const JailOptions& options) {
  if (kAuditArch == 0) return -ENOSYS;

  // Hand-rolled classic-BPF allowlist. Layout:
  //   [arch check] [load nr]
  //   [plain-allowed syscalls: JEQ -> ALLOW]
  //   [read: fd must be the go-pipe]
  //   [write: fd must be stderr]
  //   [mmap: must be MAP_ANONYMOUS (no file-backed mappings)]
  //   [default: KILL_PROCESS]
  //
  // The allowlist is the *completion set* of a pure Dandelion function:
  // its outcome channel is the MAP_SHARED context (plain stores, no
  // syscall), so beyond memory management, futex (malloc/stdlib internals),
  // clock reads, scheduling yields, and exit, nothing is needed.
  sock_filter filter[64];
  int n = 0;
  auto stmt = [&](uint16_t code, uint32_t k) { filter[n++] = BPF_STMT(code, k); };
  auto jump = [&](uint16_t code, uint32_t k, uint8_t jt, uint8_t jf) {
    filter[n++] = BPF_JUMP(code, k, jt, jf);
  };
  auto allow_if_nr = [&](long nr) {
    // if (nr == k) return ALLOW;
    jump(BPF_JMP | BPF_JEQ | BPF_K, static_cast<uint32_t>(nr), 0, 1);
    stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW);
  };

  // Kill outright if the syscall ABI is not the one we compiled the
  // numbers for (e.g. a 32-bit compat syscall smuggling a different table).
  stmt(BPF_LD | BPF_W | BPF_ABS, kArchOffset);
  jump(BPF_JMP | BPF_JEQ | BPF_K, kAuditArch, 1, 0);
  stmt(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS);

  stmt(BPF_LD | BPF_W | BPF_ABS, kNrOffset);
  allow_if_nr(SYS_exit);
  allow_if_nr(SYS_exit_group);
  allow_if_nr(SYS_rt_sigreturn);
  allow_if_nr(SYS_brk);
  allow_if_nr(SYS_munmap);
  allow_if_nr(SYS_mremap);
  allow_if_nr(SYS_madvise);
  allow_if_nr(SYS_futex);
  allow_if_nr(SYS_sched_yield);
  allow_if_nr(SYS_clock_gettime);
  allow_if_nr(SYS_clock_nanosleep);
  allow_if_nr(SYS_nanosleep);
  allow_if_nr(SYS_gettimeofday);
  allow_if_nr(SYS_restart_syscall);
  allow_if_nr(SYS_membarrier);
  allow_if_nr(SYS_getrandom);  // glibc hardening reads randomness lazily.

  // Argument-gated blocks share a shape: on syscall-number mismatch skip
  // the block; on argument mismatch jump to the trailing "reload nr"
  // instruction and fall through the remaining checks to the default KILL.
  // read(fd, ...): only the go-pipe a pooled template parks on.
  if (options.allow_read_fd >= 0) {
    jump(BPF_JMP | BPF_JEQ | BPF_K, SYS_read, 0, 3);
    stmt(BPF_LD | BPF_W | BPF_ABS, kArgOffset(0));  // low word of args[0]
    jump(BPF_JMP | BPF_JEQ | BPF_K, static_cast<uint32_t>(options.allow_read_fd), 0, 1);
    stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW);
    stmt(BPF_LD | BPF_W | BPF_ABS, kNrOffset);  // reload nr for later checks
  }

  // write(fd, ...): stderr only, so assertion text from a dying child still
  // reaches the operator. Everything else (the context outcome) is stores.
  jump(BPF_JMP | BPF_JEQ | BPF_K, SYS_write, 0, 3);
  stmt(BPF_LD | BPF_W | BPF_ABS, kArgOffset(0));
  jump(BPF_JMP | BPF_JEQ | BPF_K, STDERR_FILENO, 0, 1);
  stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW);
  stmt(BPF_LD | BPF_W | BPF_ABS, kNrOffset);

  // mmap: anonymous memory only — a function may grow its heap, not map
  // files. flags is args[3]; MAP_ANONYMOUS fits in the low word.
  jump(BPF_JMP | BPF_JEQ | BPF_K, SYS_mmap, 0, 3);
  stmt(BPF_LD | BPF_W | BPF_ABS, kArgOffset(3));
  jump(BPF_JMP | BPF_JSET | BPF_K, MAP_ANONYMOUS, 0, 1);
  stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW);
  stmt(BPF_LD | BPF_W | BPF_ABS, kNrOffset);

  stmt(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS);

  sock_fprog prog;
  prog.len = static_cast<unsigned short>(n);
  prog.filter = filter;

  // Mandatory before installing a filter without CAP_SYS_ADMIN, and the
  // right call regardless: the child must never gain privileges.
  if (prctl(PR_SET_NO_NEW_PRIVS, 1, 0, 0, 0) != 0) return -errno;
  if (prctl(PR_SET_SECCOMP, SECCOMP_MODE_FILTER, &prog, 0, 0) != 0) return -errno;
  return 0;
}

}  // namespace dandelion
