// Deterministic fault injection for the sandbox/dispatch path. Tests and
// chaos benches arm a FaultPoint with a plan (fire every Nth crossing, up
// to a limit); the runtime consults ShouldFire() at fixed seams. Disabled
// points cost one relaxed atomic load — the harness is compiled in
// unconditionally so the fault surface tested in CI is the surface that
// ships. The probabilistic-model-checking elasticity line of work (see
// PAPERS.md) motivates this: degradation behaviour should be *drivable*
// and verifiable, not incidental.
#ifndef SRC_RUNTIME_FAULT_H_
#define SRC_RUNTIME_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace dandelion {

enum class FaultPoint {
  // Cold/warm process child calls __builtin_trap() before running the body
  // (the classic "sandbox crashed, no outcome" case; retry-safe).
  kChildCrashBeforeOutcome = 0,
  // Child runs the body, tears the outcome header mid-write, then traps —
  // exercises the parent's torn-outcome handling and proves retries
  // re-marshal instead of trusting a corrupted context.
  kChildCrashAfterPartialWrite,
  // Jailed child attempts a forbidden syscall (openat) — drives kJailKill
  // without needing a hostile function registered.
  kChildForbiddenSyscall,
  // Pooled template child is killed between fill and dispatch, so the
  // go-pipe write at Execute() finds it gone — drives kPoolChildLost and
  // the transparent cold-fork fallback.
  kPoolTemplateDeath,
  // Engine synthesizes a transient kResourceExhausted instead of running
  // the task — drives the retry path without touching any child.
  kTransientResourceExhausted,
  kCount,
};

std::string_view FaultPointName(FaultPoint point);

struct FaultPlan {
  // Fire on every Nth crossing (1 = every time, 100 = 1% of crossings).
  uint64_t every_n = 1;
  // Stop firing after this many injections (UINT64_MAX = unbounded).
  uint64_t limit = UINT64_MAX;
};

struct FaultPointSnapshot {
  FaultPoint point = FaultPoint::kCount;
  bool armed = false;
  FaultPlan plan;
  uint64_t crossings = 0;
  uint64_t fired = 0;
};

// Process-wide singleton. Arm/Disarm are test-path; ShouldFire is the hot
// hook. The enabled_ fast path means a production run with no faults armed
// pays one relaxed load per injection point.
class FaultInjector {
 public:
  static FaultInjector& Get();

  void Arm(FaultPoint point, FaultPlan plan = {});
  void Disarm(FaultPoint point);
  void Reset();  // Disarm everything and zero all counters.

  // Counts a crossing of `point`; returns true when the armed plan says
  // this crossing faults. Exact (mutex-counted) when any point is armed.
  bool ShouldFire(FaultPoint point);

  std::vector<FaultPointSnapshot> Snapshot() const;

 private:
  FaultInjector() = default;

  struct PointState {
    bool armed = false;
    FaultPlan plan;
    uint64_t crossings = 0;
    uint64_t fired = 0;
  };

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  PointState points_[static_cast<int>(FaultPoint::kCount)];
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_FAULT_H_
