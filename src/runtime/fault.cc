#include "src/runtime/fault.h"

namespace dandelion {

std::string_view FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kChildCrashBeforeOutcome:
      return "child_crash_before_outcome";
    case FaultPoint::kChildCrashAfterPartialWrite:
      return "child_crash_after_partial_write";
    case FaultPoint::kChildForbiddenSyscall:
      return "child_forbidden_syscall";
    case FaultPoint::kPoolTemplateDeath:
      return "pool_template_death";
    case FaultPoint::kTransientResourceExhausted:
      return "transient_resource_exhausted";
    case FaultPoint::kCount:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPoint point, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.plan = plan;
  if (state.plan.every_n == 0) state.plan.every_n = 1;
  state.crossings = 0;
  state.fired = 0;
}

void FaultInjector::Disarm(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[static_cast<int>(point)];
  if (state.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  state.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PointState& state : points_) state = PointState{};
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(FaultPoint point) {
  // Fast path: nothing armed anywhere — one relaxed load, no lock.
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) return false;
  ++state.crossings;
  if (state.fired >= state.plan.limit) return false;
  if (state.crossings % state.plan.every_n != 0) return false;
  ++state.fired;
  return true;
}

std::vector<FaultPointSnapshot> FaultInjector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultPointSnapshot> out;
  out.reserve(static_cast<int>(FaultPoint::kCount));
  for (int i = 0; i < static_cast<int>(FaultPoint::kCount); ++i) {
    const PointState& state = points_[i];
    out.push_back({static_cast<FaultPoint>(i), state.armed, state.plan, state.crossings,
                   state.fired});
  }
  return out;
}

}  // namespace dandelion
