// The worker control plane (§5), rebuilt as a generic policy driver: every
// interval (30 ms in the paper) it gathers a multi-signal snapshot — engine
// queue growth and backlogs (per class), comm green-thread occupancy,
// dispatcher in-flight gauges, frontend admission counters, context-pool
// occupancy — and executes whatever dpolicy::ElasticityPolicy is plugged
// in. The decision logic itself lives in src/policy/ and is shared verbatim
// with the discrete-event simulator (dsim).
#ifndef SRC_RUNTIME_CONTROLLER_H_
#define SRC_RUNTIME_CONTROLLER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/policy/elasticity.h"
#include "src/runtime/engine.h"

namespace dandelion {

// Periodically samples a WorkerSet (plus any registered signal sources),
// runs the policy, and actuates multi-core role shifts. Decisions are
// recorded in a bounded ring buffer for tests, GET /statz, and the
// Figure 8 core-allocation traces.
class ControlPlane {
 public:
  struct Config {
    dbase::Micros interval_us = 30 * dbase::kMicrosPerMilli;  // Paper: 30 ms.
    // Cap on retained decisions: the history is a ring buffer, so
    // long-running servers hold the most recent `history_limit` decisions
    // instead of growing without bound.
    size_t history_limit = 4096;
  };

  struct Decision {
    dbase::Micros time_us = 0;
    dpolicy::ElasticitySignals signals;
    dpolicy::ElasticityDecision action;
    // Cores actually moved (signed toward compute); may be smaller than
    // the policy asked for when a role is at its minimum.
    int shifted = 0;
    // Post-decision split.
    int compute_workers = 0;
    int comm_workers = 0;
  };

  // Cheap aggregate view for GET /statz.
  struct Summary {
    const char* policy_name = "";
    uint64_t decisions = 0;
    uint64_t shifts_toward_compute = 0;  // Cores moved, cumulative.
    uint64_t shifts_toward_comm = 0;
    Decision last;  // Meaningful when decisions > 0.
  };

  ControlPlane(WorkerSet* workers, std::unique_ptr<dpolicy::ElasticityPolicy> policy,
               Config config);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void Start();
  void Stop();

  // One sampling step; called by the background thread, and directly by
  // unit tests for determinism.
  Decision StepOnce();

  // Registers an augmenter that fills signals the WorkerSet cannot see
  // (dispatcher gauges, frontend admission counters, pool occupancy). Runs
  // on the control thread each tick; must not block. Returns an id for
  // RemoveSignalSource, so a component that dies before the control plane
  // (e.g. a replaced frontend) can withdraw its contribution.
  using SignalSource = std::function<void(dpolicy::ElasticitySignals*)>;
  uint64_t AddSignalSource(SignalSource source);
  void RemoveSignalSource(uint64_t id);

  // Registers a periodic callback driven by the same control tick, after
  // the elasticity decision (subsystems with their own policies — e.g. the
  // sandbox pool's prewarm step — share the control cadence instead of
  // spawning private timer threads). Runs on the control thread with the
  // tick's sample time; must not block.
  using Ticker = std::function<void(dbase::Micros now_us)>;
  uint64_t AddTicker(Ticker ticker);
  void RemoveTicker(uint64_t id);

  const dpolicy::ElasticityPolicy& policy() const { return *policy_; }

  // Ring-buffer contents, oldest first (at most Config::history_limit).
  std::vector<Decision> History() const;
  Summary GetSummary() const;

 private:
  WorkerSet* workers_;
  Config config_;
  std::unique_ptr<dpolicy::ElasticityPolicy> policy_;

  std::atomic<bool> running_{false};
  dbase::JoiningThread thread_;

  // Last cumulative queue counters, for growth-rate deltas (control thread
  // plus test-driven StepOnce; not synchronized — callers serialize).
  uint64_t last_compute_pushed_ = 0;
  uint64_t last_compute_popped_ = 0;
  uint64_t last_comm_pushed_ = 0;
  uint64_t last_comm_popped_ = 0;

  mutable std::mutex mu_;
  std::deque<Decision> history_;            // Guarded by mu_; ring buffer.
  std::vector<std::pair<uint64_t, SignalSource>> sources_;  // Guarded by mu_.
  std::vector<std::pair<uint64_t, Ticker>> tickers_;        // Guarded by mu_.
  uint64_t next_source_id_ = 1;             // Guarded by mu_.
  uint64_t decisions_ = 0;                  // Guarded by mu_.
  uint64_t shifts_toward_compute_ = 0;      // Guarded by mu_.
  uint64_t shifts_toward_comm_ = 0;         // Guarded by mu_.
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_CONTROLLER_H_
