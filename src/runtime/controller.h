// The worker control plane (§5): every interval (30 ms in the paper) it
// measures the growth rate of the compute and communication queues, feeds
// the difference into a Proportional-Integral controller, and re-assigns one
// CPU core toward whichever engine type is falling behind.
#ifndef SRC_RUNTIME_CONTROLLER_H_
#define SRC_RUNTIME_CONTROLLER_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/base/clock.h"
#include "src/base/thread.h"
#include "src/runtime/engine.h"

namespace dandelion {

// Textbook discrete PI controller with anti-windup clamping.
class PiController {
 public:
  struct Gains {
    double kp = 0.5;
    double ki = 0.125;
    double integral_limit = 64.0;  // Anti-windup bound on the integral term.
  };

  PiController() : gains_() {}
  explicit PiController(Gains gains) : gains_(gains) {}

  // Feeds one error sample; returns the control signal.
  double Update(double error);
  void Reset();

  double integral() const { return integral_; }

 private:
  Gains gains_;
  double integral_ = 0.0;
};

// Periodically samples a WorkerSet and shifts cores. Decisions are recorded
// for tests and for the Figure 8 core-allocation traces.
class ControlPlane {
 public:
  struct Config {
    dbase::Micros interval_us = 30 * dbase::kMicrosPerMilli;  // Paper: 30 ms.
    double shift_threshold = 0.5;  // |signal| must exceed this to act.
    PiController::Gains gains;
  };

  struct Decision {
    dbase::Micros time_us = 0;
    double error = 0.0;
    double signal = 0.0;
    int compute_workers = 0;
    int comm_workers = 0;
  };

  ControlPlane(WorkerSet* workers, Config config);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  void Start();
  void Stop();

  // One sampling step; called by the background thread, and directly by
  // unit tests for determinism.
  Decision StepOnce();

  std::vector<Decision> History() const;

 private:
  WorkerSet* workers_;
  Config config_;
  PiController pi_;

  std::atomic<bool> running_{false};
  dbase::JoiningThread thread_;

  // Last cumulative queue counters, for growth-rate deltas.
  uint64_t last_compute_pushed_ = 0;
  uint64_t last_compute_popped_ = 0;
  uint64_t last_comm_pushed_ = 0;
  uint64_t last_comm_popped_ = 0;

  mutable std::mutex mu_;
  std::vector<Decision> history_;
};

}  // namespace dandelion

#endif  // SRC_RUNTIME_CONTROLLER_H_
