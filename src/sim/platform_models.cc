#include "src/sim/platform_models.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/base/rng.h"
#include "src/policy/elasticity.h"
#include "src/policy/kpa.h"

namespace dsim {
namespace {

void RecordLatency(SimMetrics* metrics, int app_id, dbase::Micros arrival, dbase::Micros end) {
  const double ms = dbase::MicrosToMillis(end - arrival);
  metrics->latency_ms.Record(ms);
  metrics->per_app_latency_ms[app_id].Record(ms);
  ++metrics->completed;
  metrics->end_time_us = std::max(metrics->end_time_us, end);
}

// Tracks committed bytes and appends MB points to a series.
class MemoryTracker {
 public:
  MemoryTracker(EventQueue* queue, dbase::TimeSeries* series, bool enabled)
      : queue_(queue), series_(series), enabled_(enabled) {}

  void Add(uint64_t bytes) {
    if (!enabled_) {
      return;
    }
    current_ += bytes;
    Record();
  }
  void Sub(uint64_t bytes) {
    if (!enabled_) {
      return;
    }
    current_ -= bytes;
    Record();
  }
  uint64_t current() const { return current_; }

 private:
  void Record() {
    series_->Add(queue_->now(), static_cast<double>(current_) / (1024.0 * 1024.0));
  }

  EventQueue* queue_;
  dbase::TimeSeries* series_;
  bool enabled_;
  uint64_t current_ = 0;
};

}  // namespace

// ---------------------------------------------------------------- Dandelion

SimMetrics SimulateDandelion(const DandelionSimConfig& config,
                             const std::vector<SimRequest>& requests) {
  SimMetrics metrics;
  EventQueue queue;

  const int total_cores = std::max(2, config.cores);
  int comm_cores = std::clamp(config.initial_comm_cores, 1, total_cores - 1);
  FifoServer compute(&queue, total_cores - comm_cores);
  FifoServer comm(&queue, comm_cores * config.comm_parallelism);
  MemoryTracker memory(&queue, &metrics.committed_mb, config.track_memory);

  // Pre-warm pool model (mirrors the runtime SandboxPool): per-app shelves
  // whose depth the shared dpolicy::PrewarmPolicy sets each prewarm tick.
  // A compute stage that finds a shelved sandbox skips sandbox_us (warm
  // start); completions re-shelf while within the target. Shelved
  // sandboxes keep their context committed — that is the memory cost
  // pooling trades for latency.
  struct AppPool {
    dpolicy::PrewarmPolicy policy;
    uint64_t arrivals = 0;
    int shelved = 0;
    int leased = 0;
    int target = 0;
    uint64_t context_bytes = 0;
  };
  const bool pool_enabled = config.enable_prewarm_pool;
  std::map<int, AppPool> pools;
  int total_shelved = 0;
  auto pool_for = [&](const SimRequest& req) -> AppPool& {
    auto it = pools.find(req.app_id);
    if (it == pools.end()) {
      it = pools.emplace(req.app_id, AppPool{dpolicy::PrewarmPolicy(config.prewarm)}).first;
      it->second.context_bytes = req.context_bytes;
    }
    return it->second;
  };

  // The compute stage of phase p, then the comm stage, then recurse.
  struct Chain {
    SimRequest req;
    int phase = 0;
  };

  // Fault/retry parity: the same dpolicy::RetryPolicy the runtime
  // dispatcher executes, driven in virtual time and keyed per app.
  dpolicy::RetryPolicy retry_policy(config.retry);
  const bool retry_enabled = config.retry.enabled;
  uint64_t compute_completions = 0;

  // Forward declarations via std::function for the recursive chain walk
  // (run_phase ↔ compute_stage_fn are mutually recursive: a phase runs a
  // compute stage, a granted retry relaunches the stage, a completed stage
  // advances the phase).
  std::function<void(std::shared_ptr<Chain>)> run_phase;
  std::function<void(std::shared_ptr<Chain>, int)> compute_stage_fn;
  run_phase = [&](std::shared_ptr<Chain> chain) {
    if (chain->phase >= chain->req.phases) {
      if (chain->req.arrival_us >= config.latency_record_after_us) {
        RecordLatency(&metrics, chain->req.app_id, chain->req.arrival_us, queue.now());
      } else {
        // Warm-up request: excluded from the latency distribution (fig02
        // gates steady-state tails) but still counted as work done.
        ++metrics.completed;
        metrics.end_time_us = std::max(metrics.end_time_us, queue.now());
      }
      if (!pool_enabled) {
        ++metrics.cold_starts;  // Every Dandelion request cold-starts (§7).
      }
      return;
    }
    ++chain->phase;
    const bool has_comm = chain->req.comm_us > 0;

    // Comm stage first (fetch), then compute on the fetched data (§7.4).
    if (has_comm) {
      comm.Submit(chain->req.comm_us,
                  [&, chain](dbase::Micros, dbase::Micros) { compute_stage_fn(chain, 0); });
    } else {
      compute_stage_fn(chain, 0);
    }
  };

  compute_stage_fn = [&](std::shared_ptr<Chain> chain, int attempt) {
    const std::string breaker_key = std::to_string(chain->req.app_id);
    // Breaker admission on fresh launches only, exactly like the runtime
    // dispatcher: a granted relaunch is never fast-failed mid-flight.
    if (attempt == 0 && retry_enabled) {
      const dpolicy::AdmitDecision admit = retry_policy.Admit(breaker_key, queue.now());
      if (!admit.allow) {
        ++metrics.breaker_fast_fails;
        ++metrics.failed;
        return;  // Fast-fail: the request terminates unserved.
      }
    }
    dbase::Micros sandbox_cost = config.sandbox_us;
    bool warm = false;
    if (pool_enabled) {
      AppPool& pool = pool_for(chain->req);
      ++pool.arrivals;
      if (pool.shelved > 0) {
        --pool.shelved;
        --total_shelved;
        ++pool.leased;
        warm = true;
        sandbox_cost = 0;  // Fork/load were paid at fill time.
        ++metrics.warm_starts;
      } else {
        ++metrics.cold_starts;
      }
    }
    const auto service = static_cast<dbase::Micros>(
        config.dispatch_us + sandbox_cost +
        static_cast<double>(chain->req.compute_us) * config.compute_slowdown);
    if (!warm) {
      memory.Add(chain->req.context_bytes);  // Warm contexts were committed at fill.
    }
    compute.Submit(service, [&, chain, warm, attempt, breaker_key](dbase::Micros,
                                                                   dbase::Micros) {
      // A crash is detected when the stage retires (the runtime parent
      // observes the child's wait status after the work was burned).
      const bool crashed =
          config.crash_every_n > 0 && (++compute_completions % config.crash_every_n == 0);
      bool kept = false;
      // A warm sandbox's context was committed at fill time with the
      // pool's uniform size; release the same amount on retire, or the
      // committed-memory metric drifts when requests of one app carry
      // different context_bytes.
      uint64_t release_bytes = chain->req.context_bytes;
      if (warm) {
        AppPool& pool = pool_for(chain->req);
        release_bytes = pool.context_bytes;
        --pool.leased;
        // A crashed child is never re-shelved (the runtime retires it).
        if (!crashed && pool.shelved + pool.leased < pool.target &&
            pool.shelved < config.prewarm_max_depth &&
            total_shelved < config.prewarm_max_total) {
          ++pool.shelved;  // Scrub + re-shelf: context stays committed.
          ++total_shelved;
          kept = true;
        }
      }
      if (!kept) {
        memory.Sub(release_bytes);
      }
      if (crashed) {
        ++metrics.crashes_injected;
        if (retry_enabled) {
          const dpolicy::RetryDecision decision =
              retry_policy.OnFailure(breaker_key, dpolicy::FailureKind::kCrash,
                                     /*interactive=*/true, attempt, queue.now());
          if (decision.retry) {
            ++metrics.retries;
            queue.ScheduleAfter(decision.backoff_us, [&, chain, attempt] {
              compute_stage_fn(chain, attempt + 1);
            });
            return;
          }
        }
        ++metrics.failed;
        return;  // Budget exhausted (or retries disabled): the request fails.
      }
      if (retry_enabled) {
        retry_policy.OnSuccess(breaker_key);
      }
      run_phase(chain);
    });
  };

  for (const auto& req : requests) {
    queue.ScheduleAt(req.arrival_us, [&, req] {
      auto chain = std::make_shared<Chain>();
      chain->req = req;
      run_phase(chain);
    });
  }

  // Elasticity control plane (§5): the same dpolicy decision code the real
  // runtime's ControlPlane runs, driven from the virtual-time event queue.
  std::unique_ptr<dpolicy::ElasticityPolicy> policy =
      config.policy_factory ? config.policy_factory()
                            : dpolicy::CreatePolicy(config.controller_policy);
  uint64_t last_compute_in = 0, last_compute_out = 0, last_comm_in = 0, last_comm_out = 0;
  std::function<void()> control_tick = [&] {
    dpolicy::ElasticitySignals signals;
    signals.now_us = queue.now();
    signals.compute_workers = total_cores - comm_cores;
    signals.comm_workers = comm_cores;
    const uint64_t compute_in = compute.total_submitted();
    const uint64_t compute_out = compute.total_started();
    const uint64_t comm_in = comm.total_submitted();
    const uint64_t comm_out = comm.total_started();
    signals.compute_growth = static_cast<double>(compute_in - last_compute_in) -
                             static_cast<double>(compute_out - last_compute_out);
    signals.comm_growth = static_cast<double>(comm_in - last_comm_in) -
                          static_cast<double>(comm_out - last_comm_out);
    last_compute_in = compute_in;
    last_compute_out = compute_out;
    last_comm_in = comm_in;
    last_comm_out = comm_out;
    signals.compute_backlog = compute.queue_len();
    signals.comm_backlog = comm.queue_len();
    signals.comm_inflight = static_cast<double>(comm.busy());
    signals.comm_parallelism = config.comm_parallelism;

    const dpolicy::ElasticityDecision decision = policy->Decide(signals);
    // A workload that has issued no communication at all frees even the
    // last comm core — the allocation follows "the number of compute vs.
    // communication functions in the system" (§3). This overrides the
    // policy entirely (policies keep a one-comm-core floor, and letting
    // them actuate against a pinned zero would oscillate 0↔1 every tick);
    // the floor is a driver property, as in the runtime's WorkerSet.
    if (comm.total_submitted() == 0) {
      comm_cores = 0;
    } else {
      int want = decision.shift_toward_compute;
      while (want > 0 && comm_cores > 1) {
        --comm_cores;
        --want;
      }
      while (want < 0 && comm_cores < total_cores - 1) {
        ++comm_cores;
        ++want;
      }
    }
    compute.SetCapacity(total_cores - comm_cores);
    comm.SetCapacity(comm_cores * config.comm_parallelism);
    metrics.comm_core_trace.emplace_back(queue.now(), comm_cores);

    if (!queue.empty()) {
      queue.ScheduleAfter(config.controller_interval_us, control_tick);
    }
  };
  if (config.enable_controller && !requests.empty()) {
    queue.ScheduleAfter(config.controller_interval_us, control_tick);
  }

  // Prewarm tick: the same Decide → retire/fill step SandboxPool::Tick
  // runs, in virtual time. Fills and retires are instantaneous here — the
  // runtime performs them off the critical path, so the sim charges no
  // latency either; only the memory and the hit/miss mix move.
  const dbase::Micros prewarm_interval =
      config.prewarm_tick_us > 0 ? config.prewarm_tick_us : config.controller_interval_us;
  std::function<void()> prewarm_tick = [&] {
    for (auto& [app_id, pool] : pools) {
      dpolicy::PrewarmSignals signals;
      signals.now_us = queue.now();
      signals.arrivals = pool.arrivals;
      signals.shelved = pool.shelved;
      signals.leased = pool.leased;
      dpolicy::PrewarmDecision decision = pool.policy.Decide(signals);
      pool.target = std::min(decision.target_depth, config.prewarm_max_depth);
      while (pool.shelved + pool.leased > pool.target && pool.shelved > 0) {
        --pool.shelved;
        --total_shelved;
        memory.Sub(pool.context_bytes);
      }
      int want = pool.target - pool.shelved - pool.leased;
      while (want-- > 0 && total_shelved < config.prewarm_max_total) {
        ++pool.shelved;
        ++total_shelved;
        memory.Add(pool.context_bytes);
      }
    }
    metrics.pool_depth_trace.emplace_back(queue.now(), total_shelved);
    if (!queue.empty()) {
      queue.ScheduleAfter(prewarm_interval, prewarm_tick);
    }
  };
  if (pool_enabled && !requests.empty()) {
    queue.ScheduleAfter(prewarm_interval, prewarm_tick);
  }

  queue.RunAll();
  return metrics;
}

// ------------------------------------------------- MicroVM (FC / gVisor)

VmSimConfig VmSimConfig::FirecrackerFresh(int cores, double hot_fraction) {
  VmSimConfig config;
  config.cores = cores;
  config.hot_fraction = hot_fraction;
  config.cold_serial_us = Calibration::kFirecrackerFreshSerialUs;
  config.cold_core_us = Calibration::kFirecrackerColdBootUs;
  return config;
}

VmSimConfig VmSimConfig::FirecrackerSnapshot(int cores, double hot_fraction) {
  VmSimConfig config;
  config.cores = cores;
  config.hot_fraction = hot_fraction;
  config.cold_serial_us = Calibration::kFirecrackerSnapshotSerialUs;
  config.cold_core_us = Calibration::kFirecrackerSnapshotCoreUs;
  return config;
}

VmSimConfig VmSimConfig::Gvisor(int cores, double hot_fraction) {
  VmSimConfig config;
  config.cores = cores;
  config.hot_fraction = hot_fraction;
  config.cold_serial_us = Calibration::kGvisorSerialUs;
  config.cold_core_us = Calibration::kGvisorColdCoreUs;
  config.exec_overhead = Calibration::kGvisorExecOverhead;
  return config;
}

SimMetrics SimulateVmPlatform(const VmSimConfig& config,
                              const std::vector<SimRequest>& requests) {
  SimMetrics metrics;
  EventQueue queue;
  FifoServer cores(&queue, config.cores);
  FifoServer vmm_serial(&queue, 1);  // Host-side VMM setup is serialized.
  dbase::Rng rng(config.seed);

  struct Chain {
    SimRequest req;
    int phase = 0;
  };

  std::function<void(std::shared_ptr<Chain>)> run_phase;
  run_phase = [&](std::shared_ptr<Chain> chain) {
    if (chain->phase >= chain->req.phases) {
      RecordLatency(&metrics, chain->req.app_id, chain->req.arrival_us, queue.now());
      return;
    }
    ++chain->phase;
    // The sandbox blocks on I/O without holding a core (guest OS yields):
    // comm is pure latency; compute occupies a core.
    auto compute_stage = [&, chain] {
      const auto service = static_cast<dbase::Micros>(
          static_cast<double>(chain->req.compute_us) * config.exec_overhead);
      cores.Submit(service,
                   [&, chain](dbase::Micros, dbase::Micros) { run_phase(chain); });
    };
    if (chain->req.comm_us > 0) {
      queue.ScheduleAfter(chain->req.comm_us, compute_stage);
    } else {
      compute_stage();
    }
  };

  for (const auto& req : requests) {
    const bool hot = rng.Bernoulli(config.hot_fraction);
    queue.ScheduleAt(req.arrival_us, [&, req, hot] {
      auto chain = std::make_shared<Chain>();
      chain->req = req;
      if (hot) {
        ++metrics.warm_starts;
        queue.ScheduleAfter(config.warm_path_us, [&, chain] { run_phase(chain); });
        return;
      }
      ++metrics.cold_starts;
      // Cold: serialized VMM setup, then core-resident boot/restore work
      // plus demand-paging the app's working set through the first run.
      vmm_serial.Submit(config.cold_serial_us, [&, chain](dbase::Micros, dbase::Micros) {
        cores.Submit(config.cold_core_us + config.cold_demand_paging_us,
                     [&, chain](dbase::Micros, dbase::Micros) { run_phase(chain); });
      });
    });
  }

  queue.RunAll();
  return metrics;
}

// ------------------------------------------------------------- Wasmtime

SimMetrics SimulateWasmtime(const WasmtimeSimConfig& config,
                            const std::vector<SimRequest>& requests) {
  SimMetrics metrics;
  EventQueue queue;
  FifoServer cores(&queue, config.cores);

  struct Chain {
    SimRequest req;
    int phase = 0;
  };

  std::function<void(std::shared_ptr<Chain>)> run_phase;
  run_phase = [&](std::shared_ptr<Chain> chain) {
    if (chain->phase >= chain->req.phases) {
      RecordLatency(&metrics, chain->req.app_id, chain->req.arrival_us, queue.now());
      return;
    }
    ++chain->phase;
    auto compute_stage = [&, chain] {
      // Per-phase module instantiation (Spin re-enters the component per
      // step of a chained workflow) plus slower generated code (§7.3).
      const auto service = static_cast<dbase::Micros>(
          config.sandbox_us + config.dispatch_us +
          static_cast<double>(chain->req.compute_us) * config.slowdown);
      cores.Submit(service,
                   [&, chain](dbase::Micros, dbase::Micros) { run_phase(chain); });
    };
    if (chain->req.comm_us > 0) {
      queue.ScheduleAfter(chain->req.comm_us, compute_stage);
    } else {
      compute_stage();
    }
  };

  for (const auto& req : requests) {
    queue.ScheduleAt(req.arrival_us, [&, req] {
      ++metrics.cold_starts;  // Instance-per-request, like Dandelion.
      auto chain = std::make_shared<Chain>();
      chain->req = req;
      run_phase(chain);
    });
  }

  queue.RunAll();
  return metrics;
}

// ------------------------------------------------------------- D-hybrid

namespace {

// Counting semaphore with FIFO waiters over the event queue — models the
// fixed pool of hybrid-function threads (cores × tpc).
class SlotPool {
 public:
  SlotPool(int capacity) : capacity_(capacity) {}

  void Acquire(std::function<void()> holder) {
    if (busy_ < capacity_) {
      ++busy_;
      holder();
    } else {
      waiters_.push_back(std::move(holder));
    }
  }

  void Release() {
    if (!waiters_.empty()) {
      std::function<void()> next = std::move(waiters_.front());
      waiters_.pop_front();
      next();  // Slot transfers directly.
    } else {
      --busy_;
    }
  }

 private:
  int capacity_;
  int busy_ = 0;
  std::deque<std::function<void()>> waiters_;
};

}  // namespace

SimMetrics SimulateDHybrid(const DHybridSimConfig& config,
                           const std::vector<SimRequest>& requests) {
  SimMetrics metrics;
  EventQueue queue;
  const int threads = std::max(1, config.cores * config.threads_per_core);

  // Two resources: a thread slot held for the whole request (compute AND
  // I/O wait — the hybrid function blocks in its sandbox), and the physical
  // CPU, which only the compute portions occupy. Oversubscription and
  // missing pinning inflate the CPU demand (context switches, cache churn).
  SlotPool slots(threads);
  FifoServer cpu(&queue, config.cores);
  double cpu_inflation = 1.0;
  if (!config.pinned) {
    cpu_inflation *= 1.0 + config.ctx_switch_penalty *
                               std::max(1, config.threads_per_core - 1);
  }

  struct Chain {
    SimRequest req;
    int phase = 0;
  };

  std::function<void(std::shared_ptr<Chain>)> run_phase;
  run_phase = [&](std::shared_ptr<Chain> chain) {
    if (chain->phase >= chain->req.phases) {
      RecordLatency(&metrics, chain->req.app_id, chain->req.arrival_us, queue.now());
      slots.Release();
      return;
    }
    ++chain->phase;
    auto compute_stage = [&, chain] {
      const auto service = static_cast<dbase::Micros>(
          static_cast<double>(chain->req.compute_us) * cpu_inflation);
      cpu.Submit(service, [&, chain](dbase::Micros, dbase::Micros) { run_phase(chain); });
    };
    if (chain->req.comm_us > 0) {
      // The hybrid function's own networking burns CPU, then the network
      // wait elapses off-CPU, then the compute part of the phase runs.
      const auto net_cpu = static_cast<dbase::Micros>(
          static_cast<double>(config.comm_cpu_us) * cpu_inflation);
      cpu.Submit(net_cpu, [&, chain, compute_stage](dbase::Micros, dbase::Micros) {
        queue.ScheduleAfter(chain->req.comm_us, compute_stage);
      });
    } else {
      compute_stage();
    }
  };

  for (const auto& req : requests) {
    queue.ScheduleAt(req.arrival_us, [&, req] {
      ++metrics.cold_starts;  // Hybrid functions also sandbox per request.
      slots.Acquire([&, req] {
        auto chain = std::make_shared<Chain>();
        chain->req = req;
        // Sandbox creation + dispatch burn CPU before the first phase.
        cpu.Submit(static_cast<dbase::Micros>(
                       static_cast<double>(config.sandbox_us + config.dispatch_us) *
                       cpu_inflation),
                   [&, chain](dbase::Micros, dbase::Micros) { run_phase(chain); });
      });
    });
  }

  queue.RunAll();
  return metrics;
}

// ------------------------------------------- Azure trace node models (§7.8)

namespace {

struct PendingRequest {
  dbase::Micros arrival_us = 0;
  dbase::Micros duration_us = 0;
  // True when no warm pod existed at arrival — the request experiences a
  // cold start (a pod boots on its critical path).
  bool cold = false;
};

// Per-function pod-pool state for the Knative model. The autoscaler is the
// shared KPA core from src/policy/ — the identical decision code behind the
// runtime's ConcurrencyTargetPolicy.
struct FunctionPool {
  int ready = 0;
  int booting = 0;
  int busy = 0;
  std::deque<PendingRequest> backlog;
  dpolicy::KpaAutoscaler autoscaler;
  uint64_t pod_bytes = 0;

  // Time integral of (busy + backlog) — the metric the KPA averages. Short
  // requests between autoscaler ticks are invisible to point sampling, so
  // the simulator integrates continuously like queue-proxy metrics do.
  double concurrency_integral = 0.0;
  dbase::Micros last_integral_update = 0;

  explicit FunctionPool(const dpolicy::KpaConfig& config) : autoscaler(config) {}
  int total_pods() const { return ready + booting; }

  void UpdateIntegral(dbase::Micros now) {
    concurrency_integral += static_cast<double>(busy + backlog.size()) *
                            static_cast<double>(now - last_integral_update);
    last_integral_update = now;
  }

  // Average concurrency since the last call; resets the window.
  double DrainWindowAverage(dbase::Micros now, dbase::Micros window_us) {
    UpdateIntegral(now);
    const double avg =
        window_us > 0 ? concurrency_integral / static_cast<double>(window_us) : 0.0;
    concurrency_integral = 0.0;
    return avg;
  }
};

}  // namespace

SimMetrics SimulateKnativeFirecrackerTrace(const TraceSimConfig& config,
                                           const dtrace::Trace& trace, uint64_t arrival_seed) {
  SimMetrics metrics;
  EventQueue queue;
  FifoServer cores(&queue, config.cores);

  dpolicy::KpaConfig as_config;
  as_config.max_replicas = config.max_pods_per_function;

  std::vector<FunctionPool> pools;
  pools.reserve(trace.functions.size());
  for (const auto& fn : trace.functions) {
    pools.emplace_back(as_config);
    pools.back().pod_bytes = fn.memory_bytes + config.guest_overhead_bytes;
  }

  uint64_t committed_bytes = 0;
  uint64_t active_bytes = 0;
  auto record_memory = [&] {
    metrics.committed_mb.Add(queue.now(), static_cast<double>(committed_bytes) / (1024.0 * 1024.0));
    metrics.active_mb.Add(queue.now(), static_cast<double>(active_bytes) / (1024.0 * 1024.0));
  };

  // Serves one queued/new request on a ready pod.
  std::function<void(int)> pump;
  std::function<void(int)> start_boot;

  auto serve = [&](int f, const PendingRequest& req) {
    FunctionPool& pool = pools[static_cast<size_t>(f)];
    pool.UpdateIntegral(queue.now());
    ++pool.busy;
    active_bytes += pool.pod_bytes;
    record_memory();
    if (req.cold) {
      ++metrics.cold_starts;
    } else {
      ++metrics.warm_starts;
    }
    const dbase::Micros service =
        req.duration_us + (req.cold ? config.pod_cold_paging_us : 0);
    cores.Submit(service, [&, f, req](dbase::Micros, dbase::Micros end) {
      FunctionPool& p = pools[static_cast<size_t>(f)];
      p.UpdateIntegral(queue.now());
      --p.busy;
      active_bytes -= p.pod_bytes;
      RecordLatency(&metrics, f, req.arrival_us, end);
      record_memory();
      pump(f);
    });
  };

  pump = [&](int f) {
    FunctionPool& pool = pools[static_cast<size_t>(f)];
    while (!pool.backlog.empty() && pool.ready > pool.busy) {
      PendingRequest req = pool.backlog.front();
      pool.backlog.pop_front();
      serve(f, req);
    }
    // Boot more pods if the backlog still exceeds capacity in flight.
    while (!pool.backlog.empty() &&
           pool.total_pods() < std::min(as_config.max_replicas,
                                        pool.busy + static_cast<int>(pool.backlog.size()))) {
      start_boot(f);
    }
  };

  start_boot = [&](int f) {
    FunctionPool& pool = pools[static_cast<size_t>(f)];
    ++pool.booting;
    committed_bytes += pool.pod_bytes;
    record_memory();
    queue.ScheduleAfter(config.pod_boot_us, [&, f] {
      FunctionPool& p = pools[static_cast<size_t>(f)];
      --p.booting;
      ++p.ready;
      pump(f);
    });
  };

  // Arrivals.
  for (const auto& arrival : trace.ToArrivals(arrival_seed)) {
    queue.ScheduleAt(arrival.time_us, [&, arrival] {
      const int f = arrival.function_id;
      FunctionPool& pool = pools[static_cast<size_t>(f)];
      pool.UpdateIntegral(queue.now());
      PendingRequest req{arrival.time_us, arrival.duration_us, /*cold=*/false};
      if (pool.ready > pool.busy) {
        serve(f, req);
      } else {
        // No warm pod free. Only count it a cold start when no pod exists
        // at all — queueing behind busy warm pods is a warm (if slow) hit.
        req.cold = pool.total_pods() == 0;
        pool.backlog.push_back(req);
        pump(f);
      }
    });
  }

  // Autoscaler ticks for the whole window.
  const dbase::Micros window_us =
      static_cast<dbase::Micros>(trace.duration_minutes) * 60 * dbase::kMicrosPerSecond;
  for (dbase::Micros t = config.autoscaler_tick_us; t <= window_us;
       t += config.autoscaler_tick_us) {
    queue.ScheduleAt(t, [&] {
      for (size_t f = 0; f < pools.size(); ++f) {
        FunctionPool& pool = pools[f];
        const double avg_concurrency =
            pool.DrainWindowAverage(queue.now(), config.autoscaler_tick_us);
        const int desired = pool.autoscaler.Tick(queue.now(), avg_concurrency);
        // Scale down: retire idle pods above the desired count.
        while (pool.total_pods() > desired && pool.ready > pool.busy) {
          --pool.ready;
          committed_bytes -= pool.pod_bytes;
        }
        // Scale up toward desired.
        while (pool.total_pods() < desired) {
          start_boot(static_cast<int>(f));
        }
      }
      record_memory();
    });
  }

  queue.RunAll();
  return metrics;
}

SimMetrics SimulateDandelionTrace(const TraceSimConfig& config, const dtrace::Trace& trace,
                                  uint64_t arrival_seed) {
  SimMetrics metrics;
  EventQueue queue;
  FifoServer cores(&queue, config.cores);

  uint64_t committed_bytes = 0;
  auto record_memory = [&] {
    metrics.committed_mb.Add(queue.now(), static_cast<double>(committed_bytes) / (1024.0 * 1024.0));
    metrics.active_mb.Add(queue.now(), static_cast<double>(committed_bytes) / (1024.0 * 1024.0));
  };

  std::vector<uint64_t> memory_of(trace.functions.size());
  for (size_t f = 0; f < trace.functions.size(); ++f) {
    memory_of[f] = trace.functions[f].memory_bytes;
  }

  // Warm-context pools (fig10's pooling variants). A shelved context stays
  // committed; kPrewarmPolicy bounds the shelf with the shared
  // PrewarmPolicy, kAlwaysWarm keeps every context forever (the naive
  // envelope the policy run must undercut).
  struct FuncPool {
    std::unique_ptr<dpolicy::PrewarmPolicy> policy;
    uint64_t arrivals = 0;
    int shelved = 0;
    int leased = 0;
    int target = 0;
  };
  const auto mode = config.pool_mode;
  std::vector<FuncPool> pools(trace.functions.size());
  // Node-wide shelf occupancy, maintained across arrivals/completions/ticks
  // so the kPrewarmPolicy fills can honour prewarm_max_total the way
  // SandboxPool::Tick honours Config::max_total (sim-vs-runtime parity).
  // kAlwaysWarm deliberately ignores the caps — it is the naive envelope.
  int total_shelved = 0;
  if (mode == TraceSimConfig::PoolMode::kPrewarmPolicy) {
    for (auto& pool : pools) {
      pool.policy = std::make_unique<dpolicy::PrewarmPolicy>(config.prewarm);
    }
  }

  for (const auto& arrival : trace.ToArrivals(arrival_seed)) {
    queue.ScheduleAt(arrival.time_us, [&, arrival] {
      // Context committed only while the request exists (§7.8: "Dandelion
      // commits and consumes memory only while requests are actively
      // running since a new context is created for each request") — unless
      // a pool mode shelved one for this function.
      const auto f = static_cast<size_t>(arrival.function_id);
      const uint64_t bytes = memory_of[f];
      FuncPool& pool = pools[f];
      ++pool.arrivals;
      bool warm = false;
      if (mode != TraceSimConfig::PoolMode::kNone && pool.shelved > 0) {
        --pool.shelved;
        --total_shelved;
        ++pool.leased;
        warm = true;  // Context already committed while shelved.
      } else {
        committed_bytes += bytes;
      }
      record_memory();
      if (warm) {
        ++metrics.warm_starts;
      } else {
        ++metrics.cold_starts;
      }
      const dbase::Micros service =
          (warm ? 0 : config.dandelion_sandbox_us) + arrival.duration_us;
      cores.Submit(service, [&, arrival, bytes, warm, f](dbase::Micros, dbase::Micros end) {
        FuncPool& done_pool = pools[f];
        bool kept = false;
        if (warm) {
          --done_pool.leased;
        }
        if (mode == TraceSimConfig::PoolMode::kAlwaysWarm) {
          // Naive: every context is promoted to the shelf and never
          // retired — resident memory grows to each function's peak
          // concurrency and stays there.
          ++done_pool.shelved;
          ++total_shelved;
          kept = true;
        } else if (mode == TraceSimConfig::PoolMode::kPrewarmPolicy && warm &&
                   done_pool.shelved + done_pool.leased < done_pool.target &&
                   done_pool.shelved < config.prewarm_max_depth &&
                   total_shelved < config.prewarm_max_total) {
          ++done_pool.shelved;
          ++total_shelved;
          kept = true;
        }
        if (!kept) {
          committed_bytes -= bytes;
        }
        RecordLatency(&metrics, arrival.function_id, arrival.time_us, end);
        record_memory();
      });
    });
  }

  // Function-scope: the lambda reschedules through this std::function by
  // reference, so it must outlive RunAll().
  std::function<void()> prewarm_tick;
  if (mode == TraceSimConfig::PoolMode::kPrewarmPolicy) {
    prewarm_tick = [&] {
      for (size_t f = 0; f < pools.size(); ++f) {
        FuncPool& pool = pools[f];
        dpolicy::PrewarmSignals signals;
        signals.now_us = queue.now();
        signals.arrivals = pool.arrivals;
        signals.shelved = pool.shelved;
        signals.leased = pool.leased;
        dpolicy::PrewarmDecision decision = pool.policy->Decide(signals);
        pool.target = std::min(decision.target_depth, config.prewarm_max_depth);
        while (pool.shelved + pool.leased > pool.target && pool.shelved > 0) {
          --pool.shelved;
          --total_shelved;
          committed_bytes -= memory_of[f];
        }
        // Fill only while the node-wide shelf has room — the same room
        // computation SandboxPool::Tick runs against Config::max_total.
        int want = pool.target - pool.shelved - pool.leased;
        while (want-- > 0 && total_shelved < config.prewarm_max_total) {
          ++pool.shelved;
          ++total_shelved;
          committed_bytes += memory_of[f];
        }
      }
      record_memory();
      metrics.pool_depth_trace.emplace_back(queue.now(), total_shelved);
      if (!queue.empty()) {
        queue.ScheduleAfter(config.prewarm_tick_us, prewarm_tick);
      }
    };
    queue.ScheduleAfter(config.prewarm_tick_us, prewarm_tick);
  }

  queue.RunAll();
  return metrics;
}

}  // namespace dsim
