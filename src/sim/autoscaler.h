// Knative-style autoscaler (KPA) used in the Azure-trace experiments
// (§7.8): per-function pod counts driven by windowed average concurrency,
// with a short panic window for bursts and delayed scale-to-zero. Pure
// decision logic — unit-testable without the event queue.
#ifndef SRC_SIM_AUTOSCALER_H_
#define SRC_SIM_AUTOSCALER_H_

#include <cstdint>
#include <deque>

#include "src/base/clock.h"

namespace dsim {

struct AutoscalerConfig {
  dbase::Micros stable_window_us = 60 * dbase::kMicrosPerSecond;
  dbase::Micros panic_window_us = 6 * dbase::kMicrosPerSecond;
  // Panic when the panic-window desire exceeds 2x current pods.
  double panic_threshold = 2.0;
  double target_concurrency = 1.0;
  dbase::Micros scale_to_zero_grace_us = 30 * dbase::kMicrosPerSecond;
  int max_pods = 64;
};

class KnativeAutoscaler {
 public:
  explicit KnativeAutoscaler(AutoscalerConfig config = AutoscalerConfig{});

  // Feeds a concurrency sample (in-flight requests at `now`); returns the
  // recommended pod count.
  int Tick(dbase::Micros now, double concurrency);

  int current_pods() const { return pods_; }
  bool in_panic_mode() const { return panic_until_ > last_tick_; }

 private:
  double WindowAverage(dbase::Micros now, dbase::Micros window) const;

  AutoscalerConfig config_;
  std::deque<std::pair<dbase::Micros, double>> samples_;
  int pods_ = 0;
  dbase::Micros panic_until_ = -1;
  int panic_floor_ = 0;  // Pods may not drop below this while panicking.
  dbase::Micros last_positive_us_ = 0;
  dbase::Micros last_tick_ = 0;
};

}  // namespace dsim

#endif  // SRC_SIM_AUTOSCALER_H_
