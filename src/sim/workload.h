// Workload generation for the simulator: open-loop Poisson request streams,
// bursty multi-application mixes (Fig. 8), and the request shapes of the
// paper's microbenchmarks (single compute, fetch-and-compute, N-phase
// chains).
#ifndef SRC_SIM_WORKLOAD_H_
#define SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/base/clock.h"
#include "src/base/rng.h"

namespace dsim {

// A request is a chain of `phases` stages; each stage is compute_us of CPU
// work followed by comm_us of remote-service latency (0 for pure compute).
// Dandelion pays a sandbox creation per compute stage; a monolithic FaaS
// function pays one sandbox for the whole chain.
struct SimRequest {
  dbase::Micros arrival_us = 0;
  int app_id = 0;
  int phases = 1;
  dbase::Micros compute_us = 0;   // Per phase.
  dbase::Micros comm_us = 0;      // Per phase (0 = compute-only).
  uint64_t context_bytes = 16ull << 20;
};

struct AppShape {
  int app_id = 0;
  int phases = 1;
  dbase::Micros compute_us = 0;
  dbase::Micros comm_us = 0;
  uint64_t context_bytes = 16ull << 20;
  // ±fraction lognormal-ish jitter applied to compute_us per request.
  double compute_jitter = 0.05;
};

// Open-loop Poisson arrivals at `rps` for `duration_us`.
std::vector<SimRequest> PoissonStream(const AppShape& shape, double rps,
                                      dbase::Micros duration_us, uint64_t seed);

// A bursty rate profile: piecewise-constant RPS segments.
struct RateSegment {
  dbase::Micros duration_us = 0;
  double rps = 0.0;
};

std::vector<SimRequest> BurstyStream(const AppShape& shape,
                                     const std::vector<RateSegment>& profile, uint64_t seed);

// Merges streams into one arrival-ordered vector.
std::vector<SimRequest> MergeStreams(std::vector<std::vector<SimRequest>> streams);

}  // namespace dsim

#endif  // SRC_SIM_WORKLOAD_H_
