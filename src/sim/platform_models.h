// Simulated serverless platforms, calibrated from the paper (see
// calibration.h): Dandelion (per-request sandboxes, compute/comm core
// split + PI controller), MicroVM platforms with a warm-pool hot ratio
// (Firecracker fresh/snapshot, gVisor), Spin/Wasmtime (pooled instances,
// slower generated code, cooperative scheduling), Dandelion-hybrid
// (§7.5's D-hybrid with threads-per-core sweeps), and the Knative+
// Firecracker / Dandelion Azure-trace node models (§7.8).
#ifndef SRC_SIM_PLATFORM_MODELS_H_
#define SRC_SIM_PLATFORM_MODELS_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/base/stats.h"
#include "src/policy/elasticity.h"
#include "src/policy/prewarm.h"
#include "src/policy/retry.h"
#include "src/sim/calibration.h"
#include "src/sim/event_queue.h"
#include "src/sim/workload.h"
#include "src/trace/azure_trace.h"

namespace dsim {

struct SimMetrics {
  // End-to-end request latencies in milliseconds.
  dbase::LatencyRecorder latency_ms;
  std::map<int, dbase::LatencyRecorder> per_app_latency_ms;
  // Committed memory (MB) and memory of actively-serving sandboxes (MB).
  dbase::TimeSeries committed_mb;
  dbase::TimeSeries active_mb;
  uint64_t cold_starts = 0;
  uint64_t warm_starts = 0;
  uint64_t completed = 0;
  // Fault/retry parity (Dandelion model only): injected sandbox crashes,
  // relaunches the shared dpolicy::RetryPolicy granted, launches a tripped
  // breaker fast-failed, and requests that terminated without completing
  // (retry budget exhausted or fast-failed).
  uint64_t crashes_injected = 0;
  uint64_t retries = 0;
  uint64_t breaker_fast_fails = 0;
  uint64_t failed = 0;
  dbase::Micros end_time_us = 0;
  // (time, comm cores) — the controller's allocation trace (Fig. 8).
  std::vector<std::pair<dbase::Micros, int>> comm_core_trace;
  // (time, shelved warm sandboxes) recorded at each prewarm tick — the
  // simulated counterpart of SandboxPool::DepthTrace(), compared by the
  // sim-vs-runtime parity test.
  std::vector<std::pair<dbase::Micros, int>> pool_depth_trace;

  double ColdFraction() const {
    const uint64_t total = cold_starts + warm_starts;
    return total == 0 ? 0.0 : static_cast<double>(cold_starts) / static_cast<double>(total);
  }
};

// ---------------------------------------------------------------- Dandelion

struct DandelionSimConfig {
  int cores = 4;
  int initial_comm_cores = 1;
  // Per compute-stage sandbox creation cost (Table 1 totals).
  dbase::Micros sandbox_us = Calibration::kDandelionCheriUs;
  dbase::Micros dispatch_us = Calibration::kDandelionDispatchUs;
  double compute_slowdown = 1.0;  // >1 for the rWasm backend.
  int comm_parallelism = 64;      // Green threads per comm core.
  bool enable_controller = true;
  dbase::Micros controller_interval_us = 30 * dbase::kMicrosPerMilli;
  // Elasticity policy the simulated control plane executes — the same
  // dpolicy code the real runtime's ControlPlane runs, driven here from
  // the virtual-time event queue.
  dpolicy::PolicyKind controller_policy = dpolicy::PolicyKind::kPaperPi;
  // Overrides controller_policy with a custom-configured instance
  // (parity tests pin windows/targets this way).
  std::function<std::unique_ptr<dpolicy::ElasticityPolicy>()> policy_factory;
  bool track_memory = false;
  // Pre-warmed sandbox pool (mirrors the runtime's SandboxPool): each
  // prewarm tick runs the same dpolicy::PrewarmPolicy per app; a compute
  // stage that finds a shelved warm sandbox skips sandbox_us entirely
  // (warm start), a miss pays it (cold start). Off by default so every
  // existing caller keeps the always-cold §7 model.
  bool enable_prewarm_pool = false;
  dpolicy::PrewarmOptions prewarm;
  // Tick cadence of the prewarm policy (defaults to controller_interval_us
  // when 0) and the same clamps SandboxPool::Config applies.
  dbase::Micros prewarm_tick_us = 0;
  int prewarm_max_depth = 8;
  int prewarm_max_total = 64;
  // Ignore latencies of requests arriving before this time — fig02 gates
  // on steady-state tail latency, after the pool has warmed up.
  dbase::Micros latency_record_after_us = 0;
  // Fault/retry parity with the runtime dispatcher: every crash_every_n-th
  // compute-stage completion is a sandbox crash (0 = off), and the same
  // dpolicy::RetryPolicy the dispatcher executes decides relaunch, backoff,
  // and circuit breaking — in virtual time, keyed per app.
  uint64_t crash_every_n = 0;
  dpolicy::RetryOptions retry;
};

SimMetrics SimulateDandelion(const DandelionSimConfig& config,
                             const std::vector<SimRequest>& requests);

// ------------------------------------------------- MicroVM (FC / gVisor)

struct VmSimConfig {
  int cores = 4;
  // Probability an arriving request finds a warm sandbox (the paper uses
  // 97% for Firecracker, after Shahrad et al.'s 3.5%-cold observation).
  double hot_fraction = 0.97;
  // Cold path: host-serialized VMM setup + core-resident boot/restore.
  dbase::Micros cold_serial_us = Calibration::kFirecrackerSnapshotSerialUs;
  dbase::Micros cold_core_us = Calibration::kFirecrackerSnapshotCoreUs;
  // Extra time a cold request spends demand-paging the application's
  // working set through its first execution (§2.3: snapshot restores fault
  // in guest state lazily; large app stacks make first requests far slower
  // than the restore itself). Zero for the hello-world-sized functions of
  // Figs. 2/5/6; hundreds of ms for the realistic apps of Fig. 8.
  dbase::Micros cold_demand_paging_us = 0;
  double exec_overhead = Calibration::kVmExecOverhead;
  dbase::Micros warm_path_us = Calibration::kVmWarmPathUs;
  uint64_t seed = 0xF17ECA;

  static VmSimConfig FirecrackerFresh(int cores, double hot_fraction);
  static VmSimConfig FirecrackerSnapshot(int cores, double hot_fraction);
  static VmSimConfig Gvisor(int cores, double hot_fraction);
};

SimMetrics SimulateVmPlatform(const VmSimConfig& config,
                              const std::vector<SimRequest>& requests);

// ------------------------------------------------------------- Wasmtime

struct WasmtimeSimConfig {
  int cores = 4;
  dbase::Micros sandbox_us = Calibration::kWasmtimeSandboxUs;
  dbase::Micros dispatch_us = Calibration::kWasmtimeDispatchUs;
  double slowdown = Calibration::kWasmSlowdown;
};

SimMetrics SimulateWasmtime(const WasmtimeSimConfig& config,
                            const std::vector<SimRequest>& requests);

// ------------------------------------------------------------- D-hybrid

struct DHybridSimConfig {
  int cores = 4;
  int threads_per_core = 1;
  bool pinned = false;
  dbase::Micros sandbox_us = Calibration::kDandelionKvmUs;
  dbase::Micros dispatch_us = Calibration::kDandelionDispatchUs;
  // CPU burned per comm phase by the hybrid function's own networking
  // (socket setup, per-request protocol work) — the cost Dandelion's
  // cooperative comm engines amortize away (§7.5).
  dbase::Micros comm_cpu_us = 250;
  // Per-extra-thread context-switch/cache inflation on CPU time when
  // oversubscribed / unpinned.
  double ctx_switch_penalty = 0.04;
  // Retained for older callers; the CPU server makes contention emergent.
  double compute_fraction = 1.0;
};

SimMetrics SimulateDHybrid(const DHybridSimConfig& config,
                           const std::vector<SimRequest>& requests);

// ------------------------------------------- Azure trace node models (§7.8)

struct TraceSimConfig {
  int cores = Calibration::kTraceNodeCores;
  // Knative-managed Firecracker pods.
  dbase::Micros pod_boot_us = Calibration::kFirecrackerSnapshotSerialUs +
                              Calibration::kFirecrackerSnapshotCoreUs;
  // A cold request additionally demand-pages the application working set
  // through its first execution (as in Fig. 8's realistic apps) — this is
  // what puts cold starts into the trace replay's p99 (§7.8: Dandelion
  // reduces p99 by ~46% vs Firecracker).
  dbase::Micros pod_cold_paging_us = 1200 * 1000;
  uint64_t guest_overhead_bytes = Calibration::kGuestOsOverheadBytes;
  dbase::Micros autoscaler_tick_us = Calibration::kAutoscalerTickUs;
  int max_pods_per_function = 32;
  // Dandelion per-request sandbox cost (process backend on x86, §7.8).
  dbase::Micros dandelion_sandbox_us = Calibration::kDandelionProcessX86Us;
  dbase::Micros memory_sample_interval_us = 1 * dbase::kMicrosPerSecond;

  // Warm-context handling for the Dandelion node (fig10's pooling
  // variants). kNone is the paper's baseline: a context exists only while
  // its request runs. kPrewarmPolicy shelves contexts under the
  // PrewarmPolicy's per-function targets — shelved contexts stay committed,
  // so pooling trades bounded resident memory for fewer cold starts.
  // kAlwaysWarm is the naive envelope: every context is kept forever, the
  // memory bound fig10 must stay below.
  enum class PoolMode { kNone, kPrewarmPolicy, kAlwaysWarm };
  PoolMode pool_mode = PoolMode::kNone;
  dpolicy::PrewarmOptions prewarm;
  dbase::Micros prewarm_tick_us = Calibration::kAutoscalerTickUs;
  // Same clamps SandboxPool::Config applies in the runtime: per-function
  // shelf depth and the node-wide shelf total (kAlwaysWarm ignores both —
  // it is the deliberately unbounded envelope).
  int prewarm_max_depth = 8;
  int prewarm_max_total = 64;
};

// Firecracker pods auto-scaled by the Knative KPA model. Memory committed =
// (ready + booting pods) x (function memory + guest OS overhead).
SimMetrics SimulateKnativeFirecrackerTrace(const TraceSimConfig& config,
                                           const dtrace::Trace& trace, uint64_t arrival_seed);

// Dandelion on the same node: a context exists only while its request runs.
SimMetrics SimulateDandelionTrace(const TraceSimConfig& config, const dtrace::Trace& trace,
                                  uint64_t arrival_seed);

}  // namespace dsim

#endif  // SRC_SIM_PLATFORM_MODELS_H_
