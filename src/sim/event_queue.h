// Discrete-event simulation core: a virtual-time event queue with stable
// FIFO ordering for simultaneous events. All §7 experiments that need the
// authors' testbed (Firecracker/gVisor/Wasmtime hosts, CloudLab nodes) run
// against this in virtual time, calibrated by src/sim/calibration.h.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/clock.h"

namespace dsim {

using EventFn = std::function<void()>;

class EventQueue : public dbase::Clock {
 public:
  EventQueue() = default;

  dbase::Micros now() const { return now_; }
  dbase::Micros NowMicros() const override { return now_; }

  // Schedules fn at absolute virtual time `at` (>= now). Events at equal
  // times run in scheduling order.
  void ScheduleAt(dbase::Micros at, EventFn fn);
  void ScheduleAfter(dbase::Micros delay, EventFn fn) { ScheduleAt(now_ + delay, fn); }

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Runs the next event; returns false when none remain.
  bool RunNext();
  // Runs events until the queue is empty or `max_events` executed.
  size_t RunAll(size_t max_events = SIZE_MAX);
  // Runs events with time <= end.
  void RunUntil(dbase::Micros end);

 private:
  struct Event {
    dbase::Micros time;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  dbase::Micros now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

// A c-server FIFO queueing station over an EventQueue (the compute-core
// pool, the serialized VMM-setup stage, the comm green-thread pool, ...).
// Capacity may change at runtime (the PI controller moves cores).
class FifoServer {
 public:
  FifoServer(EventQueue* queue, int capacity);

  // Enqueues a job with the given service time. `done(start, end)` runs at
  // the job's virtual completion time.
  void Submit(dbase::Micros service, std::function<void(dbase::Micros, dbase::Micros)> done);

  void SetCapacity(int capacity);
  int capacity() const { return capacity_; }
  int busy() const { return busy_; }
  size_t queue_len() const { return pending_.size(); }
  uint64_t total_submitted() const { return submitted_; }
  uint64_t total_started() const { return started_; }
  uint64_t total_completed() const { return completed_; }

 private:
  struct Job {
    dbase::Micros service;
    std::function<void(dbase::Micros, dbase::Micros)> done;
  };

  void TryDispatch();

  EventQueue* queue_;
  int capacity_;
  int busy_ = 0;
  std::deque<Job> pending_;
  uint64_t submitted_ = 0;
  uint64_t started_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace dsim

#endif  // SRC_SIM_EVENT_QUEUE_H_
