// Calibration constants for the simulator, each traced to the paper. The
// simulator reproduces *shapes* (who wins, crossover points, saturation
// knees); these constants anchor the absolute scale.
#ifndef SRC_SIM_CALIBRATION_H_
#define SRC_SIM_CALIBRATION_H_

#include "src/base/clock.h"

namespace dsim {

struct Calibration {
  // ---- Dandelion sandbox creation totals (Table 1, Arm Morello) ----------
  // "CHERI 89, rWasm 241, process 486, KVM 889 us" for a 1x1 matmul.
  static constexpr dbase::Micros kDandelionCheriUs = 89;
  static constexpr dbase::Micros kDandelionRwasmUs = 241;
  static constexpr dbase::Micros kDandelionProcessUs = 486;
  static constexpr dbase::Micros kDandelionKvmUs = 889;

  // §7.2: "with the default Linux 5.15 kernel, the totals of the rWasm,
  // process, and KVM backends are 109, 539, and 218 us" (x86 server).
  static constexpr dbase::Micros kDandelionRwasmX86Us = 109;
  static constexpr dbase::Micros kDandelionProcessX86Us = 539;
  static constexpr dbase::Micros kDandelionKvmX86Us = 218;

  // Dispatcher overhead per function instance (queueing machinery, context
  // prep) — keeps Dandelion's Fig. 5 saturation near 10^4 RPS on 4 cores.
  static constexpr dbase::Micros kDandelionDispatchUs = 120;

  // ---- Firecracker (§2.3, §7.2) -------------------------------------------
  // "booting a fresh MicroVM takes over 150 ms".
  static constexpr dbase::Micros kFirecrackerColdBootUs = 155 * 1000;
  // "at least 8 ms are spent on loading a minimal snapshot by demand paging
  // and re-establishing the network connection"; restore work limits the
  // platform to ~120 RPS on the 4-core Morello host (§7.2) — modelled as
  // 8 ms of serialized VMM setup plus ~25 ms of core-resident restore work.
  static constexpr dbase::Micros kFirecrackerSnapshotSerialUs = 8 * 1000;
  static constexpr dbase::Micros kFirecrackerSnapshotCoreUs = 25 * 1000;
  // Fresh boot also serializes some host-side VMM setup.
  static constexpr dbase::Micros kFirecrackerFreshSerialUs = 10 * 1000;
  // Guest-OS path overhead on request execution in a hot MicroVM.
  static constexpr double kVmExecOverhead = 1.15;
  // Warm-request fixed cost (HTTP relay → guest, response back).
  static constexpr dbase::Micros kVmWarmPathUs = 400;

  // ---- gVisor (§7.2: "performed worse than FC with snapshots") ------------
  static constexpr dbase::Micros kGvisorColdCoreUs = 45 * 1000;
  static constexpr dbase::Micros kGvisorSerialUs = 12 * 1000;
  static constexpr double kGvisorExecOverhead = 1.25;  // ptrace/KVM intercept.

  // ---- Spin / Wasmtime (§7.2, §7.3) ---------------------------------------
  // Pooled instance activation is cheap; peak ~7000 RPS on 4 cores means
  // ~570 us of per-request platform work.
  static constexpr dbase::Micros kWasmtimeSandboxUs = 350;
  static constexpr dbase::Micros kWasmtimeDispatchUs = 220;
  // "Wasmtime runs slower than native for compute-intensive tasks" — Fig. 6
  // saturation at ~2600 vs ~4800 RPS implies ~2x slower generated code.
  static constexpr double kWasmSlowdown = 2.0;

  // ---- Hyperlight Wasm (§7.2/§7.3, reported not plotted) ------------------
  static constexpr dbase::Micros kHyperlightColdUs = 9100;

  // ---- Azure-trace experiment (§7.8, CloudLab d430) ------------------------
  static constexpr int kTraceNodeCores = 16;
  // Guest OS + runtime overhead resident in each MicroVM beyond the
  // function's own memory (§2.3 "running a guest OS inside each sandbox
  // further adds to the memory footprint").
  static constexpr uint64_t kGuestOsOverheadBytes = 48ull << 20;
  // Knative default-ish autoscaling knobs (§7.8).
  static constexpr dbase::Micros kAutoscalerTickUs = 2 * dbase::kMicrosPerSecond;
  static constexpr dbase::Micros kStableWindowUs = 60 * dbase::kMicrosPerSecond;
  static constexpr dbase::Micros kPanicWindowUs = 6 * dbase::kMicrosPerSecond;
  static constexpr dbase::Micros kScaleToZeroGraceUs = 30 * dbase::kMicrosPerSecond;
  static constexpr double kTargetConcurrencyPerPod = 1.0;

  // ---- Default microbenchmark execution times ------------------------------
  // 128x128 int64 matmul: ~3.1 ms on the paper's Xeon E5-2630v3 — implied
  // by Fig. 6's D-KVM saturation at ~4800 RPS on 16 cores (16/4800 s minus
  // sandbox+dispatch). Our host runs it faster; Fig. 6 prints both numbers.
  static constexpr dbase::Micros kMatmul128Us = 3100;
  static constexpr dbase::Micros kMatmul1x1Us = 2;
  // §7.4 fetch-and-compute phase: fetch 64 KiB (~1 ms service latency) and
  // compute sum/min/max over a sample (~150 us).
  static constexpr dbase::Micros kFetchLatencyUs = 1000;
  static constexpr dbase::Micros kPhaseComputeUs = 150;
  // Image compression (18 kB QOI → PNG, §7.6): ~12 ms of compute.
  static constexpr dbase::Micros kImageCompressUs = 12 * 1000;
  // Log processing (Fig. 3): auth round-trip + 4 shard fetches + render.
  static constexpr dbase::Micros kLogRenderComputeUs = 2500;
  static constexpr dbase::Micros kLogShardLatencyUs = 4000;
};

}  // namespace dsim

#endif  // SRC_SIM_CALIBRATION_H_
