#include "src/sim/workload.h"

#include <algorithm>

namespace dsim {
namespace {

SimRequest MakeRequest(const AppShape& shape, dbase::Micros at, dbase::Rng& rng) {
  SimRequest req;
  req.arrival_us = at;
  req.app_id = shape.app_id;
  req.phases = shape.phases;
  req.comm_us = shape.comm_us;
  req.context_bytes = shape.context_bytes;
  double jitter = 1.0;
  if (shape.compute_jitter > 0.0) {
    jitter = rng.LogNormal(0.0, shape.compute_jitter);
  }
  req.compute_us = std::max<dbase::Micros>(
      1, static_cast<dbase::Micros>(static_cast<double>(shape.compute_us) * jitter));
  return req;
}

}  // namespace

std::vector<SimRequest> PoissonStream(const AppShape& shape, double rps,
                                      dbase::Micros duration_us, uint64_t seed) {
  std::vector<SimRequest> out;
  if (rps <= 0.0) {
    return out;
  }
  dbase::Rng rng(seed);
  const double mean_gap_us = 1e6 / rps;
  double t = rng.Exponential(mean_gap_us);
  while (t < static_cast<double>(duration_us)) {
    out.push_back(MakeRequest(shape, static_cast<dbase::Micros>(t), rng));
    t += rng.Exponential(mean_gap_us);
  }
  return out;
}

std::vector<SimRequest> BurstyStream(const AppShape& shape,
                                     const std::vector<RateSegment>& profile, uint64_t seed) {
  std::vector<SimRequest> out;
  dbase::Rng rng(seed);
  dbase::Micros offset = 0;
  for (const auto& segment : profile) {
    if (segment.rps > 0.0) {
      const double mean_gap_us = 1e6 / segment.rps;
      double t = rng.Exponential(mean_gap_us);
      while (t < static_cast<double>(segment.duration_us)) {
        out.push_back(MakeRequest(shape, offset + static_cast<dbase::Micros>(t), rng));
        t += rng.Exponential(mean_gap_us);
      }
    }
    offset += segment.duration_us;
  }
  return out;
}

std::vector<SimRequest> MergeStreams(std::vector<std::vector<SimRequest>> streams) {
  std::vector<SimRequest> out;
  size_t total = 0;
  for (const auto& stream : streams) {
    total += stream.size();
  }
  out.reserve(total);
  for (auto& stream : streams) {
    out.insert(out.end(), stream.begin(), stream.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SimRequest& a, const SimRequest& b) { return a.arrival_us < b.arrival_us; });
  return out;
}

}  // namespace dsim
