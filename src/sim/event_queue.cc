#include "src/sim/event_queue.h"

#include <cassert>

namespace dsim {

void EventQueue::ScheduleAt(dbase::Micros at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  events_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (events_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately after copying the closure.
  Event event = events_.top();
  events_.pop();
  now_ = event.time;
  event.fn();
  return true;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && RunNext()) {
    ++executed;
  }
  return executed;
}

void EventQueue::RunUntil(dbase::Micros end) {
  while (!events_.empty() && events_.top().time <= end) {
    RunNext();
  }
  if (now_ < end) {
    now_ = end;
  }
}

FifoServer::FifoServer(EventQueue* queue, int capacity) : queue_(queue), capacity_(capacity) {}

void FifoServer::Submit(dbase::Micros service,
                        std::function<void(dbase::Micros, dbase::Micros)> done) {
  ++submitted_;
  pending_.push_back(Job{service, std::move(done)});
  TryDispatch();
}

void FifoServer::SetCapacity(int capacity) {
  capacity_ = capacity;
  TryDispatch();
}

void FifoServer::TryDispatch() {
  while (busy_ < capacity_ && !pending_.empty()) {
    Job job = std::move(pending_.front());
    pending_.pop_front();
    ++busy_;
    ++started_;
    const dbase::Micros start = queue_->now();
    const dbase::Micros end = start + job.service;
    queue_->ScheduleAt(end, [this, start, end, done = std::move(job.done)] {
      --busy_;
      ++completed_;
      if (done) {
        done(start, end);
      }
      TryDispatch();
    });
  }
}

}  // namespace dsim
