// Macro replay through a real multi-process cluster on loopback: one HTTP
// frontend routing through a Cluster of three spawned dandelion_node engine
// processes over the dnet wire (ROADMAP "Distributed data plane").
// Per-invocation service times are drawn from the synthesized Azure
// Functions trace (§7.8), scaled so the whole replay runs in seconds.
//
// Demonstrates that the PR 4 overload contract survives distribution: with
// the client fleet scaled to 10× the uncontended interactive fleet,
//   (a) excess batch load sheds with 429 at the admission seams (frontend
//       cap and per-node caps, the latter re-routed once before
//       surfacing),
//   (b) the interactive p99 stays within 2× of its uncontended value —
//       the urgent lanes now live inside separate engine processes,
//   (c) impossible deadlines answer 504 near the deadline, and
//   (d) a SIGKILLed engine node is absorbed by the router's retry policy:
//       traffic continues on the survivors with no 5xx.
// Per-node utilization, served counts, wire bytes and shed/re-route
// counters land in the DANDELION_BENCH_JSON report.
//
// Gate (advisory; strict with DANDELION_CLUSTER_BENCH_STRICT=1):
// interactive p99 under overload ≤ 2× uncontended, ≥ 1 shed 429, every
// node served traffic, every impossible-deadline request answered 504, and
// zero 5xx after the node kill.
#include <arpa/inet.h>
#include <libgen.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/http/http_parser.h"
#include "src/runtime/cluster.h"
#include "src/runtime/frontend.h"
#include "src/runtime/platform.h"
#include "src/trace/azure_trace.h"

namespace {

// ---------------------------------------------------------- node spawning

// A dandelion_node daemon spawned next to this binary, handshaking its
// bound port over a stdout pipe (same contract the cluster tests use).
struct SpawnedNode {
  pid_t pid = -1;
  uint16_t port = 0;

  bool ok() const { return pid > 0 && port != 0; }
  void Kill(int signal_number = SIGKILL) {
    if (pid <= 0) return;
    kill(pid, signal_number);
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
  }
};

std::string NodeBinaryPath() {
  char exe[4096] = {};
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return "";
  std::string dir(exe, static_cast<size_t>(n));
  return std::string(dirname(dir.data())) + "/dandelion_node";
}

SpawnedNode SpawnNode(const std::string& name, int workers, size_t interactive_cap,
                      size_t batch_cap) {
  SpawnedNode node;
  const std::string binary = NodeBinaryPath();
  if (binary.empty() || access(binary.c_str(), X_OK) != 0) return node;

  int fds[2];
  if (pipe(fds) != 0) return node;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return node;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    const std::string name_flag = "--name=" + name;
    const std::string workers_flag = "--workers=" + std::to_string(workers);
    const std::string icap_flag = "--interactive-cap=" + std::to_string(interactive_cap);
    const std::string bcap_flag = "--batch-cap=" + std::to_string(batch_cap);
    const char* argv[] = {binary.c_str(),      name_flag.c_str(), "--port=0",
                          workers_flag.c_str(), icap_flag.c_str(), bcap_flag.c_str(),
                          nullptr};
    execv(binary.c_str(), const_cast<char**>(argv));
    _exit(127);
  }
  close(fds[1]);
  node.pid = pid;

  std::string line;
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < give_up) {
    pollfd pfd{fds[0], POLLIN, 0};
    if (poll(&pfd, 1, 200) <= 0) continue;
    char buffer[128];
    const ssize_t got = read(fds[0], buffer, sizeof(buffer));
    if (got <= 0) break;
    line.append(buffer, static_cast<size_t>(got));
    const size_t newline = line.find('\n');
    if (newline != std::string::npos) {
      unsigned port = 0;
      if (sscanf(line.c_str(), "LISTENING %u", &port) == 1) {
        node.port = static_cast<uint16_t>(port);
      }
      break;
    }
  }
  close(fds[0]);
  if (node.port == 0) node.Kill();
  return node;
}

// --------------------------------------------------------------- clients

struct ClientStats {
  std::vector<dbase::Micros> latencies_us;  // Of 200 responses only.
  uint64_t ok200 = 0;
  uint64_t shed429 = 0;
  uint64_t deadline504 = 0;
  uint64_t other = 0;
  uint64_t transport_errors = 0;

  void Merge(const ClientStats& other_stats) {
    latencies_us.insert(latencies_us.end(), other_stats.latencies_us.begin(),
                        other_stats.latencies_us.end());
    ok200 += other_stats.ok200;
    shed429 += other_stats.shed429;
    deadline504 += other_stats.deadline504;
    other += other_stats.other;
    transport_errors += other_stats.transport_errors;
  }
};

int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  int nodelay = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

// Reads one complete HTTP response; returns its status code or -1.
int ReadOneStatus(int fd, std::string* carry) {
  char buffer[8192];
  while (true) {
    auto head = dhttp::ScanMessageHead(*carry, 1 << 20);
    if (!head.ok()) {
      return -1;
    }
    if (head->has_value()) {
      const size_t total =
          (*head)->head_bytes + static_cast<size_t>((*head)->content_length);
      if (carry->size() >= total) {
        auto response = dhttp::ParseResponse(std::string_view(*carry).substr(0, total));
        carry->erase(0, total);
        return response.ok() ? response->status_code : -1;
      }
    }
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      return -1;
    }
    carry->append(buffer, static_cast<size_t>(n));
  }
}

// A closed-loop keep-alive client replaying trace-drawn requests: one in
// flight, `requests` total, cycling through the pre-serialized wire list
// from a per-client offset so the fleet replays the arrival mix rather
// than hammering one duration.
ClientStats RunClient(uint16_t port, const std::vector<std::string>& wires,
                      size_t start_offset, int requests) {
  ClientStats stats;
  int fd = ConnectTo(port);
  std::string carry;
  for (int i = 0; i < requests; ++i) {
    const std::string& wire = wires[(start_offset + static_cast<size_t>(i)) % wires.size()];
    if (fd < 0) {
      fd = ConnectTo(port);
      carry.clear();
      if (fd < 0) {
        ++stats.transport_errors;
        continue;
      }
    }
    const dbase::Stopwatch watch;
    if (!SendAll(fd, wire)) {
      close(fd);
      fd = -1;
      ++stats.transport_errors;
      continue;
    }
    const int status = ReadOneStatus(fd, &carry);
    switch (status) {
      case 200:
        stats.latencies_us.push_back(watch.ElapsedMicros());
        ++stats.ok200;
        break;
      case 429:
        ++stats.shed429;
        break;
      case 504:
        ++stats.deadline504;
        break;
      case -1:
        close(fd);
        fd = -1;
        ++stats.transport_errors;
        break;
      default:
        ++stats.other;
    }
  }
  if (fd >= 0) {
    close(fd);
  }
  return stats;
}

ClientStats RunClientFleet(uint16_t port, const std::vector<std::string>& wires,
                           int clients, int requests_per_client) {
  std::vector<ClientStats> results(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    // Prime-stride offsets decorrelate the per-client replay windows.
    threads.emplace_back([&, c] {
      results[static_cast<size_t>(c)] =
          RunClient(port, wires, static_cast<size_t>(c) * 7919, requests_per_client);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ClientStats merged;
  for (const auto& r : results) {
    merged.Merge(r);
  }
  return merged;
}

dbase::Micros Percentile(std::vector<dbase::Micros> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1,
                       p / 100.0 * static_cast<double>(values.size())));
  return values[index];
}

std::string InvokeWire(const std::string& composition, const std::string& body,
                       const std::vector<std::pair<std::string, std::string>>& headers) {
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "/invoke/" + composition;
  request.headers.Add("X-Dandelion-Raw", "1");
  for (const auto& [name, value] : headers) {
    request.headers.Add(name, value);
  }
  request.body = body;
  return request.Serialize();
}

}  // namespace

int main() {
  // Topology: 3 engine processes × 3 workers each; the frontend process
  // runs no local node (Cluster.num_nodes = 0), so every invocation
  // crosses the dnet wire. The baseline interactive fleet is 4 closed-loop
  // connections; under overload the total fleet is 40 — 10× — with the
  // extra 36 connections flooding the batch class, exactly the PR 4 shape
  // scaled out to a multi-process cluster.
  // One compute engine per node: the 4-connection interactive baseline
  // already saturates all 3 compute engines, so the overload phase changes
  // queueing, not execution concurrency — the p99 ratio then measures the
  // urgent lane + re-routing, not CPU multiplexing on small CI machines.
  constexpr int kNodes = 3;
  constexpr int kNodeWorkers = 2;
  constexpr size_t kNodeInteractiveCap = 8;
  constexpr size_t kNodeBatchCap = 4;
  constexpr int kInteractiveConns = 4;
  constexpr int kBatchConns = 36;
  constexpr size_t kWireCount = 512;

  int per_conn = 150;
  if (const char* env = std::getenv("DANDELION_CLUSTER_BENCH_REQUESTS")) {
    uint64_t parsed = 0;
    if (dbase::ParseUint64(env, &parsed) && parsed > 0) {
      per_conn = static_cast<int>(parsed);
    }
  }

  dbench::PrintHeader(
      "Azure-trace replay through a 3-process cluster on loopback: shedding, "
      "re-routing, node kill");

  // The trace contributes the per-invocation service-time mix (lognormal
  // around heavy-tailed per-function means). Durations are scaled ÷50 and
  // clamped to [200 us, 10 ms] so the replay holds the trace's shape while
  // finishing in seconds.
  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 100;
  trace_config.duration_minutes = 10;
  const dtrace::Trace trace = dtrace::SynthesizeAzureTrace(trace_config);
  const std::vector<dtrace::Arrival> arrivals = trace.ToArrivals(/*seed=*/1);
  if (arrivals.empty()) {
    std::fprintf(stderr, "trace synthesis produced no arrivals\n");
    return 1;
  }
  std::vector<dbase::Micros> durations;
  durations.reserve(kWireCount);
  for (size_t i = 0; i < kWireCount; ++i) {
    const dbase::Micros raw = arrivals[i % arrivals.size()].duration_us;
    durations.push_back(std::clamp<dbase::Micros>(raw / 50, 200, 10 * dbase::kMicrosPerMilli));
  }
  dbase::Micros duration_sum = 0;
  for (const dbase::Micros d : durations) {
    duration_sum += d;
  }
  const double mean_ms =
      dbase::MicrosToMillis(duration_sum / static_cast<dbase::Micros>(durations.size()));
  dbench::PrintNote(dbase::StrFormat(
      "%d functions, %d trace minutes, %zu arrivals replayed through %zu request bodies "
      "(mean service %.2f ms, p99 %.2f ms); %d nodes x %d workers, node caps %zu "
      "interactive / %zu batch; %d interactive + %d batch connections, %d requests each",
      trace_config.num_functions, trace_config.duration_minutes, arrivals.size(),
      durations.size(), mean_ms, dbase::MicrosToMillis(Percentile(durations, 99)), kNodes,
      kNodeWorkers, kNodeInteractiveCap, kNodeBatchCap, kInteractiveConns, kBatchConns,
      per_conn));

  // Engine processes first: their ports seed the cluster config.
  std::vector<SpawnedNode> nodes(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    nodes[static_cast<size_t>(i)] = SpawnNode("node" + std::to_string(i), kNodeWorkers,
                                              kNodeInteractiveCap, kNodeBatchCap);
    if (!nodes[static_cast<size_t>(i)].ok()) {
      dbench::PrintNote("SKIPPED: cannot spawn dandelion_node (binary or loopback missing)");
      for (auto& node : nodes) {
        node.Kill();
      }
      return 0;
    }
  }

  // The frontend's own platform serves only the composition catalog (raw
  // invokes resolve the first parameter name there) and the statz surface;
  // with num_nodes = 0 every invocation routes to the spawned processes.
  dandelion::PlatformConfig frontend_platform_config;
  frontend_platform_config.num_workers = 2;
  frontend_platform_config.backend = dandelion::IsolationBackend::kThread;
  frontend_platform_config.sleep_for_modeled_latency = false;
  dandelion::Platform platform(frontend_platform_config);
  if (!platform.RegisterFunction({.name = "work", .body = dfunc::EchoFunction}).ok() ||
      !platform
           .RegisterCompositionDsl(
               "composition Work(in) => out { work(in = all in) => (out = out); }")
           .ok()) {
    std::fprintf(stderr, "composition setup failed\n");
    return 1;
  }

  dandelion::Cluster::Config cluster_config;
  cluster_config.num_nodes = 0;
  cluster_config.policy = dandelion::LoadBalancePolicy::kLeastLoaded;
  cluster_config.router_name = "replay-router";
  for (int i = 0; i < kNodes; ++i) {
    cluster_config.remote_nodes.push_back(
        {"node" + std::to_string(i), nodes[static_cast<size_t>(i)].port});
  }
  cluster_config.gossip_interval_us = 100 * dbase::kMicrosPerMilli;
  dandelion::Cluster cluster(std::move(cluster_config));

  // Frontend admission: the interactive class is never shed (the fleet is
  // small); the batch flood sheds at a cap of 8 — below the 12 batch slots
  // the nodes offer in aggregate, so admitted batch work re-routes on a
  // node-level shed instead of dying as a 5xx.
  dandelion::FrontendConfig frontend_config;
  frontend_config.max_inflight_interactive = 64;
  frontend_config.max_inflight_batch = 8;
  dandelion::HttpFrontend frontend(&platform, frontend_config);
  frontend.AttachCluster(&cluster);
  if (const dbase::Status started = frontend.Start(); !started.ok()) {
    dbench::PrintNote("SKIPPED: loopback sockets unavailable: " + started.ToString());
    for (auto& node : nodes) {
      node.Kill();
    }
    return 0;
  }

  std::vector<std::string> interactive_wires;
  std::vector<std::string> batch_wires;
  interactive_wires.reserve(durations.size());
  batch_wires.reserve(durations.size());
  for (const dbase::Micros d : durations) {
    const std::string body = std::to_string(d);
    interactive_wires.push_back(
        InvokeWire("Work", body, {{"X-Dandelion-Priority", "interactive"}}));
    // Admitted batch requests carry a 100 ms deadline: whatever the
    // backlog cannot serve in time answers 504 instead of rotting.
    batch_wires.push_back(InvokeWire(
        "Work", body,
        {{"X-Dandelion-Priority", "batch"}, {"X-Dandelion-Deadline-Ms", "100"}}));
  }
  const std::vector<std::string> impossible_wires = {
      InvokeWire("Work", "20000", {{"X-Dandelion-Deadline-Ms", "5"}})};

  // Warm-up: node connections, engine pools, and the loopback path.
  RunClientFleet(frontend.port(), interactive_wires, kInteractiveConns,
                 std::max(1, per_conn / 10));

  // Phase 1 — uncontended interactive baseline across the wire.
  const ClientStats uncontended =
      RunClientFleet(frontend.port(), interactive_wires, kInteractiveConns, per_conn);
  const dbase::Micros base_p50 = Percentile(uncontended.latencies_us, 50);
  const dbase::Micros base_p99 = Percentile(uncontended.latencies_us, 99);

  // Phase 2 — overload: the same interactive fleet with a 36-connection
  // batch flood behind it (40 connections total = 10× baseline). A sampler
  // snapshots per-node stats mid-flood so utilization reflects the cluster
  // under pressure, not after it drained.
  ClientStats contended_interactive;
  ClientStats contended_batch;
  dandelion::Cluster::ClusterStats mid_flood{};
  {
    std::atomic<bool> flood_running{true};
    std::thread batch_thread([&] {
      contended_batch =
          RunClientFleet(frontend.port(), batch_wires, kBatchConns, per_conn);
      flood_running.store(false);
    });
    std::thread sampler([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      if (flood_running.load()) {
        cluster.GossipNow();
        mid_flood = cluster.Stats();
      }
    });
    // Let the flood establish itself before measuring interactive latency.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    contended_interactive =
        RunClientFleet(frontend.port(), interactive_wires, kInteractiveConns, per_conn);
    batch_thread.join();
    sampler.join();
  }
  if (mid_flood.peers.empty()) {
    cluster.GossipNow();
    mid_flood = cluster.Stats();
  }
  const dbase::Micros load_p50 = Percentile(contended_interactive.latencies_us, 50);
  const dbase::Micros load_p99 = Percentile(contended_interactive.latencies_us, 99);

  // Phase 3 — impossible deadlines: a 5 ms deadline on 20 ms of work must
  // answer 504 at the deadline, with the kill happening inside a remote
  // engine process.
  const ClientStats impossible = RunClientFleet(
      frontend.port(), impossible_wires, kInteractiveConns, std::max(1, per_conn / 10));

  // Phase 4 — node kill: SIGKILL one engine process, then keep serving.
  // Dead-peer failures map to the retry-safe FailureKind::kPeerLost and the
  // router re-routes to the survivors: the client fleet must see zero 5xx.
  nodes[kNodes - 1].Kill();
  const ClientStats after_kill = RunClientFleet(
      frontend.port(), interactive_wires, kInteractiveConns, std::max(1, per_conn / 4));
  cluster.GossipNow();
  const dandelion::Cluster::ClusterStats final_stats = cluster.Stats();

  dbench::Table table({"phase", "class", "requests", "200", "429", "504", "other",
                       "p50_ms", "p99_ms"});
  const auto row = [&table](const char* phase, const char* klass, const ClientStats& s) {
    const uint64_t total =
        s.ok200 + s.shed429 + s.deadline504 + s.other + s.transport_errors;
    table.AddRow({phase, klass, std::to_string(total), std::to_string(s.ok200),
                  std::to_string(s.shed429), std::to_string(s.deadline504),
                  std::to_string(s.other + s.transport_errors),
                  dbench::Table::Num(dbase::MicrosToMillis(Percentile(s.latencies_us, 50))),
                  dbench::Table::Num(dbase::MicrosToMillis(Percentile(s.latencies_us, 99)))});
  };
  row("uncontended", "interactive", uncontended);
  row("overload-10x", "interactive", contended_interactive);
  row("overload-10x", "batch", contended_batch);
  row("impossible-deadline", "interactive", impossible);
  row("node-killed", "interactive", after_kill);
  table.Print();

  // Per-node view sampled mid-flood: remote load is what the nodes last
  // gossiped (inflight / admission cap), the rest are router-side wire
  // counters from the NodeClient.
  dbench::Table node_table({"node", "state", "served", "sheds", "peer_lost", "remote_inflight",
                            "admission_cap", "utilization", "kb_sent", "kb_received"});
  for (const auto& peer : mid_flood.peers) {
    node_table.AddRow({peer.name, std::string(peer.state), std::to_string(peer.served),
                       std::to_string(peer.sheds_received),
                       std::to_string(peer.peer_lost_failures),
                       std::to_string(peer.remote_inflight),
                       std::to_string(peer.remote_admission_cap),
                       dbench::Table::Num(peer.utilization),
                       dbench::Table::Num(static_cast<double>(peer.bytes_sent) / 1024.0),
                       dbench::Table::Num(static_cast<double>(peer.bytes_received) / 1024.0)});
  }
  node_table.Print();

  dbench::Table counters({"counter", "value"});
  const auto counter = [&counters](const char* name, uint64_t value) {
    counters.AddRow({name, std::to_string(value)});
  };
  counter("reroutes_shed", final_stats.reroutes_shed);
  counter("reroutes_peer_lost", final_stats.reroutes_peer_lost);
  counter("reroute_denied", final_stats.reroute_denied);
  counter("no_eligible_node", final_stats.no_eligible_node);
  counter("gossip_rounds", final_stats.gossip_rounds);
  counter("membership_evictions", final_stats.membership.evictions);
  counter("remote_retries_granted", final_stats.remote_retry.retries_granted);
  uint64_t total_served = 0;
  for (const auto& peer : final_stats.peers) {
    total_served += peer.served;
  }
  counter("total_served_remote", total_served);
  counters.Print();

  const double p99_ratio =
      base_p99 > 0 ? static_cast<double>(load_p99) / static_cast<double>(base_p99) : 0.0;
  const bool latency_ok = p99_ratio > 0 && p99_ratio <= 2.0;
  const bool shed_ok = contended_batch.shed429 > 0;
  bool spread_ok = mid_flood.peers.size() == static_cast<size_t>(kNodes);
  for (const auto& peer : mid_flood.peers) {
    spread_ok = spread_ok && peer.served > 0;
  }
  const uint64_t impossible_total = impossible.ok200 + impossible.shed429 +
                                    impossible.deadline504 + impossible.other +
                                    impossible.transport_errors;
  const bool deadline_ok =
      impossible_total > 0 && impossible.deadline504 == impossible_total;
  const uint64_t kill_total = after_kill.ok200 + after_kill.shed429 +
                              after_kill.deadline504 + after_kill.other +
                              after_kill.transport_errors;
  const bool kill_ok = after_kill.ok200 > 0 && after_kill.other == 0 &&
                       after_kill.transport_errors == 0 && after_kill.ok200 == kill_total;

  dbench::PrintNote(dbase::StrFormat(
      "interactive p99 %.2f ms uncontended -> %.2f ms at 10x offered load "
      "(%.2fx; gate <= 2x): %s; p50 %.2f -> %.2f ms",
      dbase::MicrosToMillis(base_p99), dbase::MicrosToMillis(load_p99), p99_ratio,
      latency_ok ? "PASS" : "FAIL", dbase::MicrosToMillis(base_p50),
      dbase::MicrosToMillis(load_p50)));
  dbench::PrintNote(dbase::StrFormat(
      "batch flood shed with 429: %llu of %llu (%s); node-level sheds re-routed %llu, "
      "re-route denied %llu",
      static_cast<unsigned long long>(contended_batch.shed429),
      static_cast<unsigned long long>(contended_batch.shed429 + contended_batch.ok200 +
                                      contended_batch.deadline504 + contended_batch.other),
      shed_ok ? "PASS" : "FAIL",
      static_cast<unsigned long long>(final_stats.reroutes_shed),
      static_cast<unsigned long long>(final_stats.reroute_denied)));
  dbench::PrintNote(dbase::StrFormat("all %d nodes served traffic mid-flood: %s", kNodes,
                                     spread_ok ? "PASS" : "FAIL"));
  dbench::PrintNote(dbase::StrFormat(
      "impossible 5 ms deadline on 20 ms remote work: %llu/%llu answered 504 (%s)",
      static_cast<unsigned long long>(impossible.deadline504),
      static_cast<unsigned long long>(impossible_total), deadline_ok ? "PASS" : "FAIL"));
  dbench::PrintNote(dbase::StrFormat(
      "SIGKILLed node%d absorbed: %llu/%llu responses 200 after the kill, "
      "%llu peer-lost re-routes (%s)",
      kNodes - 1, static_cast<unsigned long long>(after_kill.ok200),
      static_cast<unsigned long long>(kill_total),
      static_cast<unsigned long long>(final_stats.reroutes_peer_lost),
      kill_ok ? "PASS" : "FAIL"));

  frontend.Stop();
  cluster.Shutdown();
  for (auto& node : nodes) {
    node.Kill();
  }

  if (const char* strict = std::getenv("DANDELION_CLUSTER_BENCH_STRICT");
      strict != nullptr && strict[0] == '1') {
    return (latency_ok && shed_ok && spread_ok && deadline_ok && kill_ok) ? 0 : 1;
  }
  return 0;
}
