// Engineering microbenchmarks (google-benchmark) for the core primitives:
// queues, data marshalling, memory contexts, DSL parsing, VFS, HTTP
// parsing/sanitizing, matmul, image codecs, SSB operators, and the
// discrete-event simulator. Not a paper figure — regression tracking for
// the substrate the figures are built on.
#include <benchmark/benchmark.h>

#include "src/base/queue.h"
#include "src/base/sharded_queue.h"
#include "src/dsl/graph.h"
#include "src/dsl/parser.h"
#include "src/func/builtins.h"
#include "src/func/data.h"
#include "src/http/http_parser.h"
#include "src/http/sanitizer.h"
#include "src/img/png.h"
#include "src/img/qoi.h"
#include "src/runtime/memory_context.h"
#include "src/sim/event_queue.h"
#include "src/sql/operators.h"
#include "src/sql/ssb_queries.h"
#include "src/vfs/memfs.h"

namespace {

void BM_MpmcQueuePushPop(benchmark::State& state) {
  dbase::MpmcQueue<int> queue;
  for (auto _ : state) {
    queue.Push(1);
    benchmark::DoNotOptimize(queue.TryPop());
  }
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_ShardedQueuePushPop(benchmark::State& state) {
  dbase::ShardedTaskQueue<int> queue(4);
  for (auto _ : state) {
    queue.PushToShard(0, 1);
    benchmark::DoNotOptimize(queue.TryPopLocal(0));
  }
}
BENCHMARK(BM_ShardedQueuePushPop);

// Contended dispatch: every thread pushes and pops, the engines' pattern.
// The single shared queue serializes on one mutex; the sharded queue gives
// each thread its own shard (stealing only when idle).
void BM_MpmcQueueContended(benchmark::State& state) {
  static dbase::MpmcQueue<int>* queue = nullptr;
  if (state.thread_index() == 0) {
    queue = new dbase::MpmcQueue<int>();
  }
  for (auto _ : state) {
    queue->Push(1);
    benchmark::DoNotOptimize(queue->TryPop());
  }
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_MpmcQueueContended)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_ShardedQueueContended(benchmark::State& state) {
  static dbase::ShardedTaskQueue<int>* queue = nullptr;
  if (state.thread_index() == 0) {
    queue = new dbase::ShardedTaskQueue<int>(static_cast<size_t>(state.threads()));
  }
  const auto shard = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    queue->PushToShard(shard, 1);
    benchmark::DoNotOptimize(queue->TryPopLocal(shard));
  }
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_ShardedQueueContended)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_ShardedQueueSteal(benchmark::State& state) {
  dbase::ShardedTaskQueue<int> queue(4);
  for (auto _ : state) {
    queue.PushToShard(1, 1);
    benchmark::DoNotOptimize(queue.TrySteal(0));
  }
}
BENCHMARK(BM_ShardedQueueSteal);

void BM_MarshalSets(benchmark::State& state) {
  dfunc::DataSetList sets;
  sets.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"k", std::string(state.range(0), 'x')}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfunc::MarshalSets(sets));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MarshalSets)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_ContextStoreLoad(benchmark::State& state) {
  auto context = dandelion::MemoryContext::Create(16 << 20, nullptr);
  dfunc::DataSetList sets;
  sets.push_back(dfunc::DataSet{"in", {dfunc::DataItem{"", std::string(state.range(0), 'x')}}});
  for (auto _ : state) {
    (void)(*context)->StoreInputSets(sets);
    benchmark::DoNotOptimize((*context)->LoadInputSets());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContextStoreLoad)->Arg(1024)->Arg(256 * 1024);

void BM_DslParseAndLower(benchmark::State& state) {
  constexpr const char* kDsl = R"(
composition RenderLogs(AccessToken) => HTMLOutput {
  Access(AccessToken = all AccessToken) => (AuthRequest = HTTPRequest);
  HTTP(Request = each AuthRequest) => (AuthResponse = Response);
  FanOut(HTTPResponse = all AuthResponse) => (LogRequests = HTTPRequests);
  HTTP(Request = each LogRequests) => (LogResponses = Response);
  Render(HTTPResponses = all LogResponses) => (HTMLOutput = HTMLOutput);
}
)";
  for (auto _ : state) {
    auto ast = ddsl::ParseSingleComposition(kDsl);
    benchmark::DoNotOptimize(ddsl::CompositionGraph::FromAst(*ast));
  }
}
BENCHMARK(BM_DslParseAndLower);

void BM_VfsWriteRead(benchmark::State& state) {
  dvfs::MemFs fs;
  (void)fs.Mkdir("/d");
  const std::string payload(1024, 'v');
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/d/f" + std::to_string(i++ % 64);
    (void)fs.WriteFile(path, payload);
    benchmark::DoNotOptimize(fs.ReadFile(path));
  }
}
BENCHMARK(BM_VfsWriteRead);

void BM_HttpParseRequest(benchmark::State& state) {
  dhttp::HttpRequest req;
  req.method = dhttp::Method::kPost;
  req.target = "http://svc.internal/path/to/object?v=1";
  req.headers.Add("X-Trace", "abc123");
  req.body = std::string(state.range(0), 'b');
  const std::string wire = req.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dhttp::ParseRequest(wire));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseRequest)->Arg(128)->Arg(64 * 1024);

void BM_SanitizeRequest(benchmark::State& state) {
  dhttp::HttpRequest req;
  req.target = "http://storage.internal/bucket/key";
  const std::string wire = req.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dhttp::SanitizeRequest(wire));
  }
}
BENCHMARK(BM_SanitizeRequest);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = dfunc::MakeMatrix(n, 1);
  const auto b = dfunc::MakeMatrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfunc::MultiplyMatrices(a, b, n));
  }
}
BENCHMARK(BM_Matmul)->Arg(1)->Arg(32)->Arg(128);

void BM_QoiRoundTrip(benchmark::State& state) {
  const dimg::Image image = dimg::MakeTestImage(96, 64, 4, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dimg::QoiDecode(dimg::QoiEncode(image)));
  }
}
BENCHMARK(BM_QoiRoundTrip);

void BM_QoiToPngTranscode(benchmark::State& state) {
  const std::string qoi = dimg::QoiEncode(dimg::MakeTestImage(96, 64, 4, 42));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dimg::TranscodeQoiToPng(qoi));
  }
}
BENCHMARK(BM_QoiToPngTranscode);

void BM_SsbQ11(benchmark::State& state) {
  dsql::SsbConfig config;
  config.lineorder_rows = static_cast<uint64_t>(state.range(0));
  const dsql::SsbData data = dsql::GenerateSsb(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsql::RunQ11(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SsbQ11)->Arg(10000)->Arg(60000);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    dsim::EventQueue queue;
    dsim::FifoServer server(&queue, 4);
    for (int i = 0; i < 1000; ++i) {
      server.Submit(10, nullptr);
    }
    queue.RunAll();
    benchmark::DoNotOptimize(server.total_completed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace

BENCHMARK_MAIN();
