// Figure 8: multiplexing an I/O-intensive application (distributed log
// processing, Fig. 3) with a compute-intensive one (QOI→PNG image
// compression) under bursty load. Paper result: Firecracker is bimodal
// (warm vs. cold) with relative variance of 389%/1495%; Wasmtime lets
// compute hog cooperative threads (log p99 inflates); Dandelion stays
// stable (≈1-3% relative variance) and its controller grows the comm-core
// allocation from 1 to ~4 during the I/O burst.
#include <cstdio>
#include <vector>

#include "src/base/clock.h"
#include "src/base/stats.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/img/png.h"
#include "src/img/qoi.h"
#include "src/policy/elasticity.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

// Measures the real QOI→PNG transcode of the ~18 kB test image on this
// host, to sanity-check the calibrated compute time.
double MeasureTranscodeUs() {
  const dimg::Image image = dimg::MakeTestImage(96, 64, 4, 42);
  const std::string qoi = dimg::QoiEncode(image);
  dbase::Stopwatch watch;
  constexpr int kReps = 10;
  for (int i = 0; i < kReps; ++i) {
    auto png = dimg::TranscodeQoiToPng(qoi);
    if (!png.ok()) {
      return -1.0;
    }
  }
  return static_cast<double>(watch.ElapsedMicros()) / kReps;
}

struct AppSummary {
  double mean_ms = 0;
  double p99_ms = 0;
  double rel_variance = 0;
};

AppSummary Summarize(const dbase::LatencyRecorder& latency) {
  AppSummary out;
  out.mean_ms = latency.Mean();
  out.p99_ms = latency.Percentile(99);
  dbase::OnlineStats stats;
  for (double v : latency.samples()) {
    stats.Add(v);
  }
  out.rel_variance = stats.relative_variance_percent();
  return out;
}

}  // namespace

int main() {
  dbench::PrintHeader("Figure 8: multiplexing log processing (I/O) + image compression (compute)");

  constexpr int kCores = 16;
  constexpr int kLogApp = 1;
  constexpr int kImageApp = 2;
  const dbase::Micros kSegment = 5 * dbase::kMicrosPerSecond;

  // Log processing: two HTTP round-trips (auth, then parallel shard
  // fetches) with light compute — I/O-bound, ~26 ms of latency budget.
  dsim::AppShape log_app;
  log_app.app_id = kLogApp;
  log_app.phases = 2;
  log_app.comm_us = 10500;
  log_app.compute_us = 1200;
  log_app.compute_jitter = 0.05;

  // Image compression: fetch + QOI→PNG transcode + store, compute-bound.
  dsim::AppShape image_app;
  image_app.app_id = kImageApp;
  image_app.phases = 1;
  image_app.comm_us = 4000;
  image_app.compute_us = 13000;
  image_app.compute_jitter = 0.05;

  // Bursty profiles, out of phase with each other (the figure's alternating
  // load waves). Peaks push the node to ~70-80% utilization so cold starts
  // and cooperative-scheduling interference actually queue.
  const std::vector<dsim::RateSegment> log_profile = {
      {kSegment, 90}, {kSegment, 350}, {kSegment, 90}, {kSegment, 300}, {kSegment, 70}};
  const std::vector<dsim::RateSegment> image_profile = {
      {kSegment, 420}, {kSegment, 110}, {kSegment, 480}, {kSegment, 110}, {kSegment, 380}};

  const auto requests = dsim::MergeStreams({dsim::BurstyStream(log_app, log_profile, 0xF18A),
                                            dsim::BurstyStream(image_app, image_profile, 0xF18B)});

  dbench::Table table({"platform", "app", "avg [ms]", "p99 [ms]", "rel. variance [%]"});
  auto add_rows = [&](const char* platform, const dsim::SimMetrics& metrics) {
    for (const auto& [app, label] :
         std::vector<std::pair<int, const char*>>{{kImageApp, "image compression"},
                                                  {kLogApp, "log processing"}}) {
      auto it = metrics.per_app_latency_ms.find(app);
      if (it == metrics.per_app_latency_ms.end()) {
        continue;
      }
      const AppSummary summary = Summarize(it->second);
      table.AddRow({platform, label, dbench::Table::Num(summary.mean_ms, 1),
                    dbench::Table::Num(summary.p99_ms, 1),
                    dbench::Table::Num(summary.rel_variance, 1)});
    }
  };

  // Dandelion with the elasticity control plane (paper's PI policy). A
  // modest green-thread budget per comm core means the I/O burst genuinely
  // needs more comm cores — the controller's job.
  dsim::DandelionSimConfig dandelion;
  dandelion.cores = kCores;
  dandelion.sandbox_us = Calibration::kDandelionKvmX86Us;
  dandelion.enable_controller = true;
  dandelion.comm_parallelism = 8;
  const auto d_metrics = dsim::SimulateDandelion(dandelion, requests);
  add_rows("Dandelion", d_metrics);

  // Firecracker with snapshots, 97% hot (x86 host: ~11 ms serialized
  // restore share, as in Fig. 6).
  auto fc_config = dsim::VmSimConfig::FirecrackerSnapshot(kCores, 0.97);
  fc_config.cold_serial_us = 11 * 1000;
  // Realistic app stacks (OpenCV / HTML templating) demand-page their
  // working set through the first post-restore request.
  fc_config.cold_demand_paging_us = 200 * 1000;
  const auto fc_metrics = dsim::SimulateVmPlatform(fc_config, requests);
  add_rows("Firecracker (97% hot)", fc_metrics);

  // Spin/Wasmtime: per-request instances, slower code, cooperative sharing.
  dsim::WasmtimeSimConfig wt_config;
  wt_config.cores = kCores;
  const auto wt_metrics = dsim::SimulateWasmtime(wt_config, requests);
  add_rows("Wasmtime", wt_metrics);

  table.Print();

  // Controller allocation trace: min/max comm cores over the run.
  int min_comm = kCores;
  int max_comm = 0;
  for (const auto& [t, cores] : d_metrics.comm_core_trace) {
    min_comm = std::min(min_comm, cores);
    max_comm = std::max(max_comm, cores);
  }
  dbench::PrintNote(dbase::StrFormat(
      "Dandelion controller scaled comm cores between %d and %d during the bursts", min_comm,
      max_comm));

  // --- Per-policy section: the same multiplexed bursts under each shipped
  // elasticity policy (src/policy/), with the comm-core range the policy
  // explored. All should hold both apps stable; they differ in how
  // aggressively the allocation chases the bursts.
  dbench::PrintHeader("Figure 8 (policy ablation): same workload, per elasticity policy");
  dbench::Table policy_table({"policy", "app", "avg [ms]", "p99 [ms]",
                              "rel. variance [%]", "comm cores [min-max]"});
  for (auto kind : {dpolicy::PolicyKind::kPaperPi, dpolicy::PolicyKind::kHysteresis,
                    dpolicy::PolicyKind::kConcurrencyTarget}) {
    dsim::DandelionSimConfig config = dandelion;
    config.controller_policy = kind;
    const auto metrics = dsim::SimulateDandelion(config, requests);
    int lo = kCores;
    int hi = 0;
    for (const auto& [t, cores] : metrics.comm_core_trace) {
      lo = std::min(lo, cores);
      hi = std::max(hi, cores);
    }
    const std::string range = dbase::StrFormat("%d-%d", lo, hi);
    for (const auto& [app, label] :
         std::vector<std::pair<int, const char*>>{{kImageApp, "image compression"},
                                                  {kLogApp, "log processing"}}) {
      auto it = metrics.per_app_latency_ms.find(app);
      if (it == metrics.per_app_latency_ms.end()) {
        continue;
      }
      const AppSummary summary = Summarize(it->second);
      policy_table.AddRow({std::string(dpolicy::PolicyKindName(kind)), label,
                           dbench::Table::Num(summary.mean_ms, 1),
                           dbench::Table::Num(summary.p99_ms, 1),
                           dbench::Table::Num(summary.rel_variance, 1), range});
    }
  }
  policy_table.Print();
  const double measured = MeasureTranscodeUs();
  dbench::PrintNote(dbase::StrFormat(
      "real QOI->PNG transcode here: %.1f ms (our encoder emits stored-deflate blocks); the"
      " calibrated %.0f ms matches the paper's OpenCV PNG pipeline with real zlib compression",
      measured / 1000.0, Calibration::kImageCompressUs / 1000.0));
  dbench::PrintNote("paper: D avg 18.2/27.9 ms with 1.3%/2.9% rel. variance; FC avg 20.4/25.6"
                    " ms with 389%/1495%; WT compression avg 53.3 ms, log p99 inflated");
  return 0;
}
