// Figure 10: committed memory over the Azure-trace replay — Firecracker
// pods managed by Knative autoscaling vs. Dandelion creating a context per
// request (process isolation backend). Paper result: Dandelion commits only
// ~4% of Firecracker's average (109 MB vs 2619 MB) and cuts p99 end-to-end
// latency by 46%.
#include <cstdio>

#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/sim/platform_models.h"
#include "src/trace/azure_trace.h"
#include "src/trace/sampler.h"

int main() {
  dbench::PrintHeader("Figure 10: Azure trace, committed memory — FC w/ Knative vs Dandelion");

  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 400;
  trace_config.duration_minutes = 20;
  trace_config.seed = 0xA27BA5E;
  const dtrace::Trace population = dtrace::SynthesizeAzureTrace(trace_config);
  dtrace::SamplerConfig sampler_config;
  sampler_config.target_functions = 100;
  const dtrace::Trace trace = dtrace::SampleTrace(population, sampler_config);

  dsim::TraceSimConfig sim_config;
  const auto knative = dsim::SimulateKnativeFirecrackerTrace(sim_config, trace, /*seed=*/1);
  const auto dandelion = dsim::SimulateDandelionTrace(sim_config, trace, /*seed=*/1);

  // Pooling variants: the PrewarmPolicy-bounded warm pool vs. the naive
  // always-warm envelope (keep every context forever). The gate bounds the
  // pool's memory overhead: policy-driven pooling must stay strictly below
  // naive always-warm on average committed memory.
  dsim::TraceSimConfig pooled_config = sim_config;
  pooled_config.pool_mode = dsim::TraceSimConfig::PoolMode::kPrewarmPolicy;
  const auto pooled = dsim::SimulateDandelionTrace(pooled_config, trace, /*seed=*/1);
  dsim::TraceSimConfig always_config = sim_config;
  always_config.pool_mode = dsim::TraceSimConfig::PoolMode::kAlwaysWarm;
  const auto always_warm = dsim::SimulateDandelionTrace(always_config, trace, /*seed=*/1);

  const dbase::Micros window =
      static_cast<dbase::Micros>(trace.duration_minutes) * 60 * dbase::kMicrosPerSecond;

  dbench::Table timeline({"time_s", "firecracker_knative_mb", "dandelion_mb"});
  const auto fc_series = knative.committed_mb.ResampleStep(30 * dbase::kMicrosPerSecond);
  const auto d_series = dandelion.committed_mb.ResampleStep(30 * dbase::kMicrosPerSecond);
  for (size_t i = 0; i < fc_series.size(); ++i) {
    const double d_value = i < d_series.size() ? d_series[i].value : 0.0;
    timeline.AddRow({dbench::Table::Num(dbase::MicrosToSeconds(fc_series[i].time_us), 0),
                     dbench::Table::Num(fc_series[i].value, 1),
                     dbench::Table::Num(d_value, 1)});
  }
  timeline.Print();

  const double fc_avg = knative.committed_mb.TimeWeightedAverage(window);
  const double d_avg = dandelion.committed_mb.TimeWeightedAverage(window);

  dbench::Table summary({"metric", "FC + Knative", "Dandelion"});
  summary.AddRow({"avg committed [MB]", dbench::Table::Num(fc_avg, 0),
                  dbench::Table::Num(d_avg, 0)});
  summary.AddRow({"peak committed [MB]", dbench::Table::Num(knative.committed_mb.MaxValue(), 0),
                  dbench::Table::Num(dandelion.committed_mb.MaxValue(), 0)});
  summary.AddRow({"p99 latency [ms]",
                  dbench::Table::Num(knative.latency_ms.Percentile(99), 1),
                  dbench::Table::Num(dandelion.latency_ms.Percentile(99), 1)});
  summary.AddRow({"median latency [ms]", dbench::Table::Num(knative.latency_ms.Median(), 1),
                  dbench::Table::Num(dandelion.latency_ms.Median(), 1)});
  summary.AddRow({"cold-start fraction",
                  dbench::Table::Num(knative.ColdFraction() * 100, 1) + "%",
                  dbench::Table::Num(dandelion.ColdFraction() * 100, 1) + "%"});
  summary.Print();

  dbench::Table derived({"metric", "value"});
  derived.AddRow({"Dandelion committed / FC committed",
                  dbench::Table::Num(d_avg / fc_avg * 100.0, 1) + "%"});
  derived.AddRow({"p99 latency reduction",
                  dbench::Table::Num((1.0 - dandelion.latency_ms.Percentile(99) /
                                                 knative.latency_ms.Percentile(99)) * 100.0, 0) +
                      "%"});
  derived.AddRow({"invocations", std::to_string(dandelion.completed)});
  derived.Print();

  dbench::PrintNote("paper: Dandelion commits ~4% of Firecracker's average (109 vs 2619 MB) and"
                    " reduces p99 latency by ~46%; Dandelion cold-starts 100% of requests");

  const double pooled_avg = pooled.committed_mb.TimeWeightedAverage(window);
  const double always_avg = always_warm.committed_mb.TimeWeightedAverage(window);

  dbench::Table pool_summary({"metric", "Dandelion", "D + prewarm pool", "D always-warm"});
  pool_summary.AddRow({"avg committed [MB]", dbench::Table::Num(d_avg, 0),
                       dbench::Table::Num(pooled_avg, 0), dbench::Table::Num(always_avg, 0)});
  pool_summary.AddRow({"peak committed [MB]",
                       dbench::Table::Num(dandelion.committed_mb.MaxValue(), 0),
                       dbench::Table::Num(pooled.committed_mb.MaxValue(), 0),
                       dbench::Table::Num(always_warm.committed_mb.MaxValue(), 0)});
  pool_summary.AddRow({"cold-start fraction",
                       dbench::Table::Num(dandelion.ColdFraction() * 100, 1) + "%",
                       dbench::Table::Num(pooled.ColdFraction() * 100, 1) + "%",
                       dbench::Table::Num(always_warm.ColdFraction() * 100, 1) + "%"});
  pool_summary.AddRow({"p99 latency [ms]",
                       dbench::Table::Num(dandelion.latency_ms.Percentile(99), 1),
                       dbench::Table::Num(pooled.latency_ms.Percentile(99), 1),
                       dbench::Table::Num(always_warm.latency_ms.Percentile(99), 1)});
  pool_summary.Print();

  const bool gate_ok = pooled_avg < always_avg &&
                       pooled.ColdFraction() < dandelion.ColdFraction();
  dbench::PrintNote(gate_ok
                        ? "gate: prewarm-pool avg committed < naive always-warm, and the pool "
                          "cuts cold starts vs per-request contexts — PASS"
                        : "gate: prewarm-pool avg committed < naive always-warm, and the pool "
                          "cuts cold starts vs per-request contexts — FAIL");
  if (!gate_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: pooled avg=%.0f MB, always-warm avg=%.0f MB, pooled cold "
                 "fraction=%.3f, per-request cold fraction=%.3f\n",
                 pooled_avg, always_avg, pooled.ColdFraction(), dandelion.ColdFraction());
    return 1;
  }
  return 0;
}
