// Figure 1: committed memory under Knative autoscaling vs. memory of VMs
// actively serving requests, while replaying a 100-function Azure Functions
// trace sample for 20 minutes. Paper result: Knative commits ~16x more
// memory on average than the active set needs.
//
// Substrate: synthesized Azure-like trace (heavy-tailed popularity, spiky
// arrivals) sampled with the InVitro-style sampler, replayed against the
// calibrated Knative+Firecracker node model (see DESIGN.md).
#include <cstdio>

#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/sim/platform_models.h"
#include "src/trace/azure_trace.h"
#include "src/trace/sampler.h"

int main() {
  dbench::PrintHeader(
      "Figure 1: Azure trace, committed memory w/ Knative autoscaling vs. active VMs");

  // Synthesize a larger population, then sample 100 functions like the
  // paper does with InVitro.
  dtrace::AzureTraceConfig trace_config;
  trace_config.num_functions = 400;
  trace_config.duration_minutes = 20;
  trace_config.seed = 0xA27BA5E;
  const dtrace::Trace population = dtrace::SynthesizeAzureTrace(trace_config);

  dtrace::SamplerConfig sampler_config;
  sampler_config.target_functions = 100;
  const dtrace::Trace trace = dtrace::SampleTrace(population, sampler_config);

  dsim::TraceSimConfig sim_config;
  const auto metrics = dsim::SimulateKnativeFirecrackerTrace(sim_config, trace, /*seed=*/1);

  const dbase::Micros window =
      static_cast<dbase::Micros>(trace.duration_minutes) * 60 * dbase::kMicrosPerSecond;

  // Timeline resampled every 30 s, like the figure's x-axis.
  dbench::Table timeline({"time_s", "committed_mb_knative", "active_mb"});
  const auto committed = metrics.committed_mb.ResampleStep(30 * dbase::kMicrosPerSecond);
  const auto active = metrics.active_mb.ResampleStep(30 * dbase::kMicrosPerSecond);
  for (size_t i = 0; i < committed.size(); ++i) {
    const double active_value = i < active.size() ? active[i].value : 0.0;
    timeline.AddRow({dbench::Table::Num(dbase::MicrosToSeconds(committed[i].time_us), 0),
                     dbench::Table::Num(committed[i].value, 1),
                     dbench::Table::Num(active_value, 1)});
  }
  timeline.Print();

  const double committed_avg = metrics.committed_mb.TimeWeightedAverage(window);
  const double active_avg = metrics.active_mb.TimeWeightedAverage(window);
  dbench::Table summary({"metric", "value"});
  summary.AddRow({"invocations", std::to_string(metrics.completed)});
  summary.AddRow({"committed MB (avg, dotted red line)", dbench::Table::Num(committed_avg, 1)});
  summary.AddRow({"active MB (avg, dotted blue line)", dbench::Table::Num(active_avg, 1)});
  summary.AddRow({"committed / active ratio", dbench::Table::Num(committed_avg / active_avg, 1)});
  summary.AddRow({"cold-start fraction", dbench::Table::Num(metrics.ColdFraction() * 100, 1) + "%"});
  summary.Print();

  dbench::PrintNote("paper: committed ~16x the actively-used memory on average; ~3.3% of"
                    " invocations are cold under Knative autoscaling");
  return 0;
}
