// Figure 2: p99.5 latency vs. offered load for a 128x128 int64 matmul
// running in Firecracker MicroVMs, sweeping the fraction of hot (warm-
// start) requests. Paper result: even a few percent of cold starts blows up
// tail latency by orders of magnitude (log-scale y-axis!), and snapshots
// soften but do not fix it.
#include <cstdio>
#include <vector>

#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

int main() {
  dbench::PrintHeader("Figure 2: 128x128 matmul in Firecracker, p99.5 latency [ms] vs RPS");

  constexpr int kCores = 16;  // Dual-socket E5-2630v3 node.
  const dbase::Micros duration = 6 * dbase::kMicrosPerSecond;

  dsim::AppShape matmul;
  matmul.compute_us = dsim::Calibration::kMatmul128Us;
  matmul.compute_jitter = 0.03;

  struct Config {
    const char* label;
    bool snapshot;
    double hot;
  };
  const std::vector<Config> configs = {
      {"95% hot", false, 0.95},          {"97% hot", false, 0.97},
      {"99% hot", false, 0.99},          {"100% hot", false, 1.00},
      {"Snapshot 95% hot", true, 0.95},  {"Snapshot 97% hot", true, 0.97},
      {"Snapshot 99% hot", true, 0.99},
  };

  std::vector<std::string> columns = {"RPS"};
  for (const auto& config : configs) {
    columns.push_back(config.label);
  }
  dbench::Table table(columns);

  for (double rps : {250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0}) {
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};
    const auto requests =
        dsim::PoissonStream(matmul, rps, duration, 0xF16002 + static_cast<uint64_t>(rps));
    for (const auto& config : configs) {
      auto vm_config = config.snapshot
                           ? dsim::VmSimConfig::FirecrackerSnapshot(kCores, config.hot)
                           : dsim::VmSimConfig::FirecrackerFresh(kCores, config.hot);
      const auto metrics = dsim::SimulateVmPlatform(vm_config, requests);
      const double p995 = metrics.latency_ms.Percentile(99.5);
      // An overloaded configuration never drains; cap the report like the
      // figure's clipped curves.
      row.push_back(p995 > 2000.0 ? ">2000" : dbench::Table::Num(p995, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote("paper: at 97% hot, p99.5 sits orders of magnitude above the 100%-hot"
                    " curve (boot-on-critical-path); snapshots shift, not remove, the wall");
  return 0;
}
