// Figure 2: p99.5 latency vs. offered load for a 128x128 int64 matmul
// running in Firecracker MicroVMs, sweeping the fraction of hot (warm-
// start) requests. Paper result: even a few percent of cold starts blows up
// tail latency by orders of magnitude (log-scale y-axis!), and snapshots
// soften but do not fix it.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/benchutil/table.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

int main() {
  dbench::PrintHeader("Figure 2: 128x128 matmul in Firecracker, p99.5 latency [ms] vs RPS");

  constexpr int kCores = 16;  // Dual-socket E5-2630v3 node.
  const dbase::Micros duration = 6 * dbase::kMicrosPerSecond;

  dsim::AppShape matmul;
  matmul.compute_us = dsim::Calibration::kMatmul128Us;
  matmul.compute_jitter = 0.03;

  struct Config {
    const char* label;
    bool snapshot;
    double hot;
  };
  const std::vector<Config> configs = {
      {"95% hot", false, 0.95},          {"97% hot", false, 0.97},
      {"99% hot", false, 0.99},          {"100% hot", false, 1.00},
      {"Snapshot 95% hot", true, 0.95},  {"Snapshot 97% hot", true, 0.97},
      {"Snapshot 99% hot", true, 0.99},
  };

  std::vector<std::string> columns = {"RPS"};
  for (const auto& config : configs) {
    columns.push_back(config.label);
  }
  dbench::Table table(columns);

  for (double rps : {250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0}) {
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};
    const auto requests =
        dsim::PoissonStream(matmul, rps, duration, 0xF16002 + static_cast<uint64_t>(rps));
    for (const auto& config : configs) {
      auto vm_config = config.snapshot
                           ? dsim::VmSimConfig::FirecrackerSnapshot(kCores, config.hot)
                           : dsim::VmSimConfig::FirecrackerFresh(kCores, config.hot);
      const auto metrics = dsim::SimulateVmPlatform(vm_config, requests);
      const double p995 = metrics.latency_ms.Percentile(99.5);
      // An overloaded configuration never drains; cap the report like the
      // figure's clipped curves.
      row.push_back(p995 > 2000.0 ? ">2000" : dbench::Table::Num(p995, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote("paper: at 97% hot, p99.5 sits orders of magnitude above the 100%-hot"
                    " curve (boot-on-critical-path); snapshots shift, not remove, the wall");

  // ---- Addendum: Dandelion pre-warmed sandbox pool --------------------------
  // The same matmul through the Dandelion node model (process backend, the
  // costliest sandbox), three ways: every request cold (the paper's
  // per-request model), the PrewarmPolicy-driven warm pool, and an
  // always-warm oracle (sandbox cost fully hidden). The gate locks the
  // pool's value in: steady-state p99 with the pool must sit within 3x the
  // warm-start latency, i.e. pool misses must be rare enough that the
  // fork+load cost stays off the tail.
  dbench::PrintHeader("Fig 2 addendum: Dandelion warm pool, steady-state latency [ms]");

  const dbase::Micros pool_duration = 8 * dbase::kMicrosPerSecond;
  // Gate on the second half only: the EWMA needs a few ticks to warm the
  // shelf, and the gate is about steady state, not the first cold burst.
  const dbase::Micros steady_after = 3 * dbase::kMicrosPerSecond;

  dsim::DandelionSimConfig pool_base;
  pool_base.cores = kCores;
  pool_base.sandbox_us = dsim::Calibration::kDandelionProcessX86Us;
  pool_base.enable_controller = false;  // Pure compute: no comm cores to trade.
  pool_base.latency_record_after_us = steady_after;

  dsim::DandelionSimConfig pooled = pool_base;
  pooled.enable_prewarm_pool = true;
  pooled.prewarm_tick_us = 30 * dbase::kMicrosPerMilli;
  pooled.prewarm.provision_window_us = 250 * dbase::kMicrosPerMilli;
  pooled.prewarm_max_depth = kCores;
  pooled.prewarm_max_total = 2 * kCores;

  dsim::DandelionSimConfig warm_oracle = pool_base;
  warm_oracle.sandbox_us = 0;

  dbench::Table pool_table(
      {"RPS", "cold-every-request p99", "warm pool p99", "always-warm p99",
       "pool cold fraction"});
  bool gate_ok = true;
  double worst_ratio = 0.0;
  for (double rps : {500.0, 1000.0, 2000.0}) {
    const auto requests = dsim::PoissonStream(matmul, rps, pool_duration,
                                              0xF16002 + static_cast<uint64_t>(rps));
    const auto cold = dsim::SimulateDandelion(pool_base, requests);
    const auto warm_pool = dsim::SimulateDandelion(pooled, requests);
    const auto oracle = dsim::SimulateDandelion(warm_oracle, requests);
    const double pool_p99 = warm_pool.latency_ms.Percentile(99);
    const double oracle_p99 = oracle.latency_ms.Percentile(99);
    pool_table.AddRow({dbench::Table::Num(rps, 0),
                       dbench::Table::Num(cold.latency_ms.Percentile(99), 2),
                       dbench::Table::Num(pool_p99, 2),
                       dbench::Table::Num(oracle_p99, 2),
                       dbench::Table::Num(warm_pool.ColdFraction() * 100, 1) + "%"});
    const double ratio = oracle_p99 > 0 ? pool_p99 / oracle_p99 : 0.0;
    worst_ratio = std::max(worst_ratio, ratio);
    if (ratio > 3.0) {
      gate_ok = false;
    }
  }
  pool_table.Print();

  dbench::PrintNote(gate_ok
                        ? "gate: warm-pool steady-state p99 <= 3x warm-start p99 — PASS"
                        : "gate: warm-pool steady-state p99 <= 3x warm-start p99 — FAIL");
  if (!gate_ok) {
    std::fprintf(stderr, "GATE FAILED: warm-pool p99 is %.2fx the warm-start p99 (limit 3x)\n",
                 worst_ratio);
    return 1;
  }
  return 0;
}
