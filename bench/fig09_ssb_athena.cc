// Figure 9: Star Schema Benchmark queries — latency and cost on Dandelion
// (real execution: this repository's columnar engine running as parallel
// sandboxed compute functions over a simulated S3) vs. AWS Athena (cost/
// latency model: per-query planning overhead + per-byte scan pricing).
// Paper result: ~40% lower latency and ~67% lower cost for short queries.
//
// Our dataset is scaled down from the paper's ~700 MB; the table reports
// both the measured numbers at this scale and the 700 MB-equivalent
// projection (linear scan scaling), which is what the paper's bars show.
#include <cstdio>
#include <vector>

#include "src/apps/ssb_app.h"
#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/runtime/platform.h"
#include "src/sql/ssb_queries.h"

namespace {

// Athena model: queuing excluded (like the paper), planning/startup
// overhead + scan at an effective rate, billed per byte scanned.
constexpr double kAthenaOverheadMs = 1900.0;
constexpr double kAthenaScanMbPerSec = 550.0;
constexpr double kAthenaUsdPerTb = 5.0;

// Dandelion's cost model: EC2 m7a.8xlarge on-demand (the paper's host),
// billed for the query's wall time.
constexpr double kEc2UsdPerHour = 1.8514;

constexpr double kTargetMb = 700.0;  // The paper's input size.

}  // namespace

int main() {
  dbench::PrintHeader("Figure 9: SSB query latency and cost, Dandelion vs Athena (700MB-equiv)");

  constexpr int kWorkers = 16;
  constexpr int kPaperCores = 32;  // m7a.8xlarge vCPUs in the paper.

  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = kWorkers;
  platform_config.initial_comm_workers = 2;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  platform_config.enable_control_plane = true;
  dandelion::Platform platform(platform_config);

  dapps::SsbAppConfig app_config;
  app_config.data.lineorder_rows = 150000;
  app_config.data.customer_rows = 1500;
  app_config.data.supplier_rows = 500;
  app_config.data.part_rows = 1000;
  app_config.partitions = 14;
  auto handle = dapps::InstallSsbApp(platform, app_config);
  if (!handle.ok()) {
    std::fprintf(stderr, "install: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  const double dataset_mb = static_cast<double>(handle->stored_bytes) / (1024.0 * 1024.0);

  // A second platform with a ~2% dataset isolates the data-independent
  // overhead (composition dispatch, sandbox creation, S3 round-trips) from
  // the scan work, so the 700 MB projection only scales the scan part.
  dandelion::Platform tiny_platform(platform_config);
  dapps::SsbAppConfig tiny_config = app_config;
  tiny_config.data.lineorder_rows = 3000;
  auto tiny_handle = dapps::InstallSsbApp(tiny_platform, tiny_config);
  if (!tiny_handle.ok()) {
    std::fprintf(stderr, "tiny install: %s\n", tiny_handle.status().ToString().c_str());
    return 1;
  }

  dbench::Table table({"query", "D measured [ms]", "D fixed [ms]", "D @700MB [ms]",
                       "Athena @700MB [ms]", "D cost [c]", "Athena cost [c]"});

  double d_latency_sum = 0;
  double athena_latency_sum = 0;
  double d_cost_sum = 0;
  double athena_cost_sum = 0;

  for (int query_id : dsql::SsbQueryIds()) {
    // Warm the code paths once (the paper's numbers exclude first-run JIT
    // effects; ours exclude first-touch page faults).
    (void)dapps::RunSsbQuery(platform, *handle, query_id);
    (void)dapps::RunSsbQuery(tiny_platform, *tiny_handle, query_id);

    dbase::Stopwatch tiny_watch;
    auto tiny_csv = dapps::RunSsbQuery(tiny_platform, *tiny_handle, query_id);
    const double fixed_ms = tiny_watch.ElapsedMillis();

    dbase::Stopwatch watch;
    auto csv = dapps::RunSsbQuery(platform, *handle, query_id);
    const double measured_ms = watch.ElapsedMillis();
    if (!csv.ok() || !tiny_csv.ok()) {
      std::fprintf(stderr, "%s failed\n", dsql::SsbQueryName(query_id).c_str());
      return 1;
    }

    // Effective scan throughput of this run, normalized to the paper's
    // 32-core instance (scan work parallelizes across partitions).
    const double scan_ms = std::max(1.0, measured_ms - fixed_ms);
    const double mb_per_sec = dataset_mb / (scan_ms / 1000.0);
    const double mb_per_sec_32 = mb_per_sec * static_cast<double>(kPaperCores) / kWorkers;
    const double d_ms_700 = fixed_ms + kTargetMb / mb_per_sec_32 * 1000.0;

    const double athena_ms_700 = kAthenaOverheadMs + kTargetMb / kAthenaScanMbPerSec * 1000.0;
    const double d_cost_cents = d_ms_700 / 1000.0 * (kEc2UsdPerHour / 3600.0) * 100.0;
    const double athena_cost_cents =
        kTargetMb / (1024.0 * 1024.0) * kAthenaUsdPerTb * 100.0;

    d_latency_sum += d_ms_700;
    athena_latency_sum += athena_ms_700;
    d_cost_sum += d_cost_cents;
    athena_cost_sum += athena_cost_cents;

    table.AddRow({dsql::SsbQueryName(query_id), dbench::Table::Num(measured_ms, 1),
                  dbench::Table::Num(fixed_ms, 1), dbench::Table::Num(d_ms_700, 0),
                  dbench::Table::Num(athena_ms_700, 0), dbench::Table::Num(d_cost_cents, 2),
                  dbench::Table::Num(athena_cost_cents, 2)});
  }
  table.Print();

  dbench::Table summary({"metric", "value"});
  summary.AddRow({"dataset (this run)", dbase::StrFormat("%.1f MB x %d partitions", dataset_mb,
                                                         handle->partitions)});
  summary.AddRow({"latency reduction vs Athena",
                  dbench::Table::Num((1.0 - d_latency_sum / athena_latency_sum) * 100.0, 0) + "%"});
  summary.AddRow({"cost reduction vs Athena",
                  dbench::Table::Num((1.0 - d_cost_sum / athena_cost_sum) * 100.0, 0) + "%"});
  summary.Print();

  dbench::PrintNote("queries really execute (filter/join/aggregate/sort over partitioned"
                    " lineorder in sandboxed functions); S3 + Athena are calibrated models");
  dbench::PrintNote("paper: ~40% lower latency and ~67% lower cost than Athena at 700 MB");
  return 0;
}
