// Figure 6: median latency (with p5/p95 error bars) vs. offered load for a
// 128x128 int64 matmul on a 16-core server. Dandelion cold-starts every
// request (3% of binary loads miss the in-memory cache); Firecracker runs
// 97% hot; Wasmtime creates an instance per request but executes ~2x slower
// code. Paper result: D-KVM stays flat to ~4800 RPS; FC saturates ~3000
// (snapshots) with cold-start spread; WT saturates ~2600.
#include <cstdio>
#include <vector>

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/sim/calibration.h"
#include "src/sim/platform_models.h"
#include "src/sim/workload.h"

namespace {

using dsim::Calibration;

// Measures the real 128x128 int64 matmul on this host — anchors the
// simulated execution time (the note reports both).
double MeasureRealMatmulUs() {
  const int n = 128;
  const auto a = dfunc::MakeMatrix(n, 1);
  const auto b = dfunc::MakeMatrix(n, 2);
  dbase::Stopwatch watch;
  constexpr int kReps = 20;
  int64_t sink = 0;
  for (int i = 0; i < kReps; ++i) {
    sink += dfunc::MultiplyMatrices(a, b, n)[0];
  }
  const double us = static_cast<double>(watch.ElapsedMicros()) / kReps;
  return sink == INT64_MIN ? 0.0 : us;  // Keep the result alive.
}

std::string Cell(const dbase::LatencyRecorder& latency) {
  if (latency.empty()) {
    return "-";
  }
  const double median = latency.Median();
  if (median > 2000.0) {
    return ">2000";
  }
  return dbench::Table::Num(median, 2) + " [" + dbench::Table::Num(latency.Percentile(5), 2) +
         "/" + dbench::Table::Num(latency.Percentile(95), 2) + "]";
}

}  // namespace

int main() {
  dbench::PrintHeader(
      "Figure 6: 128x128 matmul on 16 cores, median [p5/p95] latency [ms] vs RPS");

  constexpr int kCores = 16;
  const dbase::Micros duration = 4 * dbase::kMicrosPerSecond;
  const double real_matmul_us = MeasureRealMatmulUs();

  dsim::AppShape matmul;
  matmul.compute_us = Calibration::kMatmul128Us;
  matmul.compute_jitter = 0.05;

  dbench::Table table({"RPS", "D kvm", "D process", "D rwasm", "FC (97% hot)",
                       "FC snapshot (97% hot)", "Wasmtime"});

  for (double rps : {500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0, 4500.0,
                     5000.0}) {
    const auto requests =
        dsim::PoissonStream(matmul, rps, duration, 0xF166 + static_cast<uint64_t>(rps));
    std::vector<std::string> row = {dbench::Table::Num(rps, 0)};

    for (dbase::Micros sandbox_us :
         {Calibration::kDandelionKvmX86Us, Calibration::kDandelionProcessX86Us}) {
      dsim::DandelionSimConfig config;
      config.cores = kCores;
      config.sandbox_us = sandbox_us;
      config.enable_controller = true;
      row.push_back(Cell(dsim::SimulateDandelion(config, requests).latency_ms));
    }
    {
      // rWasm: cheap isolation, but the transpiled matmul runs slower.
      dsim::DandelionSimConfig config;
      config.cores = kCores;
      config.sandbox_us = Calibration::kDandelionRwasmX86Us;
      config.compute_slowdown = 2.4;
      config.enable_controller = true;
      row.push_back(Cell(dsim::SimulateDandelion(config, requests).latency_ms));
    }
    {
      auto fresh = dsim::VmSimConfig::FirecrackerFresh(kCores, 0.97);
      row.push_back(Cell(dsim::SimulateVmPlatform(fresh, requests).latency_ms));
      auto snapshot = dsim::VmSimConfig::FirecrackerSnapshot(kCores, 0.97);
      // On the 16-core x86 host the serialized share of snapshot restore is
      // larger than on Morello (~11 ms) — this is what pins the paper's
      // saturation knee at ~3000 RPS with 3% cold.
      snapshot.cold_serial_us = 11 * 1000;
      row.push_back(Cell(dsim::SimulateVmPlatform(snapshot, requests).latency_ms));
    }
    {
      dsim::WasmtimeSimConfig config;
      config.cores = kCores;
      row.push_back(Cell(dsim::SimulateWasmtime(config, requests).latency_ms));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  dbench::PrintNote(dbase::StrFormat(
      "simulated matmul execution = %lld us (calibration); real matmul on this host = %.0f us",
      static_cast<long long>(Calibration::kMatmul128Us), real_matmul_us));
  dbench::PrintNote("paper: D-KVM flat to ~4800 RPS; FC-snapshot saturates ~3000 with wide"
                    " p5/p95 from cold starts; WT ~2600 RPS from slower generated code");
  return 0;
}
