// Invocation-API overload behavior: offered load ≥ 2× compute capacity,
// split into interactive and batch classes. Demonstrates that
//   (a) per-class admission control sheds excess batch load with 429
//       instead of queueing blindly,
//   (b) requests that carry deadlines answer 504 near the deadline instead
//       of waiting out the backlog, and
//   (c) the interactive class's p99 stays within 2× of its uncontended
//       value while a batch flood is running — the engine queues'
//       urgent lane at work.
//
// Gate (advisory; strict with DANDELION_OVERLOAD_BENCH_STRICT=1):
// interactive p99 under overload ≤ 2× uncontended, ≥ 1 shed 429, and every
// impossible-deadline request answered 504.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/string_util.h"
#include "src/benchutil/table.h"
#include "src/func/builtins.h"
#include "src/http/http_parser.h"
#include "src/runtime/fault.h"
#include "src/runtime/frontend.h"
#include "src/runtime/platform.h"

namespace {

// --------------------------------------------------------------- client

struct ClientStats {
  std::vector<dbase::Micros> latencies_us;  // Of 200 responses only.
  uint64_t ok200 = 0;
  uint64_t shed429 = 0;
  uint64_t deadline504 = 0;
  uint64_t other = 0;
  uint64_t transport_errors = 0;

  void Merge(const ClientStats& other_stats) {
    latencies_us.insert(latencies_us.end(), other_stats.latencies_us.begin(),
                        other_stats.latencies_us.end());
    ok200 += other_stats.ok200;
    shed429 += other_stats.shed429;
    deadline504 += other_stats.deadline504;
    other += other_stats.other;
    transport_errors += other_stats.transport_errors;
  }
};

int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  int nodelay = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = write(fd, data.data() + offset, data.size() - offset);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

// Reads one complete HTTP response; returns its status code or -1.
int ReadOneStatus(int fd, std::string* carry) {
  char buffer[8192];
  while (true) {
    auto head = dhttp::ScanMessageHead(*carry, 1 << 20);
    if (!head.ok()) {
      return -1;
    }
    if (head->has_value()) {
      const size_t total =
          (*head)->head_bytes + static_cast<size_t>((*head)->content_length);
      if (carry->size() >= total) {
        auto response = dhttp::ParseResponse(std::string_view(*carry).substr(0, total));
        carry->erase(0, total);
        return response.ok() ? response->status_code : -1;
      }
    }
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      return -1;
    }
    carry->append(buffer, static_cast<size_t>(n));
  }
}

// A closed-loop keep-alive client: one request in flight, `requests` total.
ClientStats RunClient(uint16_t port, const std::string& wire, int requests) {
  ClientStats stats;
  int fd = ConnectTo(port);
  std::string carry;
  for (int i = 0; i < requests; ++i) {
    if (fd < 0) {
      fd = ConnectTo(port);
      carry.clear();
      if (fd < 0) {
        ++stats.transport_errors;
        continue;
      }
    }
    const dbase::Stopwatch watch;
    if (!SendAll(fd, wire)) {
      close(fd);
      fd = -1;
      ++stats.transport_errors;
      continue;
    }
    const int status = ReadOneStatus(fd, &carry);
    switch (status) {
      case 200:
        stats.latencies_us.push_back(watch.ElapsedMicros());
        ++stats.ok200;
        break;
      case 429:
        ++stats.shed429;
        break;
      case 504:
        ++stats.deadline504;
        break;
      case -1:
        close(fd);
        fd = -1;
        ++stats.transport_errors;
        break;
      default:
        ++stats.other;
    }
  }
  if (fd >= 0) {
    close(fd);
  }
  return stats;
}

ClientStats RunClientFleet(uint16_t port, const std::string& wire, int clients,
                           int requests_per_client) {
  std::vector<ClientStats> results(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] { results[static_cast<size_t>(c)] =
                                      RunClient(port, wire, requests_per_client); });
  }
  for (auto& t : threads) {
    t.join();
  }
  ClientStats merged;
  for (const auto& r : results) {
    merged.Merge(r);
  }
  return merged;
}

dbase::Micros Percentile(std::vector<dbase::Micros> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1,
                       p / 100.0 * static_cast<double>(values.size())));
  return values[index];
}

std::string InvokeWire(const std::string& composition,
                       const std::vector<std::pair<std::string, std::string>>& headers) {
  dhttp::HttpRequest request;
  request.method = dhttp::Method::kPost;
  request.target = "/invoke/" + composition;
  request.headers.Add("X-Dandelion-Raw", "1");
  for (const auto& [name, value] : headers) {
    request.headers.Add(name, value);
  }
  request.body = "x";
  return request.Serialize();
}

}  // namespace

int main() {
  // Fixed-size engine pool so "2× capacity" means the same thing on every
  // machine: 4 workers → 3 compute engines; the 2 ms work function caps
  // compute capacity at ~1500 req/s, while the client fleet below offers a
  // concurrency of 28 closed-loop connections (≫ 2× capacity).
  constexpr int kWorkers = 4;
  constexpr int kInteractiveConns = 4;
  constexpr int kBatchConns = 24;
  constexpr dbase::Micros kWorkSpinUs = 2 * dbase::kMicrosPerMilli;
  constexpr dbase::Micros kSlowSpinUs = 20 * dbase::kMicrosPerMilli;

  int per_conn = 200;
  if (const char* env = std::getenv("DANDELION_OVERLOAD_BENCH_REQUESTS")) {
    uint64_t parsed = 0;
    if (dbase::ParseUint64(env, &parsed) && parsed > 0) {
      per_conn = static_cast<int>(parsed);
    }
  }

  dbench::PrintHeader("Invocation API under overload: 429 shedding, 504 deadlines, "
                      "interactive-vs-batch latency");
  dbench::PrintNote(dbase::StrFormat(
      "%d engine workers (%d compute), %lld us work function, %d interactive + %d batch "
      "closed-loop connections, %d requests per connection; batch in-flight cap 8",
      kWorkers, kWorkers - 1, static_cast<long long>(kWorkSpinUs), kInteractiveConns,
      kBatchConns, per_conn));

  dandelion::PlatformConfig platform_config;
  platform_config.num_workers = kWorkers;
  platform_config.backend = dandelion::IsolationBackend::kThread;
  platform_config.sleep_for_modeled_latency = false;
  dandelion::Platform platform(platform_config);
  const auto spin_body = [](dbase::Micros spin_us) {
    return [spin_us](dfunc::FunctionCtx& ctx) {
      const dbase::Micros until = dbase::MonotonicClock::Get()->NowMicros() + spin_us;
      while (dbase::MonotonicClock::Get()->NowMicros() < until && !ctx.cancelled()) {
        // Busy work with a cancellation poll, like a well-behaved function.
      }
      ctx.EmitOutput("out", "done");
      return dbase::OkStatus();
    };
  };
  if (!platform
           .RegisterFunction({.name = "work", .body = spin_body(kWorkSpinUs),
                              .context_bytes = 1 << 20, .binary_bytes = 0})
           .ok() ||
      !platform
           .RegisterFunction({.name = "slowwork", .body = spin_body(kSlowSpinUs),
                              .context_bytes = 1 << 20, .binary_bytes = 0})
           .ok() ||
      !platform
           .RegisterCompositionDsl(R"(
composition Work(in) => out { work(in = all in) => (out = out); }
composition SlowWork(in) => out { slowwork(in = all in) => (out = out); }
)")
           .ok()) {
    std::fprintf(stderr, "composition setup failed\n");
    return 1;
  }

  dandelion::FrontendConfig frontend_config;
  frontend_config.max_inflight_interactive = 64;  // Interactive is never shed here.
  frontend_config.max_inflight_batch = 8;         // Batch floods are.
  dandelion::HttpFrontend frontend(&platform, frontend_config);
  if (const dbase::Status started = frontend.Start(); !started.ok()) {
    dbench::PrintNote("SKIPPED: loopback sockets unavailable: " + started.ToString());
    return 0;
  }

  const std::string interactive_wire =
      InvokeWire("Work", {{"X-Dandelion-Priority", "interactive"}});
  // Admitted batch requests carry a 100 ms deadline: whatever the backlog
  // cannot serve in time answers 504 instead of rotting in the queue.
  const std::string batch_wire = InvokeWire(
      "Work", {{"X-Dandelion-Priority", "batch"}, {"X-Dandelion-Deadline-Ms", "100"}});
  const std::string impossible_wire =
      InvokeWire("SlowWork", {{"X-Dandelion-Deadline-Ms", "5"}});

  // Warm-up: prime engines, context pool, and the loopback path.
  RunClientFleet(frontend.port(), interactive_wire, kInteractiveConns,
                 std::max(1, per_conn / 10));

  // Phase 1 — uncontended interactive baseline.
  const ClientStats uncontended =
      RunClientFleet(frontend.port(), interactive_wire, kInteractiveConns, per_conn);
  const dbase::Micros base_p50 = Percentile(uncontended.latencies_us, 50);
  const dbase::Micros base_p99 = Percentile(uncontended.latencies_us, 99);

  // Phase 2 — overload: the same interactive fleet with a 24-connection
  // batch flood behind it.
  ClientStats contended_interactive;
  ClientStats contended_batch;
  {
    std::thread batch_thread([&] {
      contended_batch =
          RunClientFleet(frontend.port(), batch_wire, kBatchConns, per_conn);
    });
    // Let the flood establish itself before measuring interactive latency.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    contended_interactive =
        RunClientFleet(frontend.port(), interactive_wire, kInteractiveConns, per_conn);
    batch_thread.join();
  }
  const dbase::Micros load_p50 = Percentile(contended_interactive.latencies_us, 50);
  const dbase::Micros load_p99 = Percentile(contended_interactive.latencies_us, 99);

  // Phase 3 — impossible deadlines: every request must answer 504 around
  // the 5 ms deadline, not the 20 ms execution.
  const ClientStats impossible =
      RunClientFleet(frontend.port(), impossible_wire, kInteractiveConns,
                     std::max(1, per_conn / 10));

  // Phase 4 — chaos: 1% of compute launches synthesize a sandbox-level
  // failure (kResourceExhausted via the fault injector). The dispatcher's
  // retry policy must absorb every injected fault within its budget — no
  // crash-kind failure may escape to the client as a 5xx — and the
  // interactive p99 must stay within 2× of the no-fault baseline.
  const dandelion::DispatcherStats before_chaos = platform.dispatcher_stats();
  dandelion::FaultInjector::Get().Arm(
      dandelion::FaultPoint::kTransientResourceExhausted,
      dandelion::FaultPlan{.every_n = 100});
  const ClientStats chaos =
      RunClientFleet(frontend.port(), interactive_wire, kInteractiveConns, per_conn);
  // Count injected faults from the injector itself: the dispatcher's
  // sandbox_failures delta can be polluted by phase-3 deadline-kill
  // outcomes that land asynchronously after before_chaos was captured.
  uint64_t chaos_faults = 0;
  for (const auto& snap : dandelion::FaultInjector::Get().Snapshot()) {
    if (snap.point == dandelion::FaultPoint::kTransientResourceExhausted) {
      chaos_faults = snap.fired;
    }
  }
  dandelion::FaultInjector::Get().Reset();
  const dandelion::DispatcherStats after_chaos = platform.dispatcher_stats();
  const dbase::Micros chaos_p99 = Percentile(chaos.latencies_us, 99);
  const uint64_t chaos_retries =
      after_chaos.retries_attempted - before_chaos.retries_attempted;

  dbench::Table table({"phase", "class", "requests", "200", "429", "504", "other",
                       "p50_ms", "p99_ms"});
  const auto row = [&table](const char* phase, const char* klass, const ClientStats& s) {
    const uint64_t total =
        s.ok200 + s.shed429 + s.deadline504 + s.other + s.transport_errors;
    table.AddRow({phase, klass, std::to_string(total), std::to_string(s.ok200),
                  std::to_string(s.shed429), std::to_string(s.deadline504),
                  std::to_string(s.other + s.transport_errors),
                  dbench::Table::Num(dbase::MicrosToMillis(Percentile(s.latencies_us, 50))),
                  dbench::Table::Num(dbase::MicrosToMillis(Percentile(s.latencies_us, 99)))});
  };
  row("uncontended", "interactive", uncontended);
  row("overload", "interactive", contended_interactive);
  row("overload", "batch", contended_batch);
  row("impossible-deadline", "interactive", impossible);
  row("chaos-1pct-faults", "interactive", chaos);
  table.Print();

  // Surface the new dispatcher lifecycle counters in the bench JSON, so
  // trajectory tracking sees cancellations/deadline kills per run.
  const dandelion::DispatcherStats dispatcher = platform.dispatcher_stats();
  const dandelion::EngineStats engine = platform.engine_stats();
  dbench::Table counters({"counter", "value"});
  const auto counter = [&counters](const char* name, uint64_t value) {
    counters.AddRow({name, std::to_string(value)});
  };
  counter("invocations_started", dispatcher.invocations_started);
  counter("invocations_completed", dispatcher.invocations_completed);
  counter("invocations_cancelled", dispatcher.invocations_cancelled);
  counter("invocations_deadline_exceeded", dispatcher.invocations_deadline_exceeded);
  counter("inflight_interactive", dispatcher.inflight_interactive);
  counter("inflight_batch", dispatcher.inflight_batch);
  counter("compute_instances", dispatcher.compute_instances);
  counter("engine_compute_aborted", engine.compute_aborted);
  counter("sandbox_failures", dispatcher.sandbox_failures);
  counter("retries_attempted", dispatcher.retries_attempted);
  counter("retries_denied", dispatcher.retries_denied);
  counter("breaker_fast_fails", dispatcher.breaker_fast_fails);
  counter("chaos_injected_faults", chaos_faults);
  counter("chaos_retries", chaos_retries);
  counters.Print();

  const double p99_ratio =
      base_p99 > 0 ? static_cast<double>(load_p99) / static_cast<double>(base_p99) : 0.0;
  const bool latency_ok = p99_ratio > 0 && p99_ratio <= 2.0;
  const bool shed_ok = contended_batch.shed429 > 0;
  const uint64_t impossible_total = impossible.ok200 + impossible.shed429 +
                                    impossible.deadline504 + impossible.other +
                                    impossible.transport_errors;
  const bool deadline_ok =
      impossible_total > 0 && impossible.deadline504 == impossible_total;
  dbench::PrintNote(dbase::StrFormat(
      "interactive p99 %.2f ms uncontended -> %.2f ms under overload (%.2fx; gate <= 2x): "
      "%s",
      dbase::MicrosToMillis(base_p99), dbase::MicrosToMillis(load_p99), p99_ratio,
      latency_ok ? "PASS" : "FAIL"));
  dbench::PrintNote(dbase::StrFormat("batch flood shed with 429: %llu of %llu (%s)",
                                     static_cast<unsigned long long>(contended_batch.shed429),
                                     static_cast<unsigned long long>(
                                         contended_batch.shed429 + contended_batch.ok200 +
                                         contended_batch.deadline504 + contended_batch.other),
                                     shed_ok ? "PASS" : "FAIL"));
  dbench::PrintNote(dbase::StrFormat(
      "impossible 5 ms deadline on 20 ms work: %llu/%llu answered 504 (%s); "
      "interactive p50 %.2f -> %.2f ms",
      static_cast<unsigned long long>(impossible.deadline504),
      static_cast<unsigned long long>(impossible_total), deadline_ok ? "PASS" : "FAIL",
      dbase::MicrosToMillis(base_p50), dbase::MicrosToMillis(load_p50)));

  // Chaos gates: the p99 must not fall off a cliff under a 1% fault rate,
  // and every injected fault must be absorbed by the retry budget (every
  // chaos response is a 200 — a single transient can never exhaust the
  // interactive budget, so any 5xx here is a retry-path bug).
  const double chaos_ratio =
      base_p99 > 0 ? static_cast<double>(chaos_p99) / static_cast<double>(base_p99) : 0.0;
  const bool chaos_latency_ok = chaos_ratio > 0 && chaos_ratio <= 2.0;
  const uint64_t chaos_total = chaos.ok200 + chaos.shed429 + chaos.deadline504 +
                               chaos.other + chaos.transport_errors;
  const bool chaos_contained_ok =
      chaos_total > 0 && chaos.ok200 == chaos_total && chaos_faults > 0 &&
      chaos_retries >= chaos_faults;
  dbench::PrintNote(dbase::StrFormat(
      "chaos (1%% injected sandbox faults): %llu faults absorbed by %llu retries, "
      "%llu/%llu responses 200, p99 %.2f ms (%.2fx of no-fault; gate <= 2x): %s",
      static_cast<unsigned long long>(chaos_faults),
      static_cast<unsigned long long>(chaos_retries),
      static_cast<unsigned long long>(chaos.ok200),
      static_cast<unsigned long long>(chaos_total), dbase::MicrosToMillis(chaos_p99),
      chaos_ratio, (chaos_latency_ok && chaos_contained_ok) ? "PASS" : "FAIL"));

  if (const char* strict = std::getenv("DANDELION_OVERLOAD_BENCH_STRICT");
      strict != nullptr && strict[0] == '1') {
    return (latency_ok && shed_ok && deadline_ok && chaos_latency_ok && chaos_contained_ok)
               ? 0
               : 1;
  }
  return 0;
}
